#include "pagerank/window_state.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/multi_window.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

MultiWindowSet one_part_set(const TemporalEdgeList& events,
                            const WindowSpec& spec) {
  return MultiWindowSet::build(events, spec, 1);
}

TEST(WindowState, MatchesWindowGraphDegrees) {
  const TemporalEdgeList events = test::random_events(3, 50, 2000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 1000);
  const MultiWindowSet set = one_part_set(events, spec);
  const auto& part = set.part(0);

  for (std::size_t w = 0; w < spec.count; w += 2) {
    WindowState state;
    compute_window_state(part, spec.start(w), spec.end(w), state);
    const WindowGraph ref = build_window_graph(
        events.slice(spec.start(w), spec.end(w)), events.num_vertices());

    EXPECT_EQ(state.num_active, ref.num_active) << "window " << w;
    for (VertexId local = 0; local < part.num_local(); ++local) {
      const VertexId global = part.global_of(local);
      ASSERT_EQ(state.out_degree[local], ref.out_degree[global])
          << "w=" << w << " v=" << global;
      ASSERT_EQ(state.active[local], ref.is_active[global])
          << "w=" << w << " v=" << global;
    }
  }
}

TEST(WindowState, ParallelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(5, 80, 4000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 6000, 2000);
  const MultiWindowSet set = one_part_set(events, spec);
  const auto& part = set.part(0);

  par::ForOptions opts{par::Partitioner::kSimple, 4, nullptr};
  for (std::size_t w = 0; w < spec.count; ++w) {
    WindowState seq;
    WindowState parl;
    compute_window_state(part, spec.start(w), spec.end(w), seq);
    compute_window_state(part, spec.start(w), spec.end(w), parl, &opts);
    EXPECT_EQ(seq.num_active, parl.num_active);
    EXPECT_EQ(seq.out_degree, parl.out_degree);
    EXPECT_EQ(seq.active, parl.active);
  }
}

TEST(WindowState, EmptyWindowAllZero) {
  const TemporalEdgeList events = test::paper_example_directed();
  const WindowSpec spec{.t0 = 0, .delta = 50, .sw = 1, .count = 1};
  const MultiWindowSet set = one_part_set(events, spec);
  WindowState state;
  compute_window_state(set.part(0), 0, 50, state);
  EXPECT_EQ(state.num_active, 0u);
}

TEST(LanesContaining, SingleLaneBasic) {
  WindowSpec spec{.t0 = 0, .delta = 10, .sw = 5, .count = 10};
  SpmmBatch batch{.lanes = 1, .first_window = 2, .window_stride = 3};
  // Window 2 covers [10, 20].
  EXPECT_EQ(lanes_containing(spec, batch, 10), 1u);
  EXPECT_EQ(lanes_containing(spec, batch, 20), 1u);
  EXPECT_EQ(lanes_containing(spec, batch, 9), 0u);
  EXPECT_EQ(lanes_containing(spec, batch, 21), 0u);
}

TEST(LanesContaining, MatchesBruteForceSweep) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    WindowSpec spec;
    spec.t0 = static_cast<Timestamp>(rng.bounded(50));
    spec.delta = static_cast<Timestamp>(rng.bounded(120));
    spec.sw = 1 + static_cast<Timestamp>(rng.bounded(30));
    spec.count = 4 + rng.bounded(60);

    SpmmBatch batch;
    batch.window_stride = 1 + rng.bounded(8);
    batch.lanes = 1 + rng.bounded(16);
    batch.first_window = rng.bounded(8);

    for (int probe = 0; probe < 40; ++probe) {
      const auto t = static_cast<Timestamp>(rng.bounded(2000));
      const std::uint64_t mask = lanes_containing(spec, batch, t);
      for (std::size_t k = 0; k < batch.lanes; ++k) {
        const std::size_t w = batch.window_of_lane(k);
        const bool expect = w < spec.count && spec.contains(w, t);
        ASSERT_EQ((mask >> k) & 1, expect ? 1u : 0u)
            << "t=" << t << " lane=" << k << " window=" << w;
      }
    }
  }
}

TEST(LanesContaining, LanePastWindowCountExcluded) {
  WindowSpec spec{.t0 = 0, .delta = 100, .sw = 1, .count = 5};
  // Lane 1's window (4 + 1*3 = 7) exceeds count -> only lane 0 may match.
  SpmmBatch batch{.lanes = 2, .first_window = 4, .window_stride = 3};
  const std::uint64_t mask = lanes_containing(spec, batch, 50);
  EXPECT_EQ(mask, 1u);
}

TEST(LanesContaining, StrideSkipsIntermediateWindows) {
  // Windows: w covers [5w, 5w + 20]. t = 22 lies in windows 1..4.
  WindowSpec spec{.t0 = 0, .delta = 20, .sw = 5, .count = 10};
  // Lanes hold windows 0, 2, 4, 6: only lanes 1 and 2 (windows 2, 4) match;
  // windows 1 and 3 fall between the sampled lanes.
  SpmmBatch batch{.lanes = 4, .first_window = 0, .window_stride = 2};
  EXPECT_EQ(lanes_containing(spec, batch, 22), 0b110u);
  // Offset start: lanes hold windows 1, 3 -> both inside [1, 4].
  SpmmBatch odd{.lanes = 2, .first_window = 1, .window_stride = 2};
  EXPECT_EQ(lanes_containing(spec, odd, 22), 0b11u);
}

TEST(LanesContaining, FullWidthClampAt64Lanes) {
  // delta so large that one timestamp falls in far more than 64 overlapping
  // windows: the [k_lo, k_hi] run covers all 64 lanes and the width >= 64
  // shift guard must produce ~0 (1ULL << 64 is UB).
  WindowSpec spec{.t0 = 0, .delta = 100000, .sw = 1, .count = 500};
  SpmmBatch batch{.lanes = 64, .first_window = 0, .window_stride = 1};
  EXPECT_EQ(lanes_containing(spec, batch, 499), ~0ULL);
}

TEST(LanesContaining, TimestampOutsideAllWindowsIsZero) {
  WindowSpec spec{.t0 = 100, .delta = 10, .sw = 5, .count = 8};
  SpmmBatch batch{.lanes = 8, .first_window = 0, .window_stride = 1};
  EXPECT_EQ(lanes_containing(spec, batch, 99), 0u);   // before t0
  EXPECT_EQ(lanes_containing(spec, batch, -50), 0u);  // long before t0
  // Last window (7) ends at 100 + 7*5 + 10 = 145.
  EXPECT_EQ(lanes_containing(spec, batch, 146), 0u);  // after the last end
}

TEST(LanesContaining, TimestampBeforeFirstWindowOfBatch) {
  WindowSpec spec{.t0 = 0, .delta = 10, .sw = 5, .count = 20};
  // The batch starts at window 10 ([50, 60]); t = 12 only falls in windows
  // 1 and 2, entirely before the batch (hi_num < 0 path).
  SpmmBatch batch{.lanes = 4, .first_window = 10, .window_stride = 2};
  EXPECT_EQ(lanes_containing(spec, batch, 12), 0u);
}

TEST(LanesContaining, ContainingRangeClampedToLaneCount) {
  // t = 30 falls in windows 0..6 (w*5 <= 30 <= w*5 + 30), which extends
  // past the 3-lane batch holding windows 0, 1, 2: k_hi must clamp.
  WindowSpec spec{.t0 = 0, .delta = 30, .sw = 5, .count = 12};
  SpmmBatch batch{.lanes = 3, .first_window = 0, .window_stride = 1};
  EXPECT_EQ(lanes_containing(spec, batch, 30), 0b111u);
}

TEST(LanesContaining, PartialOverlapStartsMidBatch) {
  // t = 30 in windows 0..6; the batch samples windows 4, 6, 8, 10, so only
  // lanes 0 and 1 match (k_lo = 0 rounding via ceil-divide on lo_num <= 0).
  WindowSpec spec{.t0 = 0, .delta = 30, .sw = 5, .count = 12};
  SpmmBatch batch{.lanes = 4, .first_window = 4, .window_stride = 2};
  EXPECT_EQ(lanes_containing(spec, batch, 30), 0b11u);
}

TEST(SpmmState, AgreesWithPerWindowState) {
  const TemporalEdgeList events = test::random_events(7, 60, 3000, 30000);
  const WindowSpec spec = WindowSpec::cover(0, 30000, 8000, 1500);
  const MultiWindowSet set = one_part_set(events, spec);
  const auto& part = set.part(0);

  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(8, spec.count);
  batch.first_window = 0;
  batch.window_stride = spec.count / batch.lanes > 0 ? spec.count / batch.lanes : 1;

  SpmmWindowState spmm;
  compute_spmm_state(part, spec, batch, spmm);

  for (std::size_t k = 0; k < batch.lanes; ++k) {
    const std::size_t w = batch.window_of_lane(k);
    if (w >= spec.count) continue;
    WindowState single;
    compute_window_state(part, spec.start(w), spec.end(w), single);
    EXPECT_EQ(spmm.num_active[k], single.num_active) << "lane " << k;
    for (VertexId v = 0; v < part.num_local(); ++v) {
      ASSERT_EQ(spmm.out_degree[v * batch.lanes + k], single.out_degree[v])
          << "lane " << k << " v=" << v;
      ASSERT_EQ((spmm.active_mask[v] >> k) & 1,
                static_cast<std::uint64_t>(single.active[v]))
          << "lane " << k << " v=" << v;
    }
  }
}

TEST(SpmmState, ParallelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(9, 60, 3000, 30000);
  const WindowSpec spec = WindowSpec::cover(0, 30000, 8000, 1500);
  const MultiWindowSet set = one_part_set(events, spec);
  const auto& part = set.part(0);

  SpmmBatch batch{.lanes = 4, .first_window = 1, .window_stride = 3};
  SpmmWindowState seq;
  SpmmWindowState parl;
  par::ForOptions opts{par::Partitioner::kAuto, 2, nullptr};
  compute_spmm_state(part, spec, batch, seq);
  compute_spmm_state(part, spec, batch, parl, &opts);
  EXPECT_EQ(seq.out_degree, parl.out_degree);
  EXPECT_EQ(seq.active_mask, parl.active_mask);
  EXPECT_EQ(seq.num_active, parl.num_active);
}

}  // namespace
}  // namespace pmpr
