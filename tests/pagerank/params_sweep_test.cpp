// Parameterized sweeps over PageRank parameters: the distribution invariant
// and cross-kernel agreement must hold for every (alpha, dangling) setting,
// not just the defaults.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "pagerank/propagation_blocking.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

using Cell = std::tuple<double, bool>;  // alpha, redistribute_dangling

class PagerankParamSweep : public ::testing::TestWithParam<Cell> {};

TEST_P(PagerankParamSweep, AllKernelsAgree) {
  const auto [alpha, redistribute] = GetParam();
  PagerankParams p;
  p.alpha = alpha;
  p.redistribute_dangling = redistribute;
  p.tol = 1e-12;
  p.max_iters = 500;

  const TemporalEdgeList events = test::random_events(77, 50, 1500, 10000);
  const Timestamp ts = 2000;
  const Timestamp te = 7000;
  const VertexId n = events.num_vertices();

  // Pull kernel on the static window graph.
  const WindowGraph g = build_window_graph(events.slice(ts, te), n);
  std::vector<double> pull(n);
  std::vector<double> scratch(n);
  full_init(g.is_active, g.num_active, pull);
  pagerank(g, pull, scratch, p);

  // Propagation-blocking push kernel.
  const PushGraph pg = PushGraph::from_events(events.slice(ts, te), n);
  std::vector<double> push(n);
  full_init(pg.is_active, pg.num_active, push);
  pagerank_propagation_blocking(pg, push, scratch, p);
  EXPECT_LT(test::linf_diff(pull, push), 1e-10);

  // Temporal SpMV kernel through a multi-window part.
  const WindowSpec spec{.t0 = ts, .delta = te - ts, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  WindowState state;
  compute_window_state(part, ts, te, state);
  std::vector<double> x(part.num_local());
  std::vector<double> tmp(part.num_local());
  full_init(state.active, state.num_active, x);
  pagerank_window_spmv(part, ts, te, state, x, tmp, p);
  std::vector<double> temporal(n, 0.0);
  for (VertexId v = 0; v < part.num_local(); ++v) {
    temporal[part.global_of(v)] = x[v];
  }
  EXPECT_LT(test::linf_diff(pull, temporal), 1e-10);

  // Distribution invariant only holds with dangling redistribution.
  const double mass = std::accumulate(pull.begin(), pull.end(), 0.0);
  if (redistribute) {
    EXPECT_NEAR(mass, 1.0, 1e-9);
  } else {
    EXPECT_LE(mass, 1.0 + 1e-9);
    EXPECT_GT(mass, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaDanglingGrid, PagerankParamSweep,
    ::testing::Combine(::testing::Values(0.01, 0.15, 0.5, 0.85),
                       ::testing::Values(true, false)),
    [](const auto& pinfo) {
      const double alpha = std::get<0>(pinfo.param);
      const bool redistribute = std::get<1>(pinfo.param);
      return "alpha" + std::to_string(static_cast<int>(alpha * 100)) +
             (redistribute ? "_dangling" : "_leak");
    });

class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, TighterToleranceMoreIterationsCloserToFixpoint) {
  const double tol = GetParam();
  const TemporalEdgeList events = test::random_events(88, 60, 2000, 1000);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  PagerankParams p;
  p.tol = tol;
  p.max_iters = 1000;
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  const PagerankStats stats = pagerank(g, x, scratch, p);
  EXPECT_TRUE(stats.converged(p));

  // Reference at much tighter tolerance.
  PagerankParams tight = p;
  tight.tol = 1e-14;
  std::vector<double> ref(g.num_vertices);
  full_init(g.is_active, g.num_active, ref);
  pagerank(g, ref, scratch, tight);
  // Error is bounded by a small multiple of the tolerance (contraction).
  EXPECT_LT(test::linf_diff(x, ref), 10.0 * tol + 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10),
                         [](const auto& pinfo) {
                           return "tol1e" +
                                  std::to_string(static_cast<int>(
                                      -std::log10(pinfo.param)));
                         });

}  // namespace
}  // namespace pmpr
