#include "pagerank/spmv_temporal.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pagerank/partial_init.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  explicit Fixture(std::uint64_t seed, std::size_t parts = 1)
      : events(test::random_events(seed, 60, 3000, 30000)),
        spec(WindowSpec::cover(0, 30000, 8000, 1500)),
        set(MultiWindowSet::build(events, spec, parts)) {}
};

PagerankParams tight_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

std::vector<double> run_window(const Fixture& f, std::size_t w,
                               const par::ForOptions* parallel = nullptr) {
  const auto& part = f.set.part_for_window(w);
  WindowState state;
  compute_window_state(part, f.spec.start(w), f.spec.end(w), state, parallel);
  std::vector<double> x(part.num_local());
  std::vector<double> scratch(part.num_local());
  full_init(state.active, state.num_active, x);
  pagerank_window_spmv(part, f.spec.start(w), f.spec.end(w), state, x,
                       scratch, tight_params(), parallel);
  // Map to global space for comparison.
  std::vector<double> dense(f.events.num_vertices(), 0.0);
  for (VertexId local = 0; local < part.num_local(); ++local) {
    dense[part.global_of(local)] = x[local];
  }
  return dense;
}

TEST(SpmvTemporal, MatchesBruteForceEveryWindow) {
  const Fixture f(101);
  for (std::size_t w = 0; w < f.spec.count; ++w) {
    const auto got = run_window(f, w);
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(f.events, f.spec.start(w), f.spec.end(w)),
        f.events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(got, ref), 1e-9) << "window " << w;
  }
}

TEST(SpmvTemporal, MultiPartMatchesSinglePart) {
  const Fixture one(202, 1);
  const Fixture many(202, 5);
  for (std::size_t w = 0; w < one.spec.count; ++w) {
    const auto a = run_window(one, w);
    const auto b = run_window(many, w);
    ASSERT_LT(test::linf_diff(a, b), 1e-10) << "window " << w;
  }
}

TEST(SpmvTemporal, ParallelKernelMatchesSequential) {
  const Fixture f(303);
  par::ForOptions opts{par::Partitioner::kSimple, 4, nullptr};
  for (std::size_t w = 0; w < f.spec.count; w += 2) {
    const auto seq = run_window(f, w);
    const auto parl = run_window(f, w, &opts);
    ASSERT_LT(test::linf_diff(seq, parl), 1e-12) << "window " << w;
  }
}

TEST(SpmvTemporal, ResultIsDistribution) {
  const Fixture f(404);
  for (std::size_t w = 0; w < f.spec.count; ++w) {
    const auto x = run_window(f, w);
    const double total = std::accumulate(x.begin(), x.end(), 0.0);
    if (test::brute_window_edges(f.events, f.spec.start(w), f.spec.end(w))
            .empty()) {
      EXPECT_EQ(total, 0.0);
    } else {
      EXPECT_NEAR(total, 1.0, 1e-9) << "window " << w;
    }
  }
}

TEST(SpmvTemporal, EmptyWindowZeroVector) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  events.ensure_vertices(4);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  WindowState state;
  compute_window_state(part, 0, 10, state);
  std::vector<double> x(part.num_local(), 99.0);
  std::vector<double> scratch(part.num_local());
  const PagerankStats stats = pagerank_window_spmv(part, 0, 10, state, x,
                                                   scratch, tight_params());
  EXPECT_EQ(stats.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(SpmvTemporal, WarmStartConvergesFasterThanCold) {
  // The partial-initialization premise (paper §4.2): starting from the
  // previous window's vector takes fewer iterations than uniform.
  const Fixture f(505);
  const auto& part = f.set.part(0);
  PagerankParams p;
  p.tol = 1e-10;
  p.max_iters = 500;

  // Converge window w fully, then use it as the start for window w+1.
  std::size_t w = f.spec.count / 2;
  WindowState sw_state;
  compute_window_state(part, f.spec.start(w), f.spec.end(w), sw_state);
  std::vector<double> prev(part.num_local());
  std::vector<double> scratch(part.num_local());
  full_init(sw_state.active, sw_state.num_active, prev);
  pagerank_window_spmv(part, f.spec.start(w), f.spec.end(w), sw_state, prev,
                       scratch, p);

  WindowState next_state;
  compute_window_state(part, f.spec.start(w + 1), f.spec.end(w + 1),
                       next_state);
  std::vector<double> cold(part.num_local());
  full_init(next_state.active, next_state.num_active, cold);
  const PagerankStats cold_stats =
      pagerank_window_spmv(part, f.spec.start(w + 1), f.spec.end(w + 1),
                           next_state, cold, scratch, p);

  std::vector<double> warm(part.num_local());
  partial_init(prev, sw_state.active, next_state.active,
               next_state.num_active, warm);
  const PagerankStats warm_stats =
      pagerank_window_spmv(part, f.spec.start(w + 1), f.spec.end(w + 1),
                           next_state, warm, scratch, p);

  EXPECT_LE(warm_stats.iterations, cold_stats.iterations);
  EXPECT_LT(test::linf_diff(cold, warm), 1e-8);
}

}  // namespace
}  // namespace pmpr
