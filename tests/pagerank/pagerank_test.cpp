#include "pagerank/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

WindowGraph graph_from_pairs(
    const std::vector<std::pair<VertexId, VertexId>>& pairs, VertexId n) {
  std::vector<TemporalEdge> events;
  events.reserve(pairs.size());
  for (const auto& [u, v] : pairs) events.push_back({u, v, 0});
  return build_window_graph(events, n);
}

PagerankParams default_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

std::vector<double> run(const WindowGraph& g, const PagerankParams& p,
                        const par::ForOptions* parallel = nullptr) {
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  pagerank(g, x, scratch, p, parallel);
  return x;
}

double sum(const std::vector<double>& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

TEST(FullInit, UniformOverActive) {
  std::vector<std::uint8_t> active{1, 0, 1, 1, 0};
  std::vector<double> x(5);
  full_init(active, 3, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 1.0 / 3);
  EXPECT_NEAR(sum(x), 1.0, 1e-15);
}

TEST(FullInit, NoActiveVerticesAllZero) {
  std::vector<std::uint8_t> active{0, 0};
  std::vector<double> x(2, 5.0);
  full_init(active, 0, x);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_EQ(x[1], 0.0);
}

TEST(Pagerank, DirectedCycleIsUniform) {
  // In a cycle every vertex is symmetric: PR = 1/n each.
  const VertexId n = 8;
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId v = 0; v < n; ++v) pairs.emplace_back(v, (v + 1) % n);
  const WindowGraph g = graph_from_pairs(pairs, n);
  const auto x = run(g, default_params());
  for (VertexId v = 0; v < n; ++v) EXPECT_NEAR(x[v], 1.0 / n, 1e-10);
}

TEST(Pagerank, CompleteGraphIsUniform) {
  const VertexId n = 6;
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) pairs.emplace_back(u, v);
    }
  }
  const WindowGraph g = graph_from_pairs(pairs, n);
  const auto x = run(g, default_params());
  for (VertexId v = 0; v < n; ++v) EXPECT_NEAR(x[v], 1.0 / n, 1e-10);
}

TEST(Pagerank, StarGraphClosedForm) {
  // Leaves 1..k each point to hub 0; hub dangles (redistributed).
  // With alpha as teleport and dangling redistribution:
  //   leaf = (alpha + (1-alpha)*hub)/n
  //   hub  = leaf + (1-alpha)*k*leaf  (hub gets every leaf's mass)
  const VertexId k = 4;
  const VertexId n = k + 1;
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId v = 1; v <= k; ++v) pairs.emplace_back(v, 0);
  const WindowGraph g = graph_from_pairs(pairs, n);
  const PagerankParams p = default_params();
  const auto x = run(g, p);
  EXPECT_NEAR(sum(x), 1.0, 1e-9);
  // Verify the fixed point directly.
  const double base = (p.alpha + (1 - p.alpha) * x[0]) / n;
  for (VertexId v = 1; v <= k; ++v) EXPECT_NEAR(x[v], base, 1e-9);
  EXPECT_NEAR(x[0], base + (1 - p.alpha) * k * x[1], 1e-9);
  EXPECT_GT(x[0], x[1]);
}

TEST(Pagerank, SumsToOneOnRandomGraphs) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const TemporalEdgeList events = test::random_events(seed, 64, 800, 100);
    const WindowGraph g =
        build_window_graph(events.events(), events.num_vertices());
    const auto x = run(g, default_params());
    EXPECT_NEAR(sum(x), 1.0, 1e-9) << "seed " << seed;
    for (const double v : x) EXPECT_GE(v, 0.0);
  }
}

TEST(Pagerank, MatchesBruteForceReference) {
  const TemporalEdgeList events = test::random_events(9, 50, 600, 100);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  const auto x = run(g, default_params());
  const auto ref = test::brute_pagerank(
      test::brute_window_edges(events, 0, 100), events.num_vertices(), 0.15,
      1e-12, 500);
  EXPECT_LT(test::linf_diff(x, ref), 1e-9);
}

TEST(Pagerank, InactiveVerticesStayZero) {
  const WindowGraph g = graph_from_pairs({{0, 1}, {1, 0}}, 5);
  const auto x = run(g, default_params());
  EXPECT_EQ(x[2], 0.0);
  EXPECT_EQ(x[3], 0.0);
  EXPECT_EQ(x[4], 0.0);
  EXPECT_NEAR(sum(x), 1.0, 1e-12);
}

TEST(Pagerank, EmptyGraphAllZero) {
  const WindowGraph g = graph_from_pairs({}, 4);
  std::vector<double> x(4, 1.0);
  std::vector<double> scratch(4);
  const PagerankStats stats = pagerank(g, x, scratch, default_params());
  EXPECT_EQ(stats.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(Pagerank, SingleSelfLoopVertex) {
  const WindowGraph g = graph_from_pairs({{0, 0}}, 1);
  const auto x = run(g, default_params());
  EXPECT_NEAR(x[0], 1.0, 1e-12);
}

TEST(Pagerank, ConvergesWithinMaxIters) {
  const TemporalEdgeList events = test::random_events(12, 100, 2000, 100);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  PagerankParams p;
  p.tol = 1e-9;
  p.max_iters = 200;
  const PagerankStats stats = pagerank(g, x, scratch, p);
  EXPECT_TRUE(stats.converged(p));
  EXPECT_LT(stats.iterations, 200);
  EXPECT_GT(stats.iterations, 1);
}

TEST(Pagerank, MaxItersCapRespected) {
  const TemporalEdgeList events = test::random_events(12, 100, 2000, 100);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  PagerankParams p;
  p.tol = 0.0;  // never converges
  p.max_iters = 7;
  const PagerankStats stats = pagerank(g, x, scratch, p);
  EXPECT_EQ(stats.iterations, 7);
}

TEST(Pagerank, ParallelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(21, 128, 3000, 100);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  const auto seq = run(g, default_params());
  for (const auto partitioner :
       {par::Partitioner::kAuto, par::Partitioner::kSimple,
        par::Partitioner::kStatic}) {
    par::ForOptions opts{partitioner, 8, nullptr};
    const auto parl = run(g, default_params(), &opts);
    EXPECT_LT(test::linf_diff(seq, parl), 1e-12) << to_string(partitioner);
  }
}

TEST(Pagerank, WithoutDanglingRedistributionMassLeaks) {
  // 0 -> 1, vertex 1 dangles. Without redistribution total mass < 1.
  const WindowGraph g = graph_from_pairs({{0, 1}}, 2);
  PagerankParams p = default_params();
  p.redistribute_dangling = false;
  const auto x = run(g, p);
  EXPECT_LT(sum(x), 1.0);
  p.redistribute_dangling = true;
  const auto y = run(g, p);
  EXPECT_NEAR(sum(y), 1.0, 1e-9);
}

TEST(Pagerank, HigherAlphaFlattensRanking) {
  // More teleport -> closer to uniform.
  const TemporalEdgeList events = test::random_events(31, 40, 500, 100);
  const WindowGraph g =
      build_window_graph(events.events(), events.num_vertices());
  PagerankParams low = default_params();
  low.alpha = 0.05;
  PagerankParams high = default_params();
  high.alpha = 0.9;
  const auto xl = run(g, low);
  const auto xh = run(g, high);
  auto spread = [&](const std::vector<double>& x) {
    double mx = 0.0;
    double mn = 1.0;
    for (std::size_t v = 0; v < x.size(); ++v) {
      if (g.is_active[v] == 0) continue;
      mx = std::max(mx, x[v]);
      mn = std::min(mn, x[v]);
    }
    return mx - mn;
  };
  EXPECT_LT(spread(xh), spread(xl));
}

}  // namespace
}  // namespace pmpr
