#include "pagerank/propagation_blocking.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

PagerankParams tight_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

std::vector<double> run_blocked(const TemporalEdgeList& events, Timestamp ts,
                                Timestamp te, unsigned bin_bits) {
  const PushGraph g =
      PushGraph::from_events(events.slice(ts, te), events.num_vertices());
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  pagerank_propagation_blocking(g, x, scratch, tight_params(), bin_bits);
  return x;
}

TEST(PropagationBlocking, MatchesPullKernel) {
  const TemporalEdgeList events = test::random_events(3, 60, 2000, 10000);
  for (const auto& [ts, te] : std::vector<std::pair<Timestamp, Timestamp>>{
           {0, 10000}, {2000, 5000}, {9000, 10000}}) {
    const auto blocked = run_blocked(events, ts, te, 12);
    const WindowGraph ref_graph =
        build_window_graph(events.slice(ts, te), events.num_vertices());
    std::vector<double> ref(ref_graph.num_vertices);
    std::vector<double> scratch(ref_graph.num_vertices);
    full_init(ref_graph.is_active, ref_graph.num_active, ref);
    pagerank(ref_graph, ref, scratch, tight_params());
    ASSERT_LT(test::linf_diff(blocked, ref), 1e-10)
        << "[" << ts << "," << te << "]";
  }
}

class BinBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(BinBits, BinWidthNeverChangesResults) {
  const TemporalEdgeList events = test::random_events(7, 100, 3000, 1000);
  const auto reference = run_blocked(events, 0, 1000, 12);
  const auto got = run_blocked(events, 0, 1000, GetParam());
  // Bitwise-identical: binning only reorders *which buffer* an addition
  // sits in, and accumulation is per-destination in the same edge order.
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], reference[v]) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BinBits,
                         ::testing::Values(4u, 6u, 8u, 16u, 30u),
                         [](const auto& pinfo) {
                           return "bits" + std::to_string(pinfo.param);
                         });

TEST(PropagationBlocking, DistributionMaintained) {
  const TemporalEdgeList events = test::random_events(11, 50, 1000, 1000);
  const auto x = run_blocked(events, 0, 1000, 10);
  EXPECT_NEAR(std::accumulate(x.begin(), x.end(), 0.0), 1.0, 1e-9);
}

TEST(PropagationBlocking, EmptyGraph) {
  TemporalEdgeList events;
  events.ensure_vertices(8);
  const PushGraph g = PushGraph::from_events({}, 8);
  std::vector<double> x(8, 1.0);
  std::vector<double> scratch(8);
  const PagerankStats stats =
      pagerank_propagation_blocking(g, x, scratch, tight_params());
  EXPECT_EQ(stats.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

TEST(PropagationBlocking, PushGraphDeduplicates) {
  TemporalEdgeList events;
  events.add(0, 1, 1);
  events.add(0, 1, 2);
  events.add(0, 2, 3);
  const PushGraph g = PushGraph::from_events(events.events(), 3);
  EXPECT_EQ(g.out.degree(0), 2u);
  EXPECT_EQ(g.num_active, 3u);
}

}  // namespace
}  // namespace pmpr
