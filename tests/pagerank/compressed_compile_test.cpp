// Differential tests for the chunk-streaming compile paths: a compressed
// part (compress_in_place / MultiWindowGraph::compress) must yield a
// bit-identical CompiledBatchCsr / CompiledWindowCsr and window state to
// the raw-CSR compile — that equality is what makes the storage kinds
// interchangeable end to end.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/counters.hpp"
#include "pagerank/batch_csr.hpp"
#include "par/parallel_for.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet raw;
  MultiWindowSet packed;

  explicit Fixture(std::uint64_t seed, std::size_t chunk_entries = 256)
      : events(test::random_events(seed, 60, 4000, 40000)),
        spec(WindowSpec::cover(0, 40000, 9000, 1500)),
        raw(MultiWindowSet::build(events, spec, 2)),
        packed(MultiWindowSet::build(events, spec, 2)) {
    packed.compress_in_place(chunk_entries);
  }
};

SpmmBatch batch_for(const WindowSpec& spec, std::size_t lanes,
                    std::size_t first, std::size_t stride) {
  SpmmBatch b;
  b.lanes = std::min(lanes, spec.count);
  b.first_window = first;
  b.window_stride = stride;
  return b;
}

void expect_same_batch(const CompiledBatchCsr& a, const CompiledBatchCsr& b) {
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.mask_words, b.mask_words);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.nbr, b.nbr);
  EXPECT_EQ(a.mask, b.mask);
  EXPECT_EQ(a.active_rows, b.active_rows);
  EXPECT_EQ(a.dangling_rows, b.dangling_rows);
  EXPECT_EQ(a.dangling_mask, b.dangling_mask);
}

void expect_same_spmm_state(const SpmmWindowState& a,
                            const SpmmWindowState& b) {
  EXPECT_EQ(a.out_degree, b.out_degree);
  EXPECT_EQ(a.active_mask, b.active_mask);
  EXPECT_EQ(a.num_active, b.num_active);
}

TEST(CompressedCompile, SpmmBatchBitIdenticalToRaw) {
  const Fixture f(404);
  for (std::size_t p = 0; p < f.raw.num_parts(); ++p) {
    ASSERT_TRUE(f.packed.part(p).is_compressed());
    const SpmmBatch batch = batch_for(f.spec, 8, f.raw.part(p).first_window,
                                      f.raw.part(p).num_windows >= 8 ? 2 : 1);
    SpmmWindowState ref_state;
    CompiledBatchCsr ref;
    compile_spmm_batch(f.raw.part(p), f.spec, batch, ref_state, ref);
    SpmmWindowState state;
    CompiledBatchCsr compiled;
    compile_spmm_batch(f.packed.part(p), f.spec, batch, state, compiled);
    expect_same_batch(compiled, ref);
    expect_same_spmm_state(state, ref_state);
  }
}

TEST(CompressedCompile, SpmmBatchParallelMatchesSerial) {
  const Fixture f(505, /*chunk_entries=*/64);
  const auto& part = f.packed.part(0);
  const SpmmBatch batch = batch_for(f.spec, 16, part.first_window, 1);
  SpmmWindowState ref_state;
  CompiledBatchCsr ref;
  compile_spmm_batch(part, f.spec, batch, ref_state, ref);
  par::ForOptions par_opts;
  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, state, compiled, &par_opts);
  expect_same_batch(compiled, ref);
  expect_same_spmm_state(state, ref_state);
}

TEST(CompressedCompile, ScratchReuseAcrossBatchesIsClean) {
  const Fixture f(606, /*chunk_entries=*/32);
  const auto& part = f.packed.part(0);
  io::DecodeScratch scratch;
  for (const std::size_t first : {std::size_t{0}, std::size_t{1}}) {
    const SpmmBatch batch = batch_for(f.spec, 4, part.first_window + first, 2);
    SpmmWindowState ref_state;
    CompiledBatchCsr ref;
    compile_spmm_batch(f.raw.part(0), f.spec, batch, ref_state, ref);
    SpmmWindowState state;
    CompiledBatchCsr compiled;
    compile_spmm_batch(part, f.spec, batch, state, compiled, nullptr,
                       &scratch);
    expect_same_batch(compiled, ref);
  }
}

TEST(CompressedCompile, WindowCompileBitIdenticalToRaw) {
  const Fixture f(707);
  for (std::size_t p = 0; p < f.raw.num_parts(); ++p) {
    const auto& raw_part = f.raw.part(p);
    for (std::size_t w = raw_part.first_window;
         w < raw_part.first_window + raw_part.num_windows; ++w) {
      WindowState ref_state;
      CompiledWindowCsr ref;
      compile_window(raw_part, f.spec.start(w), f.spec.end(w), ref_state, ref);
      WindowState state;
      CompiledWindowCsr compiled;
      compile_window(f.packed.part(p), f.spec.start(w), f.spec.end(w), state,
                     compiled);
      EXPECT_EQ(compiled.row_ptr, ref.row_ptr) << "window " << w;
      EXPECT_EQ(compiled.nbr, ref.nbr) << "window " << w;
      EXPECT_EQ(compiled.active_rows, ref.active_rows) << "window " << w;
      EXPECT_EQ(compiled.dangling_rows, ref.dangling_rows) << "window " << w;
      EXPECT_EQ(state.out_degree, ref_state.out_degree) << "window " << w;
      EXPECT_EQ(state.active, ref_state.active) << "window " << w;
      EXPECT_EQ(state.num_active, ref_state.num_active) << "window " << w;
    }
  }
}

TEST(CompressedCompile, PrunesChunksOutsideTheWindow) {
  // Chunks keep rows whole, so a chunk's time extent is the union of its
  // rows' full time spans — pruning only fires when rows are temporally
  // localized. Give each vertex a narrow per-row time band marching across
  // [0, 4707]: with 8-entry rows and 64-entry chunks, each chunk covers an
  // ~800-wide band, and most bands fall wholly outside the first window.
  TemporalEdgeList events;
  for (VertexId v = 0; v < 48; ++v) {
    for (Timestamp k = 0; k < 8; ++k) {
      events.add(v, (v + 1) % 48, static_cast<Timestamp>(v) * 100 + k);
    }
  }
  events.sort_by_time();
  const WindowSpec spec{0, 2000, 1000, 4};
  MultiWindowSet packed = MultiWindowSet::build(events, spec, 1);
  packed.compress_in_place(/*target_chunk_entries=*/64);
  obs::set_counters_enabled(true);
  const obs::CounterSnapshot before = obs::counters_snapshot();
  WindowState state;
  CompiledWindowCsr compiled;
  compile_window(packed.part(0), spec.start(0), spec.end(0), state, compiled);
  const obs::CounterSnapshot delta =
      obs::counters_snapshot().delta_since(before);
  EXPECT_GT(delta[obs::Counter::kChunksPruned], 0u);
  EXPECT_GT(delta[obs::Counter::kChunksDecoded], 0u);
  // Pruning must not change the result.
  WindowState ref_state;
  CompiledWindowCsr ref;
  const MultiWindowSet raw = MultiWindowSet::build(events, spec, 1);
  compile_window(raw.part(0), spec.start(0), spec.end(0), ref_state, ref);
  EXPECT_EQ(compiled.nbr, ref.nbr);
  EXPECT_EQ(compiled.active_rows, ref.active_rows);
}

TEST(CompressedCompile, ReferenceStateComputationRejectsCompressedParts) {
  const Fixture f(909);
  const SpmmBatch batch = batch_for(f.spec, 4, 0, 1);
  SpmmWindowState spmm_state;
  EXPECT_THROW(compute_spmm_state(f.packed.part(0), f.spec, batch, spmm_state),
               InvariantError);
  WindowState state;
  EXPECT_THROW(compute_window_state(f.packed.part(0), f.spec.start(0),
                                    f.spec.end(0), state),
               InvariantError);
}

TEST(CompressedCompile, CompressedSetValidatesAndShrinks) {
  const Fixture f(1010);
  f.packed.validate();  // decodes and audits every part
  EXPECT_LT(f.packed.memory_bytes(), f.raw.memory_bytes());
  EXPECT_EQ(f.packed.total_events(), f.raw.total_events());
}

}  // namespace
}  // namespace pmpr
