// Differential tests: the compiled kernels (pagerank/batch_csr.hpp) must
// agree with the reference kernels — bit-identically in serial mode (same
// floating-point operations in the same order), within summation-order
// rounding in parallel mode — across lane counts, strides, dangling
// redistribution, and at the whole-runner level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "exec/config.hpp"
#include "exec/postmortem_runner.hpp"
#include "exec/results.hpp"
#include "pagerank/batch_csr.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "pagerank/spmm_temporal.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  explicit Fixture(std::uint64_t seed)
      : events(test::random_events(seed, 70, 5000, 50000)),
        spec(WindowSpec::cover(0, 50000, 9000, 700)),
        set(MultiWindowSet::build(events, spec, 1)) {}

  Fixture(std::uint64_t seed, const WindowSpec& wide_spec)
      : events(test::random_events(seed, 50, 2500, 50000)),
        spec(wide_spec),
        set(MultiWindowSet::build(events, spec, 1)) {}
};

/// Enough heavily-overlapping windows that every lane of a 512-wide batch
/// at stride 2 maps to a real (event-carrying) window.
WindowSpec wide_spec() {
  return WindowSpec{.t0 = 0, .delta = 6000, .sw = 45, .count = 1100};
}

PagerankParams params_with(bool dangling) {
  PagerankParams p;
  p.tol = 1e-10;
  p.max_iters = 300;
  p.redistribute_dangling = dangling;
  return p;
}

/// Lane-interleaved full initialization shared by both runs.
std::vector<double> init_x(const SpmmWindowState& state, std::size_t n) {
  std::vector<double> x(n * state.lanes, 0.0);
  for (std::size_t k = 0; k < state.lanes; ++k) {
    const double uniform =
        state.num_active[k] > 0
            ? 1.0 / static_cast<double>(state.num_active[k])
            : 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      x[v * state.lanes + k] =
          mask_test(state.mask_of(v), k) ? uniform : 0.0;
    }
  }
  return x;
}

struct SpmmRun {
  std::vector<double> x;
  SpmmStats stats;
};

SpmmRun run_reference(const Fixture& f, const SpmmBatch& batch, bool dangling,
                      const par::ForOptions* parallel) {
  const auto& part = f.set.part(0);
  const std::size_t n = part.num_local();
  SpmmWindowState state;
  compute_spmm_state(part, f.spec, batch, state, parallel);
  SpmmRun run;
  run.x = init_x(state, n);
  std::vector<double> scratch(n * batch.lanes);
  run.stats = pagerank_spmm(part, f.spec, batch, state, run.x, scratch,
                            params_with(dangling), parallel);
  return run;
}

SpmmRun run_compiled(const Fixture& f, const SpmmBatch& batch, bool dangling,
                     const par::ForOptions* parallel,
                     SimdMode simd = SimdMode::kAuto) {
  const auto& part = f.set.part(0);
  const std::size_t n = part.num_local();
  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, state, compiled, parallel);
  SpmmRun run;
  run.x = init_x(state, n);
  std::vector<double> scratch(n * batch.lanes);
  run.stats = pagerank_spmm(state, compiled, run.x, scratch,
                            params_with(dangling), parallel, simd);
  return run;
}

void expect_stats_equal(const SpmmStats& a, const SpmmStats& b) {
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.lane_stats.size(), b.lane_stats.size());
  for (std::size_t k = 0; k < a.lane_stats.size(); ++k) {
    EXPECT_EQ(a.lane_stats[k].iterations, b.lane_stats[k].iterations)
        << "lane " << k;
    EXPECT_EQ(a.lane_stats[k].final_residual, b.lane_stats[k].final_residual)
        << "lane " << k;
  }
}

TEST(CompiledSpmm, SerialBitIdenticalAcrossLanesStridesDangling) {
  const Fixture f(1201);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}}) {
    for (const std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
      for (const bool dangling : {true, false}) {
        SpmmBatch batch;
        batch.lanes = std::min(lanes, f.spec.count);
        batch.first_window = 0;
        batch.window_stride = stride;
        const SpmmRun ref = run_reference(f, batch, dangling, nullptr);
        const SpmmRun cmp = run_compiled(f, batch, dangling, nullptr);
        ASSERT_EQ(ref.x, cmp.x) << "lanes=" << lanes << " stride=" << stride
                                << " dangling=" << dangling;
        expect_stats_equal(ref.stats, cmp.stats);
      }
    }
  }
}

TEST(CompiledSpmm, ParallelMatchesReference) {
  const Fixture f(1302);
  par::ForOptions opts{par::Partitioner::kAuto, 4, nullptr};
  for (const std::size_t lanes : {std::size_t{3}, std::size_t{16}}) {
    for (const bool dangling : {true, false}) {
      SpmmBatch batch;
      batch.lanes = std::min(lanes, f.spec.count);
      batch.first_window = 1;
      batch.window_stride = 2;
      const SpmmRun ref = run_reference(f, batch, dangling, &opts);
      const SpmmRun cmp = run_compiled(f, batch, dangling, &opts);
      ASSERT_EQ(ref.stats.iterations, cmp.stats.iterations);
      ASSERT_EQ(ref.x.size(), cmp.x.size());
      double linf = 0.0;
      for (std::size_t i = 0; i < ref.x.size(); ++i) {
        linf = std::max(linf, std::abs(ref.x[i] - cmp.x[i]));
      }
      // Parallel chunking only changes floating-point summation order.
      EXPECT_LT(linf, 1e-12) << "lanes=" << lanes;
    }
  }
}

TEST(CompiledSpmv, SerialBitIdenticalPerWindow) {
  const Fixture f(1403);
  const auto& part = f.set.part(0);
  const std::size_t n = part.num_local();
  for (const bool dangling : {true, false}) {
    for (std::size_t w = 0; w < f.spec.count; w += 7) {
      const Timestamp ts = f.spec.start(w);
      const Timestamp te = f.spec.end(w);

      WindowState ref_state;
      compute_window_state(part, ts, te, ref_state);
      std::vector<double> ref_x(n);
      std::vector<double> scratch(n);
      full_init(ref_state.active, ref_state.num_active, ref_x);
      const PagerankStats ref_stats =
          pagerank_window_spmv(part, ts, te, ref_state, ref_x, scratch,
                               params_with(dangling));

      WindowState state;
      CompiledWindowCsr compiled;
      compile_window(part, ts, te, state, compiled);
      std::vector<double> x(n);
      full_init(state.active, state.num_active, x);
      const PagerankStats stats = pagerank_window_spmv(
          state, compiled, x, scratch, params_with(dangling));

      ASSERT_EQ(ref_x, x) << "window " << w << " dangling=" << dangling;
      EXPECT_EQ(ref_stats.iterations, stats.iterations) << "window " << w;
      EXPECT_EQ(ref_stats.final_residual, stats.final_residual)
          << "window " << w;
    }
  }
}

TEST(CompiledSpmv, ParallelMatchesReference) {
  const Fixture f(1504);
  const auto& part = f.set.part(0);
  const std::size_t n = part.num_local();
  par::ForOptions opts{par::Partitioner::kSimple, 8, nullptr};
  const std::size_t w = f.spec.count / 2;
  const Timestamp ts = f.spec.start(w);
  const Timestamp te = f.spec.end(w);

  WindowState ref_state;
  compute_window_state(part, ts, te, ref_state, &opts);
  std::vector<double> ref_x(n);
  std::vector<double> scratch(n);
  full_init(ref_state.active, ref_state.num_active, ref_x);
  const PagerankStats ref_stats = pagerank_window_spmv(
      part, ts, te, ref_state, ref_x, scratch, params_with(true), &opts);

  WindowState state;
  CompiledWindowCsr compiled;
  compile_window(part, ts, te, state, compiled, &opts);
  std::vector<double> x(n);
  full_init(state.active, state.num_active, x);
  const PagerankStats stats = pagerank_window_spmv(state, compiled, x,
                                                   scratch, params_with(true),
                                                   &opts);

  EXPECT_EQ(ref_stats.iterations, stats.iterations);
  double linf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    linf = std::max(linf, std::abs(ref_x[i] - x[i]));
  }
  EXPECT_LT(linf, 1e-12);
}

// Wide batches: every mask-word count {1, 2, 4, 8}, both word-boundary
// sides (63/64/65, 127/128), a non-power-of-two interior point (192), and
// the clamp edge (511/512). Serial compiled runs must be bit-identical to
// the reference kernel in all of them.
TEST(CompiledSpmm, WideLanesSerialBitIdentical) {
  const Fixture f(2101, wide_spec());
  for (const std::size_t lanes :
       {std::size_t{63}, std::size_t{64}, std::size_t{65}, std::size_t{127},
        std::size_t{128}, std::size_t{192}, std::size_t{511},
        std::size_t{512}}) {
    for (const std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
      for (const bool dangling : {true, false}) {
        SpmmBatch batch;
        batch.lanes = lanes;
        batch.first_window = 0;
        batch.window_stride = stride;
        ASSERT_LE(batch.window_of_lane(lanes - 1), f.spec.count - 1);
        const SpmmRun ref = run_reference(f, batch, dangling, nullptr);
        const SpmmRun cmp = run_compiled(f, batch, dangling, nullptr);
        ASSERT_EQ(ref.x, cmp.x) << "lanes=" << lanes << " stride=" << stride
                                << " dangling=" << dangling;
        expect_stats_equal(ref.stats, cmp.stats);
      }
    }
  }
}

TEST(CompiledSpmm, WideLanesParallelMatchesReference) {
  const Fixture f(2202, wide_spec());
  par::ForOptions opts{par::Partitioner::kAuto, 4, nullptr};
  for (const std::size_t lanes : {std::size_t{128}, std::size_t{512}}) {
    SpmmBatch batch;
    batch.lanes = lanes;
    batch.first_window = 0;
    batch.window_stride = 1;
    const SpmmRun ref = run_reference(f, batch, true, &opts);
    const SpmmRun cmp = run_compiled(f, batch, true, &opts);
    ASSERT_EQ(ref.stats.iterations, cmp.stats.iterations);
    ASSERT_EQ(ref.x.size(), cmp.x.size());
    double linf = 0.0;
    for (std::size_t i = 0; i < ref.x.size(); ++i) {
      linf = std::max(linf, std::abs(ref.x[i] - cmp.x[i]));
    }
    // Parallel chunking only changes floating-point summation order.
    EXPECT_LT(linf, 1e-12) << "lanes=" << lanes;
  }
}

/// Forced-ISA differential: each vector kernel must produce exactly the
/// scalar kernel's bits (all sweeps perform the same per-lane FP ops in
/// the same order; cross-lane vectorization touches independent
/// accumulators). Parameterized over lane counts so every mask-word
/// template instantiation of every ISA is exercised.
void expect_isa_matches_scalar(SimdIsa isa, SimdMode mode) {
  if (!simd_isa_supported(isa)) {
    GTEST_SKIP() << to_string(isa)
                 << " not built or not supported on this host";
  }
  const Fixture f(2303, wide_spec());
  for (const std::size_t lanes : {std::size_t{5}, std::size_t{64},
                                  std::size_t{65}, std::size_t{192},
                                  std::size_t{512}}) {
    for (const bool dangling : {true, false}) {
      SpmmBatch batch;
      batch.lanes = lanes;
      batch.first_window = 0;
      batch.window_stride = 1;
      const SpmmRun scalar =
          run_compiled(f, batch, dangling, nullptr, SimdMode::kScalar);
      const SpmmRun vec = run_compiled(f, batch, dangling, nullptr, mode);
      ASSERT_EQ(scalar.x, vec.x)
          << to_string(isa) << " lanes=" << lanes << " dangling=" << dangling;
      expect_stats_equal(scalar.stats, vec.stats);
    }
  }
}

TEST(CompiledSpmmDispatch, Avx2BitIdenticalToScalar) {
  expect_isa_matches_scalar(SimdIsa::kAvx2, SimdMode::kAvx2);
}

TEST(CompiledSpmmDispatch, Avx512BitIdenticalToScalar) {
  expect_isa_matches_scalar(SimdIsa::kAvx512, SimdMode::kAvx512);
}

TEST(CompiledSpmmDispatch, AutoBitIdenticalToScalarSerial) {
  const Fixture f(2404, wide_spec());
  SpmmBatch batch;
  batch.lanes = 96;
  batch.first_window = 3;
  batch.window_stride = 2;
  const SpmmRun scalar =
      run_compiled(f, batch, true, nullptr, SimdMode::kScalar);
  const SpmmRun any = run_compiled(f, batch, true, nullptr, SimdMode::kAuto);
  ASSERT_EQ(scalar.x, any.x);
  expect_stats_equal(scalar.stats, any.stats);
}

// The pre-PR 6 kernels clamped batches at 64 lanes with a debug-only
// assert: a release build fed lanes > 64 shifted a uint64_t by >= 64 (UB)
// and scribbled whatever the hardware returned into the masks. The bound
// is now a release-mode invariant on every entry point.
TEST(CompiledSpmm, MalformedLaneCountsThrow) {
  const Fixture f(2505);
  const auto& part = f.set.part(0);
  for (const std::size_t lanes : {std::size_t{0}, kMaxSpmmLanes + 1,
                                  std::size_t{100000}}) {
    SpmmBatch batch;
    batch.lanes = lanes;
    batch.first_window = 0;
    batch.window_stride = 1;
    SpmmWindowState state;
    CompiledBatchCsr compiled;
    EXPECT_THROW(compute_spmm_state(part, f.spec, batch, state),
                 InvariantError)
        << lanes;
    EXPECT_THROW(
        compile_spmm_batch(part, f.spec, batch, state, compiled),
        InvariantError)
        << lanes;
  }
}

TEST(CompiledSpmm, EmptyLaneStaysZero) {
  // A lane pointing at an empty window must come back all-zero from the
  // compiled kernel exactly like the reference (buffers pre-zeroed).
  TemporalEdgeList events;
  for (int i = 0; i < 50; ++i) {
    events.add(static_cast<VertexId>(i % 5),
               static_cast<VertexId>((i + 1) % 5), i);
  }
  events.ensure_vertices(5);
  const WindowSpec spec{.t0 = 0, .delta = 49, .sw = 1000, .count = 2};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  SpmmBatch batch{.lanes = 2, .first_window = 0, .window_stride = 1};
  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, spec, batch, state, compiled);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * 2, 0.5);  // garbage in inactive entries
  std::vector<double> scratch(n * 2, 0.25);
  pagerank_spmm(state, compiled, x, scratch, params_with(true));
  double lane0 = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(x[v * 2 + 1], 0.0);
    lane0 += x[v * 2 + 0];
  }
  EXPECT_NEAR(lane0, 1.0, 1e-9);
}

/// Whole-runner differential: the compiled_kernels flag must not change
/// any window's result for either kernel kind. ParallelMode::kWindow keeps
/// each kernel serial (parallelism across windows only), so checksums are
/// bit-identical.
TEST(CompiledRunner, FlagPreservesResultsExactlyInWindowMode) {
  const Fixture f(1605);
  const MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, 3);
  for (const KernelKind kernel : {KernelKind::kSpmv, KernelKind::kSpmm}) {
    PostmortemConfig cfg;
    cfg.mode = ParallelMode::kWindow;
    cfg.kernel = kernel;
    cfg.vector_length = 8;
    cfg.pr.tol = 1e-10;

    cfg.compiled_kernels = false;
    ChecksumSink ref(f.spec.count);
    const RunResult ref_result = run_postmortem_prebuilt(set, ref, cfg);

    cfg.compiled_kernels = true;
    ChecksumSink cmp(f.spec.count);
    const RunResult cmp_result = run_postmortem_prebuilt(set, cmp, cfg);

    EXPECT_EQ(ref.weighted(), cmp.weighted())
        << to_string(kernel);
    EXPECT_EQ(ref.mass(), cmp.mass()) << to_string(kernel);
    EXPECT_EQ(ref_result.iterations_per_window,
              cmp_result.iterations_per_window)
        << to_string(kernel);
  }
}

TEST(CompiledRunner, FlagPreservesResultsInNestedMode) {
  const Fixture f(1706);
  const MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, 2);
  for (const KernelKind kernel : {KernelKind::kSpmv, KernelKind::kSpmm}) {
    PostmortemConfig cfg;
    cfg.mode = ParallelMode::kNested;
    cfg.kernel = kernel;
    cfg.vector_length = 8;
    cfg.pr.tol = 1e-10;

    cfg.compiled_kernels = false;
    ChecksumSink ref(f.spec.count);
    run_postmortem_prebuilt(set, ref, cfg);

    cfg.compiled_kernels = true;
    ChecksumSink cmp(f.spec.count);
    run_postmortem_prebuilt(set, cmp, cfg);

    for (std::size_t w = 0; w < f.spec.count; ++w) {
      EXPECT_NEAR(ref.weighted()[w], cmp.weighted()[w], 1e-7)
          << to_string(kernel) << " window " << w;
      EXPECT_NEAR(ref.mass()[w], cmp.mass()[w], 1e-9)
          << to_string(kernel) << " window " << w;
    }
  }
}

}  // namespace
}  // namespace pmpr
