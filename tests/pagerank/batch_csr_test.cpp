#include "pagerank/batch_csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  explicit Fixture(std::uint64_t seed)
      : events(test::random_events(seed, 60, 4000, 40000)),
        spec(WindowSpec::cover(0, 40000, 9000, 1500)),
        set(MultiWindowSet::build(events, spec, 1)) {}
};

SpmmBatch batch_for(const WindowSpec& spec, std::size_t lanes,
                    std::size_t first, std::size_t stride) {
  SpmmBatch b;
  b.lanes = std::min(lanes, spec.count);
  b.first_window = first;
  b.window_stride = stride;
  return b;
}

TEST(CompileSpmmBatch, StateIdenticalToScatter) {
  const Fixture f(101);
  const auto& part = f.set.part(0);
  const SpmmBatch batch = batch_for(f.spec, 8, 0, 2);

  SpmmWindowState ref;
  compute_spmm_state(part, f.spec, batch, ref);

  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, state, compiled);

  EXPECT_EQ(state.out_degree, ref.out_degree);
  EXPECT_EQ(state.active_mask, ref.active_mask);
  EXPECT_EQ(state.num_active, ref.num_active);
}

TEST(CompileSpmmBatch, EntriesAreDistinctRunsWithNonzeroMasks) {
  const Fixture f(202);
  const auto& part = f.set.part(0);
  const SpmmBatch batch = batch_for(f.spec, 8, 1, 2);

  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, state, compiled);

  ASSERT_EQ(compiled.num_rows(), static_cast<std::size_t>(part.num_local()));
  ASSERT_EQ(compiled.lanes, batch.lanes);
  for (VertexId v = 0; v < part.num_local(); ++v) {
    const auto nbr = compiled.row_nbr(v);
    const auto mask = compiled.row_mask(v);
    ASSERT_EQ(nbr.size(), mask.size());
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      EXPECT_NE(mask[i], 0u) << "v=" << v;
      if (i > 0) {
        EXPECT_LT(nbr[i - 1], nbr[i]) << "v=" << v;  // distinct runs
      }
      // The entry's mask must equal the union of lanes_containing over the
      // run's events in the temporal CSR.
      const auto cols = part.in.row_cols(v);
      const auto times = part.in.row_times(v);
      std::uint64_t expect = 0;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] == nbr[i]) {
          expect |= lanes_containing(f.spec, batch, times[j]);
        }
      }
      EXPECT_EQ(mask[i], expect) << "v=" << v << " u=" << nbr[i];
    }
  }
}

TEST(CompileSpmmBatch, ActiveAndDanglingListsMatchState) {
  const Fixture f(303);
  const auto& part = f.set.part(0);
  const SpmmBatch batch = batch_for(f.spec, 16, 0, 1);

  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, state, compiled);

  std::vector<VertexId> active;
  std::vector<VertexId> dangling_rows;
  std::vector<std::uint64_t> dangling_mask;
  for (VertexId v = 0; v < part.num_local(); ++v) {
    const std::uint64_t m = state.active_mask[v];
    if (m == 0) continue;
    active.push_back(v);
    std::uint64_t d = 0;
    for (std::size_t k = 0; k < batch.lanes; ++k) {
      if ((m >> k & 1) != 0 && state.out_degree[v * batch.lanes + k] == 0) {
        d |= 1ULL << k;
      }
    }
    if (d != 0) {
      dangling_rows.push_back(v);
      dangling_mask.push_back(d);
    }
  }
  EXPECT_EQ(compiled.active_rows, active);
  EXPECT_EQ(compiled.dangling_rows, dangling_rows);
  EXPECT_EQ(compiled.dangling_mask, dangling_mask);
  EXPECT_GT(compiled.memory_bytes(), 0u);
}

TEST(CompileSpmmBatch, ParallelMatchesSequential) {
  const Fixture f(404);
  const auto& part = f.set.part(0);
  const SpmmBatch batch = batch_for(f.spec, 8, 1, 3);

  SpmmWindowState seq_state;
  CompiledBatchCsr seq;
  compile_spmm_batch(part, f.spec, batch, seq_state, seq);

  par::ForOptions opts{par::Partitioner::kSimple, 4, nullptr};
  SpmmWindowState par_state;
  CompiledBatchCsr parl;
  compile_spmm_batch(part, f.spec, batch, par_state, parl, &opts);

  EXPECT_EQ(seq_state.out_degree, par_state.out_degree);
  EXPECT_EQ(seq_state.active_mask, par_state.active_mask);
  EXPECT_EQ(seq_state.num_active, par_state.num_active);
  EXPECT_EQ(seq.row_ptr, parl.row_ptr);
  EXPECT_EQ(seq.nbr, parl.nbr);
  EXPECT_EQ(seq.mask, parl.mask);
  EXPECT_EQ(seq.active_rows, parl.active_rows);
  EXPECT_EQ(seq.dangling_rows, parl.dangling_rows);
  EXPECT_EQ(seq.dangling_mask, parl.dangling_mask);
}

TEST(CompileSpmmBatch, ReusedOutputIsReset) {
  const Fixture f(505);
  const auto& part = f.set.part(0);

  SpmmWindowState state;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch_for(f.spec, 16, 0, 1), state,
                     compiled);

  // Recompile a smaller batch into the same objects; results must match a
  // fresh compile (the runner reuses per-thread state across work items).
  const SpmmBatch small = batch_for(f.spec, 2, 3, 1);
  compile_spmm_batch(part, f.spec, small, state, compiled);
  SpmmWindowState fresh_state;
  CompiledBatchCsr fresh;
  compile_spmm_batch(part, f.spec, small, fresh_state, fresh);
  EXPECT_EQ(compiled.nbr, fresh.nbr);
  EXPECT_EQ(compiled.mask, fresh.mask);
  EXPECT_EQ(compiled.active_rows, fresh.active_rows);
  EXPECT_EQ(compiled.dangling_rows, fresh.dangling_rows);
  EXPECT_EQ(state.out_degree, fresh_state.out_degree);
}

TEST(CompileWindow, StateIdenticalToComputeWindowState) {
  const Fixture f(606);
  const auto& part = f.set.part(0);

  for (std::size_t w = 0; w < f.spec.count; w += 3) {
    WindowState ref;
    compute_window_state(part, f.spec.start(w), f.spec.end(w), ref);

    WindowState state;
    CompiledWindowCsr compiled;
    compile_window(part, f.spec.start(w), f.spec.end(w), state, compiled);

    EXPECT_EQ(state.out_degree, ref.out_degree) << "window " << w;
    EXPECT_EQ(state.active, ref.active) << "window " << w;
    EXPECT_EQ(state.num_active, ref.num_active) << "window " << w;
  }
}

TEST(CompileWindow, NeighborsMatchTimeFilteredScan) {
  const Fixture f(707);
  const auto& part = f.set.part(0);
  const std::size_t w = f.spec.count / 2;

  WindowState state;
  CompiledWindowCsr compiled;
  compile_window(part, f.spec.start(w), f.spec.end(w), state, compiled);

  for (VertexId v = 0; v < part.num_local(); ++v) {
    std::vector<VertexId> expect;
    part.in.for_each_active_neighbor(v, f.spec.start(w), f.spec.end(w),
                                     [&](VertexId u) { expect.push_back(u); });
    const auto nbr = compiled.row_nbr(v);
    ASSERT_EQ(std::vector<VertexId>(nbr.begin(), nbr.end()), expect)
        << "v=" << v;
  }

  std::vector<VertexId> active;
  std::vector<VertexId> dangling;
  for (VertexId v = 0; v < part.num_local(); ++v) {
    if (state.active[v] == 0) continue;
    active.push_back(v);
    if (state.out_degree[v] == 0) dangling.push_back(v);
  }
  EXPECT_EQ(compiled.active_rows, active);
  EXPECT_EQ(compiled.dangling_rows, dangling);
}

TEST(CompileWindow, ParallelMatchesSequential) {
  const Fixture f(808);
  const auto& part = f.set.part(0);
  const std::size_t w = 1;

  WindowState seq_state;
  CompiledWindowCsr seq;
  compile_window(part, f.spec.start(w), f.spec.end(w), seq_state, seq);

  par::ForOptions opts{par::Partitioner::kAuto, 2, nullptr};
  WindowState par_state;
  CompiledWindowCsr parl;
  compile_window(part, f.spec.start(w), f.spec.end(w), par_state, parl,
                 &opts);

  EXPECT_EQ(seq.row_ptr, parl.row_ptr);
  EXPECT_EQ(seq.nbr, parl.nbr);
  EXPECT_EQ(seq.active_rows, parl.active_rows);
  EXPECT_EQ(seq.dangling_rows, parl.dangling_rows);
  EXPECT_EQ(seq_state.out_degree, par_state.out_degree);
}

TEST(CompileWindow, EmptyWindow) {
  const Fixture f(909);
  const auto& part = f.set.part(0);
  WindowState state;
  CompiledWindowCsr compiled;
  // A range before every event: nothing is active, nothing is compiled.
  compile_window(part, -2000, -1000, state, compiled);
  EXPECT_EQ(state.num_active, 0u);
  EXPECT_TRUE(compiled.nbr.empty());
  EXPECT_TRUE(compiled.active_rows.empty());
  EXPECT_TRUE(compiled.dangling_rows.empty());
}

}  // namespace
}  // namespace pmpr
