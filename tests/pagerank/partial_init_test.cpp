#include "pagerank/partial_init.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pagerank/pagerank.hpp"
#include "util/rng.hpp"

namespace pmpr {
namespace {

double sum(const std::vector<double>& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

TEST(PartialInit, IdenticalActiveSetPreservesValues) {
  // V_i == V_{i-1}: shared/|V_i| = 1 and the previous vector sums to 1, so
  // Eq. 4 is the identity.
  const std::vector<double> prev{0.5, 0.3, 0.2};
  const std::vector<std::uint8_t> active{1, 1, 1};
  std::vector<double> out(3);
  partial_init(prev, active, active, 3, out);
  EXPECT_NEAR(out[0], 0.5, 1e-15);
  EXPECT_NEAR(out[1], 0.3, 1e-15);
  EXPECT_NEAR(out[2], 0.2, 1e-15);
}

TEST(PartialInit, OutputIsAlwaysDistribution) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.bounded(50);
    std::vector<std::uint8_t> prev_active(n);
    std::vector<std::uint8_t> cur_active(n);
    std::vector<double> prev(n, 0.0);
    std::size_t prev_count = 0;
    for (std::size_t v = 0; v < n; ++v) {
      prev_active[v] = rng.uniform() < 0.6 ? 1 : 0;
      cur_active[v] = rng.uniform() < 0.6 ? 1 : 0;
      prev_count += prev_active[v];
    }
    // Previous vector: random distribution over prev_active.
    double mass = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (prev_active[v]) {
        prev[v] = rng.uniform() + 0.01;
        mass += prev[v];
      }
    }
    for (auto& p : prev) p /= (mass > 0 ? mass : 1.0);

    std::size_t cur_count = 0;
    for (const auto a : cur_active) cur_count += a;

    std::vector<double> out(n);
    partial_init(prev, prev_active, cur_active, cur_count, out);

    if (cur_count == 0) {
      EXPECT_EQ(sum(out), 0.0);
      continue;
    }
    EXPECT_NEAR(sum(out), 1.0, 1e-12) << "trial " << trial;
    for (std::size_t v = 0; v < n; ++v) {
      if (cur_active[v] == 0) {
        ASSERT_EQ(out[v], 0.0);
      } else {
        ASSERT_GE(out[v], 0.0);
      }
    }
  }
}

TEST(PartialInit, NewVerticesGetUniformShare) {
  // prev active {0,1}, cur active {0,1,2,3}. New vertices 2,3 get 1/4.
  const std::vector<double> prev{0.6, 0.4, 0.0, 0.0};
  const std::vector<std::uint8_t> prev_active{1, 1, 0, 0};
  const std::vector<std::uint8_t> cur_active{1, 1, 1, 1};
  std::vector<double> out(4);
  partial_init(prev, prev_active, cur_active, 4, out);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
  EXPECT_DOUBLE_EQ(out[3], 0.25);
  // Shared vertices keep their ratio and carry |shared|/|V_i| = 1/2 mass.
  EXPECT_NEAR(out[0] + out[1], 0.5, 1e-12);
  EXPECT_NEAR(out[0] / out[1], 0.6 / 0.4, 1e-12);
}

TEST(PartialInit, DisjointActiveSetsFallBackToFullInit) {
  const std::vector<double> prev{1.0, 0.0, 0.0, 0.0};
  const std::vector<std::uint8_t> prev_active{1, 0, 0, 0};
  const std::vector<std::uint8_t> cur_active{0, 1, 1, 0};
  std::vector<double> out(4);
  partial_init(prev, prev_active, cur_active, 2, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(PartialInit, ZeroSharedMassFallsBackToFullInit) {
  // Vertices overlap but the previous vector carries no mass there.
  const std::vector<double> prev{0.0, 1.0};
  const std::vector<std::uint8_t> prev_active{1, 1};
  const std::vector<std::uint8_t> cur_active{1, 0};
  std::vector<double> out(2);
  partial_init(prev, prev_active, cur_active, 1, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(PartialInit, EmptyCurrentWindowAllZero) {
  const std::vector<double> prev{0.5, 0.5};
  const std::vector<std::uint8_t> prev_active{1, 1};
  const std::vector<std::uint8_t> cur_active{0, 0};
  std::vector<double> out(2, 9.0);
  partial_init(prev, prev_active, cur_active, 0, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(PartialInit, AliasingPrevAndOutIsSafe) {
  std::vector<double> x{0.6, 0.4, 0.0};
  const std::vector<std::uint8_t> prev_active{1, 1, 0};
  const std::vector<std::uint8_t> cur_active{1, 1, 1};
  partial_init(x, prev_active, cur_active, 3, x);
  EXPECT_NEAR(sum(x), 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0 / 3, 1e-12);
}

TEST(PartialInit, Eq4ScaleFactorExact) {
  // 4 current-active vertices, 2 shared with prev. Shared mass in prev =
  // 0.8. Scale = (2/4)/0.8 = 0.625.
  const std::vector<double> prev{0.5, 0.3, 0.2, 0.0};
  const std::vector<std::uint8_t> prev_active{1, 1, 1, 0};
  const std::vector<std::uint8_t> cur_active{1, 1, 0, 1};
  std::vector<double> out(4);
  partial_init(prev, prev_active, cur_active, 3, out);
  const double scale = (2.0 / 3.0) / 0.8;
  EXPECT_NEAR(out[0], 0.5 * scale, 1e-12);
  EXPECT_NEAR(out[1], 0.3 * scale, 1e-12);
  EXPECT_EQ(out[2], 0.0);
  EXPECT_NEAR(out[3], 1.0 / 3, 1e-12);
  EXPECT_NEAR(sum(out), 1.0, 1e-12);
}

}  // namespace
}  // namespace pmpr
