// Parallel-compile race coverage for the two-pass count/prefix/fill build
// in batch_csr.cpp (and the scatter in window_state.cpp). These tests
// exist primarily to run under ThreadSanitizer — they are registered as
// their own ctest binary so ci/sanitize.sh's TSan pass picks them up by
// label. The atomicity contract they exercise is documented at the top of
// count_and_scatter_rows: row_ptr[v+1] is row-owned (plain stores in both
// paths); out_degree and active_mask are cross-row scatters and use
// std::atomic_ref in the parallel path only.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pagerank/batch_csr.hpp"
#include "pagerank/window_state.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Built {
  SpmmWindowState state;
  CompiledBatchCsr compiled;
};

Built build(const MultiWindowGraph& part, const WindowSpec& spec,
            const SpmmBatch& batch, const par::ForOptions* parallel) {
  Built b;
  compile_spmm_batch(part, spec, batch, b.state, b.compiled, parallel);
  return b;
}

void expect_equal(const Built& ref, const Built& par) {
  EXPECT_EQ(ref.state.lanes, par.state.lanes);
  EXPECT_EQ(ref.state.mask_words, par.state.mask_words);
  EXPECT_EQ(ref.state.out_degree, par.state.out_degree);
  EXPECT_EQ(ref.state.active_mask, par.state.active_mask);
  EXPECT_EQ(ref.state.num_active, par.state.num_active);
  EXPECT_EQ(ref.compiled.mask_words, par.compiled.mask_words);
  EXPECT_EQ(ref.compiled.row_ptr, par.compiled.row_ptr);
  EXPECT_EQ(ref.compiled.nbr, par.compiled.nbr);
  EXPECT_EQ(ref.compiled.mask, par.compiled.mask);
  EXPECT_EQ(ref.compiled.active_rows, par.compiled.active_rows);
  EXPECT_EQ(ref.compiled.dangling_rows, par.compiled.dangling_rows);
  EXPECT_EQ(ref.compiled.dangling_mask, par.compiled.dangling_mask);
}

TEST(BatchCsrParallel, CompileMatchesSerialAcrossWordCounts) {
  const TemporalEdgeList events = test::random_events(7001, 60, 4000, 50000);
  const WindowSpec spec{.t0 = 0, .delta = 6000, .sw = 45, .count = 1100};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  // Fine grain to force many chunks (and thus real concurrency under
  // TSan) even on small row counts.
  par::ForOptions opts{par::Partitioner::kSimple, 1, nullptr};
  for (const std::size_t lanes : {std::size_t{16}, std::size_t{64},
                                  std::size_t{65}, std::size_t{192},
                                  std::size_t{512}}) {
    SpmmBatch batch;
    batch.lanes = lanes;
    batch.first_window = 0;
    batch.window_stride = 1;
    const Built ref = build(part, spec, batch, nullptr);
    const Built par = build(part, spec, batch, &opts);
    expect_equal(ref, par);
  }
}

TEST(BatchCsrParallel, ComputeSpmmStateMatchesSerial) {
  const TemporalEdgeList events = test::random_events(7102, 40, 3000, 20000);
  const WindowSpec spec{.t0 = 0, .delta = 2500, .sw = 60, .count = 300};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  par::ForOptions opts{par::Partitioner::kSimple, 1, nullptr};
  SpmmBatch batch;
  batch.lanes = 300;
  batch.first_window = 0;
  batch.window_stride = 1;
  SpmmWindowState ref;
  compute_spmm_state(part, spec, batch, ref);
  SpmmWindowState par;
  compute_spmm_state(part, spec, batch, par, &opts);
  EXPECT_EQ(ref.out_degree, par.out_degree);
  EXPECT_EQ(ref.active_mask, par.active_mask);
  EXPECT_EQ(ref.num_active, par.num_active);
}

TEST(BatchCsrParallel, RepeatedParallelCompilesAreDeterministic) {
  const TemporalEdgeList events = test::random_events(7203, 50, 3500, 30000);
  const WindowSpec spec{.t0 = 0, .delta = 4000, .sw = 220, .count = 120};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  par::ForOptions opts{par::Partitioner::kAuto, 2, nullptr};
  SpmmBatch batch;
  batch.lanes = 120;
  batch.first_window = 0;
  batch.window_stride = 1;
  const Built first = build(part, spec, batch, &opts);
  for (int round = 0; round < 3; ++round) {
    const Built again = build(part, spec, batch, &opts);
    expect_equal(first, again);
  }
}

}  // namespace
}  // namespace pmpr
