// Runtime ISA dispatch: parsing, capability probing, and the
// forced-mode-must-fail-fast contract of resolve_simd.
#include "pagerank/simd_dispatch.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pmpr {
namespace {

TEST(SimdDispatch, ToStringNames) {
  EXPECT_EQ(to_string(SimdIsa::kScalar), "scalar");
  EXPECT_EQ(to_string(SimdIsa::kAvx2), "avx2");
  EXPECT_EQ(to_string(SimdIsa::kAvx512), "avx512");
  EXPECT_EQ(to_string(SimdMode::kAuto), "auto");
  EXPECT_EQ(to_string(SimdMode::kScalar), "scalar");
  EXPECT_EQ(to_string(SimdMode::kAvx2), "avx2");
  EXPECT_EQ(to_string(SimdMode::kAvx512), "avx512");
}

TEST(SimdDispatch, ParseRoundTripsAndRejectsUnknown) {
  for (const SimdMode mode : {SimdMode::kAuto, SimdMode::kScalar,
                              SimdMode::kAvx2, SimdMode::kAvx512}) {
    EXPECT_EQ(parse_simd_mode(to_string(mode)), mode);
  }
  EXPECT_THROW((void)parse_simd_mode("sse42"), InvariantError);
  EXPECT_THROW((void)parse_simd_mode(""), InvariantError);
  EXPECT_THROW((void)parse_simd_mode("AVX2"), InvariantError);
}

TEST(SimdDispatch, ScalarAlwaysBuiltAndSupported) {
  EXPECT_TRUE(simd_isa_built(SimdIsa::kScalar));
  EXPECT_TRUE(simd_isa_supported(SimdIsa::kScalar));
}

TEST(SimdDispatch, SupportedImpliesBuilt) {
  for (const SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    if (simd_isa_supported(isa)) {
      EXPECT_TRUE(simd_isa_built(isa)) << to_string(isa);
    }
  }
}

TEST(SimdDispatch, DetectReturnsASupportedIsa) {
  const SimdIsa isa = detect_simd_isa();
  EXPECT_TRUE(simd_isa_supported(isa));
  // Detection picks the best ISA: anything wider than the detected one
  // must be unsupported.
  if (isa != SimdIsa::kAvx512) {
    EXPECT_FALSE(simd_isa_supported(SimdIsa::kAvx512));
  }
  if (isa == SimdIsa::kScalar) {
    EXPECT_FALSE(simd_isa_supported(SimdIsa::kAvx2));
  }
}

TEST(SimdDispatch, ResolveAutoMatchesDetect) {
  EXPECT_EQ(resolve_simd(SimdMode::kAuto), detect_simd_isa());
}

TEST(SimdDispatch, ResolveForcedScalarAlwaysWorks) {
  EXPECT_EQ(resolve_simd(SimdMode::kScalar), SimdIsa::kScalar);
}

TEST(SimdDispatch, ResolveForcedUnsupportedThrows) {
  // On hosts (or builds) lacking an ISA, forcing it must fail fast instead
  // of silently falling back — the forced modes exist for differential
  // testing, where a silent fallback would test the wrong kernel.
  for (const SimdIsa isa : {SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    const SimdMode mode =
        isa == SimdIsa::kAvx2 ? SimdMode::kAvx2 : SimdMode::kAvx512;
    if (simd_isa_supported(isa)) {
      EXPECT_EQ(resolve_simd(mode), isa);
    } else {
      EXPECT_THROW((void)resolve_simd(mode), InvariantError);
    }
  }
}

}  // namespace
}  // namespace pmpr
