#include "pagerank/spmm_temporal.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "pagerank/spmv_temporal.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  explicit Fixture(std::uint64_t seed)
      : events(test::random_events(seed, 60, 4000, 40000)),
        spec(WindowSpec::cover(0, 40000, 9000, 1500)),
        set(MultiWindowSet::build(events, spec, 1)) {}
};

PagerankParams tight_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

/// Runs one SpMM batch with full per-lane initialization and returns the
/// per-lane dense global vectors.
std::vector<std::vector<double>> run_batch(
    const Fixture& f, const SpmmBatch& batch,
    const par::ForOptions* parallel = nullptr) {
  const auto& part = f.set.part(0);
  const std::size_t n = part.num_local();
  SpmmWindowState state;
  compute_spmm_state(part, f.spec, batch, state, parallel);

  std::vector<double> x(n * batch.lanes);
  std::vector<double> scratch(n * batch.lanes);
  for (std::size_t k = 0; k < batch.lanes; ++k) {
    const double uniform =
        state.num_active[k] > 0
            ? 1.0 / static_cast<double>(state.num_active[k])
            : 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      x[v * batch.lanes + k] =
          (state.active_mask[v] >> k & 1) != 0 ? uniform : 0.0;
    }
  }
  pagerank_spmm(part, f.spec, batch, state, x, scratch, tight_params(),
                parallel);

  std::vector<std::vector<double>> out(
      batch.lanes, std::vector<double>(f.events.num_vertices(), 0.0));
  for (std::size_t k = 0; k < batch.lanes; ++k) {
    for (VertexId v = 0; v < n; ++v) {
      out[k][part.global_of(v)] = x[v * batch.lanes + k];
    }
  }
  return out;
}

class SpmmLanes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpmmLanes, EveryLaneMatchesBruteForce) {
  const Fixture f(606);
  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(GetParam(), f.spec.count);
  batch.first_window = 0;
  batch.window_stride = std::max<std::size_t>(1, f.spec.count / batch.lanes);
  const auto lanes = run_batch(f, batch);
  for (std::size_t k = 0; k < batch.lanes; ++k) {
    const std::size_t w = batch.window_of_lane(k);
    if (w >= f.spec.count) continue;
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(f.events, f.spec.start(w), f.spec.end(w)),
        f.events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(lanes[k], ref), 1e-9)
        << "lane " << k << " window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, SpmmLanes,
                         ::testing::Values(1, 2, 4, 8, 16, 64),
                         [](const auto& pinfo) {
                           // += instead of operator+ dodges a GCC 12
                           // -Wrestrict false positive (PR105651).
                           std::string name = "L";
                           name += std::to_string(pinfo.param);
                           return name;
                         });

TEST(SpmmTemporal, MatchesSpmvPerWindow) {
  const Fixture f(707);
  const auto& part = f.set.part(0);
  SpmmBatch batch{.lanes = std::min<std::size_t>(8, f.spec.count),
                  .first_window = 0,
                  .window_stride = 2};
  const auto lanes = run_batch(f, batch);

  for (std::size_t k = 0; k < batch.lanes; ++k) {
    const std::size_t w = batch.window_of_lane(k);
    if (w >= f.spec.count) continue;
    WindowState state;
    compute_window_state(part, f.spec.start(w), f.spec.end(w), state);
    std::vector<double> x(part.num_local());
    std::vector<double> scratch(part.num_local());
    full_init(state.active, state.num_active, x);
    pagerank_window_spmv(part, f.spec.start(w), f.spec.end(w), state, x,
                         scratch, tight_params());
    std::vector<double> dense(f.events.num_vertices(), 0.0);
    for (VertexId v = 0; v < part.num_local(); ++v) {
      dense[part.global_of(v)] = x[v];
    }
    ASSERT_LT(test::linf_diff(lanes[k], dense), 1e-10) << "lane " << k;
  }
}

TEST(SpmmTemporal, ParallelMatchesSequential) {
  const Fixture f(808);
  SpmmBatch batch{.lanes = 4, .first_window = 0, .window_stride = 3};
  const auto seq = run_batch(f, batch);
  par::ForOptions opts{par::Partitioner::kAuto, 4, nullptr};
  const auto parl = run_batch(f, batch, &opts);
  for (std::size_t k = 0; k < batch.lanes; ++k) {
    ASSERT_LT(test::linf_diff(seq[k], parl[k]), 1e-12) << "lane " << k;
  }
}

TEST(SpmmTemporal, EachLaneIsDistribution) {
  const Fixture f(909);
  SpmmBatch batch{.lanes = std::min<std::size_t>(8, f.spec.count),
                  .first_window = 1,
                  .window_stride = 2};
  const auto lanes = run_batch(f, batch);
  for (std::size_t k = 0; k < batch.lanes; ++k) {
    const std::size_t w = batch.window_of_lane(k);
    if (w >= f.spec.count) continue;
    const double total =
        std::accumulate(lanes[k].begin(), lanes[k].end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "lane " << k;
  }
}

TEST(SpmmTemporal, EmptyLaneStaysZero) {
  // Construct events only in early windows; a lane pointing at a late,
  // empty window must come back all-zero while other lanes converge.
  TemporalEdgeList events;
  for (int i = 0; i < 50; ++i) {
    events.add(static_cast<VertexId>(i % 5),
               static_cast<VertexId>((i + 1) % 5), i);
  }
  events.ensure_vertices(5);
  const WindowSpec spec{.t0 = 0, .delta = 49, .sw = 1000, .count = 2};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  SpmmBatch batch{.lanes = 2, .first_window = 0, .window_stride = 1};
  SpmmWindowState state;
  compute_spmm_state(part, spec, batch, state);
  EXPECT_GT(state.num_active[0], 0u);
  EXPECT_EQ(state.num_active[1], 0u);

  const std::size_t n = part.num_local();
  std::vector<double> x(n * 2, 0.5);
  std::vector<double> scratch(n * 2);
  pagerank_spmm(part, spec, batch, state, x, scratch, tight_params());
  double lane0 = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(x[v * 2 + 1], 0.0);
    lane0 += x[v * 2 + 0];
  }
  EXPECT_NEAR(lane0, 1.0, 1e-9);
}

TEST(SpmmTemporal, LaneIterationsReported) {
  const Fixture f(111);
  SpmmBatch batch{.lanes = 4, .first_window = 0, .window_stride = 2};
  const auto& part = f.set.part(0);
  SpmmWindowState state;
  compute_spmm_state(part, f.spec, batch, state);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * 4);
  std::vector<double> scratch(n * 4);
  for (std::size_t k = 0; k < 4; ++k) {
    const double u = state.num_active[k] > 0
                         ? 1.0 / static_cast<double>(state.num_active[k])
                         : 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      x[v * 4 + k] = (state.active_mask[v] >> k & 1) != 0 ? u : 0.0;
    }
  }
  PagerankParams p;
  p.tol = 1e-9;
  const SpmmStats stats =
      pagerank_spmm(part, f.spec, batch, state, x, scratch, p);
  EXPECT_EQ(stats.lane_stats.size(), 4u);
  int max_lane_iters = 0;
  for (const auto& ls : stats.lane_stats) {
    EXPECT_GT(ls.iterations, 0);
    max_lane_iters = std::max(max_lane_iters, ls.iterations);
  }
  EXPECT_EQ(stats.iterations, max_lane_iters);
}

}  // namespace
}  // namespace pmpr
