// Fixture: header with no #pragma once — double inclusion redefines Naked.

namespace fx {
struct Naked {
  int value = 0;
};
}  // namespace fx
