// Fixture: classic AB/BA lock inversion. first() establishes the order
// mu_a -> mu_b; second() acquires them the other way round. The lock pass
// must report a lock-order-cycle with both witnesses.

namespace fx {

Mutex mu_a;
Mutex mu_b;
int shared_a = 0;
int shared_b = 0;

void first() {
  LockGuard hold_a(mu_a);
  LockGuard hold_b(mu_b);
  shared_a += shared_b;
}

void second() {
  LockGuard hold_b(mu_b);
  LockGuard hold_a(mu_a);
  shared_b += shared_a;
}

}  // namespace fx
