// Fixture: lock usage the analyzer must accept — a consistent mu_a -> mu_b
// order in every function, a condvar wait (which releases the lock, so it
// is not "held across a wait"), and a guard that ends before the submit.

#include "core/thing.hpp"

namespace fx {

Mutex mu_a;
Mutex mu_b;
CondVar cv_ready;
int shared_ = 0;

void forward_order() {
  LockGuard hold_a(mu_a);
  LockGuard hold_b(mu_b);
  shared_ += 1;
}

void same_order_again() {
  LockGuard hold_a(mu_a);
  LockGuard hold_b(mu_b);
  shared_ += 2;
}

void wait_for_ready() {
  LockGuard hold(mu_a);
  cv_ready.wait(hold);
}

void submit_outside_lock(ThreadPool& pool) {
  {
    LockGuard hold(mu_a);
    shared_ = 0;
  }
  pool.submit([] { return 1; });
}

}  // namespace fx
