// Fixture: legal downward include plus a macro use backed by a direct
// include of its definer.
#pragma once

#include "util/base.hpp"

namespace fx {
inline int bumped(const Base& b) { return PMPR_FIXTURE_PLUS_ONE(b.value); }
}  // namespace fx
