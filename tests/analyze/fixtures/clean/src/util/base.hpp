// Fixture: clean bottom-layer header with a macro definition.
#pragma once

#define PMPR_FIXTURE_PLUS_ONE(x) ((x) + 1)

namespace fx {
struct Base {
  int value = 0;
};
}  // namespace fx
