// Fixture: module-internal implementation header.
#pragma once

namespace fx {
struct WsImpl {
  int slots = 0;
};
}  // namespace fx
