// Fixture: the layer edge graph -> par is legal, but this include drags an
// [internal] header across the module boundary — hygiene must reject it.
#pragma once

#include "par/ws_impl.hpp"

namespace fx {
inline int impl_slots(const WsImpl& w) { return w.slots; }
}  // namespace fx
