// Fixture: uses PMPR_FIXTURE_TWICE without including its definer directly
// — works only because wrap.hpp happens to pull defs.hpp in. Hygiene must
// demand the direct include.

#include "core/wrap.hpp"

namespace fx {
int doubled() { return PMPR_FIXTURE_TWICE(21); }
}  // namespace fx
