// Fixture: the unique definer of PMPR_FIXTURE_TWICE.
#pragma once

#define PMPR_FIXTURE_TWICE(x) ((x) * 2)
