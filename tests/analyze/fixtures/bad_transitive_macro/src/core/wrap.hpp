// Fixture: re-exports defs.hpp; including this makes the macro visible
// only transitively.
#pragma once

#include "core/defs.hpp"

namespace fx {
struct Wrap {
  int value = 0;
};
}  // namespace fx
