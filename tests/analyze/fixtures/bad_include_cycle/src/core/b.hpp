// Fixture: the other half of the cycle.
#pragma once

#include "core/a.hpp"

namespace fx {
struct B {
  int value = 1;
};
}  // namespace fx
