// Fixture: half of a two-header include cycle. Same module, so the layer
// DAG has nothing to say — only SCC detection catches it.
#pragma once

#include "core/b.hpp"

namespace fx {
struct A {
  int value = 0;
};
}  // namespace fx
