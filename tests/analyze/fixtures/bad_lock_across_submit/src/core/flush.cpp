// Fixture: a lock held across a scheduler boundary. If the submitted task
// (or a helping thread) ever needs state_mutex_, the pool deadlocks; the
// lock pass must flag the submit while the guard is live.

namespace fx {

Mutex state_mutex_;
int pending_ = 0;

void flush(ThreadPool& pool) {
  LockGuard hold(state_mutex_);
  pending_ = 0;
  pool.submit([] { return 1; });
}

}  // namespace fx
