// Fixture: util reaching UP into graph — the back-edge the layers pass
// must reject (util declares no dependencies in layers.toml).
#pragma once

#include "graph/types.hpp"

namespace fx {
inline int edge_sum(const Edge& e) { return e.src + e.dst; }
}  // namespace fx
