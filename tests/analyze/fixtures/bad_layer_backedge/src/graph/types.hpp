// Fixture: legitimate upper-layer header.
#pragma once

namespace fx {
struct Edge {
  int src = 0;
  int dst = 0;
};
}  // namespace fx
