#!/usr/bin/env python3
"""Self-test for ci/pmpr_analyze.py.

Each fixture under tests/analyze/fixtures/ is a miniature repo: its own
layers.toml at the fixture root plus a src/ tree. The analyzer runs with
--root <fixture> --pass all, and the test asserts:

  * every bad_* fixture exits non-zero and reports exactly its expected
    rule id (and no other rule),
  * the clean fixture — which exercises legal includes, a macro with a
    direct include, consistent lock order, a condvar wait, and a
    submit-after-unlock — exits zero with no findings.

Registered as the ctest target `analyze.fixtures`.
"""

import argparse
import pathlib
import re
import subprocess
import sys

# fixture directory -> rule id it must (exclusively) trip.
EXPECTED = {
    "bad_layer_backedge": "layer-violation",
    "bad_include_cycle": "include-cycle",
    "bad_lock_inversion": "lock-order-cycle",
    "bad_lock_across_submit": "lock-across-wait",
    "bad_missing_pragma_once": "missing-pragma-once",
    "bad_internal_leak": "internal-header-leak",
    "bad_transitive_macro": "transitive-macro-include",
    "clean": None,
}

# Only finding lines (`rel:line: [rule] msg`), not the `pmpr-analyze[all]:`
# summary line.
RULE_RE = re.compile(r"^\S+:\d+: \[([a-z-]+)\]", re.MULTILINE)


def run_analyze(root, fixture):
    return subprocess.run(
        [
            sys.executable,
            str(root / "ci" / "pmpr_analyze.py"),
            "--root",
            str(fixture),
            "--pass",
            "all",
        ],
        capture_output=True,
        text=True,
        check=False,
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".", help="repo root")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    fixture_dir = root / "tests" / "analyze" / "fixtures"

    failures = []
    on_disk = {p.name for p in fixture_dir.iterdir() if p.is_dir()}
    missing = set(EXPECTED) - on_disk
    stray = on_disk - set(EXPECTED)
    if missing:
        failures.append(f"missing fixtures: {sorted(missing)}")
    if stray:
        failures.append(f"fixtures without an expectation: {sorted(stray)}")

    for name, want_rule in sorted(EXPECTED.items()):
        fixture = fixture_dir / name
        if not fixture.exists():
            continue
        proc = run_analyze(root, fixture)
        got_rules = set(RULE_RE.findall(proc.stdout))
        if want_rule is None:
            if proc.returncode != 0 or got_rules:
                failures.append(
                    f"{name}: expected clean, got exit={proc.returncode} "
                    f"rules={sorted(got_rules)}\n{proc.stdout}{proc.stderr}"
                )
            else:
                print(f"ok   {name}: clean as expected")
        else:
            if proc.returncode == 0:
                failures.append(f"{name}: expected a violation, got none")
            elif got_rules != {want_rule}:
                failures.append(
                    f"{name}: expected exactly [{want_rule}], got "
                    f"{sorted(got_rules)}\n{proc.stdout}{proc.stderr}"
                )
            else:
                print(f"ok   {name}: tripped [{want_rule}] only")

    if failures:
        print("\n".join(f"FAIL {f}" for f in failures))
        return 1
    print(f"pmpr-analyze fixtures: all {len(EXPECTED)} behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
