#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace pmpr {
namespace {

/// Restores the tracing gate and empties the span buffers around each test
/// (the registry is process-global and shared with sibling tests).
struct TraceGuard {
  const bool was_enabled = obs::set_tracing_enabled(false);
  TraceGuard() { obs::clear_trace(); }
  ~TraceGuard() {
    obs::set_tracing_enabled(was_enabled);
    obs::clear_trace();
  }
};

TEST(Trace, DisabledSpanRecordsNothing) {
  TraceGuard guard;
  ASSERT_FALSE(obs::tracing_enabled());
  {
    PMPR_TRACE_SPAN("should.not.appear");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, SetEnabledReturnsPrevious) {
  TraceGuard guard;
  EXPECT_FALSE(obs::set_tracing_enabled(true));
  EXPECT_TRUE(obs::set_tracing_enabled(false));
}

TEST(Trace, NestedSpansAreContained) {
  TraceGuard guard;
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("outer");
    {
      PMPR_TRACE_SPAN("inner");
    }
  }
  obs::set_tracing_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: the outer span opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Containment is what lets the Perfetto viewer re-nest "X" events.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].end_ns, events[1].end_ns);
  EXPECT_LE(events[1].start_ns, events[1].end_ns);
}

TEST(Trace, SequentialSpansSortByStartTime) {
  TraceGuard guard;
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("first");
  }
  {
    PMPR_TRACE_SPAN("second");
  }
  {
    PMPR_TRACE_SPAN("third");
  }
  obs::set_tracing_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_EQ(events[2].name, "third");
  EXPECT_LE(events[0].end_ns, events[1].start_ns);
  EXPECT_LE(events[1].end_ns, events[2].start_ns);
}

TEST(Trace, ClearTraceDropsBufferedSpans) {
  TraceGuard guard;
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("doomed");
  }
  obs::set_tracing_enabled(false);
  ASSERT_EQ(obs::trace_event_count(), 1u);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, ChromeJsonShape) {
  TraceGuard guard;
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("phase.a");
    {
      PMPR_TRACE_SPAN("phase.b");
    }
  }
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"pmpr\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // Braces/brackets must balance — the file has to load in Perfetto.
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, EmptyTraceStillValidJson) {
  TraceGuard guard;
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"name\""), std::string::npos);
}

TEST(Trace, NowIsMonotonic) {
  const std::int64_t a = obs::trace_now_ns();
  const std::int64_t b = obs::trace_now_ns();
  EXPECT_LE(a, b);
}

TEST(Trace, CounterSamplesAreGatedAndSorted) {
  TraceGuard guard;
  // Disabled: samples are dropped.
  obs::record_counter_sample("gauge.x", 10, 1.0);
  EXPECT_TRUE(obs::collect_counter_samples().empty());
  obs::set_tracing_enabled(true);
  obs::record_counter_sample("gauge.x", 30, 3.0);
  obs::record_counter_sample("gauge.y", 20, 2.0);
  obs::record_counter_sample("gauge.x", 20, 1.5);
  obs::set_tracing_enabled(false);
  const std::vector<obs::CounterSample> samples =
      obs::collect_counter_samples();
  ASSERT_EQ(samples.size(), 3u);
  // Sorted by (t, name).
  EXPECT_EQ(samples[0].name, "gauge.x");
  EXPECT_EQ(samples[0].t_ns, 20);
  EXPECT_EQ(samples[1].name, "gauge.y");
  EXPECT_EQ(samples[2].name, "gauge.x");
  EXPECT_EQ(samples[2].t_ns, 30);
  EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
  obs::clear_trace();
  EXPECT_TRUE(obs::collect_counter_samples().empty());
}

TEST(Trace, ChromeJsonEmitsCounterEvents) {
  TraceGuard guard;
  obs::set_tracing_enabled(true);
  obs::record_counter_sample("sched.total_queued", 1000, 5.0);
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sched.total_queued\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 5.000}"), std::string::npos);
}

TEST(Trace, ChromeJsonEmitsMetadataWithEvents) {
  TraceGuard guard;
  obs::set_thread_name("test.main");
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("phase.meta");
  }
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"pmpr\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"test.main\"}"),
            std::string::npos);
  // Metadata events must precede the span payload so Perfetto labels
  // tracks before populating them.
  EXPECT_LT(json.find("\"process_name\""), json.find("\"phase.meta\""));
  // Still balanced JSON.
  int braces = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    ASSERT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
}

TEST(Trace, SetThreadNameLastCallWins) {
  TraceGuard guard;
  obs::set_thread_name("first.name");
  obs::set_thread_name("second.name");
  obs::set_tracing_enabled(true);
  {
    PMPR_TRACE_SPAN("named.span");
  }
  obs::set_tracing_enabled(false);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"first.name\""), std::string::npos);
  EXPECT_NE(json.find("\"second.name\""), std::string::npos);
}

}  // namespace
}  // namespace pmpr
