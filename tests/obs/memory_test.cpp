#include "obs/memory.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pmpr {
namespace {

/// Restores the accounting gate on scope exit so one test cannot leak
/// telemetry state into its siblings (the binary shares the registry), and
/// zeroes the tallies/watermarks so live/peak assertions see only this
/// test's charges. Reset is safe here: no sibling test holds a MemCharge
/// across test boundaries.
struct MemoryGuard {
  const bool prev = obs::set_memory_accounting_enabled(false);
  MemoryGuard() { obs::reset_memory_accounting(); }
  ~MemoryGuard() {
    obs::reset_memory_accounting();
    obs::set_memory_accounting_enabled(prev);
  }
};

TEST(Memory, DisabledRecordIsNoOp) {
  MemoryGuard guard;
  ASSERT_FALSE(obs::memory_accounting_enabled());
  obs::record_alloc(obs::MemTag::kGraph, 1000);
  obs::record_free(obs::MemTag::kGraph, 400);
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  EXPECT_EQ(snap[obs::MemTag::kGraph].alloc_bytes, 0u);
  EXPECT_EQ(snap[obs::MemTag::kGraph].free_bytes, 0u);
  EXPECT_EQ(snap.total_live_bytes, 0);
  EXPECT_EQ(snap.total_peak_bytes, 0u);
}

TEST(Memory, SetEnabledReturnsPrevious) {
  MemoryGuard guard;
  EXPECT_FALSE(obs::set_memory_accounting_enabled(true));
  EXPECT_TRUE(obs::set_memory_accounting_enabled(false));
}

TEST(Memory, AccumulatesAndTracksLivePeak) {
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  obs::record_alloc(obs::MemTag::kGraph, 100);
  obs::record_alloc(obs::MemTag::kGraph, 50);
  obs::record_free(obs::MemTag::kGraph, 30);
  obs::record_alloc(obs::MemTag::kDecodeScratch, 7);
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  EXPECT_EQ(snap[obs::MemTag::kGraph].alloc_bytes, 150u);
  EXPECT_EQ(snap[obs::MemTag::kGraph].free_bytes, 30u);
  EXPECT_EQ(snap[obs::MemTag::kGraph].live_bytes, 120);
  EXPECT_EQ(snap[obs::MemTag::kGraph].peak_bytes, 150u);
  EXPECT_EQ(snap[obs::MemTag::kDecodeScratch].live_bytes, 7);
  // The total watermark tracks the summed live bytes, which peaked at
  // 150 + 7 = 157 only if the scratch alloc preceded the free — here it
  // did not, so the peak is the graph's own 150 (the total dipped first).
  EXPECT_EQ(snap.total_live_bytes, 127);
  EXPECT_EQ(snap.total_peak_bytes, 150u);
}

TEST(Memory, MemChargeReleasesOnDestruction) {
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  {
    obs::MemCharge charge(obs::MemTag::kOocorePayload, 64);
    EXPECT_EQ(charge.bytes(), 64u);
    EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 64);
  }
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  EXPECT_EQ(snap.total_live_bytes, 0);
  EXPECT_EQ(snap[obs::MemTag::kOocorePayload].alloc_bytes, 64u);
  EXPECT_EQ(snap[obs::MemTag::kOocorePayload].free_bytes, 64u);
  EXPECT_EQ(snap[obs::MemTag::kOocorePayload].peak_bytes, 64u);
}

TEST(Memory, MemChargeCopyMoveResetSemantics) {
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  obs::MemCharge a(obs::MemTag::kCompiledKernel, 100);
  {
    // Copy re-charges: both owners release independently.
    obs::MemCharge b(a);  // NOLINT(performance-unnecessary-copy-initialization)
    EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 200);
    // Move transfers: no double charge, no double release.
    obs::MemCharge c(std::move(b));
    EXPECT_EQ(c.bytes(), 100u);
    EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 200);
  }
  EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 100);
  // reset releases the old charge before taking the new one.
  a.reset(obs::MemTag::kCompiledKernel, 40);
  EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 40);
  // release is idempotent.
  a.release();
  a.release();
  EXPECT_EQ(obs::memory_snapshot().total_live_bytes, 0);
}

TEST(Memory, MemChargeSymmetricAcrossGateFlips) {
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  obs::MemCharge charged(obs::MemTag::kOther, 100);
  // Gate off mid-lifetime: the charge was real, so its release must land
  // even though the gate is off (MemCharge bypasses the gate on release).
  obs::set_memory_accounting_enabled(false);
  obs::MemCharge uncharged(obs::MemTag::kOther, 999);
  EXPECT_EQ(uncharged.bytes(), 0u);  // gate off at reset: nothing charged
  charged.release();
  uncharged.release();
  obs::set_memory_accounting_enabled(true);
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  EXPECT_EQ(snap.total_live_bytes, 0);
  EXPECT_EQ(snap[obs::MemTag::kOther].alloc_bytes,
            snap[obs::MemTag::kOther].free_bytes);
}

TEST(Memory, TaggedAllocChargesContainer) {
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  {
    std::vector<std::uint64_t,
                obs::TaggedAlloc<std::uint64_t, obs::MemTag::kObs>>
        v;
    v.resize(1000);
    const obs::MemorySnapshot snap = obs::memory_snapshot();
    EXPECT_GE(snap[obs::MemTag::kObs].live_bytes,
              static_cast<std::int64_t>(1000 * sizeof(std::uint64_t)));
  }
  EXPECT_EQ(obs::memory_snapshot()[obs::MemTag::kObs].live_bytes, 0);
}

TEST(Memory, OverflowBlockLosesNoBytes) {
  // Same slot discipline as counters: threads beyond the 256 owned blocks
  // share one overflow block; adds there are contended, never dropped.
  MemoryGuard guard;
  obs::set_memory_accounting_enabled(true);
  constexpr std::size_t kThreads = 300;  // > 256 owned slots
  constexpr std::uint64_t kPerThread = 50;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          obs::record_alloc(obs::MemTag::kOther, 2);
          obs::record_free(obs::MemTag::kOther, 2);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  EXPECT_EQ(snap[obs::MemTag::kOther].alloc_bytes,
            2u * kPerThread * kThreads);
  EXPECT_EQ(snap[obs::MemTag::kOther].free_bytes,
            2u * kPerThread * kThreads);
  EXPECT_EQ(snap[obs::MemTag::kOther].live_bytes, 0);
  EXPECT_EQ(snap.total_live_bytes, 0);
}

TEST(Memory, NamesAreStableUniqueSnakeCase) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < obs::kNumMemTags; ++i) {
    const auto tag = static_cast<obs::MemTag>(i);
    const std::string name(obs::to_string(tag));
    ASSERT_FALSE(name.empty()) << "tag " << i;
    ASSERT_TRUE(name[0] >= 'a' && name[0] <= 'z') << name;
    for (const char c : name) {
      ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    }
    ASSERT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    // Trace tracks are the tag names under the fixed mem.tagged. prefix.
    EXPECT_EQ(std::string(obs::trace_track_name(tag)), "mem.tagged." + name);
  }
  EXPECT_EQ(obs::to_string(obs::MemTag::kGraph), "graph");
  EXPECT_EQ(obs::to_string(obs::MemTag::kOocorePayload), "oocore_payload");
}

TEST(Memory, RssReadersReportThisProcess) {
#if defined(__linux__)
  // /proc/self/statm and getrusage both exist on Linux and this process
  // certainly has pages resident.
  EXPECT_GT(obs::current_rss_bytes(), 0u);
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
  EXPECT_GE(obs::peak_rss_bytes(), obs::current_rss_bytes() / 2);
#else
  // Elsewhere the readers may legitimately return 0 — just call them.
  (void)obs::current_rss_bytes();
  (void)obs::peak_rss_bytes();
#endif
}

/// Fixed-value probe for the registration plumbing.
class FakeProbe : public obs::ResidencyProbe {
 public:
  [[nodiscard]] std::uint64_t probe_resident_bytes() const override {
    return 12345;
  }
  [[nodiscard]] std::uint64_t probe_budget_bytes() const override {
    return 67890;
  }
};

TEST(Memory, ResidencyProbeRegistration) {
  std::uint64_t resident = 0;
  std::uint64_t budget = 0;
  FakeProbe probe;
  obs::register_residency_probe(&probe);
  ASSERT_TRUE(obs::probed_residency(&resident, &budget));
  EXPECT_EQ(resident, 12345u);
  EXPECT_EQ(budget, 67890u);
  // Unregistering someone else's pointer must not clear the registration.
  FakeProbe other;
  obs::unregister_residency_probe(&other);
  EXPECT_TRUE(obs::probed_residency(&resident, &budget));
  obs::unregister_residency_probe(&probe);
  EXPECT_FALSE(obs::probed_residency(&resident, &budget));
}

}  // namespace
}  // namespace pmpr
