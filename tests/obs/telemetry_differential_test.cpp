// Telemetry must observe, never perturb: with a serial pool (deterministic
// schedule), enabling every telemetry pillar has to leave the PageRank
// output bit-for-bit identical to a run with telemetry off.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/postmortem_runner.hpp"
#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/memory.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "par/thread_pool.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

/// All seven telemetry gates, restored on scope exit.
struct AllTelemetry {
  const bool counters = obs::set_counters_enabled(false);
  const bool metrics = obs::set_metrics_enabled(false);
  const bool tracing = obs::set_tracing_enabled(false);
  const bool histograms = obs::set_histograms_enabled(false);
  const bool memory = obs::set_memory_accounting_enabled(false);
  const bool flightrec = obs::set_flight_recorder_enabled(false);
  const bool heartbeats = obs::set_heartbeats_enabled(false);
  ~AllTelemetry() {
    // Retire this thread's heartbeat slot (the runner's last phase edge
    // left it active) and drop the recorded rings before restoring gates.
    obs::set_heartbeats_enabled(true);
    obs::heartbeat_idle();
    obs::clear_flight_recorder();
    obs::set_counters_enabled(counters);
    obs::set_metrics_enabled(metrics);
    obs::set_tracing_enabled(tracing);
    obs::set_histograms_enabled(histograms);
    obs::set_memory_accounting_enabled(memory);
    obs::set_flight_recorder_enabled(flightrec);
    obs::set_heartbeats_enabled(heartbeats);
  }
  static void enable_all() {
    obs::set_counters_enabled(true);
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    obs::set_histograms_enabled(true);
    obs::set_memory_accounting_enabled(true);
    obs::set_flight_recorder_enabled(true);
    obs::set_heartbeats_enabled(true);
  }
};

std::vector<std::vector<double>> run_serial(KernelKind kernel,
                                            par::ThreadPool& pool,
                                            RunResult* out = nullptr) {
  const TemporalEdgeList events = test::random_events(61, 40, 2500, 12000);
  const WindowSpec spec = WindowSpec::cover(0, 12000, 4000, 800);
  PostmortemConfig cfg;
  cfg.kernel = kernel;
  cfg.vector_length = 8;
  cfg.partial_init = true;
  cfg.pool = &pool;
  StoreAllSink sink(spec.count);
  const RunResult r = run_postmortem(events, spec, sink, cfg);
  if (out != nullptr) *out = r;
  std::vector<std::vector<double>> dense;
  dense.reserve(spec.count);
  for (std::size_t w = 0; w < spec.count; ++w) {
    dense.push_back(sink.dense(w, events.num_vertices()));
  }
  return dense;
}

class TelemetryDifferential : public ::testing::TestWithParam<KernelKind> {};

TEST_P(TelemetryDifferential, OutputBitIdenticalWithTelemetryOn) {
  AllTelemetry guard;
  par::ThreadPool pool(1);

  obs::set_counters_enabled(false);
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);
  obs::set_histograms_enabled(false);
  const auto plain = run_serial(GetParam(), pool);

  AllTelemetry::enable_all();
  obs::clear_flight_recorder();
  const std::uint64_t beats_before = [] {
    std::uint64_t sum = 0;
    for (const obs::HeartbeatView& v : obs::heartbeat_table()) sum += v.beats;
    return sum;
  }();
  // A live sampler during the instrumented run: its snapshot reads must
  // not perturb the scheduler or the kernels either.
  obs::SamplerOptions sampler_opts;
  sampler_opts.interval = std::chrono::milliseconds(1);
  obs::Sampler sampler(pool, sampler_opts);
  sampler.start();
  RunResult instrumented;
  const auto traced = run_serial(GetParam(), pool, &instrumented);
  sampler.stop();
  obs::set_tracing_enabled(false);
  obs::clear_trace();

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t w = 0; w < plain.size(); ++w) {
    ASSERT_EQ(plain[w].size(), traced[w].size());
    for (std::size_t v = 0; v < plain[w].size(); ++v) {
      // Exact equality, not a tolerance: telemetry may not reorder a single
      // floating-point operation.
      ASSERT_EQ(plain[w][v], traced[w][v]) << "window " << w << " vertex "
                                           << v;
    }
  }
  // The instrumented run must actually have observed the work it did.
  EXPECT_GT(instrumented.counters[obs::Counter::kEdgesTraversed], 0u);
  EXPECT_EQ(instrumented.counters[obs::Counter::kWindowsProcessed],
            instrumented.num_windows);
  // The phase histograms must have seen every window's iterate phase (SpMM
  // records per batch, so >= 1 recording; SpMV records one per window).
  const obs::PhaseHistogram& iterate =
      instrumented.histograms[obs::Phase::kIterate];
  EXPECT_GT(iterate.total_count(), 0u);
  EXPECT_GT(iterate.sum_ns, 0u);
  EXPECT_GE(iterate.max_ns, iterate.percentile_ns(0.99));
  EXPECT_GT(instrumented.histograms[obs::Phase::kBuild].total_count(), 0u);
  EXPECT_GT(instrumented.histograms[obs::Phase::kSink].total_count(), 0u);
  // The memory pillar must have charged the run's big containers (graph
  // arrays, compiled kernels) and backed peak_memory_bytes with the
  // measured watermark — all without reordering a single FP op above.
  EXPECT_GT(instrumented.memory[obs::MemTag::kGraph].peak_bytes, 0u);
  EXPECT_GT(instrumented.memory[obs::MemTag::kCompiledKernel].peak_bytes,
            0u);
  EXPECT_GT(instrumented.memory.total_peak_bytes, 0u);
  EXPECT_EQ(instrumented.peak_memory_bytes,
            instrumented.memory.total_peak_bytes);
  EXPECT_GT(instrumented.peak_memory_estimate_bytes, 0u);
  // The failure-diagnostics pillar observed the same run for free: phase
  // breadcrumbs landed in the flight-recorder rings and the runner's phase
  // edges beat this thread's heartbeat slot.
  EXPECT_GT(obs::flight_recorder_stats().records, 0u);
  std::uint64_t beats_after = 0;
  for (const obs::HeartbeatView& v : obs::heartbeat_table()) {
    beats_after += v.beats;
  }
  EXPECT_GT(beats_after, beats_before);
}

INSTANTIATE_TEST_SUITE_P(Kernels, TelemetryDifferential,
                         ::testing::Values(KernelKind::kSpmv,
                                           KernelKind::kSpmm),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(TelemetryDifferential, TrajectoriesOnlyWhenMetricsEnabled) {
  AllTelemetry guard;
  par::ThreadPool pool(1);

  obs::set_metrics_enabled(false);
  RunResult off;
  run_serial(KernelKind::kSpmv, pool, &off);
  ASSERT_EQ(off.residual_trajectories.size(), off.num_windows);
  for (const auto& traj : off.residual_trajectories) {
    EXPECT_TRUE(traj.empty());
  }

  obs::set_metrics_enabled(true);
  RunResult on;
  run_serial(KernelKind::kSpmv, pool, &on);
  ASSERT_EQ(on.residual_trajectories.size(), on.num_windows);
  std::size_t populated = 0;
  for (std::size_t w = 0; w < on.num_windows; ++w) {
    // Windows past the last event are legitimately empty (zero iterations);
    // every window that iterated must carry its trajectory.
    if (on.residual_trajectories[w].empty()) continue;
    ++populated;
    EXPECT_GT(on.final_residuals[w], 0.0) << "window " << w;
    // The trajectory's last entry is the residual the window converged at.
    EXPECT_EQ(on.residual_trajectories[w].back(), on.final_residuals[w]);
  }
  EXPECT_GT(populated, on.num_windows / 2);
}

}  // namespace
}  // namespace pmpr
