#include "obs/flightrec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace pmpr {
namespace {

/// Disables the recorder and empties the shared rings on both sides of a
/// test so sibling tests (and pool workers from earlier suites) cannot
/// leak events into each other.
struct FlightRecGuard {
  const bool enabled = obs::set_flight_recorder_enabled(false);
  FlightRecGuard() { obs::clear_flight_recorder(); }
  ~FlightRecGuard() {
    obs::clear_flight_recorder();
    obs::set_flight_recorder_enabled(enabled);
  }
};

/// Events carrying `name`, in snapshot order.
std::vector<obs::FlightEvent> named(const std::vector<obs::FlightEvent>& all,
                                    const std::string& name) {
  std::vector<obs::FlightEvent> out;
  for (const obs::FlightEvent& e : all) {
    if (e.name == name) out.push_back(e);
  }
  return out;
}

TEST(FlightRecorder, DisabledRecordIsDropped) {
  FlightRecGuard guard;
  EXPECT_FALSE(obs::flight_recorder_enabled());
  obs::fr_record(obs::FrEvent::kMark, "fr.test.off", 1, 2);
  EXPECT_TRUE(named(obs::snapshot_flight_recorder(), "fr.test.off").empty());
  EXPECT_EQ(obs::flight_recorder_stats().records, 0u);
}

TEST(FlightRecorder, RecordRoundTripsFields) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  obs::fr_record(obs::FrEvent::kMark, "fr.test.mark", 7, 9);
  const std::vector<obs::FlightEvent> events =
      named(obs::snapshot_flight_recorder(), "fr.test.mark");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::FrEvent::kMark);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);
  EXPECT_GT(events[0].t_ns, 0);
  EXPECT_STREQ(obs::to_string(events[0].kind), "mark");
  const obs::FlightRecorderStats stats = obs::flight_recorder_stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GE(stats.threads, 1u);
}

TEST(FlightRecorder, SnapshotDoesNotConsume) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  obs::fr_record(obs::FrEvent::kMark, "fr.test.keep");
  EXPECT_EQ(named(obs::snapshot_flight_recorder(), "fr.test.keep").size(), 1u);
  EXPECT_EQ(named(obs::snapshot_flight_recorder(), "fr.test.keep").size(), 1u);
}

TEST(FlightRecorder, DrainConsumesExactlyOnceSerially) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::fr_record(obs::FrEvent::kMark, "fr.test.drain1", i);
  }
  EXPECT_EQ(named(obs::drain_flight_recorder(), "fr.test.drain1").size(), 5u);
  EXPECT_TRUE(named(obs::drain_flight_recorder(), "fr.test.drain1").empty());
  // But a non-consuming snapshot still sees the ring contents.
  EXPECT_EQ(named(obs::snapshot_flight_recorder(), "fr.test.drain1").size(),
            5u);
  EXPECT_EQ(obs::flight_recorder_stats().drains, 2u);
}

TEST(FlightRecorder, RingKeepsMostRecentWhenFull) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  // 200 events through a 128-slot ring: the oldest 72 are overwritten.
  for (std::uint64_t i = 0; i < 200; ++i) {
    obs::fr_record(obs::FrEvent::kMark, "fr.test.wrap", i);
  }
  const std::vector<obs::FlightEvent> events =
      named(obs::snapshot_flight_recorder(), "fr.test.wrap");
  ASSERT_EQ(events.size(), 128u);
  std::uint64_t min_a = events[0].a;
  std::uint64_t max_a = events[0].a;
  for (const obs::FlightEvent& e : events) {
    min_a = std::min(min_a, e.a);
    max_a = std::max(max_a, e.a);
  }
  EXPECT_EQ(min_a, 72u);
  EXPECT_EQ(max_a, 199u);
  const obs::FlightRecorderStats stats = obs::flight_recorder_stats();
  EXPECT_EQ(stats.records, 200u);
  EXPECT_EQ(stats.dropped, 72u);
}

TEST(FlightRecorder, ErrorBreadcrumbSurvivesAndSetsLastError) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  {
    // Transient text: fr_record_error must copy the bytes, not the pointer.
    const std::string transient = "fr test boom";
    obs::fr_record_error(transient.c_str());
  }
  EXPECT_EQ(obs::last_error(), "fr test boom");
  const std::vector<obs::FlightEvent> events =
      named(obs::snapshot_flight_recorder(), "fr test boom");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::FrEvent::kError);
  // clear_flight_recorder drops the breadcrumb with everything else.
  obs::clear_flight_recorder();
  EXPECT_EQ(obs::last_error(), "");
}

TEST(FlightRecorder, ErrorBreadcrumbIsGated) {
  FlightRecGuard guard;
  obs::fr_record_error("fr gated boom");
  EXPECT_EQ(obs::last_error(), "");
}

TEST(FlightRecorder, PerThreadRingsGetDistinctTids) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  obs::fr_record(obs::FrEvent::kMark, "fr.test.main");
  std::thread t([] { obs::fr_record(obs::FrEvent::kMark, "fr.test.other"); });
  t.join();
  const std::vector<obs::FlightEvent> all = obs::snapshot_flight_recorder();
  const std::vector<obs::FlightEvent> main_ev = named(all, "fr.test.main");
  const std::vector<obs::FlightEvent> other_ev = named(all, "fr.test.other");
  ASSERT_EQ(main_ev.size(), 1u);
  ASSERT_EQ(other_ev.size(), 1u);
  EXPECT_NE(main_ev[0].tid, other_ev[0].tid);
  EXPECT_GE(obs::flight_recorder_stats().threads, 2u);
}

TEST(FlightRecorder, BlackboxJsonCarriesSchemaLabelsAndEvents) {
  FlightRecGuard guard;
  obs::fr_set_thread_label("fr.test.thread");
  obs::set_flight_recorder_enabled(true);
  obs::fr_record(obs::FrEvent::kMark, "fr.test.box", 3, 4);
  std::ostringstream out;
  obs::write_blackbox_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"pmpr-blackbox-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_capacity\": 128"), std::string::npos);
  EXPECT_NE(json.find("fr.test.thread"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"mark\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"fr.test.box\""), std::string::npos);
}

TEST(FlightRecorder, BlackboxFileVariantReportsOpenFailure) {
  FlightRecGuard guard;
  EXPECT_FALSE(
      obs::write_blackbox_json("/nonexistent-pmpr-dir/blackbox.json"));
}

TEST(FlightRecorder, ConcurrentDrainsSeeEachEventExactlyOnce) {
  FlightRecGuard guard;
  obs::set_flight_recorder_enabled(true);
  // Fewer events than one ring holds, so nothing is dropped and the
  // exactly-once partition is checkable over the full id set.
  constexpr std::uint64_t kEvents = 100;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    obs::fr_record(obs::FrEvent::kMark, "fr.test.race", i);
  }
  std::mutex mu;
  std::vector<obs::FlightEvent> drained;
  std::vector<std::thread> drainers;
  drainers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    drainers.emplace_back([&] {
      const std::vector<obs::FlightEvent> mine = obs::drain_flight_recorder();
      const std::lock_guard<std::mutex> lock(mu);
      drained.insert(drained.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : drainers) t.join();
  const std::vector<obs::FlightEvent> mine = named(drained, "fr.test.race");
  EXPECT_EQ(mine.size(), kEvents);
  std::set<std::uint64_t> ids;
  for (const obs::FlightEvent& e : mine) {
    EXPECT_TRUE(ids.insert(e.a).second) << "event " << e.a << " drained twice";
  }
  EXPECT_EQ(ids.size(), kEvents);
  EXPECT_EQ(obs::flight_recorder_stats().drains, 8u);
}

}  // namespace
}  // namespace pmpr
