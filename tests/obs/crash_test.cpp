#include "obs/crash.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/flightrec.hpp"

namespace pmpr {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CrashHandler, WriteDiagnosticReportCarriesFullSchema) {
  const std::string path =
      ::testing::TempDir() + "pmpr_crash_test_diag.json";
  obs::DiagnosticContext ctx;
  ctx.kind = "watchdog_stall";
  ctx.stalled_phase = "crash.test.phase";
  ctx.stalled_tid = 3;
  ctx.stall_age_ns = 5'000'000;
  ctx.threshold_ns = 1'000'000;
  ASSERT_TRUE(obs::write_diagnostic_report(path, ctx));
  const std::string report = slurp(path);
  EXPECT_NE(report.find("\"schema\": \"pmpr-crash-v1\""), std::string::npos);
  EXPECT_NE(report.find("\"kind\": \"watchdog_stall\""), std::string::npos);
  EXPECT_NE(report.find("\"stalled_phase\": \"crash.test.phase\""),
            std::string::npos);
  EXPECT_NE(report.find("\"stall_age_ns\": 5000000"), std::string::npos);
  EXPECT_NE(report.find("\"threshold_ns\": 1000000"), std::string::npos);
  // The shared writer always emits every diagnostics surface, so hang
  // dumps and crash dumps stay one schema.
  for (const char* key :
       {"\"counters\"", "\"memory\"", "\"threads\"", "\"heartbeats\"",
        "\"events\"", "\"last_error\"", "\"pid\"", "\"t_ns\""}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
}

TEST(CrashHandler, WriteDiagnosticReportFailsOnBadPath) {
  const obs::DiagnosticContext ctx;
  EXPECT_FALSE(
      obs::write_diagnostic_report("/nonexistent-pmpr-dir/diag.json", ctx));
}

TEST(CrashHandler, InstallUninstallRoundTrip) {
  ASSERT_FALSE(obs::crash_handler_installed());
  obs::CrashHandlerOptions opts;
  opts.dump_dir = ::testing::TempDir();
  ASSERT_TRUE(obs::install_crash_handler(opts));
  EXPECT_TRUE(obs::crash_handler_installed());
  const std::string path = obs::crash_report_path();
  EXPECT_NE(path.find(::testing::TempDir()), std::string::npos);
  EXPECT_NE(path.find("pmpr-crash-"), std::string::npos);
  EXPECT_NE(path.find(".json"), std::string::npos);
  // Idempotent: a second install succeeds without stacking handlers.
  EXPECT_TRUE(obs::install_crash_handler(opts));
  obs::uninstall_crash_handler();
  EXPECT_FALSE(obs::crash_handler_installed());
  obs::uninstall_crash_handler();  // and again, harmlessly
  EXPECT_FALSE(obs::crash_handler_installed());
}

TEST(CrashHandlerDeathTest, SegvLeavesReportAndReRaises) {
  // threadsafe: the death child re-executes the binary, so earlier tests'
  // helper threads cannot leak into the forked process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "pmpr_crash_test_segv";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string dump_dir = dir.string();
  EXPECT_EXIT(
      {
        obs::CrashHandlerOptions opts;
        opts.dump_dir = dump_dir;
        if (!obs::install_crash_handler(opts)) _exit(3);
        obs::set_flight_recorder_enabled(true);
        obs::fr_record(obs::FrEvent::kMark, "crash.test.breadcrumb", 11);
        volatile int* null_ptr = nullptr;
        (void)*null_ptr;
        _exit(4);  // unreachable: the re-raised SIGSEGV kills the child
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  // The handler ran before the re-raise: exactly one report, carrying the
  // child's breadcrumb.
  std::vector<fs::path> reports;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    reports.push_back(e.path());
  }
  ASSERT_EQ(reports.size(), 1u) << "expected one crash report in " << dump_dir;
  const std::string report = slurp(reports[0].string());
  EXPECT_NE(report.find("\"schema\": \"pmpr-crash-v1\""), std::string::npos);
  EXPECT_NE(report.find("\"kind\": \"signal\""), std::string::npos);
  EXPECT_NE(report.find("\"signal_name\": \"SIGSEGV\""), std::string::npos);
  EXPECT_NE(report.find("crash.test.breadcrumb"), std::string::npos);
}

}  // namespace
}  // namespace pmpr
