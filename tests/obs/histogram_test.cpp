#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "obs/counters.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace pmpr {
namespace {

/// Restores the histogram gate and empties the blocks around each test
/// (the registry is process-global and shared with sibling tests).
struct HistogramGuard {
  const bool was_enabled = obs::set_histograms_enabled(false);
  HistogramGuard() { obs::reset_histograms(); }
  ~HistogramGuard() {
    obs::set_histograms_enabled(was_enabled);
    obs::reset_histograms();
  }
};

TEST(HistogramBuckets, SmallValuesGetExactBuckets) {
  for (std::uint64_t ns = 0; ns < 8; ++ns) {
    EXPECT_EQ(obs::bucket_index(ns), ns) << ns;
    EXPECT_EQ(obs::bucket_upper_ns(ns), ns) << ns;
  }
}

TEST(HistogramBuckets, IndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t ns = 0; ns < 1 << 14; ++ns) {
    const std::size_t idx = obs::bucket_index(ns);
    ASSERT_GE(idx, prev) << ns;
    ASSERT_LT(idx, obs::kHistNumBuckets) << ns;
    prev = idx;
  }
  // Spot checks across the full range, including the clamp bucket.
  std::uint64_t spots[] = {1ull << 20,       1ull << 30,  1ull << 36,
                           (1ull << 37) - 1, 1ull << 40,  ~0ull};
  for (const std::uint64_t ns : spots) {
    const std::size_t idx = obs::bucket_index(ns);
    ASSERT_GE(idx, prev) << ns;
    ASSERT_LT(idx, obs::kHistNumBuckets) << ns;
    prev = idx;
  }
  EXPECT_EQ(obs::bucket_index(~0ull), obs::kHistNumBuckets - 1);
}

TEST(HistogramBuckets, UpperBoundIsTightAndConsistent) {
  // Every value must land in a bucket whose upper bound is >= the value
  // (conservative percentile reporting) and within the promised 12.5%
  // relative error — except the open-ended clamp bucket.
  for (std::uint64_t ns = 1; ns < 1 << 16; ns = ns * 5 / 4 + 1) {
    const std::size_t idx = obs::bucket_index(ns);
    if (idx == obs::kHistNumBuckets - 1) break;
    const std::uint64_t upper = obs::bucket_upper_ns(idx);
    ASSERT_GE(upper, ns) << ns;
    ASSERT_LE(static_cast<double>(upper - ns),
              0.125 * static_cast<double>(ns) + 1.0)
        << ns;
    // The upper bound itself must map back into the same bucket.
    ASSERT_EQ(obs::bucket_index(upper), idx) << ns;
  }
}

TEST(Histogram, DisabledRecordIsNoOp) {
  HistogramGuard guard;
  ASSERT_FALSE(obs::histograms_enabled());
  obs::record_duration(obs::Phase::kIterate, 1000);
  {
    obs::PhaseTimer timer(obs::Phase::kBuild);
  }
  const obs::HistogramSnapshot snap = obs::histograms_snapshot();
  EXPECT_EQ(snap[obs::Phase::kIterate].total_count(), 0u);
  EXPECT_EQ(snap[obs::Phase::kBuild].total_count(), 0u);
}

TEST(Histogram, RecordsPerPhaseWithSumAndMax) {
  HistogramGuard guard;
  obs::set_histograms_enabled(true);
  const obs::HistogramSnapshot before = obs::histograms_snapshot();
  obs::record_duration(obs::Phase::kIterate, 100);
  obs::record_duration(obs::Phase::kIterate, 200);
  obs::record_duration(obs::Phase::kIterate, 50);
  obs::record_duration(obs::Phase::kSink, 7);
  const obs::HistogramSnapshot delta =
      obs::histograms_snapshot().delta_since(before);
  EXPECT_EQ(delta[obs::Phase::kIterate].total_count(), 3u);
  EXPECT_EQ(delta[obs::Phase::kIterate].sum_ns, 350u);
  EXPECT_EQ(delta[obs::Phase::kIterate].max_ns, 200u);
  EXPECT_NEAR(delta[obs::Phase::kIterate].mean_ns(), 350.0 / 3.0, 1e-9);
  EXPECT_EQ(delta[obs::Phase::kSink].total_count(), 1u);
  EXPECT_EQ(delta[obs::Phase::kSink].max_ns, 7u);
  EXPECT_EQ(delta[obs::Phase::kBuild].total_count(), 0u);
}

TEST(Histogram, PercentilesAreConservativeUpperBounds) {
  HistogramGuard guard;
  obs::set_histograms_enabled(true);
  // 90 fast recordings and 10 slow ones: p50/p90 must resolve to the fast
  // bucket's bound, p99 to the slow one's.
  for (int i = 0; i < 90; ++i) obs::record_duration(obs::Phase::kIterate, 100);
  for (int i = 0; i < 10; ++i) {
    obs::record_duration(obs::Phase::kIterate, 1'000'000);
  }
  const obs::HistogramSnapshot snap = obs::histograms_snapshot();
  const obs::PhaseHistogram& h = snap[obs::Phase::kIterate];
  const std::uint64_t p50 = h.percentile_ns(0.50);
  const std::uint64_t p90 = h.percentile_ns(0.90);
  const std::uint64_t p99 = h.percentile_ns(0.99);
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 113u);  // <= 12.5% quantization error
  EXPECT_GE(p90, 100u);
  EXPECT_LE(p90, 113u);
  EXPECT_GE(p99, 1'000'000u);
  EXPECT_LE(p99, 1'125'000u);
  // max is exact, and percentiles never exceed it.
  EXPECT_EQ(h.max_ns, 1'000'000u);
  EXPECT_LE(h.percentile_ns(1.0), h.max_ns);
  // q is clamped, empty-side convention is 0.
  EXPECT_EQ(h.percentile_ns(-3.0), h.percentile_ns(0.0));
  EXPECT_EQ(h.percentile_ns(7.0), h.percentile_ns(1.0));
}

TEST(Histogram, EmptyPercentileIsZero) {
  HistogramGuard guard;
  const obs::HistogramSnapshot snap = obs::histograms_snapshot();
  const obs::PhaseHistogram& h = snap[obs::Phase::kBuild];
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(Histogram, PhaseTimerRecordsElapsed) {
  HistogramGuard guard;
  obs::set_histograms_enabled(true);
  const obs::HistogramSnapshot before = obs::histograms_snapshot();
  {
    obs::PhaseTimer timer(obs::Phase::kBuild);
    // Burn a little time so the recording is non-degenerate.
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 10000; ++i) x = x + static_cast<std::uint64_t>(i);
  }
  const obs::HistogramSnapshot delta =
      obs::histograms_snapshot().delta_since(before);
  EXPECT_EQ(delta[obs::Phase::kBuild].total_count(), 1u);
  EXPECT_GT(delta[obs::Phase::kBuild].sum_ns, 0u);
}

TEST(Histogram, TimerStartedBeforeDisableStillRecords) {
  // The gate is checked at construction: a timer that began while enabled
  // records even if the gate flips mid-flight (span semantics).
  HistogramGuard guard;
  obs::set_histograms_enabled(true);
  const obs::HistogramSnapshot before = obs::histograms_snapshot();
  {
    obs::PhaseTimer timer(obs::Phase::kSink);
    obs::set_histograms_enabled(false);
  }
  const obs::HistogramSnapshot delta =
      obs::histograms_snapshot().delta_since(before);
  EXPECT_EQ(delta[obs::Phase::kSink].total_count(), 1u);
}

TEST(Histogram, ParallelChurnSumsExactly) {
  // Recording from pool workers must aggregate exactly once producers
  // quiesce — same contract as the counter registry.
  HistogramGuard guard;
  obs::set_histograms_enabled(true);
  par::ThreadPool pool(4);
  par::ForOptions opts;
  opts.pool = &pool;
  opts.grain = 8;
  constexpr std::size_t kN = 10000;
  const obs::HistogramSnapshot before = obs::histograms_snapshot();
  par::parallel_for(0, kN, opts, [](std::size_t i) {
    obs::record_duration(obs::Phase::kIterate, (i % 64) + 1);
  });
  const obs::HistogramSnapshot delta =
      obs::histograms_snapshot().delta_since(before);
  EXPECT_EQ(delta[obs::Phase::kIterate].total_count(), kN);
  EXPECT_EQ(delta[obs::Phase::kIterate].max_ns, 64u);
}

TEST(Histogram, RecordBumpsHistogramRecordsCounter) {
  HistogramGuard guard;
  const bool counters_were = obs::set_counters_enabled(true);
  obs::set_histograms_enabled(true);
  const obs::CounterSnapshot before = obs::counters_snapshot();
  obs::record_duration(obs::Phase::kBuild, 42);
  obs::record_duration(obs::Phase::kSink, 43);
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kHistogramRecords], 2u);
  obs::set_counters_enabled(counters_were);
}

}  // namespace
}  // namespace pmpr
