#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flightrec.hpp"

namespace pmpr {
namespace {

/// Restores the heartbeat/recorder gates, retires this thread's heartbeat
/// slot, and zeroes the process-wide watchdog totals so sibling tests see
/// a quiet monitor surface.
struct WatchdogTestGuard {
  const bool heartbeats = obs::set_heartbeats_enabled(false);
  const bool recorder = obs::set_flight_recorder_enabled(false);
  WatchdogTestGuard() {
    obs::reset_watchdog_stats();
    obs::clear_flight_recorder();
  }
  ~WatchdogTestGuard() {
    // heartbeat_idle is gated; force it through so no stale active phase
    // outlives the test on the shared main-thread slot.
    obs::set_heartbeats_enabled(true);
    obs::heartbeat_idle();
    obs::set_heartbeats_enabled(heartbeats);
    obs::set_flight_recorder_enabled(recorder);
    obs::reset_watchdog_stats();
    obs::clear_flight_recorder();
  }
};

std::uint64_t total_beats() {
  std::uint64_t sum = 0;
  for (const obs::HeartbeatView& v : obs::heartbeat_table()) sum += v.beats;
  return sum;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Heartbeat, DisabledBeatIsDropped) {
  WatchdogTestGuard guard;
  EXPECT_FALSE(obs::heartbeats_enabled());
  const std::uint64_t before = total_beats();
  obs::heartbeat("wd.test.off");
  obs::heartbeat("wd.test.off");
  EXPECT_EQ(total_beats(), before);
}

TEST(Heartbeat, RecordsPhaseLabelAndBeats) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::heartbeat_set_label("wd.test.label");
  obs::heartbeat("wd.test.phase");
  bool found = false;
  for (const obs::HeartbeatView& v : obs::heartbeat_table()) {
    if (v.label != "wd.test.label") continue;
    found = true;
    EXPECT_EQ(v.phase, "wd.test.phase");
    EXPECT_GE(v.beats, 1u);
    EXPECT_GE(v.age_ns, 0);
  }
  EXPECT_TRUE(found);
  // Retiring the slot marks it idle, not gone: the tid stays claimed.
  obs::heartbeat_idle();
  for (const obs::HeartbeatView& v : obs::heartbeat_table()) {
    if (v.label == "wd.test.label") EXPECT_EQ(v.phase, "");
  }
}

TEST(Watchdog, CheckOnceFiresOnStaleActiveSlot) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::milliseconds(1);
  obs::Watchdog wd(opts);
  obs::heartbeat("wd.test.stall");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(wd.check_once());
  EXPECT_EQ(wd.fires(), 1u);
  const obs::WatchdogStats stats = obs::watchdog_stats();
  EXPECT_EQ(stats.fires, 1u);
  EXPECT_EQ(stats.last_stalled_phase, "wd.test.stall");
  EXPECT_GT(stats.max_heartbeat_age_ns, 0);
}

TEST(Watchdog, CheckOnceStaysQuietWhileBeating) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::milliseconds(500);
  obs::Watchdog wd(opts);
  obs::heartbeat("wd.test.live");
  EXPECT_FALSE(wd.check_once());
  EXPECT_EQ(wd.fires(), 0u);
  EXPECT_EQ(obs::watchdog_stats().fires, 0u);
}

TEST(Watchdog, CheckOnceIgnoresIdleSlots) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::milliseconds(1);
  obs::Watchdog wd(opts);
  obs::heartbeat("wd.test.retired");
  obs::heartbeat_idle();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // However old its last beat, an idle slot is not a stall.
  EXPECT_FALSE(wd.check_once());
  EXPECT_EQ(wd.fires(), 0u);
}

TEST(Watchdog, StallEpisodeRefiresOnlyAfterProgress) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::milliseconds(1);
  obs::Watchdog wd(opts);
  obs::heartbeat("wd.test.episode");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(wd.check_once());
  // Same incident, zero beats since: no refire per tick.
  EXPECT_FALSE(wd.check_once());
  EXPECT_FALSE(wd.check_once());
  EXPECT_EQ(wd.fires(), 1u);
  // Progress re-arms the episode; going quiet again is a new stall.
  obs::heartbeat("wd.test.episode");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(wd.check_once());
  EXPECT_EQ(wd.fires(), 2u);
}

TEST(Watchdog, FireWritesDumpNamingPhaseAndRecordsEvent) {
  WatchdogTestGuard guard;
  obs::set_heartbeats_enabled(true);
  obs::set_flight_recorder_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::milliseconds(1);
  opts.dump_path = ::testing::TempDir() + "pmpr_wd_test_dump.json";
  obs::Watchdog wd(opts);
  obs::heartbeat("wd.test.dump");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(wd.check_once());
  const std::string report = slurp(opts.dump_path);
  EXPECT_NE(report.find("\"schema\": \"pmpr-crash-v1\""), std::string::npos);
  EXPECT_NE(report.find("\"kind\": \"watchdog_stall\""), std::string::npos);
  EXPECT_NE(report.find("wd.test.dump"), std::string::npos);
  // The fire also leaves a breadcrumb in the flight recorder.
  bool saw_fire = false;
  for (const obs::FlightEvent& e : obs::snapshot_flight_recorder()) {
    saw_fire |=
        e.kind == obs::FrEvent::kWatchdogFire && e.name == "wd.test.dump";
  }
  EXPECT_TRUE(saw_fire);
}

TEST(Watchdog, StartStopManagesHeartbeatGateAndArmStat) {
  WatchdogTestGuard guard;
  EXPECT_FALSE(obs::heartbeats_enabled());
  obs::set_flight_recorder_enabled(true);
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::seconds(10);
  obs::Watchdog wd(opts);
  EXPECT_FALSE(wd.running());
  wd.start();
  EXPECT_TRUE(wd.running());
  EXPECT_TRUE(obs::heartbeats_enabled());
  wd.start();  // no-op while running
  EXPECT_EQ(obs::watchdog_stats().arms, 1u);
  wd.stop();
  EXPECT_FALSE(wd.running());
  // stop restores the pre-start heartbeat gate.
  EXPECT_FALSE(obs::heartbeats_enabled());
  // Arming is breadcrumbed with the configured threshold.
  bool saw_arm = false;
  for (const obs::FlightEvent& e : obs::snapshot_flight_recorder()) {
    if (e.kind != obs::FrEvent::kWatchdogArm) continue;
    saw_arm = true;
    EXPECT_EQ(e.a, 10'000'000'000u);
  }
  EXPECT_TRUE(saw_arm);
}

TEST(Watchdog, ConcurrentStopsAreSafeAndIdempotent) {
  WatchdogTestGuard guard;
  obs::WatchdogOptions opts;
  opts.stall_threshold = std::chrono::minutes(10);  // never fires here
  obs::Watchdog wd(opts);
  wd.start();
  std::vector<std::thread> stoppers;
  stoppers.reserve(4);
  for (int i = 0; i < 4; ++i) stoppers.emplace_back([&wd] { wd.stop(); });
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(wd.running());
  wd.stop();  // and once more after the fact
  // The instance restarts cleanly after a full stop.
  wd.start();
  EXPECT_TRUE(wd.running());
  wd.stop();
  EXPECT_FALSE(wd.running());
}

}  // namespace
}  // namespace pmpr
