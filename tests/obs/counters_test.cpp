#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace pmpr {
namespace {

/// Restores the counters/metrics gates on scope exit so one test cannot
/// leak telemetry state into its siblings (the binary shares the global
/// registry).
struct TelemetryGuard {
  const bool counters = obs::set_counters_enabled(false);
  const bool metrics = obs::set_metrics_enabled(false);
  ~TelemetryGuard() {
    obs::set_counters_enabled(counters);
    obs::set_metrics_enabled(metrics);
  }
};

TEST(Counters, DisabledCountIsNoOp) {
  TelemetryGuard guard;
  ASSERT_FALSE(obs::counters_enabled());
  const obs::CounterSnapshot before = obs::counters_snapshot();
  obs::count(obs::Counter::kEdgesTraversed, 1000);
  obs::count(obs::Counter::kTasksSpawned);
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kEdgesTraversed], 0u);
  EXPECT_EQ(delta[obs::Counter::kTasksSpawned], 0u);
}

TEST(Counters, SetEnabledReturnsPrevious) {
  TelemetryGuard guard;
  EXPECT_FALSE(obs::set_counters_enabled(true));
  EXPECT_TRUE(obs::set_counters_enabled(false));
  EXPECT_FALSE(obs::set_metrics_enabled(true));
  EXPECT_TRUE(obs::set_metrics_enabled(false));
}

TEST(Counters, AccumulatesAcrossCalls) {
  TelemetryGuard guard;
  obs::set_counters_enabled(true);
  const obs::CounterSnapshot before = obs::counters_snapshot();
  obs::count(obs::Counter::kEdgesTraversed, 5);
  obs::count(obs::Counter::kEdgesTraversed, 7);
  obs::count(obs::Counter::kVerticesReused);
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kEdgesTraversed], 12u);
  EXPECT_EQ(delta[obs::Counter::kVerticesReused], 1u);
  EXPECT_EQ(delta[obs::Counter::kLanesConverged], 0u);
}

TEST(Counters, DeltaSinceClampsAtZero) {
  obs::CounterSnapshot low;
  obs::CounterSnapshot high;
  high.values[0] = 10;
  low.values[0] = 3;
  high.values[1] = 1;
  low.values[1] = 4;  // base ahead of current (e.g. a concurrent reset)
  const obs::CounterSnapshot d = high.delta_since(low);
  EXPECT_EQ(d.values[0], 7u);
  EXPECT_EQ(d.values[1], 0u);
}

TEST(Counters, ParallelChurnSumsExactly) {
  // Every one of N loop bodies adds exactly once from whichever pool thread
  // runs it; after parallel_for returns (all tasks quiesced) the aggregate
  // must be exact, not advisory.
  TelemetryGuard guard;
  obs::set_counters_enabled(true);
  par::ThreadPool pool(4);
  par::ForOptions opts;
  opts.pool = &pool;
  opts.grain = 8;  // force real task fan-out and stealing
  constexpr std::size_t kN = 20000;
  const obs::CounterSnapshot before = obs::counters_snapshot();
  par::parallel_for(0, kN, opts,
                    [](std::size_t) { obs::count(obs::Counter::kParks); });
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  // kParks is also bumped by the pool's own workers going idle, so the
  // app-side churn is a lower bound there; use a scheduler-free counter for
  // the exactness claim.
  EXPECT_GE(delta[obs::Counter::kParks], kN);
  // The pool itself self-reports: the fan-out must have spawned and
  // executed tasks.
  EXPECT_GT(delta[obs::Counter::kTasksSpawned], 0u);
  EXPECT_GE(delta[obs::Counter::kTasksExecuted],
            delta[obs::Counter::kTasksSpawned]);
}

TEST(Counters, ParallelChurnExactOnKernelCounter) {
  // Same churn through a counter the scheduler never touches: the total
  // must equal the churn exactly.
  TelemetryGuard guard;
  obs::set_counters_enabled(true);
  par::ThreadPool pool(4);
  par::ForOptions opts;
  opts.pool = &pool;
  opts.grain = 8;
  constexpr std::size_t kN = 20000;
  const obs::CounterSnapshot before = obs::counters_snapshot();
  par::parallel_for(0, kN, opts, [](std::size_t) {
    obs::count(obs::Counter::kEdgesTraversed, 3);
  });
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kEdgesTraversed], 3u * kN);
}

TEST(Counters, OverflowBlockLosesNoCounts) {
  // The registry owns a fixed pool of per-thread blocks; threads beyond it
  // share one overflow block. Spin up far more recording threads than the
  // pool has owned slots (256) and assert the aggregate is still exact —
  // the overflow adds are contended, never dropped.
  TelemetryGuard guard;
  obs::set_counters_enabled(true);
  constexpr std::size_t kThreads = 300;  // > 256 owned slots
  constexpr std::uint64_t kPerThread = 50;
  const obs::CounterSnapshot before = obs::counters_snapshot();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          obs::count(obs::Counter::kDanglingScanned, 2);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kDanglingScanned],
            2u * kPerThread * kThreads);
}

TEST(Counters, NamesAreStableUniqueSnakeCase) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const std::string name(obs::to_string(static_cast<obs::Counter>(i)));
    ASSERT_FALSE(name.empty()) << "counter " << i;
    // Lower snake_case; digits allowed after the first character (the
    // per-ISA sweep counters are named simd_sweep_avx2 / _avx512).
    ASSERT_TRUE(name[0] >= 'a' && name[0] <= 'z') << name;
    for (const char c : name) {
      ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    }
    ASSERT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(obs::to_string(obs::Counter::kEdgesTraversed), "edges_traversed");
}

}  // namespace
}  // namespace pmpr
