#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <sstream>
#include <thread>
#include <vector>

#include "exec/metrics.hpp"
#include "exec/results.hpp"
#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace pmpr {
namespace {

/// Restores counters/tracing gates and drops buffered trace data so the
/// shared registries stay clean across sibling tests.
struct SamplerTestGuard {
  const bool counters = obs::set_counters_enabled(false);
  const bool tracing = obs::set_tracing_enabled(false);
  SamplerTestGuard() { obs::clear_trace(); }
  ~SamplerTestGuard() {
    obs::set_counters_enabled(counters);
    obs::set_tracing_enabled(tracing);
    obs::clear_trace();
  }
};

TEST(Sampler, SampleOnceWithoutThread) {
  SamplerTestGuard guard;
  par::ThreadPool pool(2);
  obs::Sampler sampler(pool);
  EXPECT_FALSE(sampler.running());
  const obs::SamplerSample s = sampler.sample_once();
  EXPECT_GE(s.t_ns, 0);
  // An idle pool queues nothing; parked is at most the worker count.
  EXPECT_EQ(s.total_queued, 0u);
  EXPECT_LE(s.parked_workers, 2u);
  EXPECT_EQ(sampler.summary().num_samples, 1u);
  EXPECT_EQ(sampler.samples().size(), 1u);
}

TEST(Sampler, StartStopCollectsTicks) {
  SamplerTestGuard guard;
  par::ThreadPool pool(2);
  obs::SamplerOptions opts;
  opts.interval = std::chrono::milliseconds(1);
  obs::Sampler sampler(pool, opts);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  // Keep the pool busy so the gauges see real scheduler state.
  par::ForOptions for_opts;
  for_opts.pool = &pool;
  for_opts.grain = 4;
  for (int round = 0; round < 20; ++round) {
    par::parallel_for(0, 2000, for_opts, [](std::size_t) {
      volatile int x = 0;
      for (int i = 0; i < 200; ++i) x = x + i;
    });
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const obs::SamplerSummary sum = sampler.summary();
  EXPECT_GE(sum.num_samples, 1u);
  EXPECT_EQ(sum.interval_ms, 1u);
  const std::vector<obs::SamplerSample> samples = sampler.samples();
  EXPECT_EQ(samples.size(),
            std::min<std::size_t>(sum.num_samples, opts.ring_capacity));
  // Samples are time-ordered, oldest first.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_ns, samples[i].t_ns) << i;
  }
  // Stop is idempotent.
  sampler.stop();
}

TEST(Sampler, StopIsPromptDespiteLongInterval) {
  SamplerTestGuard guard;
  par::ThreadPool pool(1);
  obs::SamplerOptions opts;
  opts.interval = std::chrono::minutes(10);  // would hang if stop slept it out
  obs::Sampler sampler(pool, opts);
  sampler.start();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.summary().num_samples, 1u);
}

TEST(Sampler, TicksBumpSamplerCounter) {
  SamplerTestGuard guard;
  obs::set_counters_enabled(true);
  par::ThreadPool pool(1);
  obs::Sampler sampler(pool);
  const obs::CounterSnapshot before = obs::counters_snapshot();
  sampler.sample_once();
  sampler.sample_once();
  const obs::CounterSnapshot delta = obs::counters_snapshot() - before;
  EXPECT_EQ(delta[obs::Counter::kSamplerTicks], 2u);
}

TEST(Sampler, StealRateComesFromCounterDeltas) {
  SamplerTestGuard guard;
  obs::set_counters_enabled(true);
  par::ThreadPool pool(1);
  obs::Sampler sampler(pool);
  sampler.sample_once();  // establish the baseline tick
  // Fabricate scheduler activity between ticks: 10 attempts, 4 successes.
  obs::count(obs::Counter::kStealsAttempted, 10);
  obs::count(obs::Counter::kStealsSucceeded, 4);
  const obs::SamplerSample s = sampler.sample_once();
  EXPECT_NEAR(s.steal_success_rate, 0.4, 1e-9);
  // No activity since the last tick: rate reads 0.
  EXPECT_EQ(sampler.sample_once().steal_success_rate, 0.0);
}

TEST(Sampler, EmitsTraceCounterEventsWhenTracingEnabled) {
  SamplerTestGuard guard;
  par::ThreadPool pool(1);
  obs::Sampler sampler(pool);
  // Tracing off: the tick records no counter samples.
  sampler.sample_once();
  EXPECT_TRUE(obs::collect_counter_samples().empty());
  obs::set_tracing_enabled(true);
  sampler.sample_once();
  obs::set_tracing_enabled(false);
  const std::vector<obs::CounterSample> samples =
      obs::collect_counter_samples();
  ASSERT_FALSE(samples.empty());
  bool saw_queue = false;
  bool saw_parked = false;
  for (const obs::CounterSample& s : samples) {
    saw_queue |= s.name == "sched.total_queued";
    saw_parked |= s.name == "sched.parked_workers";
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_parked);
}

TEST(Sampler, RingKeepsMostRecentWhenFull) {
  SamplerTestGuard guard;
  par::ThreadPool pool(1);
  obs::SamplerOptions opts;
  opts.ring_capacity = 4;
  obs::Sampler sampler(pool, opts);
  for (int i = 0; i < 10; ++i) sampler.sample_once();
  const std::vector<obs::SamplerSample> samples = sampler.samples();
  ASSERT_EQ(samples.size(), 4u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_ns, samples[i].t_ns);
  }
  // Accumulators still cover every tick.
  EXPECT_EQ(sampler.summary().num_samples, 10u);
}

TEST(Sampler, GaugesSeeQueuedWork) {
  // Deterministic gauge check without the background thread: pile tasks
  // into a pool whose worker is blocked, then sample.
  SamplerTestGuard guard;
  par::ThreadPool pool(1);
  // A busy task pins the single worker so submitted work stays queued.
  std::atomic<bool> release{false};
  par::WaitGroup blocker_wg;
  blocker_wg.add(1);
  pool.submit(
      [&release] {
        // acquire: pairs with the release store below; also the loop exit.
        while (!release.load(std::memory_order_acquire)) {
        }
      },
      blocker_wg);
  par::WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    wg.add(1);
    pool.submit([] {}, wg);
  }
  obs::Sampler sampler(pool);
  const obs::SamplerSample s = sampler.sample_once();
  EXPECT_GE(s.total_queued, 1u);
  // release: publishes the flag to the spinning worker.
  release.store(true, std::memory_order_release);
  pool.wait(blocker_wg);
  pool.wait(wg);
}

// --- trace-exporter shutdown races -------------------------------------
//
// The failure-diagnostics pillar made shutdown ordering load-bearing: a
// crash/stall dump may be written while the profiler is being stopped.
// stop() must therefore be safe to race from any number of threads, and
// racing exporters must always see a coherent sampler.

TEST(Sampler, ConcurrentStopsJoinExactlyOnce) {
  SamplerTestGuard guard;
  par::ThreadPool pool(2);
  obs::SamplerOptions opts;
  opts.interval = std::chrono::milliseconds(1);
  obs::Sampler sampler(pool, opts);
  sampler.start();
  std::vector<std::thread> stoppers;
  stoppers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    stoppers.emplace_back([&sampler] { sampler.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(sampler.running());
  sampler.stop();  // and again after the dust settles
  // A fully-stopped sampler restarts cleanly.
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.stop();
  EXPECT_FALSE(sampler.running());
}

TEST(Sampler, StopRacesMetricsExportSafely) {
  SamplerTestGuard guard;
  par::ThreadPool pool(2);
  obs::SamplerOptions opts;
  opts.interval = std::chrono::milliseconds(1);
  obs::Sampler sampler(pool, opts);
  sampler.start();
  const RunResult result;  // empty run: the race is about the sampler reads
  std::thread exporter([&result, &sampler] {
    for (int i = 0; i < 20; ++i) {
      std::ostringstream out;
      obs::write_metrics_json(result, out, &sampler);
      EXPECT_NE(out.str().find("\"sampler\""), std::string::npos);
    }
  });
  sampler.stop();
  exporter.join();
  EXPECT_FALSE(sampler.running());
  // Post-stop exports still see the run's accumulated summary.
  std::ostringstream out;
  obs::write_metrics_json(result, out, &sampler);
  EXPECT_NE(out.str().find("\"schema\": \"pmpr-metrics-v4\""),
            std::string::npos);
}

TEST(Sampler, StopRacesFlightRecorderDrainSafely) {
  SamplerTestGuard guard;
  const bool recorder = obs::set_flight_recorder_enabled(false);
  obs::clear_flight_recorder();
  obs::set_flight_recorder_enabled(true);
  par::ThreadPool pool(2);
  obs::SamplerOptions opts;
  opts.interval = std::chrono::milliseconds(1);
  obs::Sampler sampler(pool, opts);
  sampler.start();
  for (std::uint64_t i = 0; i < 64; ++i) {
    obs::fr_record(obs::FrEvent::kMark, "sampler.test.race", i);
  }
  // Drains and stops race; the drain-exactly-once partition must hold.
  std::atomic<std::size_t> drained_total{0};
  std::vector<std::thread> racers;
  racers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    racers.emplace_back([&drained_total, &sampler] {
      sampler.stop();
      std::size_t mine = 0;
      for (const obs::FlightEvent& e : obs::drain_flight_recorder()) {
        if (e.name == "sampler.test.race") ++mine;
      }
      // relaxed: joined below before the total is read.
      drained_total.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : racers) t.join();
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(drained_total.load(), 64u);
  obs::clear_flight_recorder();
  obs::set_flight_recorder_enabled(recorder);
}

}  // namespace
}  // namespace pmpr
