// Deliberately-dying driver for ci/crash_smoke.sh. Two modes:
//
//   crash_probe segv  <dump_dir>                — installs the crash
//     handler, enables the flight recorder, and dereferences a null
//     pointer from a sink callback a few windows into a postmortem run.
//     The process must die by SIGSEGV *after* leaving a parseable
//     pmpr-crash-<pid>.json behind; reaching the end of main is a bug
//     (exit code 7 so the script can tell "didn't crash" from "crashed
//     wrong").
//
//   crash_probe stall <dump_dir> [watchdog_ms]  — arms the watchdog and
//     makes one sink callback sleep ~8x past the stall threshold. The
//     watchdog must fire mid-sleep and write pmpr-watchdog-<pid>.json
//     naming the stalled phase (window.sink); the run then completes and
//     the probe exits 0.
//
// Lives under tests/tools (not scanned by pmpr-lint's src gate): the
// null-deref and bare sleep below are the whole point of the fixture.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "pmpr.hpp"

using namespace pmpr;

namespace {

/// Sink that faults or stalls on one window, passing the rest through.
class MisbehavingSink final : public ResultSink {
 public:
  enum class Mode { kSegv, kStall };

  MisbehavingSink(Mode mode, std::chrono::milliseconds stall)
      : mode_(mode), stall_(stall) {}

  void consume_dense(std::size_t window, std::span<const double>) override {
    misbehave(window);
  }
  void consume_mapped(std::size_t window, std::span<const VertexId>,
                      std::span<const double>) override {
    misbehave(window);
  }

 private:
  void misbehave(std::size_t window) {
    if (window < 2 || fired_.exchange(true)) return;
    if (mode_ == Mode::kSegv) {
      // The induced fault: a load through null, mid-run, with phase spans
      // and window_done breadcrumbs already in the flight recorder.
      volatile int* null_ptr = nullptr;
      std::printf("crash_probe: faulting in window %zu\n", window);
      std::fflush(stdout);
      (void)*null_ptr;
    } else {
      std::printf("crash_probe: stalling window %zu for %lld ms\n", window,
                  static_cast<long long>(stall_.count()));
      std::fflush(stdout);
      std::this_thread::sleep_for(stall_);
    }
  }

  const Mode mode_;
  const std::chrono::milliseconds stall_;
  std::atomic<bool> fired_{false};
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: crash_probe <segv|stall> <dump_dir> [watchdog_ms]\n");
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dump_dir = argv[2];
  const long watchdog_ms = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 300;
  if (mode != "segv" && mode != "stall") {
    std::fprintf(stderr, "crash_probe: unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  obs::set_counters_enabled(true);
  obs::set_flight_recorder_enabled(true);
  obs::set_thread_name("main");

  std::unique_ptr<obs::Watchdog> watchdog;
  if (mode == "segv") {
    obs::CrashHandlerOptions crash_opts;
    crash_opts.dump_dir = dump_dir;
    if (!obs::install_crash_handler(crash_opts)) {
      std::fprintf(stderr, "crash_probe: handler install failed\n");
      return 2;
    }
    std::printf("crash_probe: report path %s\n",
                obs::crash_report_path().c_str());
  } else {
    obs::WatchdogOptions wd_opts;
    wd_opts.stall_threshold = std::chrono::milliseconds(watchdog_ms);
    wd_opts.dump_dir = dump_dir;
    watchdog = std::make_unique<obs::Watchdog>(wd_opts);
    watchdog->start();
  }

  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name("wiki-talk"), 0.002);
  const TemporalEdgeList events = gen::generate(spec, 42);
  const WindowSpec windows = WindowSpec::cover_capped(
      events.min_time(), events.max_time(), 90 * duration::kDay, 86'400, 16);

  MisbehavingSink sink(mode == "segv" ? MisbehavingSink::Mode::kSegv
                                      : MisbehavingSink::Mode::kStall,
                       std::chrono::milliseconds(watchdog_ms * 8));
  PostmortemConfig config = suggest_config_for(events, windows);
  // SpMV keeps the sink site inside the "window.sink" phase (SpMM sinks
  // under "batch.sink"), so the stall dump's phase name is deterministic.
  config.kernel = KernelKind::kSpmv;
  const RunResult result = run_postmortem(events, windows, sink, config);

  if (mode == "segv") {
    // Unreachable when the fault fired; reaching it means the probe is
    // broken (too few windows, sink never called, ...).
    std::fprintf(stderr, "crash_probe: segv mode survived the run (%zu "
                         "windows)\n",
                 result.num_windows);
    return 7;
  }

  watchdog->stop();
  if (watchdog->fires() == 0) {
    std::fprintf(stderr, "crash_probe: watchdog never fired\n");
    return 7;
  }
  std::printf("crash_probe: stall mode done, %llu watchdog fire(s) over %zu "
              "windows\n",
              static_cast<unsigned long long>(watchdog->fires()),
              result.num_windows);
  return 0;
}
