// Exception semantics of the runtime: a throwing task must surface from
// wait()/parallel_for on the calling thread, after the whole group drains,
// without deadlocking or leaking tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "par/parallel_for.hpp"
#include "par/task_group.hpp"

namespace pmpr::par {
namespace {

TEST(ParExceptions, TaskExceptionRethrownFromWait) {
  ThreadPool pool(2);
  WaitGroup wg;
  wg.add(1);
  pool.submit([] { throw std::runtime_error("boom"); }, wg);
  EXPECT_THROW(pool.wait(wg), std::runtime_error);
}

TEST(ParExceptions, ExceptionMessagePreserved) {
  ThreadPool pool(2);
  WaitGroup wg;
  wg.add(1);
  pool.submit([] { throw std::runtime_error("specific message"); }, wg);
  try {
    pool.wait(wg);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(ParExceptions, OtherTasksStillComplete) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add(1);
    pool.submit(
        [&ran, i] {
          if (i == 50) throw std::logic_error("one bad task");
          ran.fetch_add(1);
        },
        wg);
  }
  EXPECT_THROW(pool.wait(wg), std::logic_error);
  EXPECT_EQ(ran.load(), 99);  // every non-throwing task ran
}

TEST(ParExceptions, OnlyFirstExceptionSurfaces) {
  ThreadPool pool(2);
  WaitGroup wg;
  for (int i = 0; i < 10; ++i) {
    wg.add(1);
    pool.submit([] { throw std::runtime_error("any"); }, wg);
  }
  // All ten throw; exactly one must be delivered and the wait must return.
  EXPECT_THROW(pool.wait(wg), std::runtime_error);
}

TEST(ParExceptions, ParallelForPropagates) {
  ThreadPool pool(2);
  ForOptions opts{Partitioner::kSimple, 1, &pool};
  EXPECT_THROW(parallel_for(0, 100, opts,
                            [](std::size_t i) {
                              if (i == 37) throw std::out_of_range("i=37");
                            }),
               std::out_of_range);
}

TEST(ParExceptions, ParallelForSmallRangeInlinePathPropagates) {
  // Ranges at or below the grain run inline on the caller.
  EXPECT_THROW(
      parallel_for(0, 1, {}, [](std::size_t) { throw std::bad_alloc(); }),
      std::bad_alloc);
}

TEST(ParExceptions, TaskGroupWaitThrows) {
  TaskGroup group;
  group.run([] { throw std::runtime_error("from group"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ParExceptions, TaskGroupDestructorSwallows) {
  // Must not terminate the process.
  {
    TaskGroup group;
    group.run([] { throw std::runtime_error("dropped"); });
  }
  SUCCEED();
}

TEST(ParExceptions, PoolUsableAfterException) {
  ThreadPool pool(2);
  {
    WaitGroup wg;
    wg.add(1);
    pool.submit([] { throw std::runtime_error("first batch"); }, wg);
    EXPECT_THROW(pool.wait(wg), std::runtime_error);
  }
  std::atomic<int> ran{0};
  WaitGroup wg2;
  for (int i = 0; i < 100; ++i) {
    wg2.add(1);
    pool.submit([&] { ran.fetch_add(1); }, wg2);
  }
  pool.wait(wg2);
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace pmpr::par
