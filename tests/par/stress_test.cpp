// Stress tests for the work-stealing runtime: randomized fork graphs,
// concurrent external submitters, deep nesting, and repeated pool
// construction — the failure modes that deadlock or drop tasks in buggy
// schedulers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "par/parallel_for.hpp"
#include "par/task_group.hpp"
#include "util/rng.hpp"

namespace pmpr::par {
namespace {

TEST(ParStress, RandomizedForkJoinGraph) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> work{0};

  // Each task randomly spawns 0-3 children up to a depth limit; total task
  // count is checked against an deterministic replay of the same decisions.
  std::function<void(TaskGroup&, std::uint64_t, int)> spawn =
      [&](TaskGroup& group, std::uint64_t seed, int depth) {
        work.fetch_add(1, std::memory_order_relaxed);
        if (depth >= 6) return;
        Xoshiro256 rng(seed);
        const auto children = rng.bounded(4);
        for (std::uint64_t c = 0; c < children; ++c) {
          const std::uint64_t child_seed = rng();
          group.run([&, child_seed, depth] {
            TaskGroup inner(&pool);
            spawn(inner, child_seed, depth + 1);
            inner.wait();
          });
        }
      };

  std::function<std::uint64_t(std::uint64_t, int)> count =
      [&](std::uint64_t seed, int depth) -> std::uint64_t {
    std::uint64_t total = 1;
    if (depth >= 6) return total;
    Xoshiro256 rng(seed);
    const auto children = rng.bounded(4);
    for (std::uint64_t c = 0; c < children; ++c) {
      total += count(rng(), depth + 1);
    }
    return total;
  };

  TaskGroup root(&pool);
  spawn(root, 42, 0);
  root.wait();
  EXPECT_EQ(work.load(), count(42, 0));
}

TEST(ParStress, ConcurrentExternalSubmitters) {
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 2000;
  std::atomic<int> done{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      WaitGroup wg;
      for (int i = 0; i < kTasksEach; ++i) {
        wg.add(1);
        pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); },
                    wg);
      }
      pool.wait(wg);
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(done.load(), kSubmitters * kTasksEach);
}

TEST(ParStress, DeeplyNestedParallelFor) {
  ThreadPool pool(2);
  ForOptions opts{Partitioner::kSimple, 1, &pool};
  std::atomic<int> leaves{0};
  parallel_for(0, 4, opts, [&](std::size_t) {
    parallel_for(0, 4, opts, [&](std::size_t) {
      parallel_for(0, 4, opts, [&](std::size_t) {
        parallel_for(0, 4, opts,
                     [&](std::size_t) { leaves.fetch_add(1); });
      });
    });
  });
  EXPECT_EQ(leaves.load(), 256);
}

TEST(ParStress, ManyShortLivedPools) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    WaitGroup wg;
    for (int i = 0; i < 50; ++i) {
      wg.add(1);
      pool.submit([&] { ran.fetch_add(1); }, wg);
    }
    pool.wait(wg);
    ASSERT_EQ(ran.load(), 50) << "round " << round;
  }
}

TEST(ParStress, UnevenWorkloadsBalance) {
  // One huge item among many tiny ones: every index must still run once
  // under every partitioner.
  ThreadPool pool(3);
  for (const auto partitioner :
       {Partitioner::kAuto, Partitioner::kSimple, Partitioner::kStatic}) {
    std::atomic<std::uint64_t> total{0};
    ForOptions opts{partitioner, 1, &pool};
    parallel_for(0, 200, opts, [&](std::size_t i) {
      std::uint64_t spin = i == 0 ? 20000 : 10;
      volatile std::uint64_t x = 0;
      for (std::uint64_t k = 0; k < spin; ++k) x = x + k;
      total.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 200u) << to_string(partitioner);
  }
}

TEST(ParStress, WaitGroupReuseAcrossBatches) {
  ThreadPool pool(2);
  WaitGroup wg;
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 100; ++i) {
      wg.add(1);
      pool.submit([&] { ran.fetch_add(1); }, wg);
    }
    pool.wait(wg);
    ASSERT_EQ(ran.load(), (batch + 1) * 100);
  }
}

}  // namespace
}  // namespace pmpr::par
