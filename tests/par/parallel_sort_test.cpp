#include "par/parallel_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace pmpr {
namespace {

TEST(ParallelSort, SortsLargeRandomVector) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> v(200'000);
  for (auto& x : v) x = rng();
  std::vector<std::uint64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(v);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, SmallVectorsUseSequentialPath) {
  std::vector<int> v{5, 3, 1, 4, 2};
  parallel_sort(v);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ParallelSort, EmptyAndSingle) {
  std::vector<int> empty;
  parallel_sort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  parallel_sort(one);
  EXPECT_EQ(one[0], 7);
}

TEST(ParallelSort, CustomComparator) {
  Xoshiro256 rng(3);
  std::vector<int> v(100'000);
  for (auto& x : v) x = static_cast<int>(rng.bounded(1000));
  parallel_sort(v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(ParallelSort, StabilityPreserved) {
  // Sort pairs by first only; second must keep input order within ties.
  struct Item {
    int key;
    int seq;
  };
  Xoshiro256 rng(5);
  std::vector<Item> v(100'000);
  for (int i = 0; i < static_cast<int>(v.size()); ++i) {
    v[static_cast<std::size_t>(i)] = {static_cast<int>(rng.bounded(50)), i};
  }
  parallel_sort(v, [](const Item& a, const Item& b) { return a.key < b.key; },
                nullptr, 1 << 10);
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].seq, v[i].seq) << "stability violated at " << i;
    }
  }
}

TEST(ParallelSort, TinyCutoffForcesParallelPath) {
  Xoshiro256 rng(7);
  std::vector<std::uint32_t> v(50'000);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng());
  std::vector<std::uint32_t> expected = v;
  std::stable_sort(expected.begin(), expected.end());
  par::ThreadPool pool(3);
  parallel_sort(v, std::less<std::uint32_t>{}, &pool, 64);
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  std::vector<int> sorted(100'000);
  std::iota(sorted.begin(), sorted.end(), 0);
  std::vector<int> v = sorted;
  parallel_sort(v, std::less<int>{}, nullptr, 1 << 10);
  EXPECT_EQ(v, sorted);

  std::vector<int> reversed(sorted.rbegin(), sorted.rend());
  parallel_sort(reversed, std::less<int>{}, nullptr, 1 << 10);
  EXPECT_EQ(reversed, sorted);
}

}  // namespace
}  // namespace pmpr
