#include "par/partitioner.hpp"

#include <gtest/gtest.h>

namespace pmpr::par {
namespace {

TEST(Partitioner, ToStringRoundTrip) {
  EXPECT_EQ(to_string(Partitioner::kAuto), "auto");
  EXPECT_EQ(to_string(Partitioner::kSimple), "simple");
  EXPECT_EQ(to_string(Partitioner::kStatic), "static");
  EXPECT_EQ(parse_partitioner("auto"), Partitioner::kAuto);
  EXPECT_EQ(parse_partitioner("simple"), Partitioner::kSimple);
  EXPECT_EQ(parse_partitioner("static"), Partitioner::kStatic);
}

TEST(Partitioner, UnknownNameDefaultsToAuto) {
  EXPECT_EQ(parse_partitioner("bogus"), Partitioner::kAuto);
}

TEST(Partitioner, SimpleHonorsGrainExactly) {
  EXPECT_EQ(effective_grain(Partitioner::kSimple, 10000, 7, 8), 7u);
  EXPECT_EQ(effective_grain(Partitioner::kSimple, 10, 2048, 8), 2048u);
}

TEST(Partitioner, GrainZeroClampsToOne) {
  EXPECT_EQ(effective_grain(Partitioner::kSimple, 100, 0, 4), 1u);
}

TEST(Partitioner, AutoNeverSplitsBelowRequestedGrain) {
  for (std::size_t grain : {1u, 4u, 64u, 2048u}) {
    EXPECT_GE(effective_grain(Partitioner::kAuto, 100000, grain, 8), grain);
  }
}

TEST(Partitioner, AutoCreatesSeveralChunksPerThread) {
  const std::size_t n = 80000;
  const std::size_t threads = 10;
  const std::size_t g = effective_grain(Partitioner::kAuto, n, 1, threads);
  // ~8 chunks per thread.
  EXPECT_EQ(g, n / (8 * threads));
}

TEST(Partitioner, StaticCreatesAtMostThreadsChunks) {
  const std::size_t n = 1000;
  const std::size_t threads = 8;
  const std::size_t g = effective_grain(Partitioner::kStatic, n, 1, threads);
  EXPECT_EQ(g, (n + threads - 1) / threads);
  EXPECT_LE((n + g - 1) / g, threads);
}

TEST(Partitioner, StaticHonorsLargerGrain) {
  EXPECT_EQ(effective_grain(Partitioner::kStatic, 100, 1000, 4), 1000u);
}

TEST(Partitioner, ZeroThreadsClampsToOne) {
  EXPECT_EQ(effective_grain(Partitioner::kStatic, 100, 1, 0), 100u);
}

TEST(Partitioner, TinyRangeYieldsAtLeastOne) {
  EXPECT_GE(effective_grain(Partitioner::kAuto, 1, 1, 48), 1u);
  EXPECT_GE(effective_grain(Partitioner::kStatic, 1, 1, 48), 1u);
}

}  // namespace
}  // namespace pmpr::par
