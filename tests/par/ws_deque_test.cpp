#include "par/ws_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pmpr::par {
namespace {

TEST(WsDeque, PopFromEmptyReturnsNull) {
  WsDeque<int> dq;
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WsDeque, StealFromEmptyReturnsNull) {
  WsDeque<int> dq;
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDeque, PushPopIsLifo) {
  WsDeque<int> dq;
  int a = 1;
  int b = 2;
  int c = 3;
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.pop(), &c);
  EXPECT_EQ(dq.pop(), &b);
  EXPECT_EQ(dq.pop(), &a);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WsDeque, StealIsFifo) {
  WsDeque<int> dq;
  int a = 1;
  int b = 2;
  dq.push(&a);
  dq.push(&b);
  EXPECT_EQ(dq.steal(), &a);
  EXPECT_EQ(dq.steal(), &b);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDeque, MixedPopAndSteal) {
  WsDeque<int> dq;
  int vals[4] = {0, 1, 2, 3};
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.steal(), &vals[0]);  // oldest
  EXPECT_EQ(dq.pop(), &vals[3]);    // newest
  EXPECT_EQ(dq.steal(), &vals[1]);
  EXPECT_EQ(dq.pop(), &vals[2]);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  WsDeque<int> dq(16);
  std::vector<int> vals(1000);
  std::iota(vals.begin(), vals.end(), 0);
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.approx_depth(), 1000u);
  for (int i = 999; i >= 0; --i) {
    ASSERT_EQ(dq.pop(), &vals[static_cast<std::size_t>(i)]);
  }
}

TEST(WsDeque, SizeApprox) {
  WsDeque<int> dq;
  int v = 0;
  EXPECT_EQ(dq.approx_depth(), 0u);
  dq.push(&v);
  EXPECT_EQ(dq.approx_depth(), 1u);
  dq.pop();
  EXPECT_EQ(dq.approx_depth(), 0u);
}

// Concurrency: one owner pushing/popping, several thieves stealing. Every
// task must be executed exactly once. (On a single-core box this still
// exercises interleavings via preemption.)
TEST(WsDeque, ConcurrentStealDeliversEachTaskOnce) {
  constexpr int kTasks = 20000;
  constexpr int kThieves = 3;
  WsDeque<int> dq;
  std::vector<int> tasks(kTasks);
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* task = dq.steal()) {
          hits[static_cast<std::size_t>(task - tasks.data())].fetch_add(1);
        }
      }
      // Final drain.
      while (int* task = dq.steal()) {
        hits[static_cast<std::size_t>(task - tasks.data())].fetch_add(1);
      }
    });
  }

  // Owner: push everything, then pop what's left.
  for (int i = 0; i < kTasks; ++i) {
    dq.push(&tasks[static_cast<std::size_t>(i)]);
    if (i % 7 == 0) {
      if (int* task = dq.pop()) {
        hits[static_cast<std::size_t>(task - tasks.data())].fetch_add(1);
      }
    }
  }
  while (int* task = dq.pop()) {
    hits[static_cast<std::size_t>(task - tasks.data())].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << "task " << i << " executed wrong number of times";
  }
}

}  // namespace
}  // namespace pmpr::par
