#include "par/parallel_for.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "par/task_group.hpp"

namespace pmpr::par {
namespace {

/// Parameterized over (partitioner, grain): every combination must execute
/// each index exactly once — the core scheduling invariant.
class ParallelForProperty
    : public ::testing::TestWithParam<std::tuple<Partitioner, std::size_t>> {};

TEST_P(ParallelForProperty, EveryIndexExactlyOnce) {
  const auto [partitioner, grain] = GetParam();
  ThreadPool pool(3);
  constexpr std::size_t kN = 10007;  // prime: exercises ragged chunking
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ForOptions opts{partitioner, grain, &pool};
  parallel_for(0, kN, opts,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForProperty, RangeChunksAreDisjointAndCover) {
  const auto [partitioner, grain] = GetParam();
  ThreadPool pool(3);
  constexpr std::size_t kN = 4999;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  std::atomic<std::size_t> chunks{0};
  ForOptions opts{partitioner, grain, &pool};
  parallel_for_range(0, kN, opts, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    chunks.fetch_add(1);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_GE(chunks.load(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitionersAndGrains, ParallelForProperty,
    ::testing::Combine(::testing::Values(Partitioner::kAuto,
                                         Partitioner::kSimple,
                                         Partitioner::kStatic),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{64}, std::size_t{2048},
                                         std::size_t{100000})),
    [](const auto& pinfo) {
      return std::string(to_string(std::get<0>(pinfo.param))) + "_grain" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for_range(5, 5, {}, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for_range(7, 3, {}, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleElementRange) {
  std::atomic<int> calls{0};
  parallel_for(0, 1, {}, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, NonZeroBegin) {
  std::mutex m;
  std::set<std::size_t> seen;
  parallel_for(100, 200, {}, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(m);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 100u);
  EXPECT_EQ(*seen.rbegin(), 199u);
}

TEST(ParallelFor, NestedParallelForCompletes) {
  ThreadPool pool(3);
  ForOptions opts{Partitioner::kSimple, 1, &pool};
  std::atomic<int> total{0};
  parallel_for(0, 20, opts, [&](std::size_t) {
    parallel_for(0, 50, opts, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 20 * 50);
}

TEST(ParallelReduce, SumsCorrectly) {
  constexpr std::size_t kN = 100000;
  const std::uint64_t got = parallel_reduce(
      0, kN, std::uint64_t{0}, {},
      [](std::size_t lo, std::size_t hi) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const int got = parallel_reduce(
      3, 3, 42, {}, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 42);
}

TEST(ParallelReduce, WorksUnderAllPartitioners) {
  for (const auto p :
       {Partitioner::kAuto, Partitioner::kSimple, Partitioner::kStatic}) {
    ForOptions opts{p, 16, nullptr};
    const double got = parallel_reduce(
        0, 1000, 0.0, opts,
        [](std::size_t lo, std::size_t hi) {
          return static_cast<double>(hi - lo);
        },
        [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(got, 1000.0) << to_string(p);
  }
}

TEST(ParallelReduceSlots, SumsCorrectly) {
  constexpr std::size_t kN = 100000;
  const std::uint64_t got = parallel_reduce_slots(
      0, kN, std::uint64_t{0}, {},
      [](std::size_t lo, std::size_t hi) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ParallelReduceSlots, EmptyRangeReturnsIdentity) {
  const int got = parallel_reduce_slots(
      7, 7, 42, {}, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 42);
}

TEST(ParallelReduceSlots, ArrayAccumulator) {
  // The lane-residual use case: a fixed-width array merged element-wise
  // without a mutex.
  constexpr std::size_t kLanes = 8;
  using Acc = std::array<double, kLanes>;
  constexpr std::size_t kN = 4096;
  ThreadPool pool(3);
  ForOptions opts{Partitioner::kAuto, 16, &pool};
  const Acc got = parallel_reduce_slots(
      0, kN, Acc{}, opts,
      [](std::size_t lo, std::size_t hi) {
        Acc a{};
        for (std::size_t i = lo; i < hi; ++i) a[i % kLanes] += 1.0;
        return a;
      },
      [](Acc a, const Acc& b) {
        for (std::size_t k = 0; k < kLanes; ++k) a[k] += b[k];
        return a;
      });
  for (std::size_t k = 0; k < kLanes; ++k) {
    EXPECT_DOUBLE_EQ(got[k], static_cast<double>(kN / kLanes)) << "lane " << k;
  }
}

TEST(ParallelReduceSlots, ExternalPoolAndAllPartitioners) {
  ThreadPool pool(4);
  for (const auto p :
       {Partitioner::kAuto, Partitioner::kSimple, Partitioner::kStatic}) {
    ForOptions opts{p, 8, &pool};
    const double got = parallel_reduce_slots(
        0, 1000, 0.0, opts,
        [](std::size_t lo, std::size_t hi) {
          return static_cast<double>(hi - lo);
        },
        [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(got, 1000.0) << to_string(p);
  }
}

TEST(ParallelReduceSlots, NestedInsideParallelFor) {
  // Slot indexing must stay correct when the reduce runs from inside a
  // worker of the same pool (the nested-parallelism path in the runner).
  ThreadPool pool(3);
  ForOptions outer{Partitioner::kSimple, 1, &pool};
  std::vector<std::uint64_t> results(8, 0);
  parallel_for(0, results.size(), outer, [&](std::size_t i) {
    ForOptions inner{Partitioner::kAuto, 16, &pool};
    results[i] = parallel_reduce_slots(
        0, 1000, std::uint64_t{0}, inner,
        [](std::size_t lo, std::size_t hi) {
          return static_cast<std::uint64_t>(hi - lo);
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  });
  for (const std::uint64_t r : results) EXPECT_EQ(r, 1000u);
}

TEST(TaskGroup, RunsAllTasks) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    group.run([&] { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskGroup, WaitIsReentrant) {
  TaskGroup group;
  std::atomic<int> ran{0};
  group.run([&] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 1);
  group.run([&] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskGroup, DestructorWaits) {
  std::atomic<int> ran{0};
  {
    TaskGroup group;
    for (int i = 0; i < 32; ++i) group.run([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskGroup, NestedGroups) {
  std::atomic<int> ran{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    outer.run([&] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) inner.run([&] { ran.fetch_add(1); });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace pmpr::par
