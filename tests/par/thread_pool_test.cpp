#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pmpr::par {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.add(1);
  pool.submit([&] { ran.fetch_add(1); }, wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 5000;
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < kTasks; ++i) {
    wg.add(1);
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); }, wg);
  }
  pool.wait(wg);
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add(1);
    pool.submit([&] { ran.fetch_add(1); }, wg);
  }
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, TasksCanSpawnSubtasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.add(1);
  pool.submit(
      [&] {
        for (int i = 0; i < 50; ++i) {
          wg.add(1);
          pool.submit([&] { ran.fetch_add(1); }, wg);
        }
        ran.fetch_add(1);
      },
      wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlockOnOneThread) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  WaitGroup outer;
  outer.add(1);
  pool.submit(
      [&] {
        WaitGroup inner;
        for (int i = 0; i < 10; ++i) {
          inner.add(1);
          pool.submit([&] { ran.fetch_add(1); }, inner);
        }
        pool.wait(inner);  // must help, not deadlock
        ran.fetch_add(1);
      },
      outer);
  pool.wait(outer);
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, CurrentWorkerIndexOutsidePoolIsMinusOne) {
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
}

TEST(ThreadPool, CurrentWorkerIndexInsideWorkerIsValid) {
  // Tasks run either on a pool worker (index in [0, 3)) or on the external
  // thread helping inside wait() (index -1). Nothing else is legal.
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add(1);
    pool.submit(
        [&] {
          const int idx = ThreadPool::current_worker_index();
          if (idx < -1 || idx >= 3) bad.fetch_add(1);
        },
        wg);
  }
  pool.wait(wg);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPool, MultipleWaitGroupsIndependent) {
  ThreadPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  WaitGroup wga;
  WaitGroup wgb;
  for (int i = 0; i < 100; ++i) {
    wga.add(1);
    pool.submit([&] { a.fetch_add(1); }, wga);
    wgb.add(1);
    pool.submit([&] { b.fetch_add(1); }, wgb);
  }
  pool.wait(wga);
  EXPECT_EQ(a.load(), 100);
  pool.wait(wgb);
  EXPECT_EQ(b.load(), 100);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  WaitGroup wg;
  std::atomic<int> ran{0};
  wg.add(1);
  pool.submit([&] { ran.fetch_add(1); }, wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace pmpr::par
