#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace pmpr::par {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.add(1);
  pool.submit([&] { ran.fetch_add(1); }, wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 5000;
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < kTasks; ++i) {
    wg.add(1);
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); }, wg);
  }
  pool.wait(wg);
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add(1);
    pool.submit([&] { ran.fetch_add(1); }, wg);
  }
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, TasksCanSpawnSubtasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  WaitGroup wg;
  wg.add(1);
  pool.submit(
      [&] {
        for (int i = 0; i < 50; ++i) {
          wg.add(1);
          pool.submit([&] { ran.fetch_add(1); }, wg);
        }
        ran.fetch_add(1);
      },
      wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlockOnOneThread) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  WaitGroup outer;
  outer.add(1);
  pool.submit(
      [&] {
        WaitGroup inner;
        for (int i = 0; i < 10; ++i) {
          inner.add(1);
          pool.submit([&] { ran.fetch_add(1); }, inner);
        }
        pool.wait(inner);  // must help, not deadlock
        ran.fetch_add(1);
      },
      outer);
  pool.wait(outer);
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, CurrentWorkerIndexOutsidePoolIsMinusOne) {
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);
}

TEST(ThreadPool, CurrentWorkerIndexInsideWorkerIsValid) {
  // Tasks run either on a pool worker (index in [0, 3)) or on the external
  // thread helping inside wait() (index -1). Nothing else is legal.
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add(1);
    pool.submit(
        [&] {
          const int idx = ThreadPool::current_worker_index();
          if (idx < -1 || idx >= 3) bad.fetch_add(1);
        },
        wg);
  }
  pool.wait(wg);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPool, MultipleWaitGroupsIndependent) {
  ThreadPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  WaitGroup wga;
  WaitGroup wgb;
  for (int i = 0; i < 100; ++i) {
    wga.add(1);
    pool.submit([&] { a.fetch_add(1); }, wga);
    wgb.add(1);
    pool.submit([&] { b.fetch_add(1); }, wgb);
  }
  pool.wait(wga);
  EXPECT_EQ(a.load(), 100);
  pool.wait(wgb);
  EXPECT_EQ(b.load(), 100);
}

TEST(ThreadPool, IntrospectionGaugesAreSane) {
  // The monitoring accessors (obs::Sampler's view of the pool) must be
  // callable from a non-worker thread while workers churn, and must report
  // in-range advisory values. Run under TSan via ci/sanitize.sh.
  ThreadPool pool(3);
  EXPECT_EQ(pool.approx_queued(0), 0u);
  EXPECT_EQ(pool.approx_queued(99), 0u);  // out of range -> 0
  EXPECT_LE(pool.parked_workers(), pool.num_threads());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t total = pool.approx_total_queued();
      std::size_t per = 0;
      for (std::size_t i = 0; i < pool.num_threads(); ++i) {
        per += pool.approx_queued(i);
      }
      // Deques drain concurrently, so per-deque sums may lag the total;
      // both must stay plausible (bounded by what was ever submitted).
      EXPECT_LE(per, 100000u);
      EXPECT_LE(total, 100000u);
      EXPECT_LE(pool.parked_workers(), pool.num_threads());
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  WaitGroup wg;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      wg.add(1);
      pool.submit(
          [] {
            volatile int x = 0;
            for (int k = 0; k < 100; ++k) x = x + k;
          },
          wg);
    }
    pool.wait(wg);
  }
  // Under a loaded machine the monitor may not get scheduled during the
  // brief churn; insist on one full observation before stopping it.
  while (reads.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  monitor.join();
  // Quiesced pool: nothing queued anywhere.
  EXPECT_EQ(pool.approx_total_queued(), 0u);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  WaitGroup wg;
  std::atomic<int> ran{0};
  wg.add(1);
  pool.submit([&] { ran.fetch_add(1); }, wg);
  pool.wait(wg);
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace pmpr::par
