#include "analysis/degree_distribution.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/surrogates.hpp"
#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

TEST(DegreeDistribution, MatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(3, 40, 1200, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    const DegreeDistribution got = degree_distribution_window(
        part, spec.start(w), spec.end(w));

    std::map<VertexId, std::set<VertexId>> und;
    std::set<VertexId> active;
    for (const auto& [u, v] :
         test::brute_window_edges(events, spec.start(w), spec.end(w))) {
      active.insert(u);
      active.insert(v);
      if (u != v) {
        und[u].insert(v);
        und[v].insert(u);
      }
    }
    EXPECT_EQ(got.num_active, active.size()) << "w=" << w;
    std::map<std::size_t, std::size_t> hist;
    std::size_t degree_sum = 0;
    std::uint32_t max_deg = 0;
    for (const VertexId v : active) {
      const std::size_t d = und[v].size();
      ++hist[d];
      degree_sum += d;
      max_deg = std::max<std::uint32_t>(max_deg,
                                        static_cast<std::uint32_t>(d));
    }
    EXPECT_EQ(got.max_degree, max_deg) << "w=" << w;
    if (!active.empty()) {
      EXPECT_NEAR(got.mean_degree,
                  static_cast<double>(degree_sum) /
                      static_cast<double>(active.size()),
                  1e-12);
    }
    for (const auto& [d, count] : hist) {
      ASSERT_LT(d, got.histogram.size());
      ASSERT_EQ(got.histogram[d], count) << "w=" << w << " d=" << d;
    }
  }
}

TEST(DegreeDistribution, TopShareRegularGraphIsProportional) {
  // Directed cycle -> undirected 2-regular: top 10% holds ~10% of mass.
  TemporalEdgeList events;
  const VertexId n = 100;
  for (VertexId v = 0; v < n; ++v) events.add(v, (v + 1) % n, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const DegreeDistribution d = degree_distribution_window(set.part(0), 0, 1);
  EXPECT_NEAR(d.top_share(0.1), 0.1, 1e-9);
  EXPECT_NEAR(d.mean_degree, 2.0, 1e-12);
}

TEST(DegreeDistribution, TopShareStarIsConcentrated) {
  TemporalEdgeList events;
  for (VertexId v = 1; v <= 50; ++v) events.add(v, 0, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const DegreeDistribution d = degree_distribution_window(set.part(0), 0, 1);
  // The hub (top ~2%) holds half the degree mass.
  EXPECT_NEAR(d.top_share(0.02), 0.5, 1e-9);
  EXPECT_EQ(d.max_degree, 50u);
}

TEST(DegreeDistribution, SurrogatesAreSkewed) {
  // The R-MAT surrogates must show power-law-ish concentration: top 1% of
  // vertices holding far more than 1% of degree mass.
  gen::DatasetSpec spec = gen::dataset_by_name("wiki-talk");
  spec.events = 30000;
  const TemporalEdgeList events = gen::generate(spec, 7);
  const WindowSpec windows{.t0 = events.min_time(),
                           .delta = events.max_time() - events.min_time(),
                           .sw = 1,
                           .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, windows, 1);
  const DegreeDistribution d = degree_distribution_window(
      set.part(0), windows.start(0), windows.end(0));
  EXPECT_GT(d.top_share(0.01), 0.05);
}

TEST(DegreeDistribution, EmptyWindow) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const DegreeDistribution d = degree_distribution_window(set.part(0), 0, 10);
  EXPECT_EQ(d.num_active, 0u);
  EXPECT_EQ(d.top_share(0.5), 0.0);
}

TEST(DegreeDistribution, OverWindowsParallelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(21, 50, 2000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 4000, 1500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 3);
  const auto seq = degree_over_windows(set);
  par::ForOptions opts{par::Partitioner::kAuto, 1, nullptr};
  const auto parl = degree_over_windows(set, &opts);
  ASSERT_EQ(seq.size(), parl.size());
  for (std::size_t w = 0; w < seq.size(); ++w) {
    EXPECT_EQ(seq[w].max_degree, parl[w].max_degree);
    EXPECT_DOUBLE_EQ(seq[w].mean_degree, parl[w].mean_degree);
    EXPECT_DOUBLE_EQ(seq[w].top1pct_share, parl[w].top1pct_share);
  }
}

}  // namespace
}  // namespace pmpr::analysis
