#include "analysis/closeness.hpp"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

/// Brute-force exact closeness on the undirected window graph (global ids).
std::map<VertexId, double> brute_closeness(const TemporalEdgeList& events,
                                           Timestamp ts, Timestamp te) {
  std::map<VertexId, std::set<VertexId>> adj;
  std::set<VertexId> active;
  for (const auto& [u, v] : test::brute_window_edges(events, ts, te)) {
    active.insert(u);
    active.insert(v);
    if (u != v) {
      adj[u].insert(v);
      adj[v].insert(u);
    }
  }
  std::map<VertexId, double> out;
  if (active.size() < 2) return out;
  const double n_minus_1 = static_cast<double>(active.size() - 1);
  for (const VertexId s : active) {
    // BFS from s.
    std::map<VertexId, std::uint32_t> dist;
    std::queue<VertexId> q;
    dist[s] = 0;
    q.push(s);
    std::uint64_t total = 0;
    std::size_t reached = 0;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      total += dist[v];
      ++reached;
      for (const VertexId u : adj[v]) {
        if (dist.count(u) == 0) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
      }
    }
    if (reached < 2) {
      out[s] = 0.0;
      continue;
    }
    const double r_minus_1 = static_cast<double>(reached - 1);
    out[s] = (r_minus_1 / static_cast<double>(total)) * (r_minus_1 / n_minus_1);
  }
  return out;
}

TEST(Closeness, ExactMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(5, 30, 400, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 2500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    const ClosenessResult got = closeness_window(
        part, spec.start(w), spec.end(w), ClosenessParams{});
    const auto ref = brute_closeness(events, spec.start(w), spec.end(w));
    EXPECT_EQ(got.num_active, ref.size()) << "w=" << w;
    for (const auto& [v, c] : ref) {
      const VertexId local = part.local_of(v);
      ASSERT_NE(local, kInvalidVertex);
      ASSERT_NEAR(got.score[local], c, 1e-12) << "w=" << w << " v=" << v;
    }
  }
}

TEST(Closeness, StarCenterIsMostCentral) {
  TemporalEdgeList events;
  for (VertexId v = 1; v <= 6; ++v) events.add(0, v, 5);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult r =
      closeness_window(set.part(0), 0, 10, ClosenessParams{});
  const VertexId center = set.part(0).local_of(0);
  for (VertexId v = 0; v < set.part(0).num_local(); ++v) {
    if (v != center) {
      EXPECT_GT(r.score[center], r.score[v]);
    }
  }
}

TEST(Closeness, PathMiddleBeatsEnds) {
  TemporalEdgeList events;
  for (VertexId v = 0; v + 1 < 7; ++v) events.add(v, v + 1, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult r =
      closeness_window(set.part(0), 0, 1, ClosenessParams{});
  EXPECT_GT(r.score[3], r.score[0]);
  EXPECT_GT(r.score[3], r.score[6]);
}

TEST(Closeness, SamplingAllSourcesEqualsExact) {
  const TemporalEdgeList events = test::random_events(9, 25, 300, 5000);
  const WindowSpec spec{.t0 = 0, .delta = 5000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult exact =
      closeness_window(set.part(0), 0, 5000, ClosenessParams{});
  ClosenessParams all;
  all.sample_sources = exact.num_active;  // >= active -> exact path
  const ClosenessResult sampled =
      closeness_window(set.part(0), 0, 5000, all);
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    ASSERT_DOUBLE_EQ(exact.score[v], sampled.score[v]);
  }
}

TEST(Closeness, SamplingApproximatesExactOrdering) {
  const TemporalEdgeList events = test::random_events(11, 60, 2500, 5000);
  const WindowSpec spec{.t0 = 0, .delta = 5000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult exact =
      closeness_window(set.part(0), 0, 5000, ClosenessParams{});
  ClosenessParams p;
  p.sample_sources = 20;
  const ClosenessResult approx = closeness_window(set.part(0), 0, 5000, p);
  EXPECT_EQ(approx.bfs_performed, 20u);
  // The exact top vertex should land near the top of the estimate.
  std::size_t exact_top = 0;
  for (std::size_t v = 1; v < exact.score.size(); ++v) {
    if (exact.score[v] > exact.score[exact_top]) exact_top = v;
  }
  std::size_t better = 0;
  for (std::size_t v = 0; v < approx.score.size(); ++v) {
    if (approx.score[v] > approx.score[exact_top]) ++better;
  }
  EXPECT_LT(better, exact.num_active / 4);
}

TEST(Closeness, FewerBfsWhenSampling) {
  const TemporalEdgeList events = test::random_events(13, 80, 2000, 5000);
  const WindowSpec spec{.t0 = 0, .delta = 5000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult exact =
      closeness_window(set.part(0), 0, 5000, ClosenessParams{});
  ClosenessParams p;
  p.sample_sources = 10;
  const ClosenessResult approx = closeness_window(set.part(0), 0, 5000, p);
  EXPECT_LT(approx.bfs_performed, exact.bfs_performed);
}

TEST(Closeness, EmptyAndSingletonWindows) {
  TemporalEdgeList events;
  events.add(0, 0, 5);  // self loop only
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const ClosenessResult r =
      closeness_window(set.part(0), 0, 10, ClosenessParams{});
  EXPECT_EQ(r.num_active, 1u);
  for (const double s : r.score) EXPECT_EQ(s, 0.0);
}

TEST(Closeness, OverWindowsReportsLeaders) {
  const TemporalEdgeList events = test::random_events(17, 40, 1500, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 2500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  const auto summaries =
      closeness_over_windows(set, ClosenessParams{});
  ASSERT_EQ(summaries.size(), spec.count);
  for (const auto& s : summaries) {
    if (s.num_active >= 2) {
      EXPECT_NE(s.top_vertex, kInvalidVertex);
      EXPECT_GT(s.top_score, 0.0);
    }
  }
}

}  // namespace
}  // namespace pmpr::analysis
