#include "analysis/undirected.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

TEST(UndirectedWindow, MatchesBruteForceSymmetrization) {
  const TemporalEdgeList events = test::random_events(5, 30, 1500, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 2500, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);

  for (std::size_t w = 0; w < spec.count; ++w) {
    const UndirectedWindow g =
        build_undirected_window(part, spec.start(w), spec.end(w));

    std::set<std::pair<VertexId, VertexId>> expect;
    for (const auto& [u, v] :
         test::brute_window_edges(events, spec.start(w), spec.end(w))) {
      if (u == v) continue;
      const VertexId gu = part.local_of(u);
      const VertexId gv = part.local_of(v);
      expect.emplace(std::min(gu, gv), std::max(gu, gv));
    }
    EXPECT_EQ(g.num_edges, expect.size()) << "w=" << w;

    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId v = 0; v < part.num_local(); ++v) {
      for (const VertexId u : g.neighbors(v)) {
        got.emplace(std::min(u, v), std::max(u, v));
      }
    }
    ASSERT_EQ(got, expect) << "w=" << w;
  }
}

TEST(UndirectedWindow, AdjacencyIsSymmetric) {
  const TemporalEdgeList events = test::random_events(7, 20, 600, 1000);
  const WindowSpec spec{.t0 = 0, .delta = 1000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const UndirectedWindow g =
      build_undirected_window(set.part(0), 0, 1000);
  for (VertexId v = 0; v < set.part(0).num_local(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      const auto back = g.neighbors(u);
      EXPECT_TRUE(std::find(back.begin(), back.end(), v) != back.end())
          << u << " -> " << v;
    }
  }
}

TEST(UndirectedWindow, SelfLoopsDropped) {
  TemporalEdgeList events;
  events.add(0, 0, 5);
  events.add(0, 1, 5);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const UndirectedWindow g = build_undirected_window(set.part(0), 0, 10);
  EXPECT_EQ(g.num_edges, 1u);
  EXPECT_EQ(g.degree[set.part(0).local_of(0)], 1u);
}

TEST(UndirectedWindow, BidirectionalPairIsOneEdge) {
  TemporalEdgeList events;
  events.add(0, 1, 5);
  events.add(1, 0, 6);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const UndirectedWindow g = build_undirected_window(set.part(0), 0, 10);
  EXPECT_EQ(g.num_edges, 1u);
}

TEST(UndirectedWindow, DegreesConsistentWithRows) {
  const TemporalEdgeList events = test::random_events(9, 40, 800, 1000);
  const WindowSpec spec{.t0 = 0, .delta = 1000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const UndirectedWindow g = build_undirected_window(set.part(0), 0, 1000);
  for (VertexId v = 0; v < set.part(0).num_local(); ++v) {
    EXPECT_EQ(g.degree[v], g.neighbors(v).size());
  }
}

}  // namespace
}  // namespace pmpr::analysis
