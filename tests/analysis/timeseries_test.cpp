#include "analysis/timeseries.hpp"

#include <gtest/gtest.h>

namespace pmpr::analysis {
namespace {

/// Builds a sink with explicit per-window scores.
StoreAllSink make_sink(
    const std::vector<std::vector<std::pair<VertexId, double>>>& windows) {
  StoreAllSink sink(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::vector<VertexId> ids;
    std::vector<double> pr;
    for (const auto& [v, s] : windows[w]) {
      ids.push_back(v);
      pr.push_back(s);
    }
    sink.consume_mapped(w, ids, pr);
  }
  return sink;
}

TEST(Timeseries, TopKOrdersByScoreThenId) {
  const StoreAllSink sink =
      make_sink({{{3, 0.5}, {1, 0.2}, {2, 0.5}, {4, 0.1}}});
  const auto top = top_k(sink, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2u);  // tie with 3, lower id first
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 1u);
}

TEST(Timeseries, TopKClampsToAvailable) {
  const StoreAllSink sink = make_sink({{{0, 1.0}}});
  EXPECT_EQ(top_k(sink, 0, 10).size(), 1u);
  const StoreAllSink empty = make_sink({{}});
  EXPECT_TRUE(top_k(empty, 0, 10).empty());
}

TEST(Timeseries, RankOfPresentAndAbsent) {
  const StoreAllSink sink = make_sink({{{5, 0.6}, {7, 0.4}}});
  EXPECT_EQ(rank_of(sink, 0, 5), 1u);
  EXPECT_EQ(rank_of(sink, 0, 7), 2u);
  EXPECT_EQ(rank_of(sink, 0, 9), 0u);
}

TEST(Timeseries, RankTrajectory) {
  const StoreAllSink sink = make_sink({{{1, 0.9}, {2, 0.1}},
                                       {{1, 0.1}, {2, 0.9}},
                                       {{2, 1.0}}});
  const auto traj = rank_trajectory(sink, 1);
  ASSERT_EQ(traj.size(), 3u);
  EXPECT_EQ(traj[0], 1u);
  EXPECT_EQ(traj[1], 2u);
  EXPECT_EQ(traj[2], 0u);  // absent
}

TEST(Timeseries, JaccardIdenticalAndDisjoint) {
  const StoreAllSink sink = make_sink({{{1, 0.5}, {2, 0.5}},
                                       {{1, 0.6}, {2, 0.4}},
                                       {{8, 0.5}, {9, 0.5}}});
  EXPECT_DOUBLE_EQ(topk_jaccard(sink, 0, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(topk_jaccard(sink, 0, 2, 2), 0.0);
}

TEST(Timeseries, JaccardPartialOverlap) {
  const StoreAllSink sink = make_sink({{{1, 0.5}, {2, 0.4}, {3, 0.1}},
                                       {{2, 0.5}, {4, 0.4}, {5, 0.1}}});
  // top-2 sets {1,2} and {2,4}: |∩|=1, |∪|=3.
  EXPECT_NEAR(topk_jaccard(sink, 0, 1, 2), 1.0 / 3.0, 1e-12);
}

TEST(Timeseries, JaccardBothEmptyIsOne) {
  const StoreAllSink sink = make_sink({{}, {}});
  EXPECT_DOUBLE_EQ(topk_jaccard(sink, 0, 1, 5), 1.0);
}

TEST(Timeseries, SpearmanPerfectAndReversed) {
  const StoreAllSink sink = make_sink(
      {{{1, 0.5}, {2, 0.3}, {3, 0.2}, {4, 0.1}},
       {{1, 0.6}, {2, 0.25}, {3, 0.1}, {4, 0.05}},
       {{1, 0.05}, {2, 0.1}, {3, 0.25}, {4, 0.6}}});
  EXPECT_NEAR(spearman(sink, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(spearman(sink, 0, 2), -1.0, 1e-12);
}

TEST(Timeseries, SpearmanIgnoresNonShared) {
  const StoreAllSink sink = make_sink({{{1, 0.5}, {2, 0.3}, {9, 0.2}},
                                       {{1, 0.7}, {2, 0.2}, {8, 0.1}}});
  // Shared = {1, 2}, same order -> 1.
  EXPECT_NEAR(spearman(sink, 0, 1), 1.0, 1e-12);
}

TEST(Timeseries, SpearmanTooFewShared) {
  const StoreAllSink sink = make_sink({{{1, 0.5}}, {{1, 0.7}, {2, 0.1}}});
  EXPECT_EQ(spearman(sink, 0, 1), 0.0);
}

TEST(Timeseries, ChurnSeriesLength) {
  const StoreAllSink sink = make_sink({{{1, 1.0}}, {{1, 1.0}}, {{2, 1.0}}});
  const auto churn = churn_series(sink, 1);
  ASSERT_EQ(churn.size(), 2u);
  EXPECT_DOUBLE_EQ(churn[0], 1.0);
  EXPECT_DOUBLE_EQ(churn[1], 0.0);
}

TEST(Timeseries, ChurnOfSingleWindowEmpty) {
  const StoreAllSink sink = make_sink({{{1, 1.0}}});
  EXPECT_TRUE(churn_series(sink, 3).empty());
}

}  // namespace
}  // namespace pmpr::analysis
