#include "analysis/betweenness.hpp"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

/// Brute-force exact betweenness (global ids): Brandes with std containers.
std::map<VertexId, double> brute_betweenness(const TemporalEdgeList& events,
                                             Timestamp ts, Timestamp te) {
  std::map<VertexId, std::set<VertexId>> adj;
  for (const auto& [u, v] : test::brute_window_edges(events, ts, te)) {
    if (u != v) {
      adj[u].insert(v);
      adj[v].insert(u);
    }
  }
  std::map<VertexId, double> score;
  for (const auto& [v, nbrs] : adj) score[v] = 0.0;
  for (const auto& [s, s_nbrs] : adj) {
    std::map<VertexId, int> dist;
    std::map<VertexId, double> sigma;
    std::map<VertexId, double> delta;
    std::vector<VertexId> order;
    dist[s] = 0;
    sigma[s] = 1.0;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      order.push_back(v);
      for (const VertexId u : adj[v]) {
        if (dist.count(u) == 0) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
        if (dist[u] == dist[v] + 1) sigma[u] += sigma[v];
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId u = *it;
      for (const VertexId v : adj[u]) {
        if (dist[v] == dist[u] - 1) {
          delta[v] += (sigma[v] / sigma[u]) * (1.0 + delta[u]);
        }
      }
      if (u != s) score[u] += delta[u];
    }
  }
  for (auto& [v, x] : score) x *= 0.5;
  return score;
}

TEST(Betweenness, ExactMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(5, 25, 300, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 2500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    const BetweennessResult got = betweenness_window(
        part, spec.start(w), spec.end(w), BetweennessParams{});
    const auto ref = brute_betweenness(events, spec.start(w), spec.end(w));
    for (const auto& [v, score] : ref) {
      const VertexId local = part.local_of(v);
      ASSERT_NE(local, kInvalidVertex);
      ASSERT_NEAR(got.score[local], score, 1e-9)
          << "w=" << w << " v=" << v;
    }
  }
}

TEST(Betweenness, PathGraphClosedForm) {
  // Path 0-1-2-3-4: betweenness of vertex i (endpoints excluded) is the
  // number of pairs it separates: 1: 3, 2: 4, 3: 3 (pairs counted once).
  TemporalEdgeList events;
  for (VertexId v = 0; v + 1 < 5; ++v) events.add(v, v + 1, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const BetweennessResult r =
      betweenness_window(set.part(0), 0, 1, BetweennessParams{});
  EXPECT_NEAR(r.score[0], 0.0, 1e-12);
  EXPECT_NEAR(r.score[1], 3.0, 1e-12);
  EXPECT_NEAR(r.score[2], 4.0, 1e-12);
  EXPECT_NEAR(r.score[3], 3.0, 1e-12);
  EXPECT_NEAR(r.score[4], 0.0, 1e-12);
}

TEST(Betweenness, StarHubTakesAll) {
  // Star with k leaves: hub separates C(k,2) pairs; leaves none.
  const VertexId k = 6;
  TemporalEdgeList events;
  for (VertexId v = 1; v <= k; ++v) events.add(0, v, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const BetweennessResult r =
      betweenness_window(set.part(0), 0, 1, BetweennessParams{});
  const VertexId hub = set.part(0).local_of(0);
  EXPECT_NEAR(r.score[hub], k * (k - 1) / 2.0, 1e-12);
  for (VertexId v = 0; v < set.part(0).num_local(); ++v) {
    if (v != hub) {
      EXPECT_NEAR(r.score[v], 0.0, 1e-12);
    }
  }
}

TEST(Betweenness, SamplingAllSourcesEqualsExact) {
  const TemporalEdgeList events = test::random_events(9, 20, 250, 5000);
  const WindowSpec spec{.t0 = 0, .delta = 5000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const BetweennessResult exact =
      betweenness_window(set.part(0), 0, 5000, BetweennessParams{});
  BetweennessParams all;
  all.sample_sources = 10000;  // >= actives -> exact path
  const BetweennessResult sampled =
      betweenness_window(set.part(0), 0, 5000, all);
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    ASSERT_DOUBLE_EQ(exact.score[v], sampled.score[v]);
  }
}

TEST(Betweenness, SamplingUnbiasedOnAverage) {
  // Averaging estimates over many seeds approaches the exact values.
  const TemporalEdgeList events = test::random_events(11, 30, 400, 5000);
  const WindowSpec spec{.t0 = 0, .delta = 5000, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const BetweennessResult exact =
      betweenness_window(set.part(0), 0, 5000, BetweennessParams{});

  std::vector<double> avg(exact.score.size(), 0.0);
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    BetweennessParams p;
    p.sample_sources = 8;
    p.seed = static_cast<std::uint64_t>(seed);
    const BetweennessResult est =
        betweenness_window(set.part(0), 0, 5000, p);
    for (std::size_t v = 0; v < avg.size(); ++v) avg[v] += est.score[v];
  }
  double exact_total = 0.0;
  double avg_total = 0.0;
  for (std::size_t v = 0; v < avg.size(); ++v) {
    avg[v] /= kSeeds;
    exact_total += exact.score[v];
    avg_total += avg[v];
  }
  // Total dependency mass is an unbiased estimate.
  EXPECT_NEAR(avg_total, exact_total, exact_total * 0.15);
}

TEST(Betweenness, TinyWindowsScoreZero) {
  TemporalEdgeList events;
  events.add(0, 1, 5);  // 2 vertices: nobody is "between"
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const BetweennessResult r =
      betweenness_window(set.part(0), 0, 10, BetweennessParams{});
  for (const double s : r.score) EXPECT_EQ(s, 0.0);
  EXPECT_EQ(r.passes, 0u);
}

TEST(Betweenness, OverWindowsFindsLeaders) {
  const TemporalEdgeList events = test::random_events(13, 40, 1200, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 2500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  BetweennessParams p;
  p.sample_sources = 10;
  const auto summaries = betweenness_over_windows(set, p);
  ASSERT_EQ(summaries.size(), spec.count);
  for (const auto& s : summaries) {
    if (s.num_active >= 10) {
      EXPECT_NE(s.top_vertex, kInvalidVertex) << "window " << s.window;
    }
  }
}

}  // namespace
}  // namespace pmpr::analysis
