#include "analysis/kcore.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

/// Naive reference: repeatedly strip vertices with undirected degree < k.
std::map<VertexId, std::uint32_t> brute_kcore(const TemporalEdgeList& events,
                                              Timestamp ts, Timestamp te) {
  std::set<std::pair<VertexId, VertexId>> und;
  std::set<VertexId> active;
  for (const auto& [u, v] : test::brute_window_edges(events, ts, te)) {
    active.insert(u);
    active.insert(v);
    if (u != v) und.emplace(std::min(u, v), std::max(u, v));
  }
  std::map<VertexId, std::uint32_t> core;
  for (const VertexId v : active) core[v] = 0;

  for (std::uint32_t k = 1;; ++k) {
    // Peel to the k-core: iterate until every remaining vertex has deg >= k.
    std::set<std::pair<VertexId, VertexId>> edges = und;
    std::set<VertexId> alive;
    for (const auto& [u, v] : edges) {
      alive.insert(u);
      alive.insert(v);
    }
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      std::map<VertexId, std::uint32_t> deg;
      for (const auto& [u, v] : edges) {
        ++deg[u];
        ++deg[v];
      }
      for (auto it = alive.begin(); it != alive.end();) {
        if (deg[*it] < k) {
          for (auto e = edges.begin(); e != edges.end();) {
            if (e->first == *it || e->second == *it) {
              e = edges.erase(e);
            } else {
              ++e;
            }
          }
          it = alive.erase(it);
          shrunk = true;
        } else {
          ++it;
        }
      }
    }
    if (alive.empty()) break;
    for (const VertexId v : alive) core[v] = k;
    und = edges;
  }
  return core;
}

TEST(Kcore, MatchesBruteForceOnRandomWindows) {
  const TemporalEdgeList events = test::random_events(7, 30, 600, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    const KcoreResult got =
        kcore_window(part, spec.start(w), spec.end(w));
    const auto ref = brute_kcore(events, spec.start(w), spec.end(w));
    std::uint32_t ref_max = 0;
    for (const auto& [v, k] : ref) {
      const VertexId local = part.local_of(v);
      ASSERT_NE(local, kInvalidVertex);
      ASSERT_EQ(got.core[local], k) << "w=" << w << " v=" << v;
      ref_max = std::max(ref_max, k);
    }
    EXPECT_EQ(got.max_core, ref_max) << "w=" << w;
    EXPECT_EQ(got.num_active, ref.size()) << "w=" << w;
  }
}

TEST(Kcore, CliqueCoreNumbers) {
  // K5 inserted at t=0: every vertex has core number 4.
  TemporalEdgeList events;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) events.add(u, v, 0);
  }
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const KcoreResult r = kcore_window(set.part(0), 0, 1);
  EXPECT_EQ(r.max_core, 4u);
  EXPECT_EQ(r.innermost_size, 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.core[v], 4u);
}

TEST(Kcore, ChainIsOneCore) {
  TemporalEdgeList events;
  for (VertexId v = 0; v + 1 < 6; ++v) events.add(v, v + 1, 0);
  const WindowSpec spec{.t0 = 0, .delta = 1, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const KcoreResult r = kcore_window(set.part(0), 0, 1);
  EXPECT_EQ(r.max_core, 1u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(r.core[v], 1u);
}

TEST(Kcore, SelfLoopOnlyVertexHasCoreZero) {
  TemporalEdgeList events;
  events.add(0, 0, 5);
  events.add(1, 2, 5);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const KcoreResult r = kcore_window(set.part(0), 0, 10);
  const VertexId local0 = set.part(0).local_of(0);
  EXPECT_EQ(r.core[local0], 0u);
  EXPECT_EQ(r.num_active, 3u);
}

TEST(Kcore, DuplicateAndBidirectionalEdgesCountOnce) {
  TemporalEdgeList events;
  events.add(0, 1, 1);
  events.add(0, 1, 2);
  events.add(1, 0, 3);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const KcoreResult r = kcore_window(set.part(0), 0, 10);
  EXPECT_EQ(r.max_core, 1u);
}

TEST(Kcore, EmptyWindow) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const KcoreResult r = kcore_window(set.part(0), 0, 10);
  EXPECT_EQ(r.num_active, 0u);
  EXPECT_EQ(r.max_core, 0u);
}

TEST(Kcore, OverWindowsParallelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(31, 40, 2000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 4000, 1500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 3);
  const auto seq = kcore_over_windows(set);
  par::ForOptions opts{par::Partitioner::kSimple, 2, nullptr};
  const auto parl = kcore_over_windows(set, &opts);
  ASSERT_EQ(seq.size(), parl.size());
  for (std::size_t w = 0; w < seq.size(); ++w) {
    EXPECT_EQ(seq[w].max_core, parl[w].max_core);
    EXPECT_EQ(seq[w].innermost_size, parl[w].innermost_size);
  }
}

}  // namespace
}  // namespace pmpr::analysis
