#include "analysis/katz.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

/// Dense reference: x = beta·1_active + a·AᵀX iterated.
std::vector<double> brute_katz(const TemporalEdgeList& events, Timestamp ts,
                               Timestamp te, VertexId n,
                               const KatzParams& p) {
  const auto edges = test::brute_window_edges(events, ts, te);
  std::vector<std::uint8_t> active(n, 0);
  for (const auto& [u, v] : edges) active[u] = active[v] = 1;
  std::vector<double> x(n, 0.0);
  for (VertexId v = 0; v < n; ++v) x[v] = active[v] ? p.beta : 0.0;
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < p.max_iters; ++iter) {
    for (VertexId v = 0; v < n; ++v) next[v] = active[v] ? p.beta : 0.0;
    for (const auto& [u, v] : edges) next[v] += p.attenuation * x[u];
    double diff = 0.0;
    for (VertexId v = 0; v < n; ++v) diff += std::abs(next[v] - x[v]);
    x.swap(next);
    if (diff < p.tol) break;
  }
  return x;
}

KatzParams tight() {
  KatzParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

TEST(Katz, MatchesBruteForcePerWindow) {
  const TemporalEdgeList events = test::random_events(13, 40, 1500, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 1500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 2);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    WindowState state;
    compute_window_state(part, spec.start(w), spec.end(w), state);
    std::vector<double> x(part.num_local(), 0.0);
    std::vector<double> scratch(part.num_local());
    for (std::size_t v = 0; v < x.size(); ++v) {
      x[v] = state.active[v] ? 1.0 : 0.0;
    }
    katz_window(part, spec.start(w), spec.end(w), state, x, scratch, tight());

    const auto ref = brute_katz(events, spec.start(w), spec.end(w),
                                events.num_vertices(), tight());
    for (VertexId v = 0; v < part.num_local(); ++v) {
      ASSERT_NEAR(x[v], ref[part.global_of(v)], 1e-8)
          << "w=" << w << " v=" << part.global_of(v);
    }
  }
}

TEST(Katz, StarCenterScoresHighest) {
  TemporalEdgeList events;
  for (VertexId v = 1; v <= 5; ++v) events.add(v, 0, 10);
  const WindowSpec spec{.t0 = 0, .delta = 20, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto summaries = katz_over_windows(set, tight());
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].top_vertex, 0u);
  EXPECT_GT(summaries[0].top_score, 1.0);
}

TEST(Katz, WarmStartConvergesToSameValues) {
  const TemporalEdgeList events = test::random_events(19, 50, 3000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 6000, 800);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto warm = katz_over_windows(set, tight(), nullptr, true);
  const auto cold = katz_over_windows(set, tight(), nullptr, false);
  ASSERT_EQ(warm.size(), cold.size());
  std::uint64_t warm_iters = 0;
  std::uint64_t cold_iters = 0;
  for (std::size_t w = 0; w < warm.size(); ++w) {
    EXPECT_EQ(warm[w].top_vertex, cold[w].top_vertex) << "window " << w;
    EXPECT_NEAR(warm[w].top_score, cold[w].top_score, 1e-6) << "window " << w;
    warm_iters += static_cast<std::uint64_t>(warm[w].iterations);
    cold_iters += static_cast<std::uint64_t>(cold[w].iterations);
  }
  EXPECT_LE(warm_iters, cold_iters);
}

TEST(Katz, ParallelKernelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(23, 60, 2500, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 1000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  par::ForOptions opts{par::Partitioner::kSimple, 8, nullptr};
  const auto seq = katz_over_windows(set, tight(), nullptr);
  const auto parl = katz_over_windows(set, tight(), &opts);
  for (std::size_t w = 0; w < seq.size(); ++w) {
    EXPECT_EQ(seq[w].top_vertex, parl[w].top_vertex);
    EXPECT_NEAR(seq[w].top_score, parl[w].top_score, 1e-10);
  }
}

TEST(Katz, EmptyWindowZeroScores) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  events.ensure_vertices(3);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  WindowState state;
  compute_window_state(set.part(0), 0, 10, state);
  std::vector<double> x(set.part(0).num_local(), 5.0);
  std::vector<double> scratch(x.size());
  const KatzStats stats =
      katz_window(set.part(0), 0, 10, state, x, scratch, tight());
  EXPECT_EQ(stats.iterations, 0);
  for (const double v : x) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace pmpr::analysis
