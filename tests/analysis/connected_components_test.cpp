#include "analysis/connected_components.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <numeric>

#include "test_helpers.hpp"

namespace pmpr::analysis {
namespace {

/// Union-find reference for weak components of a window.
struct BruteWcc {
  std::size_t num_components = 0;
  std::size_t largest = 0;
  std::size_t num_active = 0;
  std::vector<VertexId> root;  // global space; kInvalidVertex if inactive

  static BruteWcc compute(const TemporalEdgeList& events, Timestamp ts,
                          Timestamp te, VertexId n) {
    std::vector<VertexId> parent(n);
    std::iota(parent.begin(), parent.end(), 0u);
    std::vector<std::uint8_t> active(n, 0);
    std::function<VertexId(VertexId)> find = [&](VertexId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    for (const auto& [u, v] :
         test::brute_window_edges(events, ts, te)) {
      active[u] = active[v] = 1;
      const VertexId ru = find(u);
      const VertexId rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
    BruteWcc out;
    out.root.assign(n, kInvalidVertex);
    std::map<VertexId, std::size_t> sizes;
    for (VertexId v = 0; v < n; ++v) {
      if (active[v] == 0) continue;
      ++out.num_active;
      out.root[v] = find(v);
      ++sizes[out.root[v]];
    }
    out.num_components = sizes.size();
    for (const auto& [r, s] : sizes) out.largest = std::max(out.largest, s);
    return out;
  }
};

TEST(Wcc, MatchesUnionFindAcrossWindows) {
  const TemporalEdgeList events = test::random_events(9, 60, 1200, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 4000, 1500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 3);

  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    const WccResult got =
        wcc_window(part, spec.start(w), spec.end(w));
    const BruteWcc ref = BruteWcc::compute(events, spec.start(w), spec.end(w),
                                           events.num_vertices());
    ASSERT_EQ(got.num_components, ref.num_components) << "window " << w;
    ASSERT_EQ(got.largest_component, ref.largest) << "window " << w;
    ASSERT_EQ(got.num_active, ref.num_active) << "window " << w;

    // Same partition: two active vertices share a label iff they share a
    // union-find root.
    for (VertexId a = 0; a < part.num_local(); ++a) {
      if (got.label[a] == kInvalidVertex) continue;
      for (VertexId b = a + 1; b < part.num_local(); ++b) {
        if (got.label[b] == kInvalidVertex) continue;
        const bool same_got = got.label[a] == got.label[b];
        const bool same_ref =
            ref.root[part.global_of(a)] == ref.root[part.global_of(b)];
        ASSERT_EQ(same_got, same_ref)
            << "w=" << w << " a=" << part.global_of(a)
            << " b=" << part.global_of(b);
      }
    }
  }
}

TEST(Wcc, EmptyWindowNoComponents) {
  TemporalEdgeList events;
  events.add(0, 1, 1000);
  events.ensure_vertices(4);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const WccResult r = wcc_window(set.part(0), 0, 10);
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_EQ(r.num_active, 0u);
}

TEST(Wcc, DirectionIgnored) {
  // 0 -> 1 and 2 -> 1: weakly connected as one component of size 3.
  TemporalEdgeList events;
  events.add(0, 1, 5);
  events.add(2, 1, 6);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 1, .count = 1};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const WccResult r = wcc_window(set.part(0), 0, 10);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.largest_component, 3u);
}

TEST(Wcc, OverWindowsSequentialEqualsParallel) {
  const TemporalEdgeList events = test::random_events(21, 50, 2000, 30000);
  const WindowSpec spec = WindowSpec::cover(0, 30000, 5000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 4);
  const auto seq = wcc_over_windows(set);
  par::ForOptions opts{par::Partitioner::kAuto, 1, nullptr};
  const auto parl = wcc_over_windows(set, &opts);
  ASSERT_EQ(seq.size(), parl.size());
  for (std::size_t w = 0; w < seq.size(); ++w) {
    EXPECT_EQ(seq[w].num_components, parl[w].num_components);
    EXPECT_EQ(seq[w].largest_component, parl[w].largest_component);
    EXPECT_EQ(seq[w].num_active, parl[w].num_active);
  }
}

TEST(Wcc, ComponentsMergeAsWindowGrows) {
  // A chain appearing over time: larger windows see more of the chain and
  // thus fewer, larger components.
  TemporalEdgeList events;
  for (VertexId v = 0; v + 1 < 10; ++v) {
    events.add(v, v + 1, static_cast<Timestamp>(v * 10));
  }
  const MultiWindowSet small = MultiWindowSet::build(
      events, WindowSpec{.t0 = 0, .delta = 25, .sw = 1, .count = 1}, 1);
  const MultiWindowSet big = MultiWindowSet::build(
      events, WindowSpec{.t0 = 0, .delta = 90, .sw = 1, .count = 1}, 1);
  const WccResult rs = wcc_window(small.part(0), 0, 25);
  const WccResult rb = wcc_window(big.part(0), 0, 90);
  EXPECT_EQ(rb.num_components, 1u);
  EXPECT_EQ(rb.largest_component, 10u);
  EXPECT_EQ(rs.largest_component, 4u);  // edges at t=0,10,20 -> 0..3
}

}  // namespace
}  // namespace pmpr::analysis
