// Tests for the balanced-events multi-window decomposition (the paper's
// future-work alternative to uniform window counts).
#include <gtest/gtest.h>

#include <set>

#include "graph/multi_window.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

/// Events concentrated in a spike so uniform window counts produce heavily
/// imbalanced parts.
TemporalEdgeList spiky_events() {
  TemporalEdgeList events;
  Xoshiro256 rng(9);
  // Sparse background over [0, 100000).
  for (int i = 0; i < 500; ++i) {
    events.add(static_cast<VertexId>(rng.bounded(50)),
               static_cast<VertexId>(rng.bounded(50)),
               static_cast<Timestamp>(rng.bounded(100000)));
  }
  // Dense spike spread over [30000, 70000) — wide enough to span several
  // parts' worth of windows, so the decomposition can actually split it.
  for (int i = 0; i < 5000; ++i) {
    events.add(static_cast<VertexId>(rng.bounded(50)),
               static_cast<VertexId>(rng.bounded(50)),
               static_cast<Timestamp>(30000 + rng.bounded(40000)));
  }
  events.sort_by_time();
  return events;
}

TEST(PartitionPolicy, ToString) {
  EXPECT_EQ(to_string(PartitionPolicy::kUniformWindows), "uniform-windows");
  EXPECT_EQ(to_string(PartitionPolicy::kBalancedEvents), "balanced-events");
}

TEST(PartitionPolicy, BalancedCoversAllWindowsExactlyOnce) {
  const TemporalEdgeList events = spiky_events();
  const WindowSpec spec = WindowSpec::cover(0, 100000, 5000, 1000);
  const MultiWindowSet set = MultiWindowSet::build(
      events, spec, 8, PartitionPolicy::kBalancedEvents);
  std::set<std::size_t> covered;
  for (std::size_t p = 0; p < set.num_parts(); ++p) {
    const auto& part = set.part(p);
    EXPECT_GT(part.num_windows, 0u);
    for (std::size_t i = 0; i < part.num_windows; ++i) {
      EXPECT_TRUE(covered.insert(part.first_window + i).second);
    }
  }
  EXPECT_EQ(covered.size(), spec.count);
}

TEST(PartitionPolicy, BalancedReducesEventImbalance) {
  const TemporalEdgeList events = spiky_events();
  const WindowSpec spec = WindowSpec::cover(0, 100000, 5000, 1000);

  auto max_part_events = [](const MultiWindowSet& set) {
    std::size_t mx = 0;
    for (std::size_t p = 0; p < set.num_parts(); ++p) {
      mx = std::max(mx, set.part(p).num_events);
    }
    return mx;
  };

  const MultiWindowSet uniform = MultiWindowSet::build(
      events, spec, 8, PartitionPolicy::kUniformWindows);
  const MultiWindowSet balanced = MultiWindowSet::build(
      events, spec, 8, PartitionPolicy::kBalancedEvents);
  EXPECT_LT(max_part_events(balanced), max_part_events(uniform));
}

TEST(PartitionPolicy, BalancedQueriesStillCorrect) {
  const TemporalEdgeList events = spiky_events();
  const WindowSpec spec = WindowSpec::cover(0, 100000, 5000, 2500);
  const MultiWindowSet set = MultiWindowSet::build(
      events, spec, 5, PartitionPolicy::kBalancedEvents);
  for (std::size_t w = 0; w < spec.count; w += 4) {
    const auto& part = set.part_for_window(w);
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId v = 0; v < part.num_local(); ++v) {
      part.in.for_each_active_neighbor(
          v, spec.start(w), spec.end(w), [&](VertexId u) {
            got.emplace(part.global_of(u), part.global_of(v));
          });
    }
    ASSERT_EQ(got, test::brute_window_edges(events, spec.start(w),
                                            spec.end(w)))
        << "window " << w;
  }
}

TEST(PartitionPolicy, BalancedOnUniformDataResemblesUniform) {
  const TemporalEdgeList events = test::random_events(3, 40, 4000, 100000);
  const WindowSpec spec = WindowSpec::cover(0, 100000, 5000, 2000);
  const MultiWindowSet balanced = MultiWindowSet::build(
      events, spec, 5, PartitionPolicy::kBalancedEvents);
  ASSERT_EQ(balanced.num_parts(), 5u);
  for (std::size_t p = 0; p < 5; ++p) {
    // Window counts within 2x of the uniform share.
    EXPECT_GT(balanced.part(p).num_windows, spec.count / 10);
    EXPECT_LT(balanced.part(p).num_windows, spec.count * 2 / 5);
  }
}

TEST(PartitionPolicy, SinglePartDegenerate) {
  const TemporalEdgeList events = spiky_events();
  const WindowSpec spec = WindowSpec::cover(0, 100000, 5000, 20000);
  const MultiWindowSet set = MultiWindowSet::build(
      events, spec, 1, PartitionPolicy::kBalancedEvents);
  EXPECT_EQ(set.num_parts(), 1u);
  EXPECT_EQ(set.part(0).num_windows, spec.count);
}

}  // namespace
}  // namespace pmpr
