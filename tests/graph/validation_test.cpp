// Malformed-input and invariant-layer coverage (DESIGN.md §6: failure
// injection). Every loader/builder entry point must reject bad data with a
// thrown pmpr::InvariantError (or std::runtime_error for IO) in *release*
// builds — never silently corrupt memory. The happy-path validate() calls
// double as regression tests for the structural invariants themselves.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "exec/offline_runner.hpp"
#include "exec/results.hpp"
#include "exec/postmortem_runner.hpp"
#include "exec/streaming_runner.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/multi_window.hpp"
#include "graph/temporal_csr.hpp"
#include "graph/window.hpp"
#include "streaming/dynamic_graph.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace pmpr {
namespace {

// ---------------------------------------------------------------- macros

TEST(CheckMacros, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PMPR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PMPR_CHECK_MSG(true, "never built"));
}

TEST(CheckMacros, FailingCheckThrowsWithContext) {
  try {
    PMPR_CHECK(2 + 2 == 5);
    FAIL() << "PMPR_CHECK did not throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("validation_test.cpp"), std::string::npos) << what;
  }
}

TEST(CheckMacros, MessageIsStreamedIntoException) {
  try {
    const int v = 41;
    PMPR_CHECK_MSG(v == 42, "vertex " << v << " is wrong");
    FAIL() << "PMPR_CHECK_MSG did not throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("vertex 41 is wrong"),
              std::string::npos);
  }
}

TEST(CheckMacros, InvariantErrorIsALogicError) {
  // Callers may catch std::logic_error (or std::exception) generically.
  EXPECT_THROW(PMPR_CHECK(false), std::logic_error);
}

// ---------------------------------------------------- TemporalCsr / Csr

TEST(TemporalCsrValidation, BuildRejectsOutOfRangeSource) {
  // Regression: this was an assert() that compiled away under NDEBUG and
  // corrupted memory in release builds.
  const std::vector<TemporalEdge> events{{0, 1, 5}, {7, 1, 6}};
  EXPECT_THROW(TemporalCsr::build(events, /*num_vertices=*/4, false),
               InvariantError);
}

TEST(TemporalCsrValidation, BuildRejectsOutOfRangeDestination) {
  const std::vector<TemporalEdge> events{{0, 1, 5}, {1, 4, 6}};
  EXPECT_THROW(TemporalCsr::build(events, /*num_vertices=*/4, false),
               InvariantError);
  EXPECT_THROW(TemporalCsr::build(events, /*num_vertices=*/4, true),
               InvariantError);
}

TEST(TemporalCsrValidation, BuildAcceptsBoundaryVertex) {
  const std::vector<TemporalEdge> events{{3, 0, 1}};
  const TemporalCsr g = TemporalCsr::build(events, 4, false);
  EXPECT_EQ(g.num_entries(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(TemporalCsrValidation, ValidatePassesOnPaperExample) {
  const TemporalEdgeList list = test::paper_example_symmetric();
  const TemporalCsr g =
      TemporalCsr::build(list.events(), list.num_vertices(), true);
  EXPECT_NO_THROW(g.validate());
}

TEST(TemporalCsrValidation, ValidatePassesOnUnsortedDuplicateEvents) {
  // build() sorts rows itself; unsorted and duplicated input is legal.
  const std::vector<TemporalEdge> events{
      {1, 0, 9}, {1, 0, 3}, {1, 0, 9}, {0, 1, 7}, {0, 1, 1}};
  const TemporalCsr g = TemporalCsr::build(events, 2, false);
  EXPECT_EQ(g.num_entries(), 5u);
  EXPECT_NO_THROW(g.validate());
}

TEST(TemporalCsrValidation, ZeroVertexGraphValidates) {
  const TemporalCsr empty = TemporalCsr::build({}, 0, false);
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_NO_THROW(empty.validate());
  const TemporalCsr untouched;  // default-constructed
  EXPECT_NO_THROW(untouched.validate());
}

TEST(CsrValidation, FromPairsRejectsOutOfRangeEndpoint) {
  const std::vector<std::pair<VertexId, VertexId>> edges{{0, 1}, {2, 9}};
  EXPECT_THROW(Csr::from_pairs(edges, 3, /*dedup=*/true), InvariantError);
}

TEST(CsrValidation, WindowGraphValidates) {
  const TemporalEdgeList list = test::paper_example_directed();
  const WindowGraph g =
      build_window_graph(list.events(), list.num_vertices());
  EXPECT_NO_THROW(g.validate());
  const WindowGraph empty = build_window_graph({}, 0);
  EXPECT_NO_THROW(empty.validate());
}

// ----------------------------------------------------------- WindowSpec

TEST(WindowSpecValidation, CoverRejectsNonPositiveSlide) {
  EXPECT_THROW(WindowSpec::cover(0, 100, 10, 0), InvariantError);
  EXPECT_THROW(WindowSpec::cover(0, 100, 10, -5), InvariantError);
  EXPECT_THROW(WindowSpec::cover_capped(0, 100, 10, 0, 6), InvariantError);
}

TEST(WindowSpecValidation, CoverRejectsNegativeDelta) {
  EXPECT_THROW(WindowSpec::cover(0, 100, -1, 10), InvariantError);
}

TEST(WindowSpecValidation, ValidateCatchesHandBuiltBadSpec) {
  WindowSpec spec;
  spec.sw = 0;
  EXPECT_THROW(spec.validate(), InvariantError);
  spec.sw = 10;
  spec.delta = -3;
  EXPECT_THROW(spec.validate(), InvariantError);
  spec.delta = 0;
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------------------------- MultiWindowSet

TEST(MultiWindowValidation, BuildRejectsUnsortedEvents) {
  TemporalEdgeList list;
  list.add(0, 1, 50);
  list.add(1, 2, 10);  // out of order
  const WindowSpec spec = WindowSpec::cover(10, 50, 20, 10);
  EXPECT_THROW(MultiWindowSet::build(list, spec, 2), InvariantError);
}

TEST(MultiWindowValidation, BuildRejectsBadSpec) {
  TemporalEdgeList list = test::paper_example_directed();
  list.sort_by_time();
  WindowSpec spec = WindowSpec::cover(list.min_time(), list.max_time(), 30, 30);
  spec.sw = 0;
  EXPECT_THROW(MultiWindowSet::build(list, spec, 2), InvariantError);
}

TEST(MultiWindowValidation, ValidatePassesAcrossPartCountsAndPolicies) {
  TemporalEdgeList list = test::random_events(11, 60, 3000, 5000);
  const WindowSpec spec = WindowSpec::cover(0, 5000, 400, 200);
  for (const auto policy : {PartitionPolicy::kUniformWindows,
                            PartitionPolicy::kBalancedEvents}) {
    for (const std::size_t parts : {1u, 3u, 7u, 1000u}) {
      const MultiWindowSet set = MultiWindowSet::build(list, spec, parts,
                                                       policy);
      EXPECT_NO_THROW(set.validate())
          << to_string(policy) << " with " << parts << " parts";
    }
  }
}

// --------------------------------------------------------- EdgeList IO

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("pmpr_validation_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(EdgeListValidation, AddRejectsReservedVertexId) {
  TemporalEdgeList list;
  EXPECT_THROW(list.add(kInvalidVertex, 0, 1), InvariantError);
  EXPECT_THROW(list.add(0, kInvalidVertex, 1), InvariantError);
}

TEST(EdgeListValidation, ConstructorRejectsReservedVertexId) {
  std::vector<TemporalEdge> edges{{0, 1, 1}, {kInvalidVertex, 2, 2}};
  EXPECT_THROW(TemporalEdgeList{std::move(edges)}, InvariantError);
}

TEST(EdgeListValidation, MinMaxTimeOfEmptyListThrow) {
  const TemporalEdgeList list;
  EXPECT_THROW((void)list.min_time(), InvariantError);
  EXPECT_THROW((void)list.max_time(), InvariantError);
}

TEST(EdgeListValidation, TextLoadRejectsOverflowingVertexId) {
  TempDir dir;
  {
    std::ofstream out(dir.file("wide.txt"));
    // 5000000000 > 2^32: would alias another vertex after the uint32 cast.
    out << "1 2 3\n5000000000 2 4\n";
  }
  EXPECT_THROW(TemporalEdgeList::load_text(dir.file("wide.txt")),
               std::runtime_error);
}

TEST(EdgeListValidation, TextLoadRejectsReservedVertexId) {
  TempDir dir;
  {
    std::ofstream out(dir.file("res.txt"));
    out << "4294967295 2 4\n";
  }
  EXPECT_THROW(TemporalEdgeList::load_text(dir.file("res.txt")),
               std::runtime_error);
}

TEST(EdgeListValidation, BinaryLoadRejectsInflatedEventCount) {
  TempDir dir;
  TemporalEdgeList orig = test::paper_example_directed();
  orig.save_binary(dir.file("c.bin"));
  {
    // Patch the count field (bytes 8..16) to claim more events than the
    // payload holds; the loader must not trust it for the allocation.
    std::fstream f(dir.file("c.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t huge = ~std::uint64_t{0} / sizeof(TemporalEdge);
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  EXPECT_THROW(TemporalEdgeList::load_binary(dir.file("c.bin")),
               std::runtime_error);
}

TEST(EdgeListValidation, BinaryLoadRejectsTruncatedHeader) {
  TempDir dir;
  TemporalEdgeList orig = test::paper_example_directed();
  orig.save_binary(dir.file("h.bin"));
  std::filesystem::resize_file(dir.file("h.bin"), 12);  // inside the header
  EXPECT_THROW(TemporalEdgeList::load_binary(dir.file("h.bin")),
               std::runtime_error);
}

TEST(EdgeListValidation, BinaryLoadRejectsOversizedVertexCount) {
  TempDir dir;
  TemporalEdgeList orig = test::paper_example_directed();
  orig.save_binary(dir.file("v.bin"));
  {
    std::fstream f(dir.file("v.bin"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint64_t too_many = std::uint64_t{1} << 33;
    f.seekp(16);  // vertices field
    f.write(reinterpret_cast<const char*>(&too_many), sizeof(too_many));
  }
  EXPECT_THROW(TemporalEdgeList::load_binary(dir.file("v.bin")),
               std::runtime_error);
}

TEST(EdgeListValidation, BinaryRoundTripOfEmptyListStillWorks) {
  TempDir dir;
  const TemporalEdgeList empty;
  empty.save_binary(dir.file("e.bin"));
  const TemporalEdgeList loaded =
      TemporalEdgeList::load_binary(dir.file("e.bin"));
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.num_vertices(), 0u);
}

// --------------------------------------------------------- DynamicGraph

TEST(DynamicGraphValidation, InsertRejectsOutOfRangeEndpoint) {
  streaming::DynamicGraph g(4);
  EXPECT_THROW(g.insert_event(4, 0), InvariantError);
  EXPECT_THROW(g.insert_event(0, 100), InvariantError);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(DynamicGraphValidation, BatchInsertRejectedWholeBeforeMutation) {
  streaming::DynamicGraph g(4);
  const std::vector<TemporalEdge> batch{{0, 1, 1}, {2, 3, 2}, {9, 0, 3}};
  EXPECT_THROW(g.insert_batch(batch), InvariantError);
  // The valid prefix must not have been applied.
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_active(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(DynamicGraphValidation, RemoveOfUnknownEventThrows) {
  streaming::DynamicGraph g(4);
  g.insert_event(0, 1);
  EXPECT_THROW(g.remove_event(1, 0), InvariantError);  // reversed pair
  EXPECT_THROW(g.remove_event(2, 3), InvariantError);  // never inserted
}

TEST(DynamicGraphValidation, ValidateTracksRandomChurn) {
  const TemporalEdgeList list = test::random_events(23, 40, 2000, 1000);
  streaming::DynamicGraph g(40);
  g.insert_batch(list.events());
  EXPECT_NO_THROW(g.validate());
  // Remove the first half again; caches must stay consistent.
  g.remove_batch(list.events().subspan(0, 1000));
  EXPECT_NO_THROW(g.validate());
  g.remove_batch(list.events().subspan(1000));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_active(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(DynamicGraphValidation, ZeroVertexGraphValidates) {
  streaming::DynamicGraph g(0);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_NO_THROW(g.validate());
}

// ------------------------------------------------- runner validate flags

TEST(RunnerValidation, AllThreeRunnersPassWithValidateEnabled) {
  TemporalEdgeList list = test::paper_example_symmetric();
  const WindowSpec spec =
      WindowSpec::cover(list.min_time(), list.max_time(), 107, 30);

  NullSink sink;
  PostmortemConfig pm;
  pm.validate = true;
  pm.num_multi_windows = 2;
  EXPECT_NO_THROW(run_postmortem(list, spec, sink, pm));

  StreamingOptions st;
  st.validate = true;
  EXPECT_NO_THROW(run_streaming(list, spec, sink, st));

  OfflineOptions off;
  off.validate = true;
  EXPECT_NO_THROW(run_offline(list, spec, sink, off));
}

TEST(RunnerValidation, RunnersRejectUnsortedEvents) {
  TemporalEdgeList list;
  list.add(0, 1, 50);
  list.add(1, 2, 10);
  const WindowSpec spec = WindowSpec::cover(10, 50, 20, 10);
  NullSink sink;
  EXPECT_THROW(run_postmortem(list, spec, sink, PostmortemConfig{}),
               InvariantError);
  EXPECT_THROW(run_streaming(list, spec, sink, StreamingOptions{}),
               InvariantError);
  EXPECT_THROW(run_offline(list, spec, sink, OfflineOptions{}),
               InvariantError);
}

}  // namespace
}  // namespace pmpr
