#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include "exec/postmortem_runner.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(Relabel, PermutationIsBijective) {
  const TemporalEdgeList events = test::random_events(3, 100, 3000, 10000);
  const Relabeling r = relabel_by_activity(events);
  ASSERT_EQ(r.forward.size(), events.num_vertices());
  ASSERT_EQ(r.inverse.size(), events.num_vertices());
  std::vector<bool> seen(events.num_vertices(), false);
  for (VertexId old_id = 0; old_id < events.num_vertices(); ++old_id) {
    const VertexId new_id = r.to_new(old_id);
    ASSERT_LT(new_id, events.num_vertices());
    ASSERT_FALSE(seen[new_id]);
    seen[new_id] = true;
    ASSERT_EQ(r.to_old(new_id), old_id);
  }
}

TEST(Relabel, HotVerticesGetSmallIds) {
  TemporalEdgeList events;
  // Vertex 9 is the hub; vertex 0 appears once.
  for (int i = 0; i < 20; ++i) {
    events.add(9, static_cast<VertexId>(1 + i % 8), i);
  }
  events.add(0, 1, 100);
  const Relabeling r = relabel_by_activity(events);
  EXPECT_EQ(r.to_new(9), 0u);
  EXPECT_GT(r.to_new(0), r.to_new(1));
}

TEST(Relabel, DeterministicTieBreaking) {
  TemporalEdgeList events;
  events.add(3, 7, 1);  // both endpoints have activity 1
  events.ensure_vertices(10);
  const Relabeling r = relabel_by_activity(events);
  // Equal activity: stable order keeps ascending old ids.
  EXPECT_LT(r.to_new(3), r.to_new(7));
  // Inactive vertices follow, in old-id order.
  EXPECT_LT(r.to_new(0), r.to_new(1));
}

TEST(Relabel, ApplyPreservesTimesAndStructure) {
  const TemporalEdgeList events = test::random_events(7, 40, 1000, 5000);
  const Relabeling r = relabel_by_activity(events);
  const TemporalEdgeList relabeled = apply_relabeling(events, r);
  ASSERT_EQ(relabeled.size(), events.size());
  EXPECT_TRUE(relabeled.is_sorted_by_time());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(relabeled[i].time, events[i].time);
    EXPECT_EQ(relabeled[i].src, r.to_new(events[i].src));
    EXPECT_EQ(relabeled[i].dst, r.to_new(events[i].dst));
  }
}

TEST(Relabel, PagerankInvariantUnderRelabeling) {
  // The defining property: running the analysis on relabeled events and
  // mapping back through the permutation gives the original results.
  const TemporalEdgeList events = test::random_events(11, 50, 2500, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 1200);
  PostmortemConfig cfg;
  cfg.pr.tol = 1e-12;
  cfg.pr.max_iters = 500;

  StoreAllSink original(spec.count);
  run_postmortem(events, spec, original, cfg);

  const Relabeling r = relabel_by_activity(events);
  const TemporalEdgeList relabeled = apply_relabeling(events, r);
  StoreAllSink permuted(spec.count);
  run_postmortem(relabeled, spec, permuted, cfg);

  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto a = original.dense(w, events.num_vertices());
    const auto b = permuted.dense(w, events.num_vertices());
    for (VertexId v = 0; v < events.num_vertices(); ++v) {
      ASSERT_NEAR(a[v], b[r.to_new(v)], 1e-9)
          << "window " << w << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace pmpr
