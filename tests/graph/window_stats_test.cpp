#include "graph/window_stats.hpp"

#include <gtest/gtest.h>

#include "exec/config.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(WindowStats, EventCountsMatchBruteForce) {
  const TemporalEdgeList events = test::random_events(3, 30, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 1500, 600);
  const auto counts = window_event_counts(events, spec);
  ASSERT_EQ(counts.size(), spec.count);
  for (std::size_t w = 0; w < spec.count; ++w) {
    std::size_t expected = 0;
    for (const auto& e : events.events()) {
      if (spec.contains(w, e.time)) ++expected;
    }
    ASSERT_EQ(counts[w], expected) << "window " << w;
  }
}

TEST(WindowStats, EdgeCountsAreDeduplicated) {
  TemporalEdgeList events;
  events.add(0, 1, 10);
  events.add(0, 1, 20);  // same pair -> one edge
  events.add(1, 0, 30);  // reverse direction -> separate directed edge
  const WindowSpec spec{.t0 = 0, .delta = 100, .sw = 1, .count = 1};
  EXPECT_EQ(window_event_counts(events, spec)[0], 3u);
  EXPECT_EQ(window_edge_counts(events, spec)[0], 2u);
}

TEST(WindowStats, EdgeCountsMatchBruteForce) {
  const TemporalEdgeList events = test::random_events(7, 25, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 1200);
  const auto counts = window_edge_counts(events, spec);
  for (std::size_t w = 0; w < spec.count; ++w) {
    ASSERT_EQ(counts[w],
              test::brute_window_edges(events, spec.start(w), spec.end(w))
                  .size())
        << "window " << w;
  }
}

TEST(WindowStats, SuggestConfigForRuns) {
  const TemporalEdgeList events = test::random_events(9, 40, 3000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 4000, 500);
  const PostmortemConfig cfg = suggest_config_for(events, spec, 4);
  EXPECT_EQ(cfg.kernel, KernelKind::kSpmm);
  EXPECT_LE(cfg.grain, 4u);
  // Uniform random events, many windows -> nested.
  EXPECT_EQ(cfg.mode, ParallelMode::kNested);
}

TEST(WindowStats, SuggestConfigForDetectsSpike) {
  // Everything in one window's interval.
  TemporalEdgeList events;
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    events.add(static_cast<VertexId>(rng.bounded(30)),
               static_cast<VertexId>(rng.bounded(30)),
               static_cast<Timestamp>(5000 + rng.bounded(100)));
  }
  events.add(0, 1, 0);  // one early event so t0 = 0
  events.sort_by_time();
  const WindowSpec spec = WindowSpec::cover(0, 10000, 200, 200);
  const PostmortemConfig cfg = suggest_config_for(events, spec, 4);
  EXPECT_EQ(cfg.mode, ParallelMode::kPagerank);
}

}  // namespace
}  // namespace pmpr
