#include "graph/multi_window.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

/// Parameterized over the number of multi-window parts (the paper's Y).
class MultiWindowParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiWindowParam, PartsCoverAllWindowsExactlyOnce) {
  const std::size_t parts = GetParam();
  const TemporalEdgeList events = test::random_events(17, 60, 4000, 100000);
  const WindowSpec spec = WindowSpec::cover(0, 100000, 12000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, parts);

  std::set<std::size_t> covered;
  for (std::size_t p = 0; p < set.num_parts(); ++p) {
    const auto& part = set.part(p);
    for (std::size_t i = 0; i < part.num_windows; ++i) {
      const bool inserted = covered.insert(part.first_window + i).second;
      EXPECT_TRUE(inserted) << "window held by two parts";
    }
  }
  EXPECT_EQ(covered.size(), spec.count);
}

TEST_P(MultiWindowParam, PartForWindowIsConsistent) {
  const std::size_t parts = GetParam();
  const TemporalEdgeList events = test::random_events(17, 60, 4000, 100000);
  const WindowSpec spec = WindowSpec::cover(0, 100000, 12000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, parts);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto& part = set.part_for_window(w);
    EXPECT_GE(w, part.first_window);
    EXPECT_LT(w, part.first_window + part.num_windows);
  }
}

TEST_P(MultiWindowParam, PartEventsMatchSpan) {
  const std::size_t parts = GetParam();
  const TemporalEdgeList events = test::random_events(23, 60, 4000, 100000);
  const WindowSpec spec = WindowSpec::cover(0, 100000, 12000, 2000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, parts);
  for (std::size_t p = 0; p < set.num_parts(); ++p) {
    const auto& part = set.part(p);
    EXPECT_EQ(part.span_start, spec.start(part.first_window));
    EXPECT_EQ(part.span_end,
              spec.end(part.first_window + part.num_windows - 1));
    EXPECT_EQ(part.num_events,
              events.slice(part.span_start, part.span_end).size());
  }
}

TEST_P(MultiWindowParam, WindowEdgesMatchBruteForceThroughParts) {
  const std::size_t parts = GetParam();
  const TemporalEdgeList events = test::random_events(31, 40, 3000, 50000);
  const WindowSpec spec = WindowSpec::cover(0, 50000, 8000, 1500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, parts);

  for (std::size_t w = 0; w < spec.count; w += 3) {
    const auto& part = set.part_for_window(w);
    const auto brute =
        test::brute_window_edges(events, spec.start(w), spec.end(w));
    // Collect edges from the part's reverse temporal CSR (global ids).
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId v = 0; v < part.num_local(); ++v) {
      part.in.for_each_active_neighbor(
          v, spec.start(w), spec.end(w), [&](VertexId u) {
            got.emplace(part.global_of(u), part.global_of(v));
          });
    }
    ASSERT_EQ(got, brute) << "window " << w << " parts=" << parts;
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, MultiWindowParam,
                         ::testing::Values(1, 2, 3, 6, 17, 1000),
                         [](const auto& pinfo) {
                           // += instead of operator+ dodges a GCC 12
                           // -Wrestrict false positive (PR105651).
                           std::string name = "Y";
                           name += std::to_string(pinfo.param);
                           return name;
                         });

TEST(MultiWindow, LocalGlobalMappingRoundTrips) {
  const TemporalEdgeList events = test::random_events(3, 100, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 2000, 500);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 4);
  for (std::size_t p = 0; p < set.num_parts(); ++p) {
    const auto& part = set.part(p);
    for (VertexId local = 0; local < part.num_local(); ++local) {
      EXPECT_EQ(part.local_of(part.global_of(local)), local);
    }
  }
}

TEST(MultiWindow, LocalOfAbsentVertexIsInvalid) {
  TemporalEdgeList events;
  events.add(0, 5, 10);
  events.ensure_vertices(100);
  const WindowSpec spec = WindowSpec::cover(0, 10, 10, 5);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 1);
  const auto& part = set.part(0);
  EXPECT_EQ(part.num_local(), 2u);
  EXPECT_EQ(part.local_of(3), kInvalidVertex);
  EXPECT_EQ(part.local_of(99), kInvalidVertex);
  EXPECT_NE(part.local_of(0), kInvalidVertex);
  EXPECT_NE(part.local_of(5), kInvalidVertex);
}

TEST(MultiWindow, MorePartsNeverLosesEvents) {
  // Σ_w |E_w| >= |Events| (boundary duplication), and with one part per
  // dataset-covering span, equality when windows tile the data.
  const TemporalEdgeList events = test::random_events(41, 50, 3000, 60000);
  const WindowSpec spec = WindowSpec::cover(0, 60000, 9000, 3000);
  const std::size_t covered =
      events.slice(spec.start(0), spec.end(spec.count - 1)).size();
  for (const std::size_t parts : {1u, 2u, 5u, 10u}) {
    const MultiWindowSet set = MultiWindowSet::build(events, spec, parts);
    EXPECT_GE(set.total_events(), covered) << parts;
  }
}

TEST(MultiWindow, PartCountClampedToWindows) {
  const TemporalEdgeList events = test::random_events(5, 20, 500, 1000);
  const WindowSpec spec = WindowSpec::cover(0, 1000, 300, 200);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 500);
  EXPECT_LE(set.num_parts(), spec.count);
  EXPECT_GE(set.num_parts(), 1u);
}

TEST(MultiWindow, EmptySpanPartsStillValid) {
  // Events concentrated at the start; later windows are empty but their
  // parts must still exist and answer queries.
  TemporalEdgeList events;
  events.add(0, 1, 0);
  events.add(1, 2, 1);
  events.ensure_vertices(3);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 100, .count = 5};
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 5);
  EXPECT_EQ(set.num_parts(), 5u);
  for (std::size_t w = 1; w < 5; ++w) {
    const auto& part = set.part_for_window(w);
    EXPECT_EQ(part.num_events, 0u);
    EXPECT_EQ(part.num_local(), 0u);
  }
}

TEST(MultiWindow, MemoryBytesReported) {
  const TemporalEdgeList events = test::random_events(7, 50, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 2000, 1000);
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 3);
  EXPECT_GT(set.memory_bytes(), 0u);
}

}  // namespace
}  // namespace pmpr
