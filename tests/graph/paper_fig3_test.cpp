// Reproduction of the paper's Figure 3: the temporal CSR of the Fig. 2
// example graph (symmetrized, 28 entries, rows sorted by ⟨neighbor, time⟩).
//
// Note: the printed arrays in the paper's Fig. 3 are internally
// inconsistent (e.g. rowA gives vertex 3 three entries while the edge list
// of Fig. 2a gives it four: 2-3, 1-3 and 3-5 twice), so this test asserts
// the layout *defined* by §4.1 — every event stored once per direction,
// rows sorted by neighbor then timestamp — plus the rows of the figure
// that are consistent with the edge list.
#include <gtest/gtest.h>

#include "graph/temporal_csr.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

using test::day;

TEST(PaperFig3, TwentyEightEntries) {
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  EXPECT_EQ(g.num_entries(), 28u);
  EXPECT_EQ(g.num_vertices(), 7u);
}

TEST(PaperFig3, RowSizesMatchSymmetrizedDegrees) {
  // Multidegree per vertex from Fig. 2a (events, both directions):
  // v1: 1-2 x2, 1-3            -> 3
  // v2: 1-2 x2, 2-3, 2-4, 2-5, 2-7 -> 6
  // v3: 2-3, 1-3, 3-5 x2       -> 4
  // v4: 2-4, 4-6, 4-7          -> 3
  // v5: 3-5 x2, 5-6, 5-7, 2-5  -> 5
  // v6: 4-6, 5-6, 6-7          -> 3
  // v7: 2-7, 4-7, 5-7, 6-7     -> 4
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  const std::vector<std::size_t> expected_sizes{3, 6, 4, 3, 5, 3, 4};
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(g.row_cols(v).size(), expected_sizes[v]) << "vertex " << v + 1;
  }
}

TEST(PaperFig3, Vertex1RowExact) {
  // Fig. 3's first row (paper vertex 1): colA [2, 2, 3], timeA
  // [06/21/2021, 11/05/2021, 11/06/2021] — the duplicate-neighbor run
  // sorted by time, then the next neighbor.
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  const auto cols = g.row_cols(0);
  const auto times = g.row_times(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 1u);  // paper vertex 2
  EXPECT_EQ(cols[1], 1u);
  EXPECT_EQ(cols[2], 2u);  // paper vertex 3
  EXPECT_EQ(times[0], day(171));  // 06/21/2021
  EXPECT_EQ(times[1], day(308));  // 11/05/2021
  EXPECT_EQ(times[2], day(309));  // 11/06/2021
}

TEST(PaperFig3, Vertex2RowExact) {
  // Paper vertex 2: neighbors sorted 1,1,3,4,5,7 with the 1-run sorted by
  // time (06/21 then 11/05).
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  const auto cols = g.row_cols(1);
  const auto times = g.row_times(1);
  ASSERT_EQ(cols.size(), 6u);
  const std::vector<VertexId> expect_cols{0, 0, 2, 3, 4, 6};
  const std::vector<Timestamp> expect_times{day(171), day(308), day(212),
                                            day(222), day(312), day(274)};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(cols[i], expect_cols[i]) << "entry " << i;
    EXPECT_EQ(times[i], expect_times[i]) << "entry " << i;
  }
}

TEST(PaperFig3, WindowMembershipMatchesFig2b) {
  // Fig. 2a's checkmarks: which edges are active in each interval.
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);

  auto active_edge = [&](VertexId u, VertexId v, Timestamp ts, Timestamp te) {
    bool found = false;
    g.for_each_active_neighbor(u, ts, te, [&](VertexId nbr) {
      if (nbr == v) found = true;
    });
    return found;
  };

  using I = test::PaperIntervals;
  // Edge 1-2 (first event 6/21): T1 yes, T2 no... the 6/21 event leaves at
  // T2, but the 11/05 event re-enters at T3. Fig. 2a row 1: ✓ x x; row 11
  // (11/05): x x ✓.
  EXPECT_TRUE(active_edge(0, 1, I::t1_start, I::t1_end));
  EXPECT_FALSE(active_edge(0, 1, I::t2_start, I::t2_end));
  EXPECT_TRUE(active_edge(0, 1, I::t3_start, I::t3_end));
  // Edge 4-6 (7/11): ✓ ✓ x.
  EXPECT_TRUE(active_edge(3, 5, I::t1_start, I::t1_end));
  EXPECT_TRUE(active_edge(3, 5, I::t2_start, I::t2_end));
  EXPECT_FALSE(active_edge(3, 5, I::t3_start, I::t3_end));
  // Edge 2-3 (8/01): ✓ ✓ ✓.
  EXPECT_TRUE(active_edge(1, 2, I::t1_start, I::t1_end));
  EXPECT_TRUE(active_edge(1, 2, I::t2_start, I::t2_end));
  EXPECT_TRUE(active_edge(1, 2, I::t3_start, I::t3_end));
  // Edge 2-7 (10/02): x ✓ ✓.
  EXPECT_FALSE(active_edge(1, 6, I::t1_start, I::t1_end));
  EXPECT_TRUE(active_edge(1, 6, I::t2_start, I::t2_end));
  EXPECT_TRUE(active_edge(1, 6, I::t3_start, I::t3_end));
  // Edge 2-5 (11/09): x x ✓.
  EXPECT_FALSE(active_edge(1, 4, I::t1_start, I::t1_end));
  EXPECT_FALSE(active_edge(1, 4, I::t2_start, I::t2_end));
  EXPECT_TRUE(active_edge(1, 4, I::t3_start, I::t3_end));
}

}  // namespace
}  // namespace pmpr
