#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("pmpr_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(TemporalEdgeList, EmptyBasics) {
  TemporalEdgeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.num_vertices(), 0u);
  EXPECT_TRUE(list.is_sorted_by_time());
}

TEST(TemporalEdgeList, AddTracksVertexCount) {
  TemporalEdgeList list;
  list.add(3, 9, 100);
  EXPECT_EQ(list.num_vertices(), 10u);
  list.add(20, 1, 50);
  EXPECT_EQ(list.num_vertices(), 21u);
  EXPECT_EQ(list.size(), 2u);
}

TEST(TemporalEdgeList, EnsureVerticesOnlyGrows) {
  TemporalEdgeList list;
  list.add(0, 1, 0);
  list.ensure_vertices(100);
  EXPECT_EQ(list.num_vertices(), 100u);
  list.ensure_vertices(5);
  EXPECT_EQ(list.num_vertices(), 100u);
}

TEST(TemporalEdgeList, SortByTimeIsStable) {
  TemporalEdgeList list;
  list.add(1, 2, 10);
  list.add(3, 4, 5);
  list.add(5, 6, 10);
  EXPECT_FALSE(list.is_sorted_by_time());
  list.sort_by_time();
  ASSERT_TRUE(list.is_sorted_by_time());
  EXPECT_EQ(list[0].time, 5);
  // Ties keep insertion order (stable sort).
  EXPECT_EQ(list[1].src, 1u);
  EXPECT_EQ(list[2].src, 5u);
}

TEST(TemporalEdgeList, MinMaxTime) {
  TemporalEdgeList list = test::paper_example_directed();
  EXPECT_EQ(list.min_time(), 171);
  EXPECT_EQ(list.max_time(), 315);
}

TEST(TemporalEdgeList, SliceMatchesBruteForce) {
  const TemporalEdgeList list = test::random_events(1, 50, 2000, 10000);
  for (const auto& [ts, te] : std::vector<std::pair<Timestamp, Timestamp>>{
           {0, 10000}, {500, 700}, {0, 0}, {9999, 10000}, {5000, 4000}}) {
    const auto slice = list.slice(ts, te);
    std::size_t expected = 0;
    for (const auto& e : list.events()) {
      if (e.time >= ts && e.time <= te) ++expected;
    }
    EXPECT_EQ(slice.size(), expected) << ts << ".." << te;
    for (const auto& e : slice) {
      EXPECT_GE(e.time, ts);
      EXPECT_LE(e.time, te);
    }
  }
}

TEST(TemporalEdgeList, SliceEmptyRangeOutsideData) {
  const TemporalEdgeList list = test::paper_example_directed();
  EXPECT_TRUE(list.slice(0, 100).empty());
  EXPECT_TRUE(list.slice(400, 500).empty());
}

TEST(TemporalEdgeList, TextRoundTrip) {
  TempDir dir;
  const TemporalEdgeList orig = test::paper_example_directed();
  orig.save_text(dir.file("events.txt"));
  const TemporalEdgeList loaded =
      TemporalEdgeList::load_text(dir.file("events.txt"));
  ASSERT_EQ(loaded.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(loaded[i], orig[i]);
  }
}

TEST(TemporalEdgeList, TextLoadSkipsCommentsAndBlankLines) {
  TempDir dir;
  {
    std::ofstream out(dir.file("in.txt"));
    out << "# comment\n\n1 2 3\n# another\n4 5 6\n";
  }
  const TemporalEdgeList list = TemporalEdgeList::load_text(dir.file("in.txt"));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (TemporalEdge{1, 2, 3}));
  EXPECT_EQ(list[1], (TemporalEdge{4, 5, 6}));
}

TEST(TemporalEdgeList, TextLoadRejectsMalformedLine) {
  TempDir dir;
  {
    std::ofstream out(dir.file("bad.txt"));
    out << "1 2 3\nnot numbers\n";
  }
  EXPECT_THROW(TemporalEdgeList::load_text(dir.file("bad.txt")),
               std::runtime_error);
}

TEST(TemporalEdgeList, TextLoadMissingFileThrows) {
  EXPECT_THROW(TemporalEdgeList::load_text("/nonexistent/path/x.txt"),
               std::runtime_error);
}

TEST(TemporalEdgeList, BinaryRoundTrip) {
  TempDir dir;
  TemporalEdgeList orig = test::random_events(7, 100, 5000, 1 << 20);
  orig.ensure_vertices(123);
  orig.save_binary(dir.file("events.bin"));
  const TemporalEdgeList loaded =
      TemporalEdgeList::load_binary(dir.file("events.bin"));
  ASSERT_EQ(loaded.size(), orig.size());
  EXPECT_EQ(loaded.num_vertices(), orig.num_vertices());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    ASSERT_EQ(loaded[i], orig[i]);
  }
}

TEST(TemporalEdgeList, BinaryRejectsWrongMagic) {
  TempDir dir;
  {
    std::ofstream out(dir.file("junk.bin"), std::ios::binary);
    out << "definitely not a pmpr file at all";
  }
  EXPECT_THROW(TemporalEdgeList::load_binary(dir.file("junk.bin")),
               std::runtime_error);
}

TEST(TemporalEdgeList, BinaryRejectsTruncatedPayload) {
  TempDir dir;
  TemporalEdgeList orig = test::paper_example_directed();
  orig.save_binary(dir.file("t.bin"));
  const auto size = std::filesystem::file_size(dir.file("t.bin"));
  std::filesystem::resize_file(dir.file("t.bin"), size - 8);
  EXPECT_THROW(TemporalEdgeList::load_binary(dir.file("t.bin")),
               std::runtime_error);
}

TEST(TemporalEdgeList, ConstructFromVectorComputesVertices) {
  std::vector<TemporalEdge> edges{{5, 2, 1}, {0, 9, 2}};
  const TemporalEdgeList list(std::move(edges));
  EXPECT_EQ(list.num_vertices(), 10u);
  EXPECT_EQ(list.size(), 2u);
}

}  // namespace
}  // namespace pmpr
