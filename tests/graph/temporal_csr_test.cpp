#include "graph/temporal_csr.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(TemporalCsr, StoresEveryEvent) {
  const TemporalEdgeList events = test::paper_example_symmetric();
  const TemporalCsr g =
      TemporalCsr::build(events.events(), events.num_vertices(), false);
  // Fig. 3: 28 entries for the symmetrized example.
  EXPECT_EQ(g.num_entries(), 28u);
  EXPECT_EQ(g.num_vertices(), 7u);
}

TEST(TemporalCsr, RowsSortedByNeighborThenTime) {
  const TemporalEdgeList events = test::random_events(11, 30, 3000, 2000);
  const TemporalCsr g =
      TemporalCsr::build(events.events(), events.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto cols = g.row_cols(v);
    const auto times = g.row_times(v);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      const bool ordered =
          cols[i - 1] < cols[i] ||
          (cols[i - 1] == cols[i] && times[i - 1] <= times[i]);
      ASSERT_TRUE(ordered) << "row " << v << " entry " << i;
    }
  }
}

TEST(TemporalCsr, ForwardRowHoldsOutEvents) {
  TemporalEdgeList events;
  events.add(0, 1, 10);
  events.add(0, 2, 20);
  events.add(1, 0, 30);
  const TemporalCsr g = TemporalCsr::build(events.events(), 3, false);
  EXPECT_EQ(g.row_cols(0).size(), 2u);
  EXPECT_EQ(g.row_cols(1).size(), 1u);
  EXPECT_EQ(g.row_cols(2).size(), 0u);
}

TEST(TemporalCsr, ReverseRowHoldsInEvents) {
  TemporalEdgeList events;
  events.add(0, 1, 10);
  events.add(0, 2, 20);
  events.add(1, 0, 30);
  const TemporalCsr g = TemporalCsr::build(events.events(), 3, true);
  EXPECT_EQ(g.row_cols(0).size(), 1u);  // in-edge from 1
  EXPECT_EQ(g.row_cols(0)[0], 1u);
  EXPECT_EQ(g.row_cols(1).size(), 1u);
  EXPECT_EQ(g.row_cols(2).size(), 1u);
}

/// Property: for_each_active_neighbor over random events matches a
/// brute-force filter over many random windows.
TEST(TemporalCsr, ActiveNeighborsMatchBruteForce) {
  const TemporalEdgeList events = test::random_events(5, 25, 2000, 1000);
  const TemporalCsr g =
      TemporalCsr::build(events.events(), events.num_vertices(), false);
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const auto ts = static_cast<Timestamp>(rng.bounded(1100));
    const auto te = ts + static_cast<Timestamp>(rng.bounded(400));
    // Brute force: distinct out-neighbors per source in [ts, te].
    std::map<VertexId, std::set<VertexId>> expect;
    for (const auto& e : events.events()) {
      if (e.time >= ts && e.time <= te) expect[e.src].insert(e.dst);
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::set<VertexId> got;
      g.for_each_active_neighbor(v, ts, te, [&](VertexId u) {
        const bool inserted = got.insert(u).second;
        EXPECT_TRUE(inserted) << "duplicate neighbor " << u << " of " << v;
      });
      ASSERT_EQ(got, expect[v]) << "v=" << v << " [" << ts << "," << te << "]";
    }
  }
}

TEST(TemporalCsr, DuplicateEventsReportedOnce) {
  TemporalEdgeList events;
  events.add(0, 1, 10);
  events.add(0, 1, 15);
  events.add(0, 1, 20);
  const TemporalCsr g = TemporalCsr::build(events.events(), 2, false);
  int count = 0;
  g.for_each_active_neighbor(0, 0, 100, [&](VertexId u) {
    EXPECT_EQ(u, 1u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(TemporalCsr, WindowExcludesOutOfRangeRuns) {
  TemporalEdgeList events;
  events.add(0, 1, 10);
  events.add(0, 2, 50);
  const TemporalCsr g = TemporalCsr::build(events.events(), 3, false);
  int count = 0;
  VertexId seen = 99;
  g.for_each_active_neighbor(0, 40, 60, [&](VertexId u) {
    seen = u;
    ++count;
  });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(seen, 2u);
}

TEST(TemporalCsr, EmptyWindowNoNeighbors) {
  const TemporalEdgeList events = test::paper_example_directed();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  for (VertexId v = 0; v < 7; ++v) {
    g.for_each_active_neighbor(
        v, 0, 100, [&](VertexId) { FAIL() << "no events before day 100"; });
  }
}

TEST(TemporalCsr, PaperExampleWindowT1) {
  // In interval T1, vertex 1 (paper's 2) has distinct neighbors
  // {0 (via 6/21 event? no—that's 0->1), 2, 3} in the directed version:
  // out-edges of vertex 1 in T1: (1,2)@212, (1,3)@222.
  const TemporalEdgeList events = test::paper_example_directed();
  const TemporalCsr g = TemporalCsr::build(events.events(), 7, false);
  std::set<VertexId> got;
  g.for_each_active_neighbor(1, test::PaperIntervals::t1_start,
                             test::PaperIntervals::t1_end,
                             [&](VertexId u) { got.insert(u); });
  EXPECT_EQ(got, (std::set<VertexId>{2, 3}));
}

TEST(TemporalCsr, MemoryBytesGrowsWithEvents) {
  const TemporalEdgeList small = test::random_events(2, 20, 100, 100);
  const TemporalEdgeList big = test::random_events(2, 20, 10000, 100);
  const TemporalCsr gs = TemporalCsr::build(small.events(), 20, false);
  const TemporalCsr gb = TemporalCsr::build(big.events(), 20, false);
  EXPECT_LT(gs.memory_bytes(), gb.memory_bytes());
}

}  // namespace
}  // namespace pmpr
