#include "graph/memory_budget.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Fixture {
  TemporalEdgeList events = test::random_events(5, 100, 5000, 50000);
  WindowSpec spec = WindowSpec::cover(0, 50000, 8000, 1000);
};

TEST(MemoryBudget, EstimateMatchesSetAccounting) {
  Fixture f;
  const MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, 4);
  const MemoryEstimate est = estimate_memory(set, 16);
  EXPECT_GE(est.representation_bytes, set.memory_bytes());
  EXPECT_GT(est.largest_part_bytes, 0u);
  EXPECT_GT(est.working_bytes_per_context, 0u);
  EXPECT_GT(est.peak_bytes(2), est.peak_bytes(1));
}

TEST(MemoryBudget, MorePartsShrinkLargestPart) {
  Fixture f;
  const MemoryEstimate one = predict_memory(f.events, f.spec, 1, 16);
  const MemoryEstimate many = predict_memory(f.events, f.spec, 16, 16);
  EXPECT_LT(many.largest_part_bytes, one.largest_part_bytes);
  // Overlap duplication: total representation does not shrink.
  EXPECT_GE(many.representation_bytes, one.representation_bytes / 2);
}

TEST(MemoryBudget, PredictionUpperBoundsReality) {
  Fixture f;
  for (const std::size_t parts : {1u, 4u, 8u}) {
    const MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, parts);
    const MemoryEstimate actual = estimate_memory(set, 1);
    const MemoryEstimate predicted =
        predict_memory(f.events, f.spec, parts, 1);
    EXPECT_GE(predicted.representation_bytes * 2,
              actual.representation_bytes)
        << parts;
    EXPECT_GE(predicted.largest_part_bytes * 2, actual.largest_part_bytes)
        << parts;
  }
}

TEST(MemoryBudget, HugeBudgetSuggestsOnePart) {
  Fixture f;
  EXPECT_EQ(suggest_num_multi_windows(f.events, f.spec, 1ULL << 40, 16, 1),
            1u);
}

TEST(MemoryBudget, TinyBudgetSuggestsMaxDecomposition) {
  Fixture f;
  const std::size_t y =
      suggest_num_multi_windows(f.events, f.spec, 1024, 16, 1);
  EXPECT_GE(y, f.spec.count / 2);  // pushed to (near) the window count
}

TEST(MemoryBudget, SuggestionFitsBudgetWhenPossible) {
  Fixture f;
  const MemoryEstimate full = predict_memory(f.events, f.spec, 1, 8);
  // A budget a bit above the two-part footprint must be satisfiable.
  const std::size_t budget = full.peak_bytes(1);
  const std::size_t y =
      suggest_num_multi_windows(f.events, f.spec, budget, 8, 1);
  const MemoryEstimate chosen = predict_memory(f.events, f.spec, y, 8);
  EXPECT_LE(chosen.peak_bytes(1), budget);
}

TEST(MemoryBudget, MoreContextsNeedMoreMemory) {
  Fixture f;
  const MemoryEstimate est = predict_memory(f.events, f.spec, 4, 16);
  EXPECT_GT(est.peak_bytes(8), est.peak_bytes(1));
}

}  // namespace
}  // namespace pmpr
