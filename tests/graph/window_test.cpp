#include "graph/window.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pmpr {
namespace {

TEST(WindowSpec, StartEndArithmetic) {
  WindowSpec spec{.t0 = 100, .delta = 50, .sw = 10, .count = 5};
  EXPECT_EQ(spec.start(0), 100);
  EXPECT_EQ(spec.end(0), 150);
  EXPECT_EQ(spec.start(3), 130);
  EXPECT_EQ(spec.end(3), 180);
}

TEST(WindowSpec, ContainsInclusiveBothEnds) {
  WindowSpec spec{.t0 = 100, .delta = 50, .sw = 10, .count = 5};
  EXPECT_TRUE(spec.contains(0, 100));
  EXPECT_TRUE(spec.contains(0, 150));
  EXPECT_FALSE(spec.contains(0, 99));
  EXPECT_FALSE(spec.contains(0, 151));
}

TEST(WindowSpec, CoverSpansDataRange) {
  const WindowSpec spec = WindowSpec::cover(0, 100, 20, 10);
  EXPECT_EQ(spec.t0, 0);
  EXPECT_EQ(spec.count, 11u);           // starts at 0,10,...,100
  EXPECT_LE(spec.start(spec.count - 1), 100);
  // One more window would start past t_max.
  EXPECT_GT(spec.start(spec.count), 100);
}

TEST(WindowSpec, CoverDegenerateRange) {
  const WindowSpec spec = WindowSpec::cover(50, 50, 10, 5);
  EXPECT_EQ(spec.count, 1u);
  const WindowSpec inverted = WindowSpec::cover(50, 10, 10, 5);
  EXPECT_EQ(inverted.count, 1u);
}

TEST(WindowSpec, CoverCappedLimitsCount) {
  const WindowSpec spec = WindowSpec::cover_capped(0, 1000000, 10, 1, 256);
  EXPECT_EQ(spec.count, 256u);
  const WindowSpec small = WindowSpec::cover_capped(0, 5, 10, 1, 256);
  EXPECT_EQ(small.count, 6u);
}

TEST(WindowSpec, WindowsContainingMatchesContainsBruteForce) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    WindowSpec spec;
    spec.t0 = static_cast<Timestamp>(rng.bounded(100));
    spec.delta = static_cast<Timestamp>(rng.bounded(200));
    spec.sw = 1 + static_cast<Timestamp>(rng.bounded(50));
    spec.count = 1 + rng.bounded(40);
    for (int probe = 0; probe < 60; ++probe) {
      const auto t = static_cast<Timestamp>(rng.bounded(1500));
      const auto [lo, hi] = spec.windows_containing(t);
      for (std::size_t w = 0; w < spec.count; ++w) {
        const bool in_range = w >= lo && w < hi;
        EXPECT_EQ(spec.contains(w, t), in_range)
            << "t=" << t << " w=" << w << " t0=" << spec.t0
            << " delta=" << spec.delta << " sw=" << spec.sw;
      }
    }
  }
}

TEST(WindowSpec, WindowsContainingBeforeStartIsEmpty) {
  WindowSpec spec{.t0 = 1000, .delta = 10, .sw = 5, .count = 3};
  const auto [lo, hi] = spec.windows_containing(999);
  EXPECT_GE(lo, hi);
}

TEST(WindowSpec, WindowsContainingAfterLastWindow) {
  WindowSpec spec{.t0 = 0, .delta = 10, .sw = 5, .count = 3};
  // Last window covers [10, 20]; t=21 is past everything.
  const auto [lo, hi] = spec.windows_containing(21);
  EXPECT_GE(lo, hi);
}

TEST(WindowSpec, OverlappingWindowsShareTimes) {
  // delta=30, sw=10: time 25 belongs to windows starting at 0,10,20.
  WindowSpec spec{.t0 = 0, .delta = 30, .sw = 10, .count = 10};
  const auto [lo, hi] = spec.windows_containing(25);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 3u);
}

TEST(WindowSpec, NegativeTimestampsSupported) {
  // Timestamps are signed; datasets may use epochs before 1970 or relative
  // offsets. Everything must work for t0 < 0.
  const WindowSpec spec = WindowSpec::cover(-1000, 1000, 300, 100);
  EXPECT_EQ(spec.t0, -1000);
  EXPECT_EQ(spec.count, 21u);
  EXPECT_TRUE(spec.contains(0, -800));
  EXPECT_FALSE(spec.contains(0, -1001));
  const auto [lo, hi] = spec.windows_containing(-500);
  EXPECT_LT(lo, hi);
  for (std::size_t w = lo; w < hi; ++w) {
    EXPECT_TRUE(spec.contains(w, -500));
  }
}

TEST(WindowSpec, NegativeTimeBruteForceSweep) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    WindowSpec spec;
    spec.t0 = -static_cast<Timestamp>(rng.bounded(500));
    spec.delta = static_cast<Timestamp>(rng.bounded(100));
    spec.sw = 1 + static_cast<Timestamp>(rng.bounded(40));
    spec.count = 1 + rng.bounded(30);
    for (int probe = 0; probe < 50; ++probe) {
      const auto t =
          static_cast<Timestamp>(rng.bounded(2000)) - 1000;
      const auto [lo, hi] = spec.windows_containing(t);
      for (std::size_t w = 0; w < spec.count; ++w) {
        ASSERT_EQ(spec.contains(w, t), w >= lo && w < hi)
            << "t=" << t << " w=" << w << " t0=" << spec.t0;
      }
    }
  }
}

TEST(WindowSpec, DisjointWindowsSingleOwner) {
  // sw > delta: each time in at most one window.
  WindowSpec spec{.t0 = 0, .delta = 5, .sw = 10, .count = 10};
  for (Timestamp t = 0; t <= 100; ++t) {
    const auto [lo, hi] = spec.windows_containing(t);
    EXPECT_LE(hi - lo, 1u) << "t=" << t;
  }
}

}  // namespace
}  // namespace pmpr
