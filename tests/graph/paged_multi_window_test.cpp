#include "graph/paged_multi_window.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/multi_window.hpp"
#include "graph/temporal_csr.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace pmpr {
namespace {

WindowSpec test_spec() { return {0, 400, 100, 16}; }

TemporalEdgeList test_events() {
  return test::random_events(99, 60, 5000, 1999);
}

/// Options factory: a partial designated initializer trips GCC's
/// -Wmissing-field-initializers under -Wextra -Werror (sanitize builds).
PagedMultiWindowSet::Options opts_with(std::size_t num_parts,
                                       std::size_t budget_bytes = 0,
                                       std::string spill_path = {}) {
  PagedMultiWindowSet::Options opts;
  opts.num_parts = num_parts;
  opts.budget_bytes = budget_bytes;
  opts.spill_path = std::move(spill_path);
  return opts;
}

/// Decoded part adjacency must equal the in-RAM build's raw CSR.
void expect_part_matches(const MultiWindowGraph& paged_part,
                         const MultiWindowGraph& ram_part) {
  EXPECT_EQ(paged_part.first_window, ram_part.first_window);
  EXPECT_EQ(paged_part.num_windows, ram_part.num_windows);
  EXPECT_EQ(paged_part.span_start, ram_part.span_start);
  EXPECT_EQ(paged_part.span_end, ram_part.span_end);
  EXPECT_EQ(paged_part.num_events, ram_part.num_events);
  EXPECT_EQ(paged_part.local_to_global, ram_part.local_to_global);
  ASSERT_TRUE(paged_part.is_compressed());
  ASSERT_FALSE(ram_part.is_compressed());
  const TemporalCsr decoded =
      decompress_temporal_csr(*paged_part.in_compressed);
  ASSERT_EQ(decoded.num_vertices(), ram_part.in.num_vertices());
  ASSERT_EQ(decoded.num_entries(), ram_part.in.num_entries());
  for (VertexId v = 0; v < decoded.num_vertices(); ++v) {
    const auto cols = decoded.row_cols(v);
    const auto ref_cols = ram_part.in.row_cols(v);
    const auto times = decoded.row_times(v);
    const auto ref_times = ram_part.in.row_times(v);
    ASSERT_EQ(cols.size(), ref_cols.size()) << "row " << v;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      ASSERT_EQ(cols[i], ref_cols[i]) << "row " << v << " entry " << i;
      ASSERT_EQ(times[i], ref_times[i]) << "row " << v << " entry " << i;
    }
  }
}

TEST(PagedMultiWindowSet, BuildMatchesInRamDecomposition) {
  const TemporalEdgeList events = test_events();
  const WindowSpec spec = test_spec();
  const MultiWindowSet ram = MultiWindowSet::build(events, spec, 4);
  PagedMultiWindowSet::Options opts;
  opts.num_parts = 4;
  const auto paged = PagedMultiWindowSet::build(events, spec, opts);
  ASSERT_EQ(paged->num_parts(), ram.num_parts());
  EXPECT_EQ(paged->num_global_vertices(), ram.num_global_vertices());
  for (std::size_t p = 0; p < paged->num_parts(); ++p) {
    const PagedMultiWindowSet::Lease lease = paged->acquire(p);
    expect_part_matches(lease.part(), ram.part(p));
    lease.part().validate();
  }
  for (std::size_t w = 0; w < spec.count; ++w) {
    EXPECT_EQ(paged->part_index_for_window(w), ram.part_index_for_window(w));
  }
}

TEST(PagedMultiWindowSet, ZeroBudgetPagesOnePartAtATime) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(6));
  ASSERT_EQ(paged->num_parts(), 6u);
  // budget 0 resolves to the largest single part.
  EXPECT_GT(paged->budget_bytes(), 0u);
  for (std::size_t p = 0; p < paged->num_parts(); ++p) {
    const PagedMultiWindowSet::Lease lease = paged->acquire(p);
    EXPECT_TRUE(lease.valid());
    EXPECT_LE(paged->resident_bytes(), paged->budget_bytes());
  }
  const PagingStats stats = paged->stats();
  // Touching all 6 parts under a one-part budget must have evicted along
  // the way (every part payload here is non-empty).
  EXPECT_GE(stats.parts_evicted, 4u);
  EXPECT_LE(paged->resident_bytes(), paged->budget_bytes());
}

TEST(PagedMultiWindowSet, ReacquiringEvictedPartCountsRefault) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(4));
  (void)paged->acquire(0);
  for (std::size_t p = 1; p < paged->num_parts(); ++p) (void)paged->acquire(p);
  const std::size_t evicted_before = paged->stats().parts_evicted;
  ASSERT_GE(evicted_before, 1u);
  (void)paged->acquire(0);
  EXPECT_GE(paged->stats().part_refaults, 1u);
}

TEST(PagedMultiWindowSet, RefaultCountedExactlyOncePerRemap) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(4));
  // First pass over all parts: cold faults only, never refaults.
  for (std::size_t p = 0; p < paged->num_parts(); ++p) (void)paged->acquire(p);
  EXPECT_EQ(paged->stats().part_refaults, 0u);
  // Part 0 was evicted during the sweep: re-mapping it is one refault.
  (void)paged->acquire(0);
  EXPECT_EQ(paged->stats().part_refaults, 1u);
  // Acquiring a part that is already resident is a hit, not a refault.
  (void)paged->acquire(0);
  EXPECT_EQ(paged->stats().part_refaults, 1u);
  // Each further evict + re-map pair adds exactly one.
  (void)paged->acquire(1);  // evicted earlier in the sweep
  EXPECT_EQ(paged->stats().part_refaults, 2u);
  (void)paged->acquire(0);  // just evicted by the line above
  EXPECT_EQ(paged->stats().part_refaults, 3u);
}

TEST(PagedMultiWindowSet, PeakResidentMonotoneUnderChurn) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(6));
  std::size_t last_peak = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t p = 0; p < paged->num_parts(); ++p) {
      const PagedMultiWindowSet::Lease lease = paged->acquire(p);
      const PagingStats s = paged->stats();
      // The charged watermark never decreases, and always dominates the
      // instantaneous residency — pin/unpin churn must not reset it.
      EXPECT_GE(s.peak_resident_bytes, last_peak);
      EXPECT_GE(s.peak_resident_bytes, paged->resident_bytes());
      last_peak = s.peak_resident_bytes;
    }
  }
  EXPECT_GT(last_peak, 0u);
  EXPECT_LE(last_peak, paged->budget_bytes());
  // The churn mapped real store pages, so the mincore audit saw some.
  EXPECT_GT(paged->stats().measured_resident_peak_bytes, 0u);
}

TEST(PagedMultiWindowSet, PinnedPartsAreNeverEvicted) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(4));
  const PagedMultiWindowSet::Lease held = paged->acquire(0);
  const MultiWindowGraph& part = held.part();
  ASSERT_TRUE(part.is_compressed());
  const TemporalCsr before = decompress_temporal_csr(*part.in_compressed);
  // Under the one-part budget, every further acquire needs the full budget
  // and part 0 is pinned — so these must throw rather than evict it.
  EXPECT_THROW((void)paged->acquire(1), InvariantError);
  // The pinned part stays mapped and intact.
  ASSERT_TRUE(part.is_compressed());
  const TemporalCsr after = decompress_temporal_csr(*part.in_compressed);
  ASSERT_EQ(after.num_entries(), before.num_entries());
}

TEST(PagedMultiWindowSet, BudgetAdmitsMultipleParts) {
  const auto one_at_a_time =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(4));
  std::size_t total_payload = 0;
  {
    const PagingStats s = one_at_a_time->stats();
    total_payload = s.store_bytes;  // upper bound on Σ payload
  }
  const auto roomy = PagedMultiWindowSet::build(
      test_events(), test_spec(),
      opts_with(4, total_payload * 2));
  std::vector<PagedMultiWindowSet::Lease> leases;
  for (std::size_t p = 0; p < roomy->num_parts(); ++p) {
    leases.push_back(roomy->acquire(p));
  }
  EXPECT_EQ(roomy->stats().parts_evicted, 0u);
  for (const auto& lease : leases) {
    EXPECT_TRUE(lease.part().is_compressed());
  }
}

TEST(PagedMultiWindowSet, MetadataReadableWhileEvicted) {
  const TemporalEdgeList events = test_events();
  const WindowSpec spec = test_spec();
  const MultiWindowSet ram = MultiWindowSet::build(events, spec, 4);
  const auto paged = PagedMultiWindowSet::build(events, spec, opts_with(4));
  // Cycle through all parts so earlier ones get evicted...
  for (std::size_t p = 0; p < paged->num_parts(); ++p) (void)paged->acquire(p);
  // ...then read every part's metadata without pinning.
  for (std::size_t p = 0; p < paged->num_parts(); ++p) {
    const MultiWindowGraph& meta = paged->part_meta(p);
    EXPECT_EQ(meta.first_window, ram.part(p).first_window);
    EXPECT_EQ(meta.num_windows, ram.part(p).num_windows);
    EXPECT_EQ(meta.local_to_global, ram.part(p).local_to_global);
  }
}

TEST(PagedMultiWindowSet, StatsReportStoreAndRawBytes) {
  const auto paged =
      PagedMultiWindowSet::build(test_events(), test_spec(), opts_with(4));
  const PagingStats stats = paged->stats();
  EXPECT_GT(stats.store_bytes, 0u);
  EXPECT_GT(stats.raw_bytes, 0u);
  EXPECT_GT(stats.chunks_total, 0u);
  // Delta+varint on sorted adjacency beats the raw 12-byte entries.
  EXPECT_LT(stats.store_bytes, stats.raw_bytes);
  EXPECT_EQ(std::filesystem::file_size(paged->store_path()),
            stats.store_bytes);
}

TEST(PagedMultiWindowSet, TempStoreFileRemovedOnDestroy) {
  std::string path;
  {
    const auto paged = PagedMultiWindowSet::build(test_events(), test_spec(),
                                                  opts_with(2));
    path = paged->store_path();
    ASSERT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(PagedMultiWindowSet, ExplicitSpillPathIsUsed) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pmpr-test-spill.bin")
          .string();
  {
    const auto paged = PagedMultiWindowSet::build(
        test_events(), test_spec(), opts_with(2, 0, path));
    EXPECT_EQ(paged->store_path(), path);
    ASSERT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(PagedMultiWindowSet, RejectsUnsortedEvents) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  events.add(1, 2, 50);
  EXPECT_THROW(
      (void)PagedMultiWindowSet::build(events, {0, 10, 10, 4}, opts_with(2)),
      InvariantError);
}

}  // namespace
}  // namespace pmpr
