#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_pairs({}, 4, false);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.neighbors(v).empty());
    EXPECT_EQ(g.degree(v), 0u);
  }
}

TEST(Csr, BasicAdjacency) {
  const std::vector<std::pair<VertexId, VertexId>> edges{
      {0, 1}, {0, 2}, {1, 2}, {2, 0}};
  const Csr g = Csr::from_pairs(edges, 3, false);
  EXPECT_EQ(g.num_edges(), 4u);
  ASSERT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Csr, RowsAreSorted) {
  const std::vector<std::pair<VertexId, VertexId>> edges{
      {0, 5}, {0, 1}, {0, 3}, {0, 2}};
  const Csr g = Csr::from_pairs(edges, 6, false);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Csr, DedupCollapsesParallelEdges) {
  const std::vector<std::pair<VertexId, VertexId>> edges{
      {0, 1}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {2, 2}};
  const Csr g = Csr::from_pairs(edges, 3, true);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);  // self loop kept once
}

TEST(Csr, DedupPreservesDistinctNeighbors) {
  const std::vector<std::pair<VertexId, VertexId>> edges{
      {1, 0}, {1, 2}, {1, 0}, {1, 3}, {1, 2}};
  const Csr g = Csr::from_pairs(edges, 4, true);
  const auto nbrs = g.neighbors(1);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Csr, IsolatedTrailingVertices) {
  const std::vector<std::pair<VertexId, VertexId>> edges{{0, 1}};
  const Csr g = Csr::from_pairs(edges, 10, false);
  EXPECT_EQ(g.num_vertices(), 10u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(WindowGraph, BuildMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(3, 40, 1500, 5000);
  for (const auto& [ts, te] : std::vector<std::pair<Timestamp, Timestamp>>{
           {0, 5000}, {1000, 2000}, {4900, 5000}, {2000, 1000}}) {
    const WindowGraph g =
        build_window_graph(events.slice(ts, te), events.num_vertices());
    const auto brute = test::brute_window_edges(events, ts, te);
    EXPECT_EQ(g.num_edges, brute.size());

    std::vector<std::uint32_t> expect_outdeg(events.num_vertices(), 0);
    std::vector<std::uint8_t> expect_active(events.num_vertices(), 0);
    for (const auto& [u, v] : brute) {
      ++expect_outdeg[u];
      expect_active[u] = 1;
      expect_active[v] = 1;
    }
    std::size_t expect_num_active = 0;
    for (const auto a : expect_active) expect_num_active += a;

    EXPECT_EQ(g.num_active, expect_num_active);
    for (VertexId v = 0; v < events.num_vertices(); ++v) {
      ASSERT_EQ(g.out_degree[v], expect_outdeg[v]) << "v=" << v;
      ASSERT_EQ(g.is_active[v], expect_active[v]) << "v=" << v;
    }

    // In-adjacency: for each edge (u,v), u must appear in in.neighbors(v).
    for (const auto& [u, v] : brute) {
      const auto nbrs = g.in.neighbors(v);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), u) != nbrs.end());
    }
  }
}

TEST(WindowGraph, EmptyWindow) {
  const TemporalEdgeList events = test::paper_example_directed();
  const WindowGraph g = build_window_graph(events.slice(0, 10), 7);
  EXPECT_EQ(g.num_active, 0u);
  EXPECT_EQ(g.num_edges, 0u);
}

TEST(WindowGraph, PaperExampleFirstInterval) {
  // Fig. 2b: interval T1 (6/1-9/15) contains edges 1-2, 3-5, 4-6, 2-3, 2-4,
  // 5-6 (1-indexed) = (0,1),(2,4),(3,5),(1,2),(1,3),(4,5) 0-indexed.
  const TemporalEdgeList events = test::paper_example_directed();
  const WindowGraph g = build_window_graph(
      events.slice(test::PaperIntervals::t1_start,
                   test::PaperIntervals::t1_end),
      7);
  EXPECT_EQ(g.num_edges, 6u);
  // Vertex 6 (paper's 7) is not yet active in T1.
  EXPECT_EQ(g.is_active[6], 0);
  EXPECT_EQ(g.num_active, 6u);
}

}  // namespace
}  // namespace pmpr
