// The binary-search time-scan variant must be observationally identical to
// the linear run scan for every window.
#include <gtest/gtest.h>

#include <set>

#include "graph/temporal_csr.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(TemporalCsrBinsearch, MatchesLinearScanOnRandomData) {
  const TemporalEdgeList events = test::random_events(15, 25, 3000, 1000);
  const TemporalCsr g =
      TemporalCsr::build(events.events(), events.num_vertices(), false);
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const auto ts = static_cast<Timestamp>(rng.bounded(1100));
    const auto te = ts + static_cast<Timestamp>(rng.bounded(300));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::set<VertexId> linear;
      std::set<VertexId> bin;
      g.for_each_active_neighbor(v, ts, te,
                                 [&](VertexId u) { linear.insert(u); });
      g.for_each_active_neighbor_binsearch(
          v, ts, te, [&](VertexId u) { bin.insert(u); });
      ASSERT_EQ(linear, bin) << "v=" << v << " [" << ts << "," << te << "]";
    }
  }
}

TEST(TemporalCsrBinsearch, LongRunsHandled) {
  // One vertex pair with many events: the binary search has something to
  // skip.
  TemporalEdgeList events;
  for (Timestamp t = 0; t < 1000; t += 2) events.add(0, 1, t);
  events.add(0, 2, 500);
  const TemporalCsr g = TemporalCsr::build(events.events(), 3, false);

  std::set<VertexId> got;
  g.for_each_active_neighbor_binsearch(0, 499, 501,
                                       [&](VertexId u) { got.insert(u); });
  EXPECT_EQ(got, (std::set<VertexId>{1, 2}));

  got.clear();
  g.for_each_active_neighbor_binsearch(0, 999, 1500,
                                       [&](VertexId u) { got.insert(u); });
  // Events are at even times 0..998; 999..1500 contains none.
  EXPECT_TRUE(got.empty());
}

TEST(TemporalCsrBinsearch, BoundaryTimesInclusive) {
  TemporalEdgeList events;
  events.add(0, 1, 100);
  const TemporalCsr g = TemporalCsr::build(events.events(), 2, false);
  int hits = 0;
  g.for_each_active_neighbor_binsearch(0, 100, 100,
                                       [&](VertexId) { ++hits; });
  EXPECT_EQ(hits, 1);
  g.for_each_active_neighbor_binsearch(0, 101, 200,
                                       [&](VertexId) { ++hits; });
  EXPECT_EQ(hits, 1);
  g.for_each_active_neighbor_binsearch(0, 0, 99, [&](VertexId) { ++hits; });
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace pmpr
