#include "io/compressed_csr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pmpr::io {
namespace {

struct RawCsr {
  std::vector<std::size_t> row_ptr;
  std::vector<ColId> cols;
  std::vector<TimeValue> times;
};

/// Builds a CSR from explicit rows (list of ⟨col,time⟩ vectors).
RawCsr make_csr(
    const std::vector<std::vector<std::pair<ColId, TimeValue>>>& rows) {
  RawCsr csr;
  csr.row_ptr.push_back(0);
  for (const auto& row : rows) {
    for (const auto& [c, t] : row) {
      csr.cols.push_back(c);
      csr.times.push_back(t);
    }
    csr.row_ptr.push_back(csr.cols.size());
  }
  return csr;
}

void expect_exact_roundtrip(const RawCsr& csr,
                            std::size_t target_chunk_entries = 4) {
  const CompressedTemporalCsr packed = CompressedTemporalCsr::encode(
      csr.row_ptr, csr.cols, csr.times, target_chunk_entries);
  ASSERT_EQ(packed.num_rows(), csr.row_ptr.size() - 1);
  ASSERT_EQ(packed.num_entries(), csr.cols.size());
  DecodeScratch scratch;
  packed.decode_all(scratch);
  ASSERT_EQ(scratch.row_ptr.size(), csr.row_ptr.size());
  for (std::size_t i = 0; i < csr.row_ptr.size(); ++i) {
    EXPECT_EQ(scratch.row_ptr[i], csr.row_ptr[i]) << "row_ptr[" << i << "]";
  }
  ASSERT_EQ(scratch.cols.size(), csr.cols.size());
  ASSERT_EQ(scratch.times.size(), csr.times.size());
  for (std::size_t i = 0; i < csr.cols.size(); ++i) {
    EXPECT_EQ(scratch.cols[i], csr.cols[i]) << "col[" << i << "]";
    EXPECT_EQ(scratch.times[i], csr.times[i]) << "time[" << i << "]";
  }
}

TEST(CompressedCsr, RoundTripsTypicalSortedRows) {
  expect_exact_roundtrip(make_csr({
      {{1, 10}, {1, 20}, {3, 15}, {7, 15}},
      {{0, 5}, {2, 5}, {2, 6}},
      {{4, 100}},
  }));
}

TEST(CompressedCsr, RoundTripsNonMonotoneTimesWithinRow) {
  // The encoder assumes nothing about time order inside a row: deltas go
  // negative and the zigzag keeps them exact.
  expect_exact_roundtrip(make_csr({
      {{0, 500}, {1, 3}, {2, 499}, {3, -7}, {4, 500}},
      {{9, -1}, {8, 1}, {7, -1}},
  }));
}

TEST(CompressedCsr, RoundTripsAllEqualTimestamps) {
  expect_exact_roundtrip(make_csr({
      {{0, 42}, {1, 42}, {2, 42}, {3, 42}},
      {{5, 42}, {6, 42}},
  }));
}

TEST(CompressedCsr, RoundTripsFullInt64TimestampSpread) {
  constexpr TimeValue lo = std::numeric_limits<TimeValue>::min();
  constexpr TimeValue hi = std::numeric_limits<TimeValue>::max();
  expect_exact_roundtrip(make_csr({
      {{0, lo}, {1, hi}, {2, lo}, {3, hi}},
      {{0, hi}},
      {{0, lo}},
  }));
}

TEST(CompressedCsr, RoundTripsSingleEventRows) {
  expect_exact_roundtrip(make_csr({
      {{3, 7}},
      {{1, -9}},
      {{std::numeric_limits<ColId>::max(), 0}},
  }));
}

TEST(CompressedCsr, RoundTripsEmptyRows) {
  expect_exact_roundtrip(make_csr({
      {},
      {{1, 5}},
      {},
      {},
      {{2, 6}, {3, 7}},
      {},
  }));
}

TEST(CompressedCsr, RoundTripsEmptyCsr) {
  expect_exact_roundtrip(make_csr({}));
  expect_exact_roundtrip(make_csr({{}, {}, {}}));
}

TEST(CompressedCsr, RoundTripsRandomCsrAcrossChunkSizes) {
  Xoshiro256 rng(2024);
  std::vector<std::vector<std::pair<ColId, TimeValue>>> rows(64);
  for (auto& row : rows) {
    const std::size_t len = rng.bounded(9);  // includes empty rows
    for (std::size_t i = 0; i < len; ++i) {
      row.emplace_back(static_cast<ColId>(rng.bounded(1u << 20)),
                       static_cast<TimeValue>(rng()));
    }
  }
  const RawCsr csr = make_csr(rows);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, kDefaultChunkEntries}) {
    expect_exact_roundtrip(csr, chunk);
  }
}

TEST(CompressedCsr, ChunksKeepRowsWholeAndCoverTimeExtents) {
  const RawCsr csr = make_csr({
      {{0, 10}, {1, 20}, {2, 30}},
      {{0, -5}},
      {{0, 100}, {1, 90}},
      {{0, 7}},
  });
  const CompressedTemporalCsr packed =
      CompressedTemporalCsr::encode(csr.row_ptr, csr.cols, csr.times, 2);
  ASSERT_GE(packed.num_chunks(), 2u);
  std::size_t next_row = 0;
  std::size_t next_entry = 0;
  DecodeScratch scratch;
  for (std::size_t c = 0; c < packed.num_chunks(); ++c) {
    const ChunkMeta& m = packed.chunk(c);
    EXPECT_EQ(m.first_row, next_row);
    EXPECT_EQ(m.first_entry, next_entry);
    next_row += m.num_rows;
    next_entry += m.num_entries;
    packed.decode_chunk(c, scratch);
    TimeValue lo = std::numeric_limits<TimeValue>::max();
    TimeValue hi = std::numeric_limits<TimeValue>::min();
    for (const TimeValue t : scratch.times) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    if (!scratch.times.empty()) {
      EXPECT_EQ(m.time_min, lo);
      EXPECT_EQ(m.time_max, hi);
    }
  }
  EXPECT_EQ(next_row, packed.num_rows());
  EXPECT_EQ(next_entry, packed.num_entries());
}

TEST(CompressedCsr, CompressesSortedAdjacency) {
  // Rows sorted by ⟨neighbor, time⟩ with small deltas — the real workload.
  std::vector<std::vector<std::pair<ColId, TimeValue>>> rows(128);
  Xoshiro256 rng(7);
  for (auto& row : rows) {
    ColId col = 0;
    TimeValue t = 1'600'000'000;
    for (int i = 0; i < 32; ++i) {
      col += static_cast<ColId>(rng.bounded(4));
      t += static_cast<TimeValue>(rng.bounded(86'400));
      row.emplace_back(col, t);
    }
  }
  const RawCsr csr = make_csr(rows);
  const CompressedTemporalCsr packed =
      CompressedTemporalCsr::encode(csr.row_ptr, csr.cols, csr.times);
  EXPECT_LT(packed.encoded_bytes() * 3, packed.raw_adjacency_bytes())
      << "expected >= 3x over the raw 12-byte entries, got "
      << static_cast<double>(packed.raw_adjacency_bytes()) /
             static_cast<double>(packed.encoded_bytes());
}

TEST(CompressedCsr, MalformedRowPtrThrows) {
  const std::vector<ColId> cols = {1, 2};
  const std::vector<TimeValue> times = {1, 2};
  // Non-monotone.
  const std::vector<std::size_t> bad1 = {0, 2, 1};
  EXPECT_THROW((void)CompressedTemporalCsr::encode(bad1, cols, times),
               InvariantError);
  // Doesn't end at the entry count.
  const std::vector<std::size_t> bad2 = {0, 1};
  EXPECT_THROW((void)CompressedTemporalCsr::encode(bad2, cols, times),
               InvariantError);
  // cols/times length mismatch.
  const std::vector<std::size_t> ok = {0, 2};
  const std::vector<TimeValue> short_times = {1};
  EXPECT_THROW((void)CompressedTemporalCsr::encode(ok, cols, short_times),
               InvariantError);
}

class CompressedCsrFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pmpr-csr-test-" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "-" + std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(CompressedCsrFileTest, SaveLoadRoundTrips) {
  const RawCsr csr = make_csr({
      {{1, 10}, {2, -20}},
      {},
      {{0, 5}, {0, 5}, {9, 1000}},
  });
  const CompressedTemporalCsr packed =
      CompressedTemporalCsr::encode(csr.row_ptr, csr.cols, csr.times, 2);
  packed.save(path_);
  const CompressedTemporalCsr loaded = CompressedTemporalCsr::load(path_);
  EXPECT_FALSE(loaded.is_mapped_view());
  DecodeScratch scratch;
  loaded.decode_all(scratch);
  EXPECT_EQ(scratch.cols, csr.cols);
  EXPECT_EQ(scratch.times, csr.times);
  EXPECT_EQ(scratch.row_ptr, csr.row_ptr);
}

TEST_F(CompressedCsrFileTest, MappedViewDecodesIdentically) {
  const RawCsr csr = make_csr({
      {{1, 10}, {2, 20}, {3, 30}},
      {{4, -40}},
  });
  const CompressedTemporalCsr packed =
      CompressedTemporalCsr::encode(csr.row_ptr, csr.cols, csr.times, 2);
  packed.save(path_);
  auto file = std::make_shared<MmapFile>(MmapFile::open(path_));
  const CompressedTemporalCsr mapped = CompressedTemporalCsr::map(file);
  EXPECT_TRUE(mapped.is_mapped_view());
  DecodeScratch scratch;
  mapped.decode_all(scratch);
  EXPECT_EQ(scratch.cols, csr.cols);
  EXPECT_EQ(scratch.times, csr.times);
  // Advice must not corrupt subsequent decodes (pages refault from disk).
  mapped.advise(Advice::kDontNeed);
  DecodeScratch again;
  mapped.decode_all(again);
  EXPECT_EQ(again.cols, csr.cols);
  EXPECT_EQ(again.times, csr.times);
}

TEST_F(CompressedCsrFileTest, CorruptHeaderRejected) {
  const RawCsr csr = make_csr({{{1, 10}}});
  const CompressedTemporalCsr packed =
      CompressedTemporalCsr::encode(csr.row_ptr, csr.cols, csr.times);
  packed.save(path_);
  std::vector<char> bytes;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto rewrite = [&](std::size_t at, char value) {
    std::vector<char> copy = bytes;
    copy[at] = value;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(copy.data(), static_cast<std::streamsize>(copy.size()));
  };
  // Bad magic.
  rewrite(0, 'X');
  EXPECT_THROW((void)CompressedTemporalCsr::load(path_), InvariantError);
  // Foreign endianness marker (byte 8 of the header).
  rewrite(8, '\xFF');
  EXPECT_THROW((void)CompressedTemporalCsr::load(path_), InvariantError);
  // Unknown codec (byte 10).
  rewrite(10, '\x7F');
  EXPECT_THROW((void)CompressedTemporalCsr::load(path_), InvariantError);
  // Truncated payload.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 1));
  }
  EXPECT_THROW((void)CompressedTemporalCsr::load(path_), InvariantError);
}

}  // namespace
}  // namespace pmpr::io
