#include "io/mmap_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pmpr::io {
namespace {

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pmpr-mmap-test-" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  void write_file(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  std::string path_;
};

TEST_F(MmapFileTest, ExposesFileBytes) {
  std::vector<std::uint8_t> bytes(10'000);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 31);
  }
  write_file(bytes);
  const MmapFile file = MmapFile::open(path_);
  const auto view = file.bytes();
  ASSERT_EQ(view.size(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(view[i], bytes[i]) << "byte " << i;
  }
}

TEST_F(MmapFileTest, EmptyFileYieldsEmptySpan) {
  write_file({});
  const MmapFile file = MmapFile::open(path_);
  EXPECT_TRUE(file.bytes().empty());
}

TEST_F(MmapFileTest, MissingFileThrows) {
  EXPECT_THROW((void)MmapFile::open(path_ + ".does-not-exist"),
               InvariantError);
}

TEST_F(MmapFileTest, AdviseKeepsBytesReadable) {
  std::vector<std::uint8_t> bytes(3 * 4096 + 17, 0xA5);
  write_file(bytes);
  const MmapFile file = MmapFile::open(path_);
  // All hints, including drops and misaligned/overlong ranges, are
  // advisory: the data must stay byte-identical afterwards.
  file.advise(0, bytes.size(), Advice::kSequential);
  file.advise(100, 5000, Advice::kWillNeed);
  file.advise(1, bytes.size() * 10, Advice::kDontNeed);
  const auto view = file.bytes();
  ASSERT_EQ(view.size(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(view[i], 0xA5) << "byte " << i;
  }
}

TEST_F(MmapFileTest, MoveTransfersOwnership) {
  write_file({1, 2, 3, 4});
  MmapFile a = MmapFile::open(path_);
  MmapFile b = std::move(a);
  ASSERT_EQ(b.bytes().size(), 4u);
  EXPECT_EQ(b.bytes()[2], 3u);
  MmapFile c;
  c = std::move(b);
  ASSERT_EQ(c.bytes().size(), 4u);
  EXPECT_EQ(c.bytes()[0], 1u);
}

}  // namespace
}  // namespace pmpr::io
