#include "io/varint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace pmpr::io {
namespace {

std::uint64_t roundtrip(std::uint64_t v) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, v);
  std::uint64_t out = 0;
  const std::uint8_t* end = buf.data() + buf.size();
  const std::uint8_t* p = decode_varint(buf.data(), end, out);
  EXPECT_EQ(p, end) << "decode consumed " << (p - buf.data()) << " of "
                    << buf.size() << " bytes";
  return out;
}

TEST(Varint, RoundTripsBoundaryValues) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 35, std::numeric_limits<std::uint64_t>::max() - 1,
        std::numeric_limits<std::uint64_t>::max()}) {
    EXPECT_EQ(roundtrip(v), v);
  }
}

TEST(Varint, EncodedSizeMatchesMagnitude) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  append_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  append_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), kMaxVarintBytes);
}

TEST(Varint, TruncatedStreamThrows) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, std::uint64_t{1} << 40);
  ASSERT_GT(buf.size(), 1u);
  std::uint64_t out = 0;
  EXPECT_THROW(
      (void)decode_varint(buf.data(), buf.data() + buf.size() - 1, out),
      InvariantError);
  EXPECT_THROW((void)decode_varint(buf.data(), buf.data(), out),
               InvariantError);
}

TEST(Varint, OverlongEncodingThrows) {
  // Eleven continuation bytes: more than 64 bits of payload.
  std::vector<std::uint8_t> buf(11, 0x80);
  buf.push_back(0x00);
  std::uint64_t out = 0;
  EXPECT_THROW((void)decode_varint(buf.data(), buf.data() + buf.size(), out),
               InvariantError);
  // Ten bytes whose last carries more than bit 63.
  buf.assign(9, 0x80);
  buf.push_back(0x02);
  EXPECT_THROW((void)decode_varint(buf.data(), buf.data() + buf.size(), out),
               InvariantError);
}

TEST(Zigzag, RoundTripsExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (what keeps deltas short).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(WrapDelta, ExactAcrossFullInt64Spread) {
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  // A signed subtraction hi - lo would overflow; the wrapping form must
  // still reconstruct both directions bit-exactly.
  EXPECT_EQ(wrap_add(lo, wrap_delta(hi, lo)), hi);
  EXPECT_EQ(wrap_add(hi, wrap_delta(lo, hi)), lo);
  std::vector<std::uint8_t> buf;
  append_delta(buf, hi, lo);
  std::int64_t cur = 0;
  const std::uint8_t* p =
      decode_delta(buf.data(), buf.data() + buf.size(), lo, cur);
  EXPECT_EQ(p, buf.data() + buf.size());
  EXPECT_EQ(cur, hi);
}

TEST(Delta32, RoundTripsForwardAndBackwardSteps) {
  const std::uint32_t cases[][2] = {
      {0u, 0u},
      {5u, 3u},
      {3u, 5u},
      {0u, std::numeric_limits<std::uint32_t>::max()},
      {std::numeric_limits<std::uint32_t>::max(), 0u},
  };
  for (const auto& [cur, prev] : cases) {
    std::vector<std::uint8_t> buf;
    append_delta32(buf, cur, prev);
    std::uint32_t out = 0;
    const std::uint8_t* p =
        decode_delta32(buf.data(), buf.data() + buf.size(), prev, out);
    EXPECT_EQ(p, buf.data() + buf.size());
    EXPECT_EQ(out, cur) << "cur=" << cur << " prev=" << prev;
  }
}

}  // namespace
}  // namespace pmpr::io
