#include "streaming/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace pmpr::streaming {
namespace {

TEST(DynamicGraph, EmptyGraphBasics) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_active(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_FALSE(g.is_active(v));
    EXPECT_EQ(g.out_degree(v), 0u);
    EXPECT_EQ(g.in_degree(v), 0u);
  }
}

TEST(DynamicGraph, InsertUpdatesBothDirections) {
  DynamicGraph g(4);
  g.insert_event(0, 2);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.is_active(0));
  EXPECT_TRUE(g.is_active(2));
  EXPECT_FALSE(g.is_active(1));
  EXPECT_EQ(g.num_active(), 2u);
}

TEST(DynamicGraph, DuplicateEventKeepsOneEdge) {
  DynamicGraph g(3);
  g.insert_event(0, 1);
  g.insert_event(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
  g.remove_event(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);  // one event remains
  EXPECT_EQ(g.out_degree(0), 1u);
  g.remove_event(0, 1);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_active(), 0u);
}

TEST(DynamicGraph, SelfLoopHandled) {
  DynamicGraph g(2);
  g.insert_event(1, 1);
  EXPECT_TRUE(g.is_active(1));
  EXPECT_EQ(g.num_active(), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  g.remove_event(1, 1);
  EXPECT_EQ(g.num_active(), 0u);
}

TEST(DynamicGraph, ActivityTracksInsertionsAndRemovals) {
  DynamicGraph g(10);
  g.insert_event(0, 1);
  g.insert_event(1, 2);
  EXPECT_EQ(g.num_active(), 3u);
  g.remove_event(0, 1);
  // Vertex 0 inactive; 1 still active (out-edge to 2); 2 active.
  EXPECT_EQ(g.num_active(), 2u);
  EXPECT_FALSE(g.is_active(0));
  g.remove_event(1, 2);
  EXPECT_EQ(g.num_active(), 0u);
}

TEST(DynamicGraph, ForEachOutVisitsDistinctNeighbors) {
  DynamicGraph g(5);
  g.insert_event(0, 1);
  g.insert_event(0, 2);
  g.insert_event(0, 1);
  std::set<VertexId> seen;
  g.for_each_out(0, [&](VertexId nbr, std::uint32_t) { seen.insert(nbr); });
  EXPECT_EQ(seen, (std::set<VertexId>{1, 2}));
}

/// Sliding-window equivalence: after any sequence of batch inserts/removes
/// corresponding to a window slide, the dynamic graph's edge set equals the
/// brute-force window filter.
TEST(DynamicGraph, WindowSlidesMatchBruteForce) {
  const TemporalEdgeList events = test::random_events(55, 30, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 2500, 800);
  DynamicGraph g(events.num_vertices());

  for (std::size_t w = 0; w < spec.count; ++w) {
    if (w == 0) {
      g.insert_batch(events.slice(spec.start(0), spec.end(0)));
    } else {
      g.remove_batch(events.slice(spec.start(w - 1), spec.start(w) - 1));
      g.insert_batch(events.slice(spec.end(w - 1) + 1, spec.end(w)));
    }
    const auto brute =
        test::brute_window_edges(events, spec.start(w), spec.end(w));
    ASSERT_EQ(g.num_edges(), brute.size()) << "window " << w;
    std::set<std::pair<VertexId, VertexId>> got;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      g.for_each_out(u, [&](VertexId v, std::uint32_t) { got.emplace(u, v); });
    }
    ASSERT_EQ(got, brute) << "window " << w;

    // In-direction mirrors out-direction.
    std::set<std::pair<VertexId, VertexId>> got_in;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      g.for_each_in(v, [&](VertexId u, std::uint32_t) { got_in.emplace(u, v); });
    }
    ASSERT_EQ(got_in, brute) << "window " << w;
  }
}

TEST(DynamicGraph, BlocksAllocatedGrowsWithDegree) {
  DynamicGraph g(2);
  for (VertexId i = 0; i < 100; ++i) {
    g.insert_event(0, 1);  // merged: no growth beyond the first block pair
  }
  const std::size_t merged_blocks = g.blocks_allocated();
  DynamicGraph g2(200);
  for (VertexId i = 0; i < 100; ++i) {
    g2.insert_event(0, i + 1);  // distinct neighbors: chains must grow
  }
  EXPECT_GT(g2.blocks_allocated(), merged_blocks);
}

}  // namespace
}  // namespace pmpr::streaming
