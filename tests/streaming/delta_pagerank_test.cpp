#include "streaming/delta_pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "streaming/incremental_pagerank.hpp"
#include "test_helpers.hpp"

namespace pmpr::streaming {
namespace {

PagerankParams tight_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

std::vector<double> to_vec(std::span<const double> s) {
  return {s.begin(), s.end()};
}

/// Drives graph + delta PR through the sliding windows, checking every
/// window against brute force.
TEST(DeltaPagerank, TracksWindowsToSharedTolerance) {
  const TemporalEdgeList events = test::random_events(123, 30, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 600);
  DynamicGraph g(events.num_vertices());
  DeltaPagerank pr(g, tight_params());

  for (std::size_t w = 0; w < spec.count; ++w) {
    std::span<const TemporalEdge> inserted;
    std::span<const TemporalEdge> removed;
    if (w == 0) {
      inserted = events.slice(spec.start(0), spec.end(0));
    } else {
      removed = events.slice(spec.start(w - 1), spec.start(w) - 1);
      inserted = events.slice(spec.end(w - 1) + 1, spec.end(w));
    }
    g.remove_batch(removed);
    g.insert_batch(inserted);
    pr.update(inserted, removed);

    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(to_vec(pr.values()), ref), 1e-9)
        << "window " << w;
  }
}

TEST(DeltaPagerank, SmallBatchesNeedFewerCertifyingSweeps) {
  // Tiny slide relative to the window: the frontier phase should absorb
  // most of the change, leaving fewer full sweeps than a plain warm
  // restart needs.
  const TemporalEdgeList events = test::random_events(77, 60, 6000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 5000, 100);
  PagerankParams p;
  p.tol = 1e-10;
  p.max_iters = 500;

  DynamicGraph gd(events.num_vertices());
  DeltaPagerank delta(gd, p);
  DynamicGraph gw(events.num_vertices());
  IncrementalPagerank warm(gw, p);

  std::uint64_t delta_sweeps = 0;
  std::uint64_t warm_sweeps = 0;
  std::uint64_t total_rounds = 0;
  for (std::size_t w = 0; w < spec.count; ++w) {
    std::span<const TemporalEdge> inserted;
    std::span<const TemporalEdge> removed;
    if (w == 0) {
      inserted = events.slice(spec.start(0), spec.end(0));
    } else {
      removed = events.slice(spec.start(w - 1), spec.start(w) - 1);
      inserted = events.slice(spec.end(w - 1) + 1, spec.end(w));
    }
    gd.remove_batch(removed);
    gd.insert_batch(inserted);
    gw.remove_batch(removed);
    gw.insert_batch(inserted);
    const auto ds = delta.update(inserted, removed);
    delta_sweeps += static_cast<std::uint64_t>(ds.pagerank.iterations);
    warm_sweeps += static_cast<std::uint64_t>(warm.update().iterations);
    total_rounds += ds.frontier_rounds;
  }
  // The localized phase actually ran...
  EXPECT_GT(total_rounds, 0u);
  // ...and paid for itself in certifying sweeps.
  EXPECT_LE(delta_sweeps, warm_sweeps);
}

TEST(DeltaPagerank, EmptyGraphZeroVector) {
  DynamicGraph g(4);
  DeltaPagerank pr(g, tight_params());
  const auto stats = pr.update({}, {});
  EXPECT_EQ(stats.pagerank.iterations, 0);
  for (const double v : pr.values()) EXPECT_EQ(v, 0.0);
}

TEST(DeltaPagerank, ResetForcesColdStart) {
  const TemporalEdgeList events = test::random_events(31, 20, 400, 1000);
  DynamicGraph g(events.num_vertices());
  g.insert_batch(events.events());
  DeltaPagerank pr(g, tight_params());
  pr.update(events.events(), {});
  const auto x1 = to_vec(pr.values());
  pr.reset();
  const auto stats = pr.update({}, {});
  EXPECT_EQ(stats.frontier_rounds, 0u);  // cold start skips the phase
  EXPECT_LT(test::linf_diff(x1, to_vec(pr.values())), 1e-9);
}

TEST(DeltaPagerank, ValuesStayDistribution) {
  const TemporalEdgeList events = test::random_events(41, 40, 2000, 5000);
  const WindowSpec spec = WindowSpec::cover(0, 5000, 1500, 400);
  DynamicGraph g(events.num_vertices());
  DeltaPagerank pr(g, tight_params());
  for (std::size_t w = 0; w < spec.count; ++w) {
    std::span<const TemporalEdge> inserted;
    std::span<const TemporalEdge> removed;
    if (w == 0) {
      inserted = events.slice(spec.start(0), spec.end(0));
    } else {
      removed = events.slice(spec.start(w - 1), spec.start(w) - 1);
      inserted = events.slice(spec.end(w - 1) + 1, spec.end(w));
    }
    g.remove_batch(removed);
    g.insert_batch(inserted);
    pr.update(inserted, removed);
    const double total = std::accumulate(pr.values().begin(),
                                         pr.values().end(), 0.0);
    if (g.num_active() > 0) {
      ASSERT_NEAR(total, 1.0, 1e-9) << "window " << w;
    }
  }
}

}  // namespace
}  // namespace pmpr::streaming
