#include "streaming/edge_blocks.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

namespace pmpr::streaming {
namespace {

TEST(BlockPool, AcquireReleaseRecycles) {
  BlockPool pool;
  EdgeBlock* a = pool.acquire();
  EXPECT_EQ(pool.blocks_allocated(), 1u);
  pool.release(a);
  EdgeBlock* b = pool.acquire();
  EXPECT_EQ(b, a);  // recycled, not re-allocated
  EXPECT_EQ(pool.blocks_allocated(), 1u);
}

TEST(BlockPool, RecycledBlockIsClean) {
  BlockPool pool;
  EdgeBlock* a = pool.acquire();
  a->count = 5;
  a->next = a;
  pool.release(a);
  EdgeBlock* b = pool.acquire();
  EXPECT_EQ(b->count, 0u);
  EXPECT_EQ(b->next, nullptr);
}

TEST(BlockChain, InsertCreatesDistinctNeighbor) {
  BlockPool pool;
  BlockChain chain;
  EXPECT_TRUE(chain.insert(3, pool));
  EXPECT_EQ(chain.degree(), 1u);
  EXPECT_FALSE(chain.empty());
}

TEST(BlockChain, DuplicateInsertMergesWeight) {
  BlockPool pool;
  BlockChain chain;
  EXPECT_TRUE(chain.insert(3, pool));
  EXPECT_FALSE(chain.insert(3, pool));
  EXPECT_EQ(chain.degree(), 1u);
  std::uint32_t weight = 0;
  chain.for_each([&](VertexId nbr, std::uint32_t w) {
    EXPECT_EQ(nbr, 3u);
    weight = w;
  });
  EXPECT_EQ(weight, 2u);
}

TEST(BlockChain, RemoveDecrementsWeightThenErases) {
  BlockPool pool;
  BlockChain chain;
  chain.insert(7, pool);
  chain.insert(7, pool);
  EXPECT_EQ(chain.remove(7, pool), 0);  // weight 2 -> 1
  EXPECT_EQ(chain.degree(), 1u);
  EXPECT_EQ(chain.remove(7, pool), 1);  // slot erased
  EXPECT_EQ(chain.degree(), 0u);
  EXPECT_TRUE(chain.empty());
}

TEST(BlockChain, SpillsAcrossBlocks) {
  BlockPool pool;
  BlockChain chain;
  const std::size_t n = kEdgeBlockCapacity * 3 + 5;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(chain.insert(static_cast<VertexId>(i), pool));
  }
  EXPECT_EQ(chain.degree(), n);
  EXPECT_GE(pool.blocks_allocated(), 4u);

  std::set<VertexId> seen;
  chain.for_each([&](VertexId nbr, std::uint32_t w) {
    EXPECT_EQ(w, 1u);
    seen.insert(nbr);
  });
  EXPECT_EQ(seen.size(), n);
}

TEST(BlockChain, EmptyBlocksReturnToPool) {
  BlockPool pool;
  BlockChain chain;
  const std::size_t n = kEdgeBlockCapacity * 2;
  for (std::size_t i = 0; i < n; ++i) {
    chain.insert(static_cast<VertexId>(i), pool);
  }
  for (std::size_t i = 0; i < n; ++i) {
    chain.remove(static_cast<VertexId>(i), pool);
  }
  EXPECT_TRUE(chain.empty());
  // All blocks back on the free list: acquiring that many allocates nothing.
  const std::size_t before = pool.blocks_allocated();
  EdgeBlock* a = pool.acquire();
  EdgeBlock* b = pool.acquire();
  EXPECT_EQ(pool.blocks_allocated(), before);
  pool.release(a);
  pool.release(b);
}

TEST(BlockChain, ClearReleasesEverything) {
  BlockPool pool;
  BlockChain chain;
  for (VertexId v = 0; v < 40; ++v) chain.insert(v, pool);
  chain.clear(pool);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.degree(), 0u);
  int visits = 0;
  chain.for_each([&](VertexId, std::uint32_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

/// Randomized insert/remove against a std::map reference model.
TEST(BlockChain, RandomOpsMatchReferenceModel) {
  BlockPool pool;
  BlockChain chain;
  std::map<VertexId, std::uint32_t> model;
  Xoshiro256 rng(42);
  for (int op = 0; op < 20000; ++op) {
    const auto v = static_cast<VertexId>(rng.bounded(30));
    if (rng.uniform() < 0.55) {
      chain.insert(v, pool);
      ++model[v];
    } else if (model.count(v) != 0) {
      chain.remove(v, pool);
      if (--model[v] == 0) model.erase(v);
    }
    if (op % 500 == 0) {
      std::map<VertexId, std::uint32_t> got;
      chain.for_each([&](VertexId nbr, std::uint32_t w) { got[nbr] = w; });
      ASSERT_EQ(got, model) << "op " << op;
      ASSERT_EQ(chain.degree(), model.size());
    }
  }
}

}  // namespace
}  // namespace pmpr::streaming
