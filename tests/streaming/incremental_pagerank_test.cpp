#include "streaming/incremental_pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_helpers.hpp"

namespace pmpr::streaming {
namespace {

PagerankParams tight_params() {
  PagerankParams p;
  p.tol = 1e-12;
  p.max_iters = 500;
  return p;
}

std::vector<double> to_vec(std::span<const double> s) {
  return {s.begin(), s.end()};
}

TEST(IncrementalPagerank, ColdStartMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(66, 40, 800, 1000);
  DynamicGraph g(events.num_vertices());
  g.insert_batch(events.slice(0, 1000));
  IncrementalPagerank pr(g, tight_params());
  pr.update();
  const auto ref = test::brute_pagerank(
      test::brute_window_edges(events, 0, 1000), events.num_vertices(), 0.15,
      1e-12, 500);
  EXPECT_LT(test::linf_diff(to_vec(pr.values()), ref), 1e-9);
}

TEST(IncrementalPagerank, TracksGraphThroughWindowSlides) {
  const TemporalEdgeList events = test::random_events(77, 30, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 600);
  DynamicGraph g(events.num_vertices());
  IncrementalPagerank pr(g, tight_params());

  for (std::size_t w = 0; w < spec.count; ++w) {
    if (w == 0) {
      g.insert_batch(events.slice(spec.start(0), spec.end(0)));
    } else {
      g.remove_batch(events.slice(spec.start(w - 1), spec.start(w) - 1));
      g.insert_batch(events.slice(spec.end(w - 1) + 1, spec.end(w)));
    }
    pr.update();
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(to_vec(pr.values()), ref), 1e-9)
        << "window " << w;
  }
}

TEST(IncrementalPagerank, WarmStartUsesFewerIterationsThanCold) {
  const TemporalEdgeList events = test::random_events(88, 50, 4000, 10000);
  // Heavily overlapping windows: warm start should pay off.
  const WindowSpec spec = WindowSpec::cover(0, 10000, 4000, 200);
  PagerankParams p;
  p.tol = 1e-10;
  p.max_iters = 500;

  auto run = [&](bool incremental) {
    DynamicGraph g(events.num_vertices());
    IncrementalPagerank pr(g, p);
    std::uint64_t total_iters = 0;
    for (std::size_t w = 0; w < spec.count; ++w) {
      if (w == 0) {
        g.insert_batch(events.slice(spec.start(0), spec.end(0)));
      } else {
        g.remove_batch(events.slice(spec.start(w - 1), spec.start(w) - 1));
        g.insert_batch(events.slice(spec.end(w - 1) + 1, spec.end(w)));
      }
      if (!incremental) pr.reset();
      total_iters += static_cast<std::uint64_t>(pr.update().iterations);
    }
    return total_iters;
  };

  const std::uint64_t warm = run(true);
  const std::uint64_t cold = run(false);
  EXPECT_LT(warm, cold);
}

TEST(IncrementalPagerank, EmptyGraphGivesZeroVector) {
  DynamicGraph g(5);
  IncrementalPagerank pr(g, tight_params());
  const PagerankStats stats = pr.update();
  EXPECT_EQ(stats.iterations, 0);
  for (const double v : pr.values()) EXPECT_EQ(v, 0.0);
}

TEST(IncrementalPagerank, RecoverFromEmptyToNonEmpty) {
  DynamicGraph g(4);
  IncrementalPagerank pr(g, tight_params());
  pr.update();
  g.insert_event(0, 1);
  g.insert_event(1, 0);
  pr.update();
  const double total = std::accumulate(pr.values().begin(),
                                       pr.values().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(IncrementalPagerank, ParallelKernelMatchesSequential) {
  const TemporalEdgeList events = test::random_events(99, 60, 2000, 1000);
  DynamicGraph g(events.num_vertices());
  g.insert_batch(events.events());

  IncrementalPagerank seq(g, tight_params());
  seq.update();
  IncrementalPagerank parl(g, tight_params());
  par::ForOptions opts{par::Partitioner::kAuto, 8, nullptr};
  parl.update(&opts);
  EXPECT_LT(test::linf_diff(to_vec(seq.values()), to_vec(parl.values())),
            1e-12);
}

TEST(IncrementalPagerank, ValuesSumToOneAfterEveryUpdate) {
  const TemporalEdgeList events = test::random_events(111, 40, 2000, 5000);
  const WindowSpec spec = WindowSpec::cover(0, 5000, 1500, 500);
  DynamicGraph g(events.num_vertices());
  IncrementalPagerank pr(g, tight_params());
  for (std::size_t w = 0; w < spec.count; ++w) {
    if (w == 0) {
      g.insert_batch(events.slice(spec.start(0), spec.end(0)));
    } else {
      g.remove_batch(events.slice(spec.start(w - 1), spec.start(w) - 1));
      g.insert_batch(events.slice(spec.end(w - 1) + 1, spec.end(w)));
    }
    pr.update();
    const double total = std::accumulate(pr.values().begin(),
                                         pr.values().end(), 0.0);
    if (g.num_active() > 0) {
      ASSERT_NEAR(total, 1.0, 1e-9) << "window " << w;
    } else {
      ASSERT_EQ(total, 0.0) << "window " << w;
    }
  }
}

}  // namespace
}  // namespace pmpr::streaming
