// Fixture: raw x86 intrinsics outside src/pagerank/simd_* must trip
// simd-intrinsics-confined. This TU has no -mavx* flags, so the intrinsic
// either fails to compile on baseline x86-64 or SIGILLs under
// -march=native on an older host.
#include <immintrin.h>

double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

bool host_has_avx2() { return __builtin_cpu_supports("avx2"); }
