// pmpr-lint fixture: violates exactly `raw-clock`.
// Direct clock reads outside src/util/ and src/obs/ must go through
// pmpr::Timer/AccumTimer or obs::trace_now_ns().
#include <chrono>

long long stamp_ns() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}
