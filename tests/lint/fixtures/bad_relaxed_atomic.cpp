// pmpr-lint fixture: violates exactly `atomic-order-comment`.
// A relaxed atomic access with no adjacent ordering-rationale comment.
#include <atomic>

int count_up(std::atomic<int>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);

  return counter.load();
}
