// Fixture: must trip [raw-clock] (sleeping-primitive half) and nothing
// else. Polling a flag with a sleep loop outside the sanctioned spots
// (src/util/ CondVar wrapper, src/obs/ sampler pacing, the pool's park
// backstop) hides latency from the profiler and burns a core; waits must
// be event-driven.
#include <chrono>
#include <thread>

namespace fixture {

bool g_done = false;  // the real code would at least make this atomic

inline void spin_until_done() {
  while (!g_done) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace fixture
