// pmpr-lint fixture: violates exactly `signal-unsafe-in-handler`.
// Allocation, std::string construction, and stdio formatting inside a
// marked async-signal-safe region.
#include <cstdio>
#include <cstdlib>
#include <string>

// PMPR_ASYNC_SIGNAL_SAFE_BEGIN

void crash_handler(int signo) {
  void* scratch = malloc(64);
  std::string message = "fatal signal";
  fprintf(stderr, "%s %d %p\n", message.c_str(), signo, scratch);
}

// PMPR_ASYNC_SIGNAL_SAFE_END
