// pmpr-lint fixture: violates exactly `raw-concurrency-type`.
// Uses std::mutex directly instead of pmpr::Mutex, outside src/par/.
#include <mutex>

int guarded_increment(int& value) {
  static std::mutex m;
  const std::scoped_lock lock(m);
  return ++value;
}
