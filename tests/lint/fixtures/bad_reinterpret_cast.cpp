// pmpr-lint fixture: violates exactly `reinterpret-cast-outside-io`.
// Type punning outside the binary-IO allowlist.
#include <cstdint>

std::uint32_t low_word(const double& d) {
  return *reinterpret_cast<const std::uint32_t*>(&d);
}
