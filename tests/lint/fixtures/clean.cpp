// pmpr-lint fixture: violates no rule. Exercises the near-miss cases —
// a documented relaxed atomic, a deleted copy constructor, and smart
// pointers — that must NOT be flagged.
#include <atomic>
#include <memory>

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void bump() {
    // relaxed: pure event count, read only after threads join.
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  int value() const { return count_.load(); }

 private:
  std::atomic<int> count_{0};
};

std::unique_ptr<Counter> make_counter() {
  return std::make_unique<Counter>();
}
