// Fixture: must trip proc-syscall-confined (and nothing else). getrusage
// and /proc/self stay out of here deliberately paired with nothing that
// another rule would flag; mincore would additionally trip
// mmap-syscall-confined, so it is exercised via the real io/ wrapper
// instead.
#include <fstream>
#include <string>

#include <sys/resource.h>

long ad_hoc_maxrss_kib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;
}

std::string ad_hoc_statm() {
  std::ifstream in("/proc/self/statm");
  std::string line;
  std::getline(in, line);
  return line;
}
