// Fixture: must trip mmap-syscall-confined (and nothing else).
#include <sys/mman.h>

#include <cstddef>

void* map_it(std::size_t size, int fd) {
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  (void)madvise(addr, size, MADV_SEQUENTIAL);
  return addr;
}
