// pmpr-lint fixture: violates exactly `naked-new-delete`.
// Manual lifetime management outside ws_deque.hpp.
struct Node {
  int value = 0;
};

int roundtrip(int v) {
  Node* n = new Node{v};
  const int out = n->value;
  delete n;
  return out;
}
