#!/usr/bin/env python3
"""Self-test for ci/pmpr_lint.py.

Runs the linter over each fixture under tests/lint/fixtures/ and asserts:
  * every bad_* fixture exits non-zero and reports exactly its expected
    rule id (and no other rule),
  * the clean fixture exits zero with no findings.

Registered as the ctest target `pmpr_lint.fixtures`.
"""

import argparse
import pathlib
import re
import subprocess
import sys

# fixture file -> rule id it must (exclusively) trip.
EXPECTED = {
    "bad_relaxed_atomic.cpp": "atomic-order-comment",
    "bad_raw_mutex.cpp": "raw-concurrency-type",
    "bad_naked_new.cpp": "naked-new-delete",
    "bad_reinterpret_cast.cpp": "reinterpret-cast-outside-io",
    "bad_raw_clock.cpp": "raw-clock",
    "bad_sleep_loop.cpp": "raw-clock",
    "bad_simd_intrinsics.cpp": "simd-intrinsics-confined",
    "bad_mmap_syscall.cpp": "mmap-syscall-confined",
    "bad_rusage_call.cpp": "proc-syscall-confined",
    "bad_signal_handler.cpp": "signal-unsafe-in-handler",
    "clean.cpp": None,
}

RULE_RE = re.compile(r"\[([a-z-]+)\]")


def run_lint(root, fixture):
    return subprocess.run(
        [
            sys.executable,
            str(root / "ci" / "pmpr_lint.py"),
            "--root",
            str(root),
            str(fixture),
        ],
        capture_output=True,
        text=True,
        check=False,
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".", help="repo root")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    fixture_dir = root / "tests" / "lint" / "fixtures"

    failures = []
    on_disk = {p.name for p in fixture_dir.glob("*.cpp")}
    missing = set(EXPECTED) - on_disk
    stray = on_disk - set(EXPECTED)
    if missing:
        failures.append(f"missing fixtures: {sorted(missing)}")
    if stray:
        failures.append(f"fixtures without an expectation: {sorted(stray)}")

    for name, want_rule in sorted(EXPECTED.items()):
        fixture = fixture_dir / name
        if not fixture.exists():
            continue
        proc = run_lint(root, fixture)
        got_rules = set(RULE_RE.findall(proc.stdout))
        if want_rule is None:
            if proc.returncode != 0 or got_rules:
                failures.append(
                    f"{name}: expected clean, got exit={proc.returncode} "
                    f"rules={sorted(got_rules)}\n{proc.stdout}"
                )
            else:
                print(f"ok   {name}: clean as expected")
        else:
            if proc.returncode == 0:
                failures.append(f"{name}: expected a violation, got none")
            elif got_rules != {want_rule}:
                failures.append(
                    f"{name}: expected exactly [{want_rule}], got "
                    f"{sorted(got_rules)}\n{proc.stdout}"
                )
            else:
                print(f"ok   {name}: tripped [{want_rule}] only")

    if failures:
        print("\n".join(f"FAIL {f}" for f in failures))
        return 1
    print(f"pmpr-lint fixtures: all {len(EXPECTED)} behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
