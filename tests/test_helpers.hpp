// Shared fixtures for the pmpr test suite:
//   * the paper's worked example (Fig. 2: 7 vertices, 14 dated events,
//     three overlapping analysis windows),
//   * random temporal-event generation for property tests,
//   * brute-force reference implementations (window edge filter, dense
//     PageRank) that the optimized paths are checked against.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "graph/window.hpp"
#include "util/rng.hpp"

namespace pmpr::test {

/// Days -> timestamp (the paper example uses dates; we use day numbers
/// since 2021-01-01).
constexpr Timestamp day(int d) { return static_cast<Timestamp>(d); }

/// Fig. 2a's edge list. Vertices are renumbered 1..7 -> 0..6. Dates are day
/// numbers: 06/21=171, 06/25=175, 07/11=191, 08/01=212, 08/11=222,
/// 09/13=255, 10/02=274, 10/05=277, 10/06=278, 10/09=281, 11/05=308,
/// 11/06=309, 11/09=312, 11/12=315.
inline TemporalEdgeList paper_example_directed() {
  TemporalEdgeList list;
  list.add(0, 1, day(171));
  list.add(2, 4, day(175));
  list.add(3, 5, day(191));
  list.add(1, 2, day(212));
  list.add(1, 3, day(222));
  list.add(4, 5, day(255));
  list.add(1, 6, day(274));
  list.add(3, 6, day(277));
  list.add(4, 6, day(278));
  list.add(5, 6, day(281));
  list.add(0, 1, day(308));
  list.add(0, 2, day(309));
  list.add(1, 4, day(312));
  list.add(2, 4, day(315));
  return list;
}

/// Same events inserted in both directions (the paper's Fig. 3 temporal CSR
/// stores 28 entries, i.e. the symmetrized graph).
inline TemporalEdgeList paper_example_symmetric() {
  const TemporalEdgeList d = paper_example_directed();
  TemporalEdgeList list;
  for (const auto& e : d.events()) {
    list.add(e.src, e.dst, e.time);
    list.add(e.dst, e.src, e.time);
  }
  list.sort_by_time();
  return list;
}

/// The paper's three analysis intervals: T1 = 6/1..9/15 (151..258),
/// T2 = 7/1..10/15 (181..288), T3 = 8/1..1/15/22 (212..380).
/// As a WindowSpec: t0=151, delta=107, sw=30 does not reproduce the exact
/// ends, so tests that need the exact intervals use these pairs directly.
struct PaperIntervals {
  static constexpr Timestamp t1_start = 151, t1_end = 258;
  static constexpr Timestamp t2_start = 181, t2_end = 288;
  static constexpr Timestamp t3_start = 212, t3_end = 380;
};

/// Uniform random temporal events over `n` vertices and [0, t_max].
inline TemporalEdgeList random_events(std::uint64_t seed, VertexId n,
                                      std::size_t count, Timestamp t_max) {
  Xoshiro256 rng(seed);
  TemporalEdgeList list;
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    const auto t = static_cast<Timestamp>(rng.bounded(
        static_cast<std::uint64_t>(t_max) + 1));
    list.add(u, v, t);
  }
  list.ensure_vertices(n);
  list.sort_by_time();
  return list;
}

/// Brute force: distinct directed edges of G(ts, te).
inline std::set<std::pair<VertexId, VertexId>> brute_window_edges(
    const TemporalEdgeList& events, Timestamp ts, Timestamp te) {
  std::set<std::pair<VertexId, VertexId>> out;
  for (const auto& e : events.events()) {
    if (e.time >= ts && e.time <= te) out.emplace(e.src, e.dst);
  }
  return out;
}

/// Brute-force dense PageRank matching the library's definition: Eq. 1 with
/// active-set |V|, dangling redistribution, L1 tolerance.
inline std::vector<double> brute_pagerank(
    const std::set<std::pair<VertexId, VertexId>>& edges, VertexId n,
    double alpha = 0.15, double tol = 1e-9, int max_iters = 100) {
  std::vector<std::uint8_t> active(n, 0);
  std::vector<std::uint32_t> out_deg(n, 0);
  for (const auto& [u, v] : edges) {
    active[u] = 1;
    active[v] = 1;
    ++out_deg[u];
  }
  std::size_t n_active = 0;
  for (VertexId v = 0; v < n; ++v) n_active += active[v];
  std::vector<double> x(n, 0.0);
  if (n_active == 0) return x;
  for (VertexId v = 0; v < n; ++v) {
    x[v] = active[v] ? 1.0 / static_cast<double>(n_active) : 0.0;
  }
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (active[v] && out_deg[v] == 0) dangling += x[v];
    }
    const double base = (alpha + (1.0 - alpha) * dangling) /
                        static_cast<double>(n_active);
    for (VertexId v = 0; v < n; ++v) next[v] = active[v] ? base : 0.0;
    for (const auto& [u, v] : edges) {
      next[v] += (1.0 - alpha) * x[u] / static_cast<double>(out_deg[u]);
    }
    double diff = 0.0;
    for (VertexId v = 0; v < n; ++v) diff += std::abs(next[v] - x[v]);
    x.swap(next);
    if (diff < tol) break;
  }
  return x;
}

/// Max absolute difference between two vectors.
inline double linf_diff(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace pmpr::test
