#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace pmpr {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanSimple) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 30.0);
}

TEST(Stats, PercentileClampsQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Stats, PercentileBucketEmptyReturnsSize) {
  const std::vector<std::uint64_t> counts{0, 0, 0};
  EXPECT_EQ(percentile_bucket(counts, 0.5), counts.size());
  EXPECT_EQ(percentile_bucket(std::vector<std::uint64_t>{}, 0.5), 0u);
}

TEST(Stats, PercentileBucketWalksCdf) {
  // Buckets: 90 in #0, 9 in #2, 1 in #4. Ranks: p50→#0, p90→#0 (rank 90
  // is the last observation of bucket 0), p91→#2, p99→#2, p100→#4.
  const std::vector<std::uint64_t> counts{90, 0, 9, 0, 1};
  EXPECT_EQ(percentile_bucket(counts, 0.50), 0u);
  EXPECT_EQ(percentile_bucket(counts, 0.90), 0u);
  EXPECT_EQ(percentile_bucket(counts, 0.91), 2u);
  EXPECT_EQ(percentile_bucket(counts, 0.99), 2u);
  EXPECT_EQ(percentile_bucket(counts, 1.0), 4u);
}

TEST(Stats, PercentileBucketClampsQ) {
  const std::vector<std::uint64_t> counts{5, 5};
  EXPECT_EQ(percentile_bucket(counts, -1.0), 0u);
  EXPECT_EQ(percentile_bucket(counts, 0.0), 0u);
  EXPECT_EQ(percentile_bucket(counts, 7.0), 1u);
}

TEST(Stats, PercentileBucketSingleBucket) {
  const std::vector<std::uint64_t> counts{0, 42, 0};
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(percentile_bucket(counts, q), 1u) << q;
  }
}

TEST(Stats, GeomeanSimple) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_EQ(geomean(v), 0.0);
  const std::vector<double> neg{1.0, -2.0};
  EXPECT_EQ(geomean(neg), 0.0);
}

TEST(Stats, SummaryKnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // Sample stddev with n-1 = sqrt(32/7).
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummarySingleElementHasZeroStddev) {
  const std::vector<double> v{3.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.median, 3.0);
}

TEST(Stats, TimeRepeatsCountsAndSkipsWarmup) {
  int calls = 0;
  const auto times = time_repeats([&] { ++calls; }, 3, 2);
  EXPECT_EQ(times.size(), 3u);
  EXPECT_EQ(calls, 5);
  for (const double t : times) EXPECT_GE(t, 0.0);
}

}  // namespace
}  // namespace pmpr
