#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>

namespace pmpr {
namespace {

/// Matches `s` starting at `pos` against `pattern`, where '#' stands for
/// one digit and every other character must match literally. Returns the
/// position one past the match, or std::string::npos. (Hand-rolled to keep
/// <regex> out of the -Werror sanitizer builds: GCC 12's
/// -Wmaybe-uninitialized fires inside libstdc++'s regex compiler.)
std::size_t match_digits_pattern(const std::string& s, std::size_t pos,
                                 const std::string& pattern) {
  for (const char p : pattern) {
    if (pos >= s.size()) return std::string::npos;
    const char c = s[pos++];
    if (p == '#') {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return std::string::npos;
      }
    } else if (c != p) {
      return std::string::npos;
    }
  }
  return pos;
}

/// True if `out` contains an annotated prefix + message, i.e.
/// `[pmpr INFO  2026-08-07T12:34:56.789Z t<digits>] <message>`.
bool has_annotated_line(const std::string& out, const std::string& message) {
  const std::string head = "[pmpr INFO  ";
  const std::size_t at = out.find(head);
  if (at == std::string::npos) return false;
  std::size_t pos = match_digits_pattern(out, at + head.size(),
                                         "####-##-##T##:##:##.###Z t#");
  if (pos == std::string::npos) return false;
  while (pos < out.size() &&
         std::isdigit(static_cast<unsigned char>(out[pos])) != 0) {
    ++pos;  // thread ids may have more than one digit
  }
  return out.compare(pos, 2 + message.size(), "] " + message) == 0;
}

/// True if `out` contains an ISO-8601 millisecond timestamp anywhere.
bool has_timestamp(const std::string& out) {
  for (std::size_t i = 0; i + 24 <= out.size(); ++i) {
    if (match_digits_pattern(out, i, "####-##-##T##:##:##.###Z") !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(Logging, SetLogLevelReturnsPrevious) {
  const LogLevel prev = set_log_level(LogLevel::kError);
  EXPECT_EQ(set_log_level(prev), LogLevel::kError);
}

TEST(Logging, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
}

TEST(Logging, UnknownLevelDefaultsToInfo) {
  EXPECT_EQ(parse_log_level("chatty"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
}

TEST(Logging, MacroBelowThresholdDoesNotEvaluate) {
  const LogLevel prev = set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto observe = [&] {
    ++evaluations;
    return 1;
  };
  PMPR_LOG(kDebug) << "never " << observe();
  EXPECT_EQ(evaluations, 0);
  PMPR_LOG(kError) << "emitted " << observe();
  EXPECT_EQ(evaluations, 1);
  set_log_level(prev);
}

TEST(Logging, MacroStreamsMultipleTypes) {
  // Smoke: must compile and run for mixed operands at every level.
  const LogLevel prev = set_log_level(LogLevel::kDebug);
  PMPR_LOG(kDebug) << "n=" << 42 << " f=" << 1.5 << " s=" << std::string("x");
  PMPR_LOG(kInfo) << "info line";
  PMPR_LOG(kWarn) << "warn line";
  PMPR_LOG(kError) << "error line";
  set_log_level(prev);
}

TEST(Logging, SetLogAnnotationsReturnsPrevious) {
  const bool prev = set_log_annotations(true);
  EXPECT_TRUE(set_log_annotations(prev));
  EXPECT_EQ(set_log_annotations(prev), prev);
}

TEST(Logging, AnnotationsOffByDefaultPlainPrefix) {
  const LogLevel prev_level = set_log_level(LogLevel::kInfo);
  const bool prev_annot = set_log_annotations(false);
  testing::internal::CaptureStderr();
  PMPR_LOG(kInfo) << "plain message";
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_annotations(prev_annot);
  set_log_level(prev_level);
  EXPECT_NE(out.find("plain message"), std::string::npos);
  // No timestamp / thread-id decoration without opting in.
  EXPECT_FALSE(has_timestamp(out)) << "got: " << out;
}

TEST(Logging, AnnotatedPrefixCarriesTimestampAndThreadId) {
  const LogLevel prev_level = set_log_level(LogLevel::kInfo);
  const bool prev_annot = set_log_annotations(true);
  testing::internal::CaptureStderr();
  PMPR_LOG(kInfo) << "annotated message";
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_annotations(prev_annot);
  set_log_level(prev_level);
  // [pmpr INFO  2026-08-07T12:34:56.789Z t0] annotated message
  EXPECT_TRUE(has_annotated_line(out, "annotated message")) << "got: " << out;
}

}  // namespace
}  // namespace pmpr
