#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace pmpr {
namespace {

TEST(Logging, SetLogLevelReturnsPrevious) {
  const LogLevel prev = set_log_level(LogLevel::kError);
  EXPECT_EQ(set_log_level(prev), LogLevel::kError);
}

TEST(Logging, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
}

TEST(Logging, UnknownLevelDefaultsToInfo) {
  EXPECT_EQ(parse_log_level("chatty"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
}

TEST(Logging, MacroBelowThresholdDoesNotEvaluate) {
  const LogLevel prev = set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto observe = [&] {
    ++evaluations;
    return 1;
  };
  PMPR_LOG(kDebug) << "never " << observe();
  EXPECT_EQ(evaluations, 0);
  PMPR_LOG(kError) << "emitted " << observe();
  EXPECT_EQ(evaluations, 1);
  set_log_level(prev);
}

TEST(Logging, MacroStreamsMultipleTypes) {
  // Smoke: must compile and run for mixed operands at every level.
  const LogLevel prev = set_log_level(LogLevel::kDebug);
  PMPR_LOG(kDebug) << "n=" << 42 << " f=" << 1.5 << " s=" << std::string("x");
  PMPR_LOG(kInfo) << "info line";
  PMPR_LOG(kWarn) << "warn line";
  PMPR_LOG(kError) << "error line";
  set_log_level(prev);
}

}  // namespace
}  // namespace pmpr
