#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pmpr {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; stderr ~ 0.0009 at n=1e5.
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BoundedApproximatelyUniform) {
  Xoshiro256 rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Xoshiro256, ForkProducesIndependentStream) {
  Xoshiro256 root(3);
  Xoshiro256 child = root.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (root() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, ForksAreReproducible) {
  Xoshiro256 a(3);
  Xoshiro256 b(3);
  Xoshiro256 ca = a.fork();
  Xoshiro256 cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Xoshiro256, WorksWithStdDistributions) {
  Xoshiro256 rng(23);
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  // Sanity: full-range outputs should hit both halves of the range.
  bool low = false;
  bool high = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng();
    low = low || v < (1ULL << 63);
    high = high || v >= (1ULL << 63);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

}  // namespace
}  // namespace pmpr
