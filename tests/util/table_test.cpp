#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pmpr {
namespace {

TEST(Table, TextOutputContainsTitleHeaderAndRows) {
  Table t("My Table", {"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print_text(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutputHasHeaderAndRows) {
  Table t("csv", {"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# csv\n"), std::string::npos);
  EXPECT_NE(out.find("x,y\n"), std::string::npos);
  EXPECT_NE(out.find("1,2\n"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("esc", {"c"});
  t.add_row({"va\"l,ue"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"va\"\"l,ue\""), std::string::npos);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

TEST(Table, FmtIntegers) {
  EXPECT_EQ(Table::fmt(std::int64_t{-5}), "-5");
  EXPECT_EQ(Table::fmt(std::uint64_t{18446744073709551615ULL}),
            "18446744073709551615");
}

TEST(Table, TextColumnsAligned) {
  Table t("align", {"col", "c"});
  t.add_row({"x", "yyyy"});
  std::ostringstream os;
  t.print_text(os);
  // Header row should pad "col" to at least its own width; every data line
  // should start at column 0 with the cell value.
  const std::string out = os.str();
  EXPECT_NE(out.find("col  c"), std::string::npos);
}

}  // namespace
}  // namespace pmpr
