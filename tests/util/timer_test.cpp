#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace pmpr {
namespace {

TEST(Timer, SecondsAdvanceMonotonically) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.nanos(), 0);
}

TEST(Timer, ResetRestartsFromZero) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double before = t.seconds();
  t.reset();
  EXPECT_LT(t.seconds(), before);
}

TEST(AccumTimer, SumsDisjointIntervals) {
  AccumTimer acc;
  EXPECT_EQ(acc.seconds(), 0.0);
  acc.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  acc.stop();
  const double first = acc.seconds();
  EXPECT_GT(first, 0.0);
  acc.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  acc.stop();
  EXPECT_GT(acc.seconds(), first);
  acc.clear();
  EXPECT_EQ(acc.seconds(), 0.0);
}

TEST(ScopedAccum, RecordsEnclosingScope) {
  AccumTimer acc;
  {
    ScopedAccum timing(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double first = acc.seconds();
  EXPECT_GT(first, 0.0);
  {
    ScopedAccum timing(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(acc.seconds(), first);
}

TEST(ScopedAccum, RecordsIntervalWhenScopeUnwinds) {
  AccumTimer acc;
  try {
    ScopedAccum timing(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    throw std::runtime_error("unwind through the timed scope");
  } catch (const std::runtime_error&) {
  }
  // The interval must have been recorded despite the exception — the whole
  // point of the RAII form over manual start()/stop().
  EXPECT_GT(acc.seconds(), 0.0);
}

}  // namespace
}  // namespace pmpr
