#include "util/date.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pmpr {
namespace {

TEST(Date, EpochIsDayZero) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(timestamp_from_date({1970, 1, 1}), 0);
}

TEST(Date, KnownDates) {
  EXPECT_EQ(days_from_civil({1970, 1, 2}), 1);
  EXPECT_EQ(days_from_civil({1969, 12, 31}), -1);
  EXPECT_EQ(days_from_civil({2000, 3, 1}), 11017);
  // The paper's example range: 2021-06-21.
  EXPECT_EQ(days_from_civil({2021, 6, 21}), 18799);
}

TEST(Date, LeapYearsHandled) {
  EXPECT_EQ(days_from_civil({2000, 2, 29}) + 1, days_from_civil({2000, 3, 1}));
  EXPECT_EQ(days_from_civil({1900, 2, 28}) + 1,
            days_from_civil({1900, 3, 1}));  // 1900 is not a leap year
  EXPECT_EQ(days_from_civil({2004, 2, 29}) + 1, days_from_civil({2004, 3, 1}));
}

TEST(Date, RoundTripRandomDays) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto days =
        static_cast<std::int64_t>(rng.bounded(200000)) - 100000;
    const CivilDate date = civil_from_days(days);
    ASSERT_EQ(days_from_civil(date), days) << days;
    ASSERT_GE(date.month, 1u);
    ASSERT_LE(date.month, 12u);
    ASSERT_GE(date.day, 1u);
    ASSERT_LE(date.day, 31u);
  }
}

TEST(Date, ParseIsoForm) {
  const auto date = parse_date("2021-06-21");
  ASSERT_TRUE(date.has_value());
  EXPECT_EQ(date->year, 2021);
  EXPECT_EQ(date->month, 6u);
  EXPECT_EQ(date->day, 21u);
}

TEST(Date, ParseSlashForm) {
  const auto date = parse_date("2021/11/05");
  ASSERT_TRUE(date.has_value());
  EXPECT_EQ(date->month, 11u);
  EXPECT_EQ(date->day, 5u);
}

TEST(Date, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_date("").has_value());
  EXPECT_FALSE(parse_date("yesterday").has_value());
  EXPECT_FALSE(parse_date("2021-13-01").has_value());
  EXPECT_FALSE(parse_date("2021-00-01").has_value());
  EXPECT_FALSE(parse_date("2021-02-30").has_value());
  EXPECT_FALSE(parse_date("2021-06").has_value());
  EXPECT_FALSE(parse_date("2021-06-xx").has_value());
}

TEST(Date, FormatBasics) {
  EXPECT_EQ(format_date(0), "1970-01-01");
  EXPECT_EQ(format_date(timestamp_from_date({2021, 6, 21})), "2021-06-21");
  // Mid-day floors to the same date.
  EXPECT_EQ(format_date(timestamp_from_date({2021, 6, 21}) + 12 * 3600),
            "2021-06-21");
  // Negative times floor toward the earlier day.
  EXPECT_EQ(format_date(-1), "1969-12-31");
}

TEST(Date, ParseFormatRoundTrip) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto days = static_cast<std::int64_t>(rng.bounded(60000));
    const std::string text = format_date(days * kSecondsPerDay);
    const auto parsed = parse_date(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    ASSERT_EQ(days_from_civil(*parsed), days) << text;
  }
}

}  // namespace
}  // namespace pmpr
