// util/bits.hpp: the multi-word lane-mask primitives underneath the SpMM
// batch kernels. These are all constexpr, so a good chunk of the contract
// is enforced at compile time via static_assert.
#include "util/bits.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace pmpr {
namespace {

TEST(Bits, Ctz64) {
  EXPECT_EQ(ctz64(1), 0u);
  EXPECT_EQ(ctz64(0b1000), 3u);
  EXPECT_EQ(ctz64(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(ctz64(~std::uint64_t{0}), 0u);
  static_assert(ctz64(std::uint64_t{1} << 17) == 17);
}

TEST(Bits, MaskWordsForRoundsToPowerOfTwoWordCounts) {
  // The sweep kernels are instantiated for {1, 2, 4, 8} words only, so
  // word counts round up to the next power of two.
  EXPECT_EQ(mask_words_for(1), 1u);
  EXPECT_EQ(mask_words_for(63), 1u);
  EXPECT_EQ(mask_words_for(64), 1u);
  EXPECT_EQ(mask_words_for(65), 2u);
  EXPECT_EQ(mask_words_for(128), 2u);
  EXPECT_EQ(mask_words_for(129), 4u);
  EXPECT_EQ(mask_words_for(192), 4u);
  EXPECT_EQ(mask_words_for(256), 4u);
  EXPECT_EQ(mask_words_for(257), 8u);
  EXPECT_EQ(mask_words_for(512), 8u);
  // Degenerate input: zero lanes still gets one word.
  EXPECT_EQ(mask_words_for(0), 1u);
}

TEST(Bits, SetTestClearAcrossWords) {
  std::array<std::uint64_t, 8> words{};
  for (const std::size_t lane : {std::size_t{0}, std::size_t{63},
                                 std::size_t{64}, std::size_t{127},
                                 std::size_t{200}, std::size_t{511}}) {
    EXPECT_FALSE(mask_test(words.data(), lane)) << lane;
    mask_set(words.data(), lane);
    EXPECT_TRUE(mask_test(words.data(), lane)) << lane;
  }
  EXPECT_EQ(words[0], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 63));
  EXPECT_EQ(words[1], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 63));
  mask_clear(words.data(), 63);
  EXPECT_FALSE(mask_test(words.data(), 63));
  EXPECT_TRUE(mask_test(words.data(), 64));
}

TEST(Bits, MaskAny) {
  std::array<std::uint64_t, 4> words{};
  EXPECT_FALSE(mask_any(words.data(), 4));
  mask_set(words.data(), 255);
  EXPECT_TRUE(mask_any(words.data(), 4));
  // Only the first `num_words` words are consulted.
  EXPECT_FALSE(mask_any(words.data(), 3));
}

TEST(Bits, SetRangeWithinOneWord) {
  std::array<std::uint64_t, 2> words{};
  mask_set_range(words.data(), 3, 5);
  EXPECT_EQ(words[0], 0b111000u);
  EXPECT_EQ(words[1], 0u);
}

TEST(Bits, SetRangeCrossingWords) {
  std::array<std::uint64_t, 4> words{};
  mask_set_range(words.data(), 60, 130);
  for (std::size_t lane = 0; lane < 256; ++lane) {
    EXPECT_EQ(mask_test(words.data(), lane), lane >= 60 && lane <= 130)
        << lane;
  }
}

TEST(Bits, SetRangeFullWords) {
  std::array<std::uint64_t, 8> words{};
  mask_set_range(words.data(), 0, 511);
  for (std::size_t w = 0; w < 8; ++w) EXPECT_EQ(words[w], ~std::uint64_t{0});
}

TEST(Bits, SetRangeIsAnOrNotAnAssign) {
  std::array<std::uint64_t, 2> words{};
  mask_set(words.data(), 0);
  mask_set_range(words.data(), 70, 71);
  EXPECT_TRUE(mask_test(words.data(), 0));
}

TEST(Bits, ForEachSetLaneAscending) {
  std::array<std::uint64_t, 8> words{};
  const std::vector<std::size_t> lanes = {0, 1, 63, 64, 100, 400, 511};
  for (const std::size_t lane : lanes) mask_set(words.data(), lane);
  std::vector<std::size_t> seen;
  for_each_set_lane(words.data(), 8, [&](std::size_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, lanes);
}

TEST(Bits, ForEachSetLaneRespectsWordCount) {
  std::array<std::uint64_t, 8> words{};
  mask_set(words.data(), 10);
  mask_set(words.data(), 70);
  std::size_t count = 0;
  for_each_set_lane(words.data(), 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace pmpr
