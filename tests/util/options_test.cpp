#include "util/options.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pmpr {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(prog_);
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  char prog_[5] = "test";
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

TEST(Options, ParsesStringSpaceForm) {
  std::string name = "default";
  Options opts("t");
  opts.add("name", &name, "a name");
  Argv a({"--name", "hello"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_EQ(name, "hello");
}

TEST(Options, ParsesStringEqualsForm) {
  std::string name = "default";
  Options opts("t");
  opts.add("name", &name, "a name");
  Argv a({"--name=world"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_EQ(name, "world");
}

TEST(Options, ParsesInt) {
  std::int64_t n = 0;
  Options opts("t");
  opts.add("n", &n, "count");
  Argv a({"--n", "-42"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_EQ(n, -42);
}

TEST(Options, RejectsBadInt) {
  std::int64_t n = 0;
  Options opts("t");
  opts.add("n", &n, "count");
  Argv a({"--n", "12abc"});
  EXPECT_FALSE(opts.parse(a.argc(), a.argv()));
  EXPECT_FALSE(opts.saw_help());
}

TEST(Options, ParsesDouble) {
  double x = 0.0;
  Options opts("t");
  opts.add("x", &x, "value");
  Argv a({"--x", "2.5"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(Options, DoubleRejectsNonNumericLikeInt) {
  // Double parsing uses from_chars, same as the integer path: no leading
  // whitespace, no trailing junk, no strtod extensions like hex floats.
  double x = 1.0;
  Options opts("t");
  opts.add("x", &x, "value");
  for (const char* bad : {" 2.5", "2.5 ", "2.5abc", "0x1p3", ""}) {
    Argv a({"--x", bad});
    EXPECT_FALSE(opts.parse(a.argc(), a.argv())) << "'" << bad << "'";
  }
  EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Options, FlagDefaultsAndSets) {
  bool flag = false;
  Options opts("t");
  opts.add("verbose", &flag, "flag");
  Argv a({"--verbose"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_TRUE(flag);
}

TEST(Options, FlagNegation) {
  bool flag = true;
  Options opts("t");
  opts.add("verbose", &flag, "flag");
  Argv a({"--no-verbose"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_FALSE(flag);
}

TEST(Options, FlagEqualsValueForms) {
  bool flag = false;
  Options opts("t");
  opts.add("f", &flag, "flag");
  Argv on({"--f=true"});
  EXPECT_TRUE(opts.parse(on.argc(), on.argv()));
  EXPECT_TRUE(flag);
  Argv off({"--f=0"});
  EXPECT_TRUE(opts.parse(off.argc(), off.argv()));
  EXPECT_FALSE(flag);
}

TEST(Options, UnknownOptionFails) {
  Options opts("t");
  Argv a({"--mystery", "1"});
  EXPECT_FALSE(opts.parse(a.argc(), a.argv()));
}

TEST(Options, MissingValueFails) {
  std::int64_t n = 0;
  Options opts("t");
  opts.add("n", &n, "count");
  Argv a({"--n"});
  EXPECT_FALSE(opts.parse(a.argc(), a.argv()));
}

TEST(Options, HelpReturnsFalseAndSetsFlag) {
  Options opts("t");
  Argv a({"--help"});
  EXPECT_FALSE(opts.parse(a.argc(), a.argv()));
  EXPECT_TRUE(opts.saw_help());
}

TEST(Options, PositionalArgsCollected) {
  std::int64_t n = 0;
  Options opts("t");
  opts.add("n", &n, "count");
  Argv a({"file1", "--n", "3", "file2"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  ASSERT_EQ(opts.positional().size(), 2u);
  EXPECT_EQ(opts.positional()[0], "file1");
  EXPECT_EQ(opts.positional()[1], "file2");
  EXPECT_EQ(n, 3);
}

TEST(Options, MultipleOptionsChained) {
  std::string s = "";
  std::int64_t n = 0;
  double x = 0.0;
  bool b = false;
  Options opts("t");
  opts.add("s", &s, "").add("n", &n, "").add("x", &x, "").add("b", &b, "");
  Argv a({"--s=abc", "--n", "7", "--x=1.5", "--b"});
  EXPECT_TRUE(opts.parse(a.argc(), a.argv()));
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_TRUE(b);
}

}  // namespace
}  // namespace pmpr
