// Statistical shape checks per surrogate: each dataset's generated event
// stream must exhibit the Fig. 4 property its real counterpart has, since
// those shapes drive the paper's parallelization conclusions (§6.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "gen/surrogates.hpp"

namespace pmpr::gen {
namespace {

/// Bucketed event counts over the dataset's own time range.
std::vector<std::size_t> histogram(const TemporalEdgeList& events,
                                   std::size_t buckets) {
  std::vector<std::size_t> h(buckets, 0);
  const Timestamp t0 = events.min_time();
  const double span =
      static_cast<double>(events.max_time() - t0) + 1.0;
  for (const auto& e : events.events()) {
    auto b = static_cast<std::size_t>(
        static_cast<double>(e.time - t0) / span *
        static_cast<double>(buckets));
    if (b >= buckets) b = buckets - 1;
    ++h[b];
  }
  return h;
}

TemporalEdgeList make(const char* name) {
  DatasetSpec spec = dataset_by_name(name);
  spec.events = 40000;
  return generate(spec, 99);
}

double late_half_share(const std::vector<std::size_t>& h) {
  std::size_t late = 0;
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.size(); ++b) {
    total += h[b];
    if (b >= h.size() / 2) late += h[b];
  }
  return static_cast<double>(late) / static_cast<double>(total);
}

class GrowthDatasets : public ::testing::TestWithParam<const char*> {};

TEST_P(GrowthDatasets, MostEventsArriveLate) {
  const auto h = histogram(make(GetParam()), 32);
  EXPECT_GT(late_half_share(h), 0.6) << GetParam();
  // And the last quarter is busier than the first quarter.
  std::size_t first = 0;
  std::size_t last = 0;
  for (std::size_t b = 0; b < 8; ++b) first += h[b];
  for (std::size_t b = 24; b < 32; ++b) last += h[b];
  EXPECT_GT(last, 3 * first) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Growth, GrowthDatasets,
                         ::testing::Values("wiki-talk", "stackoverflow",
                                           "askubuntu"),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(ProfileShapesSuite, EnronSpikeDominates) {
  const auto h = histogram(make("ia-enron-email"), 32);
  const std::size_t peak = *std::max_element(h.begin(), h.end());
  const std::size_t total =
      std::accumulate(h.begin(), h.end(), std::size_t{0});
  const double mean = static_cast<double>(total) / 32.0;
  // The scandal spike towers over the average bucket.
  EXPECT_GT(static_cast<double>(peak), 5.0 * mean);
  // And it sits in the late portion of the range (the 2001 scandal is near
  // the end of 1997-2003).
  const auto peak_at = static_cast<std::size_t>(
      std::max_element(h.begin(), h.end()) - h.begin());
  EXPECT_GT(peak_at, 16u);
}

TEST(ProfileShapesSuite, EpinionsBurstIsEarlyAndHeavy) {
  const auto h = histogram(make("epinions-user-ratings"), 32);
  const auto peak_at = static_cast<std::size_t>(
      std::max_element(h.begin(), h.end()) - h.begin());
  EXPECT_LT(peak_at, 16u);  // burst at ~35% of the range
  EXPECT_LT(late_half_share(h), 0.4);
}

TEST(ProfileShapesSuite, YoutubeSteadyWithBursts) {
  const auto h = histogram(make("youtube-growth"), 64);
  // Steady base: no bucket is empty.
  for (const std::size_t c : h) EXPECT_GT(c, 0u);
  // Bursty: max bucket well above median bucket.
  std::vector<std::size_t> sorted = h;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(static_cast<double>(sorted.back()),
            1.5 * static_cast<double>(sorted[sorted.size() / 2]));
}

TEST(ProfileShapesSuite, HepThIrregularHasLevelChanges) {
  const auto h = histogram(make("ca-cit-HepTh"), 32);
  // Piecewise-random levels: wide dynamic range across buckets.
  const std::size_t mx = *std::max_element(h.begin(), h.end());
  const std::size_t mn = *std::min_element(h.begin(), h.end());
  EXPECT_GT(mx, 3 * std::max<std::size_t>(mn, 1));
}

}  // namespace
}  // namespace pmpr::gen
