#include "gen/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace pmpr::gen {
namespace {

TEST(RmatSampler, VertexSpaceIsPowerOfTwo) {
  RmatSampler s({.scale = 10});
  EXPECT_EQ(s.num_vertices(), 1024u);
}

TEST(RmatSampler, SamplesInRange) {
  RmatSampler s({.scale = 12});
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto [u, v] = s.sample(rng);
    EXPECT_LT(u, 4096u);
    EXPECT_LT(v, 4096u);
  }
}

TEST(RmatSampler, DeterministicForSeed) {
  RmatSampler s({.scale = 10});
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(s.sample(a), s.sample(b));
  }
}

TEST(RmatSampler, SkewedParamsProduceSkewedDegrees) {
  RmatSampler s({.scale = 12, .a = 0.6, .b = 0.18, .c = 0.18, .noise = 0.05});
  Xoshiro256 rng(7);
  std::map<VertexId, int> out_deg;
  const int kEdges = 60000;
  for (int i = 0; i < kEdges; ++i) {
    const auto [u, v] = s.sample(rng);
    ++out_deg[u];
  }
  std::vector<int> degs;
  degs.reserve(out_deg.size());
  for (const auto& [v, d] : out_deg) degs.push_back(d);
  std::sort(degs.rbegin(), degs.rend());
  // Power-law-ish: the top 1% of present vertices should carry far more
  // than 1% of edges.
  const std::size_t top = std::max<std::size_t>(1, degs.size() / 100);
  long top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += degs[i];
  EXPECT_GT(static_cast<double>(top_sum) / kEdges, 0.05);
  // And the max degree dwarfs the mean.
  const double mean_deg = static_cast<double>(kEdges) /
                          static_cast<double>(degs.size());
  EXPECT_GT(degs.front(), 10 * mean_deg);
}

TEST(RmatSampler, UniformParamsRoughlyBalanced) {
  RmatSampler s({.scale = 8, .a = 0.25, .b = 0.25, .c = 0.25, .noise = 0.0});
  Xoshiro256 rng(9);
  std::vector<int> counts(256, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto [u, v] = s.sample(rng);
    ++counts[u];
  }
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  // Uniform quadrants -> near-uniform marginals.
  EXPECT_LT(*mx, 3 * (*mn + 1));
}

}  // namespace
}  // namespace pmpr::gen
