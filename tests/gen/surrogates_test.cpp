#include "gen/surrogates.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pmpr::gen {
namespace {

TEST(Surrogates, CatalogHasSevenDatasets) {
  EXPECT_EQ(dataset_catalog().size(), 7u);
}

TEST(Surrogates, CatalogMatchesPaperTable1) {
  // Paper event counts, Table 1.
  EXPECT_EQ(dataset_by_name("ca-cit-HepTh").paper_events, 2'673'133u);
  EXPECT_EQ(dataset_by_name("stackoverflow").paper_events, 47'903'266u);
  EXPECT_EQ(dataset_by_name("askubuntu").paper_events, 726'661u);
  EXPECT_EQ(dataset_by_name("youtube-growth").paper_events, 12'223'774u);
  EXPECT_EQ(dataset_by_name("epinions-user-ratings").paper_events,
            13'668'281u);
  EXPECT_EQ(dataset_by_name("ia-enron-email").paper_events, 1'134'990u);
  EXPECT_EQ(dataset_by_name("wiki-talk").paper_events, 6'100'538u);
}

TEST(Surrogates, UnknownNameThrows) {
  EXPECT_THROW(dataset_by_name("no-such-dataset"), std::invalid_argument);
}

TEST(Surrogates, EveryDatasetHasParameterGrids) {
  for (const auto& d : dataset_catalog()) {
    EXPECT_FALSE(d.sliding_offsets.empty()) << d.name;
    EXPECT_FALSE(d.window_sizes.empty()) << d.name;
    EXPECT_LT(d.t_begin, d.t_end) << d.name;
    EXPECT_GT(d.events, 0u) << d.name;
    EXPECT_LT(d.events, d.paper_events) << d.name << " should be scaled down";
  }
}

class SurrogateGeneration : public ::testing::TestWithParam<std::string> {};

TEST_P(SurrogateGeneration, GeneratesRequestedShape) {
  DatasetSpec spec = dataset_by_name(GetParam());
  spec.events = 20000;  // keep the test fast
  const TemporalEdgeList list = generate(spec, 1);
  EXPECT_EQ(list.size(), 20000u);
  EXPECT_TRUE(list.is_sorted_by_time());
  EXPECT_GE(list.min_time(), spec.t_begin);
  EXPECT_LE(list.max_time(), spec.t_end);
  EXPECT_EQ(list.num_vertices(), VertexId{1} << spec.topology.scale);
}

TEST_P(SurrogateGeneration, DeterministicForSeed) {
  DatasetSpec spec = dataset_by_name(GetParam());
  spec.events = 5000;
  const TemporalEdgeList a = generate(spec, 3);
  const TemporalEdgeList b = generate(spec, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST_P(SurrogateGeneration, DifferentSeedsDiffer) {
  DatasetSpec spec = dataset_by_name(GetParam());
  spec.events = 5000;
  const TemporalEdgeList a = generate(spec, 3);
  const TemporalEdgeList b = generate(spec, 4);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  EXPECT_LT(same, a.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, SurrogateGeneration,
    ::testing::Values("ca-cit-HepTh", "stackoverflow", "askubuntu",
                      "youtube-growth", "epinions-user-ratings",
                      "ia-enron-email", "wiki-talk"),
    [](const auto& pinfo) {
      std::string name = pinfo.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Surrogates, ScaledAdjustsEventsAndVertexSpace) {
  const DatasetSpec& base = dataset_by_name("wiki-talk");
  const DatasetSpec half = scaled(base, 0.25);
  EXPECT_EQ(half.events, base.events / 4);
  EXPECT_EQ(half.topology.scale, base.topology.scale - 2);
  const DatasetSpec big = scaled(base, 4.0);
  EXPECT_EQ(big.events, base.events * 4);
  EXPECT_EQ(big.topology.scale, base.topology.scale + 2);
}

TEST(Surrogates, ScaledNeverDropsBelowFloor) {
  const DatasetSpec& base = dataset_by_name("askubuntu");
  const DatasetSpec tiny = scaled(base, 1e-9);
  EXPECT_GE(tiny.events, 1000u);
  EXPECT_GE(tiny.topology.scale, 8);
}

TEST(Surrogates, ScaledNonPositiveFactorIsIdentity) {
  const DatasetSpec& base = dataset_by_name("askubuntu");
  const DatasetSpec same = scaled(base, 0.0);
  EXPECT_EQ(same.events, base.events);
}

TEST(Surrogates, DifferentDatasetsProduceDifferentStreams) {
  DatasetSpec a = dataset_by_name("wiki-talk");
  DatasetSpec b = dataset_by_name("stackoverflow");
  a.events = b.events = 2000;
  // Force identical time ranges so only the name-hash differs.
  b.t_begin = a.t_begin;
  b.t_end = a.t_end;
  b.topology = a.topology;
  b.profile = a.profile;
  const TemporalEdgeList ea = generate(a, 1);
  const TemporalEdgeList eb = generate(b, 1);
  std::size_t same = 0;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i] == eb[i]) ++same;
  }
  EXPECT_LT(same, ea.size() / 10);
}

}  // namespace
}  // namespace pmpr::gen
