#include "gen/temporal_profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pmpr::gen {
namespace {

class ProfileShapes : public ::testing::TestWithParam<ProfileShape> {};

TEST_P(ProfileShapes, WeightsArePositive) {
  Xoshiro256 rng(1);
  TemporalProfile p{GetParam(), 0.5, 0.1};
  const auto w = profile_weights(p, 256, rng);
  ASSERT_EQ(w.size(), 256u);
  for (const double x : w) EXPECT_GT(x, 0.0);
}

TEST_P(ProfileShapes, SampleCountExact) {
  Xoshiro256 rng(2);
  TemporalProfile p{GetParam(), 0.5, 0.1};
  for (const std::size_t count : {0u, 1u, 17u, 1000u, 12345u}) {
    Xoshiro256 local(3);
    const auto ts = sample_timestamps(p, count, 100, 10000, local);
    EXPECT_EQ(ts.size(), count);
  }
}

TEST_P(ProfileShapes, SamplesSortedAndInRange) {
  TemporalProfile p{GetParam(), 0.3, 0.05};
  Xoshiro256 rng(4);
  const auto ts = sample_timestamps(p, 5000, 500, 99999, rng);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  EXPECT_GE(ts.front(), 500);
  EXPECT_LE(ts.back(), 99999);
}

TEST_P(ProfileShapes, DeterministicForSeed) {
  TemporalProfile p{GetParam(), 0.3, 0.05};
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  const auto ta = sample_timestamps(p, 1000, 0, 5000, a);
  const auto tb = sample_timestamps(p, 1000, 0, 5000, b);
  EXPECT_EQ(ta, tb);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ProfileShapes,
    ::testing::Values(ProfileShape::kUniform, ProfileShape::kSpike,
                      ProfileShape::kBurst, ProfileShape::kGrowth,
                      ProfileShape::kSteadyBursty, ProfileShape::kIrregular),
    [](const auto& pinfo) {
      std::string name(to_string(pinfo.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(TemporalProfile, SpikeConcentratesMassAtPeak) {
  Xoshiro256 rng(5);
  TemporalProfile p{ProfileShape::kSpike, 0.5, 0.05};
  const auto w = profile_weights(p, 100, rng);
  const double center = w[50];
  const double edge = w[2];
  EXPECT_GT(center, 10.0 * edge);
}

TEST(TemporalProfile, GrowthIsMonotonic) {
  Xoshiro256 rng(6);
  TemporalProfile p{ProfileShape::kGrowth, 2.0, 0.0};
  const auto w = profile_weights(p, 64, rng);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w[i], w[i - 1]);
  }
}

TEST(TemporalProfile, GrowthShiftsSamplesLate) {
  Xoshiro256 rng(7);
  TemporalProfile p{ProfileShape::kGrowth, 2.5, 0.0};
  const auto ts = sample_timestamps(p, 20000, 0, 1000, rng);
  const double mean =
      std::accumulate(ts.begin(), ts.end(), 0.0) / static_cast<double>(ts.size());
  EXPECT_GT(mean, 600.0);  // uniform would give ~500
}

TEST(TemporalProfile, BurstSkewsEarlyWhenPeakEarly) {
  Xoshiro256 rng(8);
  TemporalProfile p{ProfileShape::kBurst, 0.2, 0.05};
  const auto ts = sample_timestamps(p, 20000, 0, 1000, rng);
  const double mean =
      std::accumulate(ts.begin(), ts.end(), 0.0) / static_cast<double>(ts.size());
  EXPECT_LT(mean, 450.0);
}

TEST(TemporalProfile, UniformHistogramIsFlat) {
  Xoshiro256 rng(10);
  TemporalProfile p{ProfileShape::kUniform, 0.0, 0.0};
  const auto ts = sample_timestamps(p, 100000, 0, 9999, rng);
  std::vector<int> hist(10, 0);
  for (const Timestamp t : ts) ++hist[static_cast<std::size_t>(t / 1000)];
  for (const int h : hist) {
    EXPECT_NEAR(static_cast<double>(h) / 100000.0, 0.1, 0.02);
  }
}

TEST(TemporalProfile, SingleBucketDegenerate) {
  Xoshiro256 rng(11);
  TemporalProfile p{ProfileShape::kUniform, 0.0, 0.0};
  const auto ts = sample_timestamps(p, 10, 42, 42, rng, 1);
  ASSERT_EQ(ts.size(), 10u);
  for (const Timestamp t : ts) EXPECT_EQ(t, 42);
}

}  // namespace
}  // namespace pmpr::gen
