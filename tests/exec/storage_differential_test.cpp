// Storage-kind differential: in-RAM, compressed-in-RAM, and out-of-core
// postmortem runs must produce bit-identical per-window rank vectors on
// every execution model. Comparisons use exact double equality — the
// chunk-streaming compile reproduces the raw compile's structures exactly,
// so the kernels execute the same floating-point sequence.
#include <gtest/gtest.h>

#include <vector>

#include "exec/postmortem_runner.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace pmpr {
namespace {

struct Scenario {
  TemporalEdgeList events;
  WindowSpec spec;
};

Scenario scenario() {
  Scenario s;
  s.events = test::random_events(77, 50, 3000, 30000);
  s.spec = WindowSpec::cover(0, 30000, 8000, 1500);
  return s;
}

PostmortemConfig base_config(KernelKind kernel, ParallelMode mode) {
  PostmortemConfig cfg;
  cfg.pr.tol = 1e-12;
  cfg.pr.max_iters = 300;
  cfg.kernel = kernel;
  cfg.mode = mode;
  cfg.num_multi_windows = 4;
  cfg.vector_length = 8;
  cfg.validate = true;
  // Nested-mode partial-init chains depend on thread scheduling; exact
  // cross-run equality needs the deterministic modes or partial_init off.
  cfg.partial_init = mode == ParallelMode::kPagerank;
  return cfg;
}

void expect_same_series(const StoreAllSink& a, const StoreAllSink& b,
                        const char* label) {
  ASSERT_EQ(a.num_windows(), b.num_windows()) << label;
  for (std::size_t w = 0; w < a.num_windows(); ++w) {
    ASSERT_EQ(a.window(w), b.window(w)) << label << " window " << w;
  }
}

void expect_storage_kinds_agree(KernelKind kernel, ParallelMode mode,
                                const char* label) {
  const Scenario s = scenario();
  PostmortemConfig cfg = base_config(kernel, mode);

  StoreAllSink in_ram(s.spec.count);
  cfg.storage = StorageKind::kInRam;
  run_postmortem(s.events, s.spec, in_ram, cfg);

  StoreAllSink compressed(s.spec.count);
  cfg.storage = StorageKind::kCompressed;
  run_postmortem(s.events, s.spec, compressed, cfg);
  expect_same_series(compressed, in_ram, label);

  StoreAllSink oocore(s.spec.count);
  cfg.storage = StorageKind::kOutOfCore;
  cfg.memory_budget_bytes = 0;  // harshest paging: one part at a time
  const RunResult result = run_postmortem(s.events, s.spec, oocore, cfg);
  expect_same_series(oocore, in_ram, label);
  EXPECT_GT(result.oocore_store_bytes, 0u) << label;
  EXPECT_GT(result.oocore_raw_bytes, result.oocore_store_bytes) << label;
  EXPECT_GT(result.oocore_resident_peak_bytes, 0u) << label;
  EXPECT_LE(result.oocore_resident_peak_bytes, result.oocore_store_bytes)
      << label;
}

TEST(StorageDifferential, SpmmPagerankMode) {
  expect_storage_kinds_agree(KernelKind::kSpmm, ParallelMode::kPagerank,
                             "spmm/pagerank");
}

TEST(StorageDifferential, SpmvPagerankMode) {
  expect_storage_kinds_agree(KernelKind::kSpmv, ParallelMode::kPagerank,
                             "spmv/pagerank");
}

TEST(StorageDifferential, SpmmWindowMode) {
  expect_storage_kinds_agree(KernelKind::kSpmm, ParallelMode::kWindow,
                             "spmm/window");
}

TEST(StorageDifferential, SpmvNestedMode) {
  expect_storage_kinds_agree(KernelKind::kSpmv, ParallelMode::kNested,
                             "spmv/nested");
}

TEST(StorageDifferential, SpmmNestedMode) {
  expect_storage_kinds_agree(KernelKind::kSpmm, ParallelMode::kNested,
                             "spmm/nested");
}

TEST(StorageDifferential, TightBudgetEvictsAndStaysExact) {
  const Scenario s = scenario();
  PostmortemConfig cfg = base_config(KernelKind::kSpmm,
                                     ParallelMode::kPagerank);
  cfg.num_multi_windows = 8;

  StoreAllSink in_ram(s.spec.count);
  cfg.storage = StorageKind::kInRam;
  run_postmortem(s.events, s.spec, in_ram, cfg);

  obs::set_counters_enabled(true);
  StoreAllSink oocore(s.spec.count);
  cfg.storage = StorageKind::kOutOfCore;
  cfg.memory_budget_bytes = 0;
  const RunResult result = run_postmortem(s.events, s.spec, oocore, cfg);
  expect_same_series(oocore, in_ram, "tight-budget");
  // 8 parts under a one-part budget: the part-major sweep must evict.
  EXPECT_GE(result.counters[obs::Counter::kPartsEvicted], 6u);
}

TEST(StorageDifferential, CompressedStorageRequiresCompiledKernels) {
  const Scenario s = scenario();
  PostmortemConfig cfg = base_config(KernelKind::kSpmm,
                                     ParallelMode::kPagerank);
  cfg.compiled_kernels = false;
  StoreAllSink sink(s.spec.count);
  cfg.storage = StorageKind::kCompressed;
  EXPECT_THROW(run_postmortem(s.events, s.spec, sink, cfg), InvariantError);
  cfg.storage = StorageKind::kOutOfCore;
  EXPECT_THROW(run_postmortem(s.events, s.spec, sink, cfg), InvariantError);
}

TEST(StorageDifferential, PrebuiltRejectsOutOfCore) {
  const Scenario s = scenario();
  const MultiWindowSet set = MultiWindowSet::build(s.events, s.spec, 2);
  PostmortemConfig cfg = base_config(KernelKind::kSpmm,
                                     ParallelMode::kPagerank);
  cfg.storage = StorageKind::kOutOfCore;
  StoreAllSink sink(s.spec.count);
  EXPECT_THROW(run_postmortem_prebuilt(set, sink, cfg), InvariantError);
}

TEST(StorageDifferential, PrebuiltHonorsCompressedSets) {
  const Scenario s = scenario();
  PostmortemConfig cfg = base_config(KernelKind::kSpmm,
                                     ParallelMode::kPagerank);
  const MultiWindowSet raw = MultiWindowSet::build(s.events, s.spec, 3);
  StoreAllSink ref(s.spec.count);
  run_postmortem_prebuilt(raw, ref, cfg);

  MultiWindowSet packed = MultiWindowSet::build(s.events, s.spec, 3);
  packed.compress_in_place();
  StoreAllSink sink(s.spec.count);
  const RunResult result = run_postmortem_prebuilt(packed, sink, cfg);
  expect_same_series(sink, ref, "prebuilt-compressed");
  EXPECT_GT(result.representation_bytes, 0u);
}

TEST(StorageDifferential, PagedRunnerEntryPoint) {
  const Scenario s = scenario();
  PostmortemConfig cfg = base_config(KernelKind::kSpmm,
                                     ParallelMode::kPagerank);
  StoreAllSink ref(s.spec.count);
  cfg.storage = StorageKind::kInRam;
  run_postmortem(s.events, s.spec, ref, cfg);

  PagedMultiWindowSet::Options opts;
  opts.num_parts = 4;
  const auto paged = PagedMultiWindowSet::build(s.events, s.spec, opts);
  cfg.storage = StorageKind::kOutOfCore;
  StoreAllSink sink(s.spec.count);
  const RunResult result = run_postmortem_paged(*paged, sink, cfg);
  expect_same_series(sink, ref, "paged-entry");
  EXPECT_EQ(result.oocore_store_bytes, paged->stats().store_bytes);
}

}  // namespace
}  // namespace pmpr
