#include "exec/streaming_runner.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(StreamingRunner, EveryWindowMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(13, 40, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 700);
  StoreAllSink sink(spec.count);
  StreamingOptions opts;
  opts.pr.tol = 1e-12;
  opts.pr.max_iters = 500;
  const RunResult r = run_streaming(events, spec, sink, opts);
  EXPECT_EQ(r.num_windows, spec.count);

  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto got = sink.dense(w, events.num_vertices());
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(got, ref), 1e-9) << "window " << w;
  }
}

TEST(StreamingRunner, DisjointWindowsHandled) {
  // sw > delta: the runner takes the drop-all/insert-all path.
  const TemporalEdgeList events = test::random_events(15, 30, 1200, 10000);
  const WindowSpec spec{.t0 = 0, .delta = 500, .sw = 2000, .count = 5};
  StoreAllSink sink(spec.count);
  StreamingOptions opts;
  opts.pr.tol = 1e-12;
  opts.pr.max_iters = 500;
  run_streaming(events, spec, sink, opts);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto got = sink.dense(w, events.num_vertices());
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(got, ref), 1e-9) << "window " << w;
  }
}

TEST(StreamingRunner, IncrementalReducesIterations) {
  const TemporalEdgeList events = test::random_events(17, 50, 4000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 4000, 250);
  NullSink sink;
  StreamingOptions warm;
  warm.incremental = true;
  StreamingOptions cold;
  cold.incremental = false;
  const RunResult rw = run_streaming(events, spec, sink, warm);
  const RunResult rc = run_streaming(events, spec, sink, cold);
  EXPECT_LT(rw.total_iterations, rc.total_iterations);
}

TEST(StreamingRunner, MutationTimeAccounted) {
  const TemporalEdgeList events = test::random_events(19, 40, 3000, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 500);
  NullSink sink;
  StreamingOptions opts;
  const RunResult r = run_streaming(events, spec, sink, opts);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
}

TEST(StreamingRunner, SingleWindow) {
  const TemporalEdgeList events = test::random_events(21, 20, 300, 1000);
  const WindowSpec spec{.t0 = 0, .delta = 1000, .sw = 1, .count = 1};
  StoreAllSink sink(1);
  StreamingOptions opts;
  opts.pr.tol = 1e-12;
  run_streaming(events, spec, sink, opts);
  const auto got = sink.dense(0, events.num_vertices());
  const auto ref = test::brute_pagerank(
      test::brute_window_edges(events, 0, 1000), events.num_vertices(), 0.15,
      1e-12, 500);
  EXPECT_LT(test::linf_diff(got, ref), 1e-9);
}

}  // namespace
}  // namespace pmpr
