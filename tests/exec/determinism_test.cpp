// Determinism and thread-count independence of the postmortem driver.
//
// Pull-style kernels sum each vertex's contributions in a fixed order, so
// results must be bitwise-identical across repeated runs with the same
// pool, and identical across different pool sizes (task partitioning never
// changes the per-vertex summation order). Iteration counts may differ
// between runs only through partial-init chunk boundaries, which are also
// deterministic for a fixed pool size in sequential modes.
#include <gtest/gtest.h>

#include "exec/postmortem_runner.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Scenario {
  TemporalEdgeList events = test::random_events(71, 50, 3000, 20000);
  WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 900);
};

std::vector<std::vector<std::pair<VertexId, double>>> run_all(
    const Scenario& s, PostmortemConfig cfg) {
  StoreAllSink sink(s.spec.count);
  run_postmortem(s.events, s.spec, sink, cfg);
  std::vector<std::vector<std::pair<VertexId, double>>> out;
  out.reserve(s.spec.count);
  for (std::size_t w = 0; w < s.spec.count; ++w) {
    out.push_back(sink.window(w));
  }
  return out;
}

TEST(Determinism, RepeatedRunsBitwiseIdentical) {
  Scenario s;
  par::ThreadPool pool(3);
  PostmortemConfig cfg;
  cfg.pool = &pool;
  cfg.mode = ParallelMode::kNested;
  cfg.kernel = KernelKind::kSpmm;
  const auto a = run_all(s, cfg);
  const auto b = run_all(s, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w].size(), b[w].size()) << "window " << w;
    for (std::size_t i = 0; i < a[w].size(); ++i) {
      ASSERT_EQ(a[w][i].first, b[w][i].first);
      ASSERT_EQ(a[w][i].second, b[w][i].second)
          << "window " << w << " entry " << i;
    }
  }
}

TEST(Determinism, PoolSizeDoesNotChangeResults) {
  Scenario s;
  par::ThreadPool pool1(1);
  par::ThreadPool pool4(4);
  for (const auto mode : {ParallelMode::kWindow, ParallelMode::kPagerank,
                          ParallelMode::kNested}) {
    PostmortemConfig c1;
    c1.pool = &pool1;
    c1.mode = mode;
    PostmortemConfig c4;
    c4.pool = &pool4;
    c4.mode = mode;
    const auto a = run_all(s, c1);
    const auto b = run_all(s, c4);
    for (std::size_t w = 0; w < a.size(); ++w) {
      // Partial-init chunking differs with pool size, so iteration paths
      // differ — but both converge to the same solution within tolerance.
      std::vector<double> da(s.events.num_vertices(), 0.0);
      std::vector<double> db(s.events.num_vertices(), 0.0);
      for (const auto& [v, x] : a[w]) da[v] = x;
      for (const auto& [v, x] : b[w]) db[v] = x;
      ASSERT_LT(test::linf_diff(da, db), 1e-7)
          << "window " << w << " mode " << to_string(mode);
    }
  }
}

TEST(Determinism, SequentialModeIterationCountsStable) {
  Scenario s;
  par::ThreadPool pool(2);
  PostmortemConfig cfg;
  cfg.pool = &pool;
  cfg.mode = ParallelMode::kPagerank;  // windows strictly in order
  NullSink sink;
  const RunResult a = run_postmortem(s.events, s.spec, sink, cfg);
  const RunResult b = run_postmortem(s.events, s.spec, sink, cfg);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.iterations_per_window, b.iterations_per_window);
}

}  // namespace
}  // namespace pmpr
