#include "exec/postmortem_runner.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

PostmortemConfig base_config() {
  PostmortemConfig cfg;
  cfg.pr.tol = 1e-12;
  cfg.pr.max_iters = 500;
  return cfg;
}

/// The full configuration matrix: mode x kernel x partitioner x partial-init
/// x #multi-windows. Every cell must produce the brute-force PageRank for
/// every window — the paper's execution parameters are performance knobs,
/// never correctness knobs.
using Cell = std::tuple<ParallelMode, KernelKind, par::Partitioner, bool,
                        std::size_t>;

class PostmortemMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(PostmortemMatrix, MatchesBruteForceEverywhere) {
  const auto [mode, kernel, partitioner, partial, parts] = GetParam();
  const TemporalEdgeList events = test::random_events(23, 40, 2500, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 5000, 900);

  PostmortemConfig cfg = base_config();
  cfg.mode = mode;
  cfg.kernel = kernel;
  cfg.partitioner = partitioner;
  cfg.partial_init = partial;
  cfg.num_multi_windows = parts;
  cfg.vector_length = 8;
  cfg.grain = 2;

  StoreAllSink sink(spec.count);
  const RunResult r = run_postmortem(events, spec, sink, cfg);
  EXPECT_EQ(r.num_windows, spec.count);

  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto got = sink.dense(w, events.num_vertices());
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(got, ref), 1e-8)
        << "window " << w << " mode=" << to_string(mode)
        << " kernel=" << to_string(kernel)
        << " partitioner=" << to_string(partitioner)
        << " partial=" << partial << " parts=" << parts;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, PostmortemMatrix,
    ::testing::Combine(
        ::testing::Values(ParallelMode::kWindow, ParallelMode::kPagerank,
                          ParallelMode::kNested),
        ::testing::Values(KernelKind::kSpmv, KernelKind::kSpmm),
        ::testing::Values(par::Partitioner::kAuto, par::Partitioner::kSimple,
                          par::Partitioner::kStatic),
        ::testing::Values(false, true),
        ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& pinfo) {
      return std::string(to_string(std::get<0>(pinfo.param))) + "_" +
             std::string(to_string(std::get<1>(pinfo.param))) + "_" +
             std::string(to_string(std::get<2>(pinfo.param))) +
             (std::get<3>(pinfo.param) ? "_partial" : "_full") + "_Y" +
             std::to_string(std::get<4>(pinfo.param));
    });

TEST(PostmortemRunner, PartialInitReducesTotalIterations) {
  // Heavily overlapping windows so successive graphs are similar.
  const TemporalEdgeList events = test::random_events(29, 60, 6000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 8000, 400);

  PostmortemConfig with = base_config();
  with.mode = ParallelMode::kPagerank;
  with.kernel = KernelKind::kSpmv;
  with.partial_init = true;
  with.num_multi_windows = 1;
  PostmortemConfig without = with;
  without.partial_init = false;

  NullSink sink;
  const RunResult rw = run_postmortem(events, spec, sink, with);
  const RunResult ro = run_postmortem(events, spec, sink, without);
  EXPECT_LT(rw.total_iterations, ro.total_iterations);
}

TEST(PostmortemRunner, SpmmStridedBatchesPreservePartialInitGains) {
  // §4.4: with strided batch picking, only the first batch cold-starts, so
  // SpMM with partial init needs far fewer iterations than without.
  const TemporalEdgeList events = test::random_events(31, 60, 6000, 20000);
  const WindowSpec spec = WindowSpec::cover(0, 20000, 8000, 400);

  PostmortemConfig with = base_config();
  with.mode = ParallelMode::kPagerank;
  with.kernel = KernelKind::kSpmm;
  with.vector_length = 8;
  with.partial_init = true;
  with.num_multi_windows = 1;
  PostmortemConfig without = with;
  without.partial_init = false;

  NullSink sink;
  const RunResult rw = run_postmortem(events, spec, sink, with);
  const RunResult ro = run_postmortem(events, spec, sink, without);
  EXPECT_LT(rw.total_iterations, ro.total_iterations);
}

TEST(PostmortemRunner, PrebuiltMatchesFromEvents) {
  const TemporalEdgeList events = test::random_events(37, 40, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 800);
  PostmortemConfig cfg = base_config();
  cfg.num_multi_windows = 3;

  StoreAllSink a(spec.count);
  run_postmortem(events, spec, a, cfg);

  const MultiWindowSet set = MultiWindowSet::build(events, spec, 3);
  StoreAllSink b(spec.count);
  run_postmortem_prebuilt(set, b, cfg);

  for (std::size_t w = 0; w < spec.count; ++w) {
    ASSERT_LT(test::linf_diff(a.dense(w, events.num_vertices()),
                              b.dense(w, events.num_vertices())),
              1e-12);
  }
}

TEST(PostmortemRunner, VectorLengthOneEqualsSpmv) {
  const TemporalEdgeList events = test::random_events(41, 40, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 800);
  PostmortemConfig spmm = base_config();
  spmm.kernel = KernelKind::kSpmm;
  spmm.vector_length = 1;
  PostmortemConfig spmv = base_config();
  spmv.kernel = KernelKind::kSpmv;

  StoreAllSink a(spec.count);
  StoreAllSink b(spec.count);
  run_postmortem(events, spec, a, spmm);
  run_postmortem(events, spec, b, spmv);
  for (std::size_t w = 0; w < spec.count; ++w) {
    ASSERT_LT(test::linf_diff(a.dense(w, events.num_vertices()),
                              b.dense(w, events.num_vertices())),
              1e-10);
  }
}

TEST(PostmortemRunner, LargeVectorLengthClamped) {
  const TemporalEdgeList events = test::random_events(43, 30, 1000, 5000);
  const WindowSpec spec = WindowSpec::cover(0, 5000, 1500, 500);
  PostmortemConfig cfg = base_config();
  cfg.kernel = KernelKind::kSpmm;
  cfg.vector_length = 4096;  // > windows and > 64: must be clamped safely
  StoreAllSink sink(spec.count);
  const RunResult r = run_postmortem(events, spec, sink, cfg);
  EXPECT_EQ(r.num_windows, spec.count);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(sink.dense(w, events.num_vertices()), ref),
              1e-8);
  }
}

TEST(PostmortemRunner, ChecksumSinkMatchesStoreAll) {
  const TemporalEdgeList events = test::random_events(47, 40, 2000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 800);
  const PostmortemConfig cfg = base_config();
  StoreAllSink all(spec.count);
  ChecksumSink sums(spec.count);
  run_postmortem(events, spec, all, cfg);
  run_postmortem(events, spec, sums, cfg);
  for (std::size_t w = 0; w < spec.count; ++w) {
    double weighted = 0.0;
    for (const auto& [v, pr] : all.window(w)) {
      weighted += pr * static_cast<double>(v + 1);
    }
    ASSERT_NEAR(sums.weighted()[w], weighted, 1e-9) << "window " << w;
  }
}

TEST(PostmortemRunner, BuildTimeSeparatedFromCompute) {
  const TemporalEdgeList events = test::random_events(53, 40, 3000, 10000);
  const WindowSpec spec = WindowSpec::cover(0, 10000, 3000, 400);
  NullSink sink;
  const RunResult r = run_postmortem(events, spec, sink, base_config());
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
}

}  // namespace
}  // namespace pmpr
