#include "exec/config.hpp"

#include <gtest/gtest.h>

namespace pmpr {
namespace {

TEST(Config, EnumToStringRoundTrip) {
  EXPECT_EQ(to_string(ParallelMode::kWindow), "window");
  EXPECT_EQ(to_string(ParallelMode::kPagerank), "pagerank");
  EXPECT_EQ(to_string(ParallelMode::kNested), "nested");
  EXPECT_EQ(parse_parallel_mode("window"), ParallelMode::kWindow);
  EXPECT_EQ(parse_parallel_mode("pagerank"), ParallelMode::kPagerank);
  EXPECT_EQ(parse_parallel_mode("pr"), ParallelMode::kPagerank);
  EXPECT_EQ(parse_parallel_mode("nested"), ParallelMode::kNested);
  EXPECT_EQ(parse_parallel_mode("junk"), ParallelMode::kNested);

  EXPECT_EQ(to_string(KernelKind::kSpmv), "spmv");
  EXPECT_EQ(to_string(KernelKind::kSpmm), "spmm");
  EXPECT_EQ(parse_kernel_kind("spmv"), KernelKind::kSpmv);
  EXPECT_EQ(parse_kernel_kind("spmm"), KernelKind::kSpmm);
}

TEST(WorkloadProfile, Top2ShareComputed) {
  const std::vector<std::size_t> edges{10, 80, 5, 5};
  const WorkloadProfile p = WorkloadProfile::from_window_edges(edges);
  EXPECT_EQ(p.num_windows, 4u);
  EXPECT_DOUBLE_EQ(p.top2_share, 0.9);
}

TEST(WorkloadProfile, EmptyWindows) {
  const WorkloadProfile p = WorkloadProfile::from_window_edges({});
  EXPECT_EQ(p.num_windows, 0u);
  EXPECT_EQ(p.top2_share, 0.0);
}

TEST(WorkloadProfile, UniformWindowsLowShare) {
  const std::vector<std::size_t> edges(100, 10);
  const WorkloadProfile p = WorkloadProfile::from_window_edges(edges);
  EXPECT_NEAR(p.top2_share, 0.02, 1e-12);
}

TEST(SuggestConfig, PaperRulesAlwaysSpmmAutoSmallGrain) {
  // §6.3.6: "SpMM is never a bad choice", auto partitioner, grain <= 4.
  for (const double share : {0.02, 0.9}) {
    WorkloadProfile p;
    p.num_windows = 256;
    p.top2_share = share;
    const PostmortemConfig cfg = suggest_config(p, 8);
    EXPECT_EQ(cfg.kernel, KernelKind::kSpmm);
    EXPECT_EQ(cfg.partitioner, par::Partitioner::kAuto);
    EXPECT_LE(cfg.grain, 4u);
    EXPECT_TRUE(cfg.partial_init);
  }
}

TEST(SuggestConfig, BalancedManyWindowsUsesNested) {
  WorkloadProfile p;
  p.num_windows = 512;
  p.top2_share = 0.01;
  EXPECT_EQ(suggest_config(p, 8).mode, ParallelMode::kNested);
}

TEST(SuggestConfig, DominatedWorkloadUsesApplicationLevel) {
  // Enron/Epinions-like: a couple of windows carry most of the edges.
  WorkloadProfile p;
  p.num_windows = 512;
  p.top2_share = 0.8;
  EXPECT_EQ(suggest_config(p, 8).mode, ParallelMode::kPagerank);
}

TEST(SuggestConfig, FewWindowsUsesApplicationLevel) {
  WorkloadProfile p;
  p.num_windows = 6;
  p.top2_share = 0.05;
  EXPECT_EQ(suggest_config(p, 48).mode, ParallelMode::kPagerank);
}

TEST(SuggestConfig, MultiWindowCountBounded) {
  WorkloadProfile few;
  few.num_windows = 3;
  EXPECT_LE(suggest_config(few, 4).num_multi_windows, 3u);
  WorkloadProfile many;
  many.num_windows = 1000;
  EXPECT_GE(suggest_config(many, 4).num_multi_windows, 1u);
}

}  // namespace
}  // namespace pmpr
