#include "exec/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exec/postmortem_runner.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("pmpr_export_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

StoreAllSink computed_series() {
  const TemporalEdgeList events = test::random_events(3, 40, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 700);
  StoreAllSink sink(spec.count);
  PostmortemConfig cfg;
  run_postmortem(events, spec, sink, cfg);
  return sink;
}

void expect_equal(const StoreAllSink& a, const StoreAllSink& b,
                  double tol = 0.0) {
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (std::size_t w = 0; w < a.num_windows(); ++w) {
    const auto& ra = a.window(w);
    const auto& rb = b.window(w);
    ASSERT_EQ(ra.size(), rb.size()) << "window " << w;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].first, rb[i].first);
      if (tol == 0.0) {
        EXPECT_EQ(ra[i].second, rb[i].second);
      } else {
        EXPECT_NEAR(ra[i].second, rb[i].second, tol);
      }
    }
  }
}

TEST(Export, BinaryRoundTripExact) {
  TempDir dir;
  const StoreAllSink sink = computed_series();
  save_series_binary(sink, dir.file("series.bin"));
  const StoreAllSink loaded = load_series_binary(dir.file("series.bin"));
  expect_equal(sink, loaded);
}

TEST(Export, CsvRoundTripExact) {
  TempDir dir;
  const StoreAllSink sink = computed_series();
  save_series_csv(sink, dir.file("series.csv"));
  const StoreAllSink loaded = load_series_csv(dir.file("series.csv"));
  // %.17g preserves doubles exactly.
  expect_equal(sink, loaded);
}

TEST(Export, CsvHasHeaderAndRows) {
  TempDir dir;
  const StoreAllSink sink = computed_series();
  save_series_csv(sink, dir.file("s.csv"));
  std::ifstream in(dir.file("s.csv"));
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "window,vertex,score");
  std::string row;
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(row.find(','), std::string::npos);
}

TEST(Export, CsvRejectsBadHeader) {
  TempDir dir;
  {
    std::ofstream out(dir.file("bad.csv"));
    out << "nope\n1,2,3\n";
  }
  EXPECT_THROW(load_series_csv(dir.file("bad.csv")), std::runtime_error);
}

TEST(Export, CsvRejectsMalformedRow) {
  TempDir dir;
  {
    std::ofstream out(dir.file("bad.csv"));
    out << "window,vertex,score\n1,notanumber\n";
  }
  EXPECT_THROW(load_series_csv(dir.file("bad.csv")), std::runtime_error);
}

TEST(Export, BinaryRejectsWrongMagic) {
  TempDir dir;
  {
    std::ofstream out(dir.file("junk.bin"), std::ios::binary);
    out << "not a pmpr time series, definitely";
  }
  EXPECT_THROW(load_series_binary(dir.file("junk.bin")), std::runtime_error);
}

TEST(Export, BinaryRejectsTruncation) {
  TempDir dir;
  const StoreAllSink sink = computed_series();
  save_series_binary(sink, dir.file("t.bin"));
  const auto size = std::filesystem::file_size(dir.file("t.bin"));
  std::filesystem::resize_file(dir.file("t.bin"), size - 5);
  EXPECT_THROW(load_series_binary(dir.file("t.bin")), std::runtime_error);
}

// A header can claim far more windows/rows than the file holds; the loader
// must reject it from the file size alone instead of attempting the
// allocation (corrupt-header defense, mirroring edge_list.cpp).
TEST(Export, BinaryRejectsHugeWindowCount) {
  TempDir dir;
  {
    std::ofstream out(dir.file("huge.bin"), std::ios::binary);
    out << "PMPRTS01";
    const std::uint64_t windows = 1ULL << 60;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  }
  EXPECT_THROW(load_series_binary(dir.file("huge.bin")), std::runtime_error);
}

TEST(Export, BinaryRejectsHugeRowCount) {
  TempDir dir;
  {
    std::ofstream out(dir.file("hugerows.bin"), std::ios::binary);
    out << "PMPRTS01";
    const std::uint64_t windows = 1;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
    const std::uint64_t count = 1ULL << 60;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  EXPECT_THROW(load_series_binary(dir.file("hugerows.bin")),
               std::runtime_error);
}

TEST(Export, BinaryRejectsWindowCountBeyondPayload) {
  TempDir dir;
  {
    // Claims 3 windows but carries bytes for at most one empty window.
    std::ofstream out(dir.file("short.bin"), std::ios::binary);
    out << "PMPRTS01";
    const std::uint64_t windows = 3;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
    const std::uint64_t count = 0;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  EXPECT_THROW(load_series_binary(dir.file("short.bin")), std::runtime_error);
}

TEST(Export, BinaryRejectsTruncatedMidRow) {
  TempDir dir;
  const StoreAllSink sink = computed_series();
  save_series_binary(sink, dir.file("midrow.bin"));
  const auto size = std::filesystem::file_size(dir.file("midrow.bin"));
  // Chop into the middle of the final row's score field.
  std::filesystem::resize_file(dir.file("midrow.bin"), size - 3);
  EXPECT_THROW(load_series_binary(dir.file("midrow.bin")),
               std::runtime_error);
}

TEST(Export, BinaryWritesVersion2Header) {
  TempDir dir;
  save_series_binary(computed_series(), dir.file("v2.bin"));
  std::ifstream in(dir.file("v2.bin"), std::ios::binary);
  char magic[8];
  in.read(magic, sizeof(magic));
  ASSERT_TRUE(in);
  EXPECT_EQ(std::string(magic, 8), "PMPRTS02");
  std::uint16_t endian = 0;
  std::uint8_t codec = 0xFF;
  std::uint8_t reserved = 0xFF;
  in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
  in.read(reinterpret_cast<char*>(&codec), sizeof(codec));
  in.read(reinterpret_cast<char*>(&reserved), sizeof(reserved));
  ASSERT_TRUE(in);
  EXPECT_EQ(endian, 0x0102);
  EXPECT_EQ(codec, 0);  // raw-rows payload
  EXPECT_EQ(reserved, 0);
}

TEST(Export, BinaryLoadsLegacyVersion1) {
  TempDir dir;
  {
    // Hand-written v1 file: bare magic, one window with one row.
    std::ofstream out(dir.file("v1.bin"), std::ios::binary);
    out << "PMPRTS01";
    const std::uint64_t windows = 1;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
    const std::uint64_t count = 1;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    const VertexId v = 7;
    const double score = 0.25;
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    out.write(reinterpret_cast<const char*>(&score), sizeof(score));
  }
  const StoreAllSink loaded = load_series_binary(dir.file("v1.bin"));
  ASSERT_EQ(loaded.num_windows(), 1u);
  ASSERT_EQ(loaded.window(0).size(), 1u);
  EXPECT_EQ(loaded.window(0)[0].first, 7u);
  EXPECT_EQ(loaded.window(0)[0].second, 0.25);
}

TEST(Export, BinaryRejectsUnknownVersion) {
  TempDir dir;
  {
    std::ofstream out(dir.file("v9.bin"), std::ios::binary);
    out << "PMPRTS99";
    const std::uint64_t windows = 0;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  }
  EXPECT_THROW(load_series_binary(dir.file("v9.bin")), std::runtime_error);
}

TEST(Export, BinaryRejectsForeignEndianness) {
  TempDir dir;
  {
    std::ofstream out(dir.file("endian.bin"), std::ios::binary);
    out << "PMPRTS02";
    const std::uint16_t swapped = 0x0201;  // what a foreign reader writes
    out.write(reinterpret_cast<const char*>(&swapped), sizeof(swapped));
    const std::uint8_t codec = 0;
    const std::uint8_t reserved = 0;
    out.write(reinterpret_cast<const char*>(&codec), sizeof(codec));
    out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    const std::uint64_t windows = 0;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  }
  EXPECT_THROW(load_series_binary(dir.file("endian.bin")),
               std::runtime_error);
}

TEST(Export, BinaryRejectsUnknownCodec) {
  TempDir dir;
  {
    std::ofstream out(dir.file("codec.bin"), std::ios::binary);
    out << "PMPRTS02";
    const std::uint16_t endian = 0x0102;
    out.write(reinterpret_cast<const char*>(&endian), sizeof(endian));
    const std::uint8_t codec = 42;
    const std::uint8_t reserved = 0;
    out.write(reinterpret_cast<const char*>(&codec), sizeof(codec));
    out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    const std::uint64_t windows = 0;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  }
  EXPECT_THROW(load_series_binary(dir.file("codec.bin")), std::runtime_error);
}

TEST(Export, BinaryIgnoresReservedHeaderByte) {
  TempDir dir;
  {
    std::ofstream out(dir.file("resv.bin"), std::ios::binary);
    out << "PMPRTS02";
    const std::uint16_t endian = 0x0102;
    out.write(reinterpret_cast<const char*>(&endian), sizeof(endian));
    const std::uint8_t codec = 0;
    const std::uint8_t reserved = 0x5A;  // future minor extension
    out.write(reinterpret_cast<const char*>(&codec), sizeof(codec));
    out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    const std::uint64_t windows = 0;
    out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  }
  const StoreAllSink loaded = load_series_binary(dir.file("resv.bin"));
  EXPECT_EQ(loaded.num_windows(), 0u);
}

TEST(Export, EmptyWindowsSurvive) {
  TempDir dir;
  StoreAllSink sink(3);  // nothing consumed: three empty windows
  save_series_binary(sink, dir.file("e.bin"));
  const StoreAllSink loaded = load_series_binary(dir.file("e.bin"));
  EXPECT_EQ(loaded.num_windows(), 3u);
  for (std::size_t w = 0; w < 3; ++w) EXPECT_TRUE(loaded.window(w).empty());
}

}  // namespace
}  // namespace pmpr
