// Cross-model equivalence: offline, streaming and postmortem must compute
// the same PageRank time series — the paper's fairness premise ("the code
// bases produce the same results and makes the comparison fair", §5.1).
#include <gtest/gtest.h>

#include "exec/offline_runner.hpp"
#include "exec/postmortem_runner.hpp"
#include "exec/streaming_runner.hpp"
#include "gen/surrogates.hpp"
#include "test_helpers.hpp"

namespace pmpr {
namespace {

struct Scenario {
  const char* name;
  TemporalEdgeList events;
  WindowSpec spec;
};

Scenario random_scenario() {
  Scenario s;
  s.name = "random";
  s.events = test::random_events(61, 50, 3000, 30000);
  s.spec = WindowSpec::cover(0, 30000, 8000, 1500);
  return s;
}

Scenario surrogate_scenario() {
  Scenario s;
  s.name = "surrogate";
  gen::DatasetSpec spec = gen::dataset_by_name("wiki-talk");
  spec.events = 15000;
  spec.topology.scale = 9;
  s.events = gen::generate(spec, 5);
  s.spec = WindowSpec::cover_capped(s.events.min_time(), s.events.max_time(),
                                    90 * duration::kDay, 30 * duration::kDay,
                                    20);
  return s;
}

Scenario paper_example_scenario() {
  Scenario s;
  s.name = "paper-example";
  s.events = test::paper_example_symmetric();
  s.spec = WindowSpec{.t0 = 151, .delta = 107, .sw = 30, .count = 3};
  return s;
}

void expect_all_models_agree(const Scenario& s) {
  PagerankParams pr;
  pr.tol = 1e-12;
  pr.max_iters = 500;

  OfflineOptions off;
  off.pr = pr;
  StoreAllSink offline_sink(s.spec.count);
  run_offline(s.events, s.spec, offline_sink, off);

  StreamingOptions str;
  str.pr = pr;
  StoreAllSink streaming_sink(s.spec.count);
  run_streaming(s.events, s.spec, streaming_sink, str);

  PostmortemConfig pm;
  pm.pr = pr;
  pm.num_multi_windows = 3;
  pm.vector_length = 8;
  StoreAllSink postmortem_sink(s.spec.count);
  run_postmortem(s.events, s.spec, postmortem_sink, pm);

  const VertexId n = s.events.num_vertices();
  for (std::size_t w = 0; w < s.spec.count; ++w) {
    const auto off_x = offline_sink.dense(w, n);
    const auto str_x = streaming_sink.dense(w, n);
    const auto pm_x = postmortem_sink.dense(w, n);
    ASSERT_LT(test::linf_diff(off_x, str_x), 1e-8)
        << s.name << " offline vs streaming, window " << w;
    ASSERT_LT(test::linf_diff(off_x, pm_x), 1e-8)
        << s.name << " offline vs postmortem, window " << w;
  }
}

TEST(Equivalence, RandomEvents) { expect_all_models_agree(random_scenario()); }

TEST(Equivalence, WikiTalkSurrogate) {
  expect_all_models_agree(surrogate_scenario());
}

TEST(Equivalence, PaperWorkedExample) {
  expect_all_models_agree(paper_example_scenario());
}

TEST(Equivalence, DisjointWindows) {
  Scenario s;
  s.name = "disjoint";
  s.events = test::random_events(71, 30, 2000, 20000);
  s.spec = WindowSpec{.t0 = 0, .delta = 1000, .sw = 4000, .count = 5};
  expect_all_models_agree(s);
}

TEST(Equivalence, SparseEmptyWindows) {
  // Events clustered so some windows are empty: all models must agree that
  // those windows have zero vectors.
  Scenario s;
  s.name = "sparse";
  TemporalEdgeList events;
  Xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) {
    events.add(static_cast<VertexId>(rng.bounded(20)),
               static_cast<VertexId>(rng.bounded(20)),
               static_cast<Timestamp>(rng.bounded(1000)));
  }
  for (int i = 0; i < 300; ++i) {
    events.add(static_cast<VertexId>(rng.bounded(20)),
               static_cast<VertexId>(rng.bounded(20)),
               static_cast<Timestamp>(50000 + rng.bounded(1000)));
  }
  events.sort_by_time();
  s.events = std::move(events);
  s.spec = WindowSpec::cover(0, 51000, 800, 3000);
  expect_all_models_agree(s);
}

}  // namespace
}  // namespace pmpr
