#include "exec/offline_runner.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pmpr {
namespace {

TEST(OfflineRunner, EveryWindowMatchesBruteForce) {
  const TemporalEdgeList events = test::random_events(7, 40, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 700);
  StoreAllSink sink(spec.count);
  OfflineOptions opts;
  opts.pr.tol = 1e-12;
  opts.pr.max_iters = 500;
  const RunResult r = run_offline(events, spec, sink, opts);

  EXPECT_EQ(r.num_windows, spec.count);
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto got = sink.dense(w, events.num_vertices());
    const auto ref = test::brute_pagerank(
        test::brute_window_edges(events, spec.start(w), spec.end(w)),
        events.num_vertices(), 0.15, 1e-12, 500);
    ASSERT_LT(test::linf_diff(got, ref), 1e-9) << "window " << w;
  }
}

TEST(OfflineRunner, ReportsTimingAndIterations) {
  const TemporalEdgeList events = test::random_events(9, 40, 1500, 8000);
  const WindowSpec spec = WindowSpec::cover(0, 8000, 2000, 700);
  NullSink sink;
  OfflineOptions opts;
  const RunResult r = run_offline(events, spec, sink, opts);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
  EXPECT_GT(r.total_iterations, 0u);
  EXPECT_EQ(r.iterations_per_window.size(), spec.count);
  std::uint64_t total = 0;
  for (const int it : r.iterations_per_window) {
    total += static_cast<std::uint64_t>(it);
  }
  EXPECT_EQ(total, r.total_iterations);
}

TEST(OfflineRunner, SequentialKernelMatchesParallel) {
  const TemporalEdgeList events = test::random_events(11, 60, 2000, 6000);
  const WindowSpec spec = WindowSpec::cover(0, 6000, 1500, 600);
  OfflineOptions seq;
  seq.parallel_kernel = false;
  seq.pr.tol = 1e-12;
  OfflineOptions parl;
  parl.parallel_kernel = true;
  parl.pr.tol = 1e-12;

  StoreAllSink a(spec.count);
  StoreAllSink b(spec.count);
  run_offline(events, spec, a, seq);
  run_offline(events, spec, b, parl);
  for (std::size_t w = 0; w < spec.count; ++w) {
    ASSERT_LT(test::linf_diff(a.dense(w, events.num_vertices()),
                              b.dense(w, events.num_vertices())),
              1e-12)
        << "window " << w;
  }
}

TEST(OfflineRunner, ParallelWindowsMatchesSequential) {
  // §3.3.1: the offline model is embarrassingly parallel across windows.
  const TemporalEdgeList events = test::random_events(13, 50, 2000, 9000);
  const WindowSpec spec = WindowSpec::cover(0, 9000, 2500, 600);
  OfflineOptions seq;
  seq.pr.tol = 1e-12;
  seq.pr.max_iters = 500;
  OfflineOptions fanout = seq;
  fanout.parallel_windows = true;

  StoreAllSink a(spec.count);
  StoreAllSink b(spec.count);
  const RunResult ra = run_offline(events, spec, a, seq);
  const RunResult rb = run_offline(events, spec, b, fanout);
  EXPECT_EQ(ra.total_iterations, rb.total_iterations);
  for (std::size_t w = 0; w < spec.count; ++w) {
    ASSERT_LT(test::linf_diff(a.dense(w, events.num_vertices()),
                              b.dense(w, events.num_vertices())),
              1e-12)
        << "window " << w;
  }
}

TEST(OfflineRunner, EmptyEventListAllWindowsZero) {
  TemporalEdgeList events;
  events.ensure_vertices(10);
  const WindowSpec spec{.t0 = 0, .delta = 10, .sw = 5, .count = 4};
  StoreAllSink sink(spec.count);
  OfflineOptions opts;
  const RunResult r = run_offline(events, spec, sink, opts);
  EXPECT_EQ(r.total_iterations, 0u);
  for (std::size_t w = 0; w < spec.count; ++w) {
    EXPECT_TRUE(sink.window(w).empty());
  }
}

}  // namespace
}  // namespace pmpr
