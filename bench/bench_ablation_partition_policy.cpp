// Ablation: uniform-window vs event-balanced multi-window decomposition
// (the paper's conclusion raises this as future work: equal window counts
// "may not be the decomposition that minimize memory and work overheads").
// Spike-shaped datasets (Enron, Epinions) are where the uniform scheme
// concentrates most events into one part.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Ablation - multi-window partition policy");
  BenchArgs args;
  std::int64_t max_windows = 192;
  std::int64_t parts = 8;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows");
  opts.add("parts", &parts, "number of multi-window graphs");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Ablation: partition policy (window-level parallel SpMV)",
              {"dataset", "policy", "max part events", "total part events",
               "compute (s)"});

  for (const char* name :
       {"ia-enron-email", "epinions-user-ratings", "wiki-talk"}) {
    const TemporalEdgeList events = load_surrogate(name, args);
    const gen::DatasetSpec& base = gen::dataset_by_name(name);
    const WindowSpec spec = WindowSpec::cover_capped(
        events.min_time(), events.max_time(), base.window_sizes.front(),
        base.sliding_offsets.front(), static_cast<std::size_t>(max_windows));

    for (const auto policy : {PartitionPolicy::kUniformWindows,
                              PartitionPolicy::kBalancedEvents}) {
      const MultiWindowSet set = MultiWindowSet::build(
          events, spec, static_cast<std::size_t>(parts), policy);
      std::size_t max_events = 0;
      for (std::size_t p = 0; p < set.num_parts(); ++p) {
        max_events = std::max(max_events, set.part(p).num_events);
      }

      PostmortemConfig cfg;
      cfg.mode = ParallelMode::kWindow;
      cfg.kernel = KernelKind::kSpmv;
      cfg.num_multi_windows = static_cast<std::size_t>(parts);
      cfg.partition_policy = policy;
      const double t = time_postmortem_prebuilt(set, cfg);

      table.add_row({name, std::string(to_string(policy)),
                     Table::fmt(static_cast<std::uint64_t>(max_events)),
                     Table::fmt(static_cast<std::uint64_t>(set.total_events())),
                     Table::fmt(t, 4)});
    }
  }
  print(table, args);
  return 0;
}
