// Kernel microbenchmarks (google-benchmark): the building blocks whose
// costs explain the figure-level results — temporal CSR construction,
// per-window state scatter, one SpMV iteration vs one SpMM iteration
// (amortized per window), streaming graph mutation, and window-graph
// reconstruction (the offline model's per-window cost).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/counters.hpp"
#include "pagerank/batch_csr.hpp"
#include "pagerank/propagation_blocking.hpp"
#include "pagerank/spmm_temporal.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "streaming/dynamic_graph.hpp"

namespace {

using namespace pmpr;

/// Overridable before the first MicroFixture::get() via --scale= (the
/// bench.smoke ctest target shrinks the dataset for a fast sanity pass).
double g_scale = 0.05;  // NOLINT(*avoid-non-const-global*)

/// Set by --counters (implied by --json=): record telemetry counter deltas
/// around the kernel benches. Off by default so plain timing runs measure
/// the disabled-telemetry fast path.
bool g_counters = false;  // NOLINT(*avoid-non-const-global*)

/// Per-benchmark telemetry deltas, averaged per benchmark iteration —
/// "what does one measured traversal actually do" (edges touched, tasks,
/// steals). Filled by the kernel benches, consumed by emit_json.
std::vector<std::pair<std::string, obs::CounterSnapshot>>&
bench_counter_records() {
  static std::vector<std::pair<std::string, obs::CounterSnapshot>> records;
  return records;
}

obs::CounterSnapshot counters_before() {
  return g_counters ? obs::counters_snapshot() : obs::CounterSnapshot{};
}

void counters_after(const char* name, const benchmark::State& state,
                    const obs::CounterSnapshot& before) {
  if (!g_counters || state.iterations() == 0) return;
  obs::CounterSnapshot delta = obs::counters_snapshot().delta_since(before);
  for (auto& v : delta.values) {
    v /= static_cast<std::uint64_t>(state.iterations());
  }
  bench_counter_records().emplace_back(name, delta);
}

struct MicroFixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  MicroFixture()
      : events(gen::generate(
            gen::scaled(gen::dataset_by_name("wiki-talk"), g_scale), 42)),
        spec(bench::last_windows(events, 90 * duration::kDay, 86'400, 64)),
        set(MultiWindowSet::build(events, spec, 2)) {}

  static const MicroFixture& get() {
    static MicroFixture fixture;
    return fixture;
  }
};

/// The SpMM batch every SpMM micro-bench times: 16 lanes striding the
/// part's windows (the paper's preferred vector length).
SpmmBatch spmm16_batch(const MultiWindowGraph& part) {
  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(16, part.num_windows);
  batch.first_window = part.first_window;
  batch.window_stride =
      std::max<std::size_t>(1, part.num_windows / batch.lanes);
  return batch;
}

void BM_TemporalCsrBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(16));
  for (auto _ : state) {
    TemporalCsr g = TemporalCsr::build(slice, f.events.num_vertices(), true);
    benchmark::DoNotOptimize(g.num_entries());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_TemporalCsrBuild);

void BM_WindowGraphBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(0));
  for (auto _ : state) {
    WindowGraph g = build_window_graph(slice, f.events.num_vertices());
    benchmark::DoNotOptimize(g.num_edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_WindowGraphBuild);

void BM_WindowStateScatter(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const std::size_t w = part.first_window;
  WindowState ws;
  for (auto _ : state) {
    compute_window_state(part, f.spec.start(w), f.spec.end(w), ws);
    benchmark::DoNotOptimize(ws.num_active);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_WindowStateScatter);

void BM_SpmvIteration(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const std::size_t w = part.first_window;
  WindowState ws;
  compute_window_state(part, f.spec.start(w), f.spec.end(w), ws);
  std::vector<double> x(part.num_local());
  std::vector<double> scratch(part.num_local());
  full_init(ws.active, ws.num_active, x);
  PagerankParams params;
  params.max_iters = 1;  // time exactly one traversal
  params.tol = 0.0;
  const obs::CounterSnapshot before = counters_before();
  for (auto _ : state) {
    pagerank_window_spmv(part, f.spec.start(w), f.spec.end(w), ws, x,
                         scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  counters_after("BM_SpmvIteration", state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_SpmvIteration);

void BM_SpmvIterationCompiled(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const std::size_t w = part.first_window;
  WindowState ws;
  CompiledWindowCsr compiled;
  compile_window(part, f.spec.start(w), f.spec.end(w), ws, compiled);
  std::vector<double> x(part.num_local());
  std::vector<double> scratch(part.num_local());
  full_init(ws.active, ws.num_active, x);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  const obs::CounterSnapshot before = counters_before();
  for (auto _ : state) {
    pagerank_window_spmv(ws, compiled, x, scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  counters_after("BM_SpmvIterationCompiled", state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_SpmvIterationCompiled);

void BM_SpmmIteration16(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const SpmmBatch batch = spmm16_batch(part);
  SpmmWindowState ws;
  compute_spmm_state(part, f.spec, batch, ws);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * batch.lanes, 1.0 / static_cast<double>(n));
  std::vector<double> scratch(n * batch.lanes);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  const obs::CounterSnapshot before = counters_before();
  for (auto _ : state) {
    pagerank_spmm(part, f.spec, batch, ws, x, scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  counters_after("BM_SpmmIteration16", state, before);
  // One traversal advances `lanes` windows: credit lanes x events.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events) *
                          static_cast<std::int64_t>(batch.lanes));
}
BENCHMARK(BM_SpmmIteration16);

void BM_SpmmIteration16Compiled(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const SpmmBatch batch = spmm16_batch(part);
  SpmmWindowState ws;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, f.spec, batch, ws, compiled);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * batch.lanes, 1.0 / static_cast<double>(n));
  std::vector<double> scratch(n * batch.lanes);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  const obs::CounterSnapshot before = counters_before();
  for (auto _ : state) {
    pagerank_spmm(ws, compiled, x, scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  counters_after("BM_SpmmIteration16Compiled", state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events) *
                          static_cast<std::int64_t>(batch.lanes));
}
BENCHMARK(BM_SpmmIteration16Compiled);

void BM_SpmmIteration128Compiled(benchmark::State& state) {
  // Two-mask-word batch: exercises the multi-word sweep kernels (and the
  // AVX2/AVX-512 dispatch) rather than the one-word degenerate layout.
  // Its own window spec: the shared fixture caps at 64 windows, which
  // would leave half a 128-lane batch empty.
  const auto& f = MicroFixture::get();
  const WindowSpec wide =
      bench::last_windows(f.events, 90 * duration::kDay, 43'200, 128);
  const MultiWindowSet wset = MultiWindowSet::build(f.events, wide, 1);
  const auto& part = wset.part(0);
  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(128, part.num_windows);
  batch.first_window = part.first_window;
  batch.window_stride = 1;
  SpmmWindowState ws;
  CompiledBatchCsr compiled;
  compile_spmm_batch(part, wide, batch, ws, compiled);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * batch.lanes, 1.0 / static_cast<double>(n));
  std::vector<double> scratch(n * batch.lanes);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  const obs::CounterSnapshot before = counters_before();
  for (auto _ : state) {
    pagerank_spmm(ws, compiled, x, scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  counters_after("BM_SpmmIteration128Compiled", state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events) *
                          static_cast<std::int64_t>(batch.lanes));
}
BENCHMARK(BM_SpmmIteration128Compiled);

void BM_SpmmCompile16(benchmark::State& state) {
  // The one-off cost the compiled iteration amortizes: building the
  // run-compressed adjacency + lane masks for a 16-lane batch.
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const SpmmBatch batch = spmm16_batch(part);
  SpmmWindowState ws;
  CompiledBatchCsr compiled;
  for (auto _ : state) {
    compile_spmm_batch(part, f.spec, batch, ws, compiled);
    benchmark::DoNotOptimize(compiled.nbr.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_SpmmCompile16);

void BM_PropagationBlockingIteration(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(0));
  const PushGraph g =
      PushGraph::from_events(slice, f.events.num_vertices());
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  for (auto _ : state) {
    pagerank_propagation_blocking(g, x, scratch, params,
                                  static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(x[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.out.num_edges()));
}
BENCHMARK(BM_PropagationBlockingIteration)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_StreamingWindowAdvance(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  for (auto _ : state) {
    streaming::DynamicGraph g(f.events.num_vertices());
    g.insert_batch(f.events.slice(f.spec.start(0), f.spec.end(0)));
    g.remove_batch(f.events.slice(f.spec.start(0), f.spec.start(1) - 1));
    g.insert_batch(f.events.slice(f.spec.end(0) + 1, f.spec.end(1)));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_StreamingWindowAdvance);

void BM_MultiWindowSetBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  for (auto _ : state) {
    MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, 6);
    benchmark::DoNotOptimize(set.total_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.events.size()));
}
BENCHMARK(BM_MultiWindowSetBuild);

/// Console reporter that additionally records every run so main() can emit
/// machine-readable JSON (--json=PATH) next to the usual table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double ns_per_iteration = 0.0;
    double items_per_second = 0.0;  // 0 when the bench sets no item count
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Captured c;
      c.name = run.benchmark_name();
      if (run.iterations > 0) {
        c.ns_per_iteration = run.real_accumulated_time /
                             static_cast<double>(run.iterations) * 1e9;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) c.items_per_second = it->second.value;
      runs_.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<Captured>& runs() const { return runs_; }

 private:
  std::vector<Captured> runs_;
};

/// Emits `BENCH_kernels.json`-style output: one record per benchmark with
/// ns/iteration, throughput, ns/item (= ns per edge per iteration for the
/// kernel benches, where items = events x lanes), and — for the compiled
/// kernels — the speedup over their reference counterpart.
bool emit_json(const std::string& path,
               const std::vector<CapturingReporter::Captured>& runs) {
  bench::JsonEmitter json;
  for (const auto& run : runs) {
    json.set(run.name, "ns_per_iteration", run.ns_per_iteration);
    if (run.items_per_second > 0.0) {
      json.set(run.name, "items_per_second", run.items_per_second);
      json.set(run.name, "ns_per_item", 1e9 / run.items_per_second);
    }
  }
  const std::pair<const char*, const char*> pairs[] = {
      {"BM_SpmvIterationCompiled", "BM_SpmvIteration"},
      {"BM_SpmmIteration16Compiled", "BM_SpmmIteration16"},
  };
  for (const auto& [compiled, reference] : pairs) {
    if (!json.has(compiled) || !json.has(reference)) continue;
    const double ref_ns = json.get(reference, "ns_per_iteration");
    const double cmp_ns = json.get(compiled, "ns_per_iteration");
    // Same fixture and item count per iteration, so the time ratio is the
    // edges*lanes/s throughput ratio.
    if (cmp_ns > 0.0) {
      json.set(compiled, "speedup_vs_reference", ref_ns / cmp_ns);
    }
  }
  // Per-iteration telemetry averages for the kernel benches (only when
  // counters were on, i.e. --counters or --json).
  for (const auto& [name, delta] : bench_counter_records()) {
    for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
      json.set_counter(name,
                       std::string(obs::to_string(
                           static_cast<obs::Counter>(i))),
                       delta.values[i]);
    }
  }
  return json.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark parses the rest.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      g_scale = std::stod(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--counters") == 0) {
      g_counters = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // --json implies counters: the emitted records carry a "counters" object.
  if (!json_path.empty()) g_counters = true;
  if (g_counters) obs::set_counters_enabled(true);
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !emit_json(json_path, reporter.runs())) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  return 0;
}
