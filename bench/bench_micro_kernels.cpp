// Kernel microbenchmarks (google-benchmark): the building blocks whose
// costs explain the figure-level results — temporal CSR construction,
// per-window state scatter, one SpMV iteration vs one SpMM iteration
// (amortized per window), streaming graph mutation, and window-graph
// reconstruction (the offline model's per-window cost).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pagerank/propagation_blocking.hpp"
#include "pagerank/spmm_temporal.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "streaming/dynamic_graph.hpp"

namespace {

using namespace pmpr;

struct MicroFixture {
  TemporalEdgeList events;
  WindowSpec spec;
  MultiWindowSet set;

  MicroFixture()
      : events(gen::generate(
            gen::scaled(gen::dataset_by_name("wiki-talk"), 0.05), 42)),
        spec(bench::last_windows(events, 90 * duration::kDay, 86'400, 64)),
        set(MultiWindowSet::build(events, spec, 2)) {}

  static const MicroFixture& get() {
    static MicroFixture fixture;
    return fixture;
  }
};

void BM_TemporalCsrBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(16));
  for (auto _ : state) {
    TemporalCsr g = TemporalCsr::build(slice, f.events.num_vertices(), true);
    benchmark::DoNotOptimize(g.num_entries());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_TemporalCsrBuild);

void BM_WindowGraphBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(0));
  for (auto _ : state) {
    WindowGraph g = build_window_graph(slice, f.events.num_vertices());
    benchmark::DoNotOptimize(g.num_edges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_WindowGraphBuild);

void BM_WindowStateScatter(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const std::size_t w = part.first_window;
  WindowState ws;
  for (auto _ : state) {
    compute_window_state(part, f.spec.start(w), f.spec.end(w), ws);
    benchmark::DoNotOptimize(ws.num_active);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_WindowStateScatter);

void BM_SpmvIteration(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  const std::size_t w = part.first_window;
  WindowState ws;
  compute_window_state(part, f.spec.start(w), f.spec.end(w), ws);
  std::vector<double> x(part.num_local());
  std::vector<double> scratch(part.num_local());
  full_init(ws.active, ws.num_active, x);
  PagerankParams params;
  params.max_iters = 1;  // time exactly one traversal
  params.tol = 0.0;
  for (auto _ : state) {
    pagerank_window_spmv(part, f.spec.start(w), f.spec.end(w), ws, x,
                         scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events));
}
BENCHMARK(BM_SpmvIteration);

void BM_SpmmIteration16(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto& part = f.set.part(0);
  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(16, part.num_windows);
  batch.first_window = part.first_window;
  batch.window_stride = std::max<std::size_t>(1, part.num_windows / batch.lanes);
  SpmmWindowState ws;
  compute_spmm_state(part, f.spec, batch, ws);
  const std::size_t n = part.num_local();
  std::vector<double> x(n * batch.lanes, 1.0 / static_cast<double>(n));
  std::vector<double> scratch(n * batch.lanes);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  for (auto _ : state) {
    pagerank_spmm(part, f.spec, batch, ws, x, scratch, params);
    benchmark::DoNotOptimize(x[0]);
  }
  // One traversal advances `lanes` windows: credit lanes x events.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(part.num_events) *
                          static_cast<std::int64_t>(batch.lanes));
}
BENCHMARK(BM_SpmmIteration16);

void BM_PropagationBlockingIteration(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  const auto slice = f.events.slice(f.spec.start(0), f.spec.end(0));
  const PushGraph g =
      PushGraph::from_events(slice, f.events.num_vertices());
  std::vector<double> x(g.num_vertices);
  std::vector<double> scratch(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  PagerankParams params;
  params.max_iters = 1;
  params.tol = 0.0;
  for (auto _ : state) {
    pagerank_propagation_blocking(g, x, scratch, params,
                                  static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(x[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.out.num_edges()));
}
BENCHMARK(BM_PropagationBlockingIteration)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_StreamingWindowAdvance(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  for (auto _ : state) {
    streaming::DynamicGraph g(f.events.num_vertices());
    g.insert_batch(f.events.slice(f.spec.start(0), f.spec.end(0)));
    g.remove_batch(f.events.slice(f.spec.start(0), f.spec.start(1) - 1));
    g.insert_batch(f.events.slice(f.spec.end(0) + 1, f.spec.end(1)));
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_StreamingWindowAdvance);

void BM_MultiWindowSetBuild(benchmark::State& state) {
  const auto& f = MicroFixture::get();
  for (auto _ : state) {
    MultiWindowSet set = MultiWindowSet::build(f.events, f.spec, 6);
    benchmark::DoNotOptimize(set.total_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.events.size()));
}
BENCHMARK(BM_MultiWindowSetBuild);

}  // namespace

BENCHMARK_MAIN();
