// Figure 6: impact of partial initialization (Eq. 4) on stackoverflow and
// wiki-talk — speedup of partial over full initialization per window size,
// plus the iteration counts that explain it. The paper reports 1.5x-3.5x,
// growing with window size (more overlap -> better warm starts).
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Figure 6 - full vs partial initialization");
  BenchArgs args;
  std::int64_t max_windows = 192;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows per configuration");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  using duration::kDay;
  const Timestamp sw = 43'200;
  const std::vector<Timestamp> deltas{10 * kDay, 15 * kDay, 90 * kDay,
                                      180 * kDay};

  Table table("Fig 6: partial initialization speedup (sliding offset 43,200)",
              {"dataset", "window size", "windows", "iters full",
               "iters partial", "time full (s)", "time partial (s)",
               "speedup"});

  for (const char* name : {"stackoverflow", "wiki-talk"}) {
    const TemporalEdgeList events = load_surrogate(name, args);
    for (const Timestamp delta : deltas) {
      const WindowSpec spec = WindowSpec::cover_capped(
          events.min_time(), events.max_time(), delta, sw,
          static_cast<std::size_t>(max_windows));
      const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);

      PostmortemConfig cfg;
      cfg.mode = ParallelMode::kPagerank;
      cfg.kernel = KernelKind::kSpmv;
      cfg.num_multi_windows = 6;

      cfg.partial_init = false;
      ChecksumSink sink_full(spec.count);
      const RunResult full = run_postmortem_prebuilt(set, sink_full, cfg);

      cfg.partial_init = true;
      ChecksumSink sink_part(spec.count);
      const RunResult part = run_postmortem_prebuilt(set, sink_part, cfg);

      table.add_row(
          {name, fmt_days(delta),
           Table::fmt(static_cast<std::uint64_t>(spec.count)),
           Table::fmt(full.total_iterations),
           Table::fmt(part.total_iterations),
           Table::fmt(full.compute_seconds, 3),
           Table::fmt(part.compute_seconds, 3),
           Table::fmt(part.compute_seconds > 0
                          ? full.compute_seconds / part.compute_seconds
                          : 0.0,
                      2)});
    }
  }
  print(table, args);
  return 0;
}
