// Ablation: SpMM vector length (the paper uses 8 or 16 and notes that very
// large vectors erode partial initialization because every lane of the
// first batch cold-starts). Sweeps L = 1..64 on wiki-talk and reports time
// plus total iterations.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Ablation - SpMM vector length");
  BenchArgs args;
  std::int64_t windows = 256;
  args.attach(opts);
  opts.add("windows", &windows, "number of analysis windows");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  const WindowSpec spec =
      last_windows(events, 90 * duration::kDay, 43'200,
                   static_cast<std::size_t>(windows));
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);

  Table table("Ablation: SpMM vector length, wiki-talk (windows=" +
                  std::to_string(spec.count) + ")",
              {"vector length", "compute (s)", "total iterations",
               "iters/window"});

  for (const std::size_t veclen : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    PostmortemConfig cfg;
    cfg.mode = ParallelMode::kPagerank;
    cfg.kernel = KernelKind::kSpmm;
    cfg.vector_length = veclen;
    cfg.num_multi_windows = 6;
    ChecksumSink sink(spec.count);
    const RunResult r = run_postmortem_prebuilt(set, sink, cfg);
    table.add_row(
        {Table::fmt(static_cast<std::uint64_t>(veclen)),
         Table::fmt(r.compute_seconds, 4), Table::fmt(r.total_iterations),
         Table::fmt(static_cast<double>(r.total_iterations) /
                        static_cast<double>(spec.count),
                    2)});
  }
  print(table, args);
  return 0;
}
