// Figure 4: temporal edge distribution over the time period for each of the
// seven datasets. Prints one bucketed arrival-count series per surrogate;
// the shapes (Enron spike, Epinions burst, growth curves, YouTube's
// bursty-steady profile, HepTh irregularity) are what drive which
// parallelization level wins later.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Figure 4 - temporal edge distribution per dataset");
  BenchArgs args;
  std::int64_t buckets = 32;
  args.attach(opts);
  opts.add("buckets", &buckets, "number of time buckets per dataset");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  for (const auto& base : gen::dataset_catalog()) {
    const TemporalEdgeList events = load_surrogate(base.name, args);
    const Timestamp t0 = events.min_time();
    const Timestamp t1 = events.max_time();
    const double span = static_cast<double>(t1 - t0) + 1.0;

    std::vector<std::size_t> counts(static_cast<std::size_t>(buckets), 0);
    for (const auto& e : events.events()) {
      auto b = static_cast<std::size_t>(
          static_cast<double>(e.time - t0) / span *
          static_cast<double>(buckets));
      if (b >= counts.size()) b = counts.size() - 1;
      ++counts[b];
    }
    const std::size_t peak =
        *std::max_element(counts.begin(), counts.end());

    Table table("Fig 4: " + base.name + " (" +
                    std::string(to_string(base.profile.shape)) + ")",
                {"bucket start (day)", "edge count", "histogram"});
    for (std::size_t b = 0; b < counts.size(); ++b) {
      const auto day = static_cast<Timestamp>(
          (static_cast<double>(t0 - base.t_begin) +
           static_cast<double>(b) * span / static_cast<double>(buckets)) /
          static_cast<double>(duration::kDay));
      const std::size_t bar_len =
          peak > 0 ? counts[b] * 40 / peak : 0;
      table.add_row({Table::fmt(static_cast<std::int64_t>(day)),
                     Table::fmt(static_cast<std::uint64_t>(counts[b])),
                     std::string(bar_len, '#')});
    }
    print(table, args);
  }
  return 0;
}
