// Ablation: the streaming baseline's three refresh strategies — cold
// restart, warm restart (previous solution carried over), and Riedy-style
// ∆-push (Eq. 3). Relevant to how strong a baseline the paper's streaming
// comparison is: the reported 50x-880x is against STINGER's incremental
// algorithm, i.e. the strongest of these.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Ablation - streaming PageRank refresh strategies");
  BenchArgs args;
  std::int64_t max_windows = 192;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Ablation: streaming refresh strategy (wiki-talk, sw=86,400, "
              "delta=90d)",
              {"strategy", "mutate (s)", "compute (s)", "total iterations"});

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  const WindowSpec spec = WindowSpec::cover_capped(
      events.min_time(), events.max_time(), 90 * duration::kDay, 86'400,
      static_cast<std::size_t>(max_windows));

  struct Variant {
    const char* name;
    bool incremental;
    StreamingAlgorithm algorithm;
  };
  const std::vector<Variant> variants{
      {"cold restart", false, StreamingAlgorithm::kWarmRestart},
      {"warm restart", true, StreamingAlgorithm::kWarmRestart},
      {"delta-push (Eq. 3)", true, StreamingAlgorithm::kDeltaPush},
  };

  for (const auto& v : variants) {
    StreamingOptions sopts;
    sopts.incremental = v.incremental;
    sopts.algorithm = v.algorithm;
    ChecksumSink sink(spec.count);
    const RunResult r = run_streaming(events, spec, sink, sopts);
    table.add_row({v.name, Table::fmt(r.build_seconds, 3),
                   Table::fmt(r.compute_seconds, 3),
                   Table::fmt(r.total_iterations)});
  }
  print(table, args);
  return 0;
}
