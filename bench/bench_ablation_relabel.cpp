// Ablation: activity-ordered vertex relabeling. Power-law surrogates put a
// few vertices on most edges; packing those into low ids makes the hot
// slice of the PageRank vector contiguous. Measures postmortem compute
// with original vs relabeled ids (results are permutation-invariant —
// verified in tests — so this is purely a locality knob).
#include "bench_common.hpp"
#include "graph/relabel.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Ablation - activity-ordered vertex relabeling");
  BenchArgs args;
  std::int64_t max_windows = 192;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Ablation: vertex relabeling (PR-level SpMV, partial init)",
              {"dataset", "ids", "build (s)", "compute (s)"});

  for (const char* name : {"wiki-talk", "stackoverflow"}) {
    const TemporalEdgeList original = load_surrogate(name, args);
    const Relabeling r = relabel_by_activity(original);
    const TemporalEdgeList relabeled = apply_relabeling(original, r);
    const gen::DatasetSpec& base = gen::dataset_by_name(name);
    const WindowSpec spec = WindowSpec::cover_capped(
        original.min_time(), original.max_time(), base.window_sizes[2],
        base.sliding_offsets.front(), static_cast<std::size_t>(max_windows));

    for (const bool use_relabeled : {false, true}) {
      const TemporalEdgeList& events = use_relabeled ? relabeled : original;
      Timer build_timer;
      const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);
      const double build = build_timer.seconds();
      PostmortemConfig cfg;
      cfg.mode = ParallelMode::kPagerank;
      cfg.kernel = KernelKind::kSpmv;
      cfg.num_multi_windows = 6;
      const double compute = time_postmortem_prebuilt(set, cfg);
      table.add_row({name, use_relabeled ? "activity-ordered" : "original",
                     Table::fmt(build, 3), Table::fmt(compute, 4)});
    }
  }
  print(table, args);
  return 0;
}
