// Figure 7: postmortem PageRank speedup over streaming on wiki-talk for
// each TBB-style partitioner, parallelization level and kernel across
// grain sizes — 256 windows (sw = 43,200 s, delta = 90 days).
#include "granularity_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pmpr;
  return bench::run_granularity_figure("Fig 7", 90 * duration::kDay, 43'200,
                                       256, argc, argv);
}
