// Figure 10: the same sweep as Fig. 7 but with 1,024 windows
// (sw = 86,400 s, delta = 90 days) — plentiful window-level parallelism.
#include "granularity_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pmpr;
  return bench::run_granularity_figure("Fig 10", 90 * duration::kDay, 86'400,
                                       1024, argc, argv,
                                       /*default_scale=*/0.03);
}
