// Figure 12: performance of the §6.3.6 suggested parameters (SpMM, auto
// partitioner, grain <= 4, nested unless the workload is dominated or has
// few windows) on wiki-talk across the sliding-offset x window-size grid —
// "very honorable performance at little tuning cost".
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Figure 12 - suggested parameters on wiki-talk");
  BenchArgs args;
  std::int64_t max_windows = 128;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows per cell");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const gen::DatasetSpec& base = gen::dataset_by_name("wiki-talk");
  const TemporalEdgeList events = load_surrogate(base.name, args);

  Table table("Fig 12: suggested-parameter postmortem speedup on wiki-talk",
              {"sliding offset (s)", "window size", "windows", "mode chosen",
               "streaming (s)", "postmortem (s)", "speedup"});

  for (const Timestamp sw : base.sliding_offsets) {
    for (const Timestamp delta : base.window_sizes) {
      const WindowSpec spec = WindowSpec::cover_capped(
          events.min_time(), events.max_time(), delta, sw,
          static_cast<std::size_t>(max_windows));
      const double streaming = time_streaming(events, spec);

      const PostmortemConfig cfg = suggest_config_for(events, spec);
      const double t = time_postmortem(events, spec, cfg);

      table.add_row({Table::fmt(sw), fmt_days(delta),
                     Table::fmt(static_cast<std::uint64_t>(spec.count)),
                     std::string(to_string(cfg.mode)),
                     Table::fmt(streaming, 3), Table::fmt(t, 3),
                     Table::fmt(t > 0 ? streaming / t : 0.0, 1)});
    }
  }
  print(table, args);
  return 0;
}
