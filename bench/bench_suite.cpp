// Curated perf-regression suite (ctest target bench.regression, dev
// workflow ci/bench_compare.py): one binary running a fixed set of
// representative cases — the Fig. 5 execution-model comparison, the Fig. 6
// partial-init ablation, the Fig. 8 vector-length sweep, and the SpMV/SpMM
// kernel micro-iterations — and emitting BENCH_suite.json with per-case
// timings, latency-histogram percentiles, and counter-derived rates.
//
// The JSON is the input half of the regression gate: commit a run as
// ci/bench_baseline.json, then diff later runs against it with
//   python3 ci/bench_compare.py build/BENCH_suite.json ci/bench_baseline.json
// Cases share one wiki-talk surrogate (scaled by --scale) so the whole
// suite stays laptop-fast; the comparator refuses to diff runs whose
// meta.scale disagrees.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "pagerank/batch_csr.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/spmm_temporal.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "util/stats.hpp"

using namespace pmpr;
using namespace pmpr::bench;

namespace {

/// Best (minimum) of `repeats` evaluations of `fn` (which returns
/// seconds). Min, not median: for regression gating the most reproducible
/// statistic is the least-perturbed run — noise only ever adds time.
double best_seconds(const std::int64_t repeats, auto&& fn) {
  double best = fn();
  for (std::int64_t r = 1; r < repeats; ++r) best = std::min(best, fn());
  return best;
}

/// The 16-lane SpMM batch the micro cases time (clamped to the part's
/// window count at tiny scales).
SpmmBatch spmm16_batch(const MultiWindowGraph& part) {
  SpmmBatch batch;
  batch.lanes = std::min<std::size_t>(16, part.num_windows);
  batch.first_window = part.first_window;
  batch.window_stride =
      std::max<std::size_t>(1, part.num_windows / batch.lanes);
  return batch;
}

/// `count` windows with the same geometry as the 16-lane micro case
/// (90-day delta, one-day slide, anchored at the end of the data) so
/// ns_per_lane is comparable across batch widths. Used by the wide-sweep
/// micro cases — the regular cases cap windows at --max-windows, which
/// would leave most of a 512-lane batch empty.
WindowSpec wide_lane_spec(const TemporalEdgeList& events, std::size_t count) {
  return last_windows(events, 90 * duration::kDay, 86'400, count);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("Curated perf-regression suite -> BENCH_suite.json");
  BenchArgs args;
  args.scale = 0.02;
  args.json = "BENCH_suite.json";
  std::int64_t max_windows = 64;
  // 200 timed iterations keeps the min-statistic stable to a few percent
  // on a busy machine (50 left the SpMM case ~1.6x noisy).
  std::int64_t micro_iters = 200;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows per configuration");
  opts.add("micro-iters", &micro_iters,
           "timed iterations per kernel micro case");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  // The suite reads counters and phase histograms, so both gates go on for
  // the whole run; the disabled fast path has its own differential test.
  obs::set_counters_enabled(true);
  obs::set_histograms_enabled(true);

  JsonEmitter json;
  json.set("meta", "schema_version", 1.0);
  json.set("meta", "scale", args.scale);
  json.set("meta", "repeats", static_cast<double>(args.repeats));
  json.set("meta", "max_windows", static_cast<double>(max_windows));

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  using duration::kDay;
  const WindowSpec spec = WindowSpec::cover_capped(
      events.min_time(), events.max_time(), 90 * kDay, 259'200,
      static_cast<std::size_t>(max_windows));
  const double windows = static_cast<double>(spec.count);

  Table table("Perf-regression suite (wiki-talk surrogate)",
              {"case", "metric", "value"});
  const auto emit = [&](const std::string& rec, const std::string& field,
                        double value) {
    json.set(rec, field, value);
    table.add_row({rec, field, Table::fmt(value, 3)});
  };

  // --- fig5: execution-model wall time --------------------------------
  {
    const double secs = best_seconds(
        args.repeats, [&] { return time_offline(events, spec); });
    emit("fig5.offline", "seconds", secs);
    emit("fig5.offline", "ns_per_window", secs * 1e9 / windows);
  }
  {
    const double secs = best_seconds(
        args.repeats, [&] { return time_streaming(events, spec); });
    emit("fig5.streaming", "seconds", secs);
    emit("fig5.streaming", "ns_per_window", secs * 1e9 / windows);
  }
  {
    PostmortemConfig cfg;  // bare-bones, as in Fig. 5
    cfg.mode = ParallelMode::kPagerank;
    cfg.kernel = KernelKind::kSpmv;
    cfg.partitioner = par::Partitioner::kStatic;
    cfg.num_multi_windows = 6;
    cfg.partial_init = true;
    // The postmortem case also exports histogram percentiles and counter
    // rates — the regression surface the observability layer adds. Each
    // extra takes its own element-wise best across the repeats (min for
    // latencies, max for throughput): one run's tail can be atypically
    // slow without the whole gate flapping.
    double secs = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    double eps = 0.0;
    std::uint64_t iterations = 0;
    for (std::int64_t r = 0; r < args.repeats; ++r) {
      ChecksumSink sink(spec.count);
      const RunResult res = run_postmortem(events, spec, sink, cfg);
      const double run_secs = res.build_seconds + res.compute_seconds;
      const obs::PhaseHistogram& iter = res.histograms[obs::Phase::kIterate];
      if (r == 0 || run_secs < secs) secs = run_secs;
      const std::uint64_t run_p50 = iter.percentile_ns(0.50);
      const std::uint64_t run_p99 = iter.percentile_ns(0.99);
      if (r == 0 || run_p50 < p50) p50 = run_p50;
      if (r == 0 || run_p99 < p99) p99 = run_p99;
      eps = std::max(
          eps,
          static_cast<double>(res.counters[obs::Counter::kEdgesTraversed]) /
              std::max(run_secs, 1e-12));
      iterations = res.total_iterations;  // deterministic across repeats
    }
    emit("fig5.postmortem", "seconds", secs);
    emit("fig5.postmortem", "ns_per_window", secs * 1e9 / windows);
    emit("fig5.postmortem", "iterate_p50_ns", static_cast<double>(p50));
    emit("fig5.postmortem", "iterate_p99_ns", static_cast<double>(p99));
    emit("fig5.postmortem", "edges_per_second", eps);
    emit("fig5.postmortem", "total_iterations",
         static_cast<double>(iterations));
  }

  // --- fig6: partial-init ablation ------------------------------------
  for (const bool partial : {true, false}) {
    PostmortemConfig cfg;
    cfg.kernel = KernelKind::kSpmv;
    cfg.num_multi_windows = 6;
    cfg.partial_init = partial;
    const double secs = best_seconds(
        args.repeats, [&] { return time_postmortem(events, spec, cfg); });
    emit(partial ? "fig6.partial_on" : "fig6.partial_off", "seconds", secs);
  }

  // --- fig8: SpMM vector length on a prebuilt representation ----------
  {
    const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);
    for (const std::size_t y : {std::size_t{2}, std::size_t{8}}) {
      PostmortemConfig cfg;
      cfg.kernel = KernelKind::kSpmm;
      cfg.vector_length = y;
      cfg.partial_init = true;
      const double secs = best_seconds(
          args.repeats, [&] { return time_postmortem_prebuilt(set, cfg); });
      emit(y == 2 ? "fig8.y2" : "fig8.y8", "compute_seconds", secs);
    }
  }

  // --- micro: one kernel traversal, ns/iteration ----------------------
  {
    const MultiWindowSet set =
        MultiWindowSet::build(events,
                              last_windows(events, 90 * kDay, 86'400,
                                           std::min<std::size_t>(
                                               64, spec.count)),
                              2);
    const MultiWindowGraph& part = set.part(0);
    const WindowSpec& mspec = set.spec();
    const std::size_t w = part.first_window;
    PagerankParams params;
    params.max_iters = 1;  // time exactly one traversal
    params.tol = 0.0;
    const int iters = static_cast<int>(micro_iters);
    const int warmup = std::max(1, iters / 10);
    const auto ns_per_iter = [&](auto&& fn) {
      const std::vector<double> times = time_repeats(fn, iters, warmup);
      return *std::min_element(times.begin(), times.end()) * 1e9;
    };

    {
      WindowState ws;
      compute_window_state(part, mspec.start(w), mspec.end(w), ws);
      std::vector<double> x(part.num_local());
      std::vector<double> scratch(part.num_local());
      full_init(ws.active, ws.num_active, x);
      emit("micro.spmv_ref", "ns_per_iteration", ns_per_iter([&] {
             pagerank_window_spmv(part, mspec.start(w), mspec.end(w), ws, x,
                                  scratch, params);
           }));
    }
    {
      WindowState ws;
      CompiledWindowCsr compiled;
      compile_window(part, mspec.start(w), mspec.end(w), ws, compiled);
      std::vector<double> x(part.num_local());
      std::vector<double> scratch(part.num_local());
      full_init(ws.active, ws.num_active, x);
      emit("micro.spmv_compiled", "ns_per_iteration", ns_per_iter([&] {
             pagerank_window_spmv(ws, compiled, x, scratch, params);
           }));
    }
    {
      const SpmmBatch batch = spmm16_batch(part);
      SpmmWindowState ws;
      CompiledBatchCsr compiled;
      compile_spmm_batch(part, mspec, batch, ws, compiled);
      const std::size_t n = part.num_local();
      std::vector<double> x(n * batch.lanes, 1.0 / static_cast<double>(n));
      std::vector<double> scratch(n * batch.lanes);
      emit("micro.spmm16_compiled", "ns_per_iteration", ns_per_iter([&] {
             pagerank_spmm(ws, compiled, x, scratch, params);
           }));
    }
  }

  // --- micro: wide SpMM sweeps (multi-word lane masks), ns/lane -------
  {
    PagerankParams params;
    params.max_iters = 1;  // time exactly one traversal
    params.tol = 0.0;
    // A 512-lane traversal does ~32x the work of the 16-lane case; fewer
    // timed iterations keep the suite fast while the min stays stable.
    const int iters =
        static_cast<int>(std::max<std::int64_t>(10, micro_iters / 8));
    const int warmup = std::max(1, iters / 10);
    for (const std::size_t lanes :
         {std::size_t{64}, std::size_t{128}, std::size_t{512}}) {
      const WindowSpec wspec = wide_lane_spec(events, lanes);
      const MultiWindowSet wset = MultiWindowSet::build(events, wspec, 1);
      const MultiWindowGraph& part = wset.part(0);
      SpmmBatch batch;
      batch.lanes = lanes;
      batch.first_window = part.first_window;
      batch.window_stride = 1;
      SpmmWindowState ws;
      CompiledBatchCsr compiled;
      compile_spmm_batch(part, wspec, batch, ws, compiled);
      const std::size_t n = part.num_local();
      std::vector<double> x(n * lanes, 1.0 / static_cast<double>(n));
      std::vector<double> scratch(n * lanes);
      const std::vector<double> times = time_repeats(
          [&] { pagerank_spmm(ws, compiled, x, scratch, params); }, iters,
          warmup);
      const double ns =
          *std::min_element(times.begin(), times.end()) * 1e9;
      const std::string rec =
          "micro.spmm" + std::to_string(lanes) + "_compiled";
      emit(rec, "ns_per_iteration", ns);
      emit(rec, "ns_per_lane", ns / static_cast<double>(lanes));
    }
  }

  // --- io: chunked codec — compression ratio + decode throughput ------
  {
    const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);
    std::vector<io::CompressedTemporalCsr> parts;
    std::size_t raw_bytes = 0;
    std::size_t packed_bytes = 0;
    std::size_t entries = 0;
    for (std::size_t p = 0; p < set.num_parts(); ++p) {
      io::CompressedTemporalCsr packed =
          compress_temporal_csr(set.part(p).in);
      raw_bytes += packed.raw_adjacency_bytes();
      packed_bytes += packed.memory_bytes();  // payload + chunk table
      entries += packed.num_entries();
      parts.push_back(std::move(packed));
    }
    emit("io.compress_ratio", "ratio",
         static_cast<double>(raw_bytes) / static_cast<double>(packed_bytes));
    emit("io.compress_ratio", "bits_per_entry",
         static_cast<double>(packed_bytes) * 8.0 /
             static_cast<double>(entries));

    // Full decode of every part — the varint/delta inner loop the
    // chunk-streaming compile passes run per batch.
    const int iters = static_cast<int>(std::max<std::int64_t>(
        10, micro_iters / 4));
    const int warmup = std::max(1, iters / 10);
    io::DecodeScratch scratch;
    const std::vector<double> times = time_repeats(
        [&] {
          for (const io::CompressedTemporalCsr& packed : parts) {
            packed.decode_all(scratch);
          }
        },
        iters, warmup);
    const double secs = *std::min_element(times.begin(), times.end());
    emit("micro.decode_varint", "ns_per_entry",
         secs * 1e9 / static_cast<double>(entries));
    emit("micro.decode_varint", "entries_per_second",
         static_cast<double>(entries) / secs);
  }

  // --- io: out-of-core paging — residency + read amplification --------
  {
    PostmortemConfig cfg;
    cfg.kernel = KernelKind::kSpmv;
    cfg.num_multi_windows = 6;
    cfg.partial_init = true;
    cfg.storage = StorageKind::kOutOfCore;
    cfg.memory_budget_bytes = 0;  // one part at a time — maximal paging
    double secs = 0.0;
    std::size_t peak = 0;
    double read_amp = 0.0;
    for (std::int64_t r = 0; r < args.repeats; ++r) {
      ChecksumSink sink(spec.count);
      const RunResult res = run_postmortem(events, spec, sink, cfg);
      const double run_secs = res.build_seconds + res.compute_seconds;
      if (r == 0 || run_secs < secs) secs = run_secs;
      // Both memory records are deterministic for a fixed surrogate and
      // config (charged residency and counter-derived amplification, not
      // wall-clock), so the last repeat's values stand.
      peak = res.oocore_resident_peak_bytes;
      read_amp = res.read_amplification;
    }
    emit("io.oocore_paging", "seconds", secs);
    emit("io.oocore_paging", "resident_peak_bytes",
         static_cast<double>(peak));
    emit("io.oocore_paging", "read_amplification", read_amp);
  }

  print(table, args);
  if (!args.json.empty() && !json.write(args.json)) {
    std::cerr << "failed to write " << args.json << "\n";
    return 1;
  }
  return 0;
}
