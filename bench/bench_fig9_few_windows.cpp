// Figure 9: the same sweep as Fig. 7 but with only 6 windows
// (sw = 43,200 s, delta = 10 days) — window-level parallelism starves
// because there are fewer windows than cores.
#include "granularity_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pmpr;
  return bench::run_granularity_figure("Fig 9", 10 * duration::kDay, 43'200,
                                       6, argc, argv);
}
