// Ablation: the §4.4 strided batch pick. SpMM with strided batches keeps
// partial initialization for every batch after the first; disabling partial
// initialization emulates the naive consecutive pick (G0..G7 at once),
// where every lane cold-starts. Also reports SpMV with partial init as the
// reference the strided trick is trying to match.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Ablation - SpMM batch ordering vs partial initialization");
  BenchArgs args;
  std::int64_t windows = 256;
  std::int64_t veclen = 16;
  args.attach(opts);
  opts.add("windows", &windows, "number of analysis windows");
  opts.add("veclen", &veclen, "SpMM vector length");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  const WindowSpec spec =
      last_windows(events, 90 * duration::kDay, 43'200,
                   static_cast<std::size_t>(windows));
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);

  struct Variant {
    const char* name;
    KernelKind kernel;
    bool partial;
  };
  const std::vector<Variant> variants{
      {"SpMM strided + partial init (§4.4)", KernelKind::kSpmm, true},
      {"SpMM, no partial init (≈ consecutive pick)", KernelKind::kSpmm,
       false},
      {"SpMV + partial init", KernelKind::kSpmv, true},
      {"SpMV, full init", KernelKind::kSpmv, false},
  };

  Table table("Ablation: SpMM ordering and partial init, wiki-talk (windows=" +
                  std::to_string(spec.count) +
                  ", veclen=" + std::to_string(veclen) + ")",
              {"variant", "compute (s)", "total iterations"});

  for (const auto& v : variants) {
    PostmortemConfig cfg;
    cfg.mode = ParallelMode::kPagerank;
    cfg.kernel = v.kernel;
    cfg.partial_init = v.partial;
    cfg.vector_length = static_cast<std::size_t>(veclen);
    cfg.num_multi_windows = 6;
    ChecksumSink sink(spec.count);
    const RunResult r = run_postmortem_prebuilt(set, sink, cfg);
    table.add_row({v.name, Table::fmt(r.compute_seconds, 4),
                   Table::fmt(r.total_iterations)});
  }
  print(table, args);
  return 0;
}
