// Figure 11: best postmortem-over-streaming speedup per (sliding offset,
// window size) cell for all seven datasets — the paper's headline heatmaps
// (50x-880x on the authors' testbed; scaled surrogates land in the same
// orders of magnitude with the same orderings).
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Figure 11 - best postmortem speedup over streaming");
  BenchArgs args;
  args.scale = 0.05;  // full grid across 7 datasets: keep cells small
  std::int64_t max_windows = 128;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows per cell");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Fig 11: best postmortem speedup over streaming",
              {"dataset", "sliding offset (s)", "window size", "windows",
               "streaming (s)", "best postmortem (s)", "best config",
               "speedup"});

  for (const auto& base : gen::dataset_catalog()) {
    const TemporalEdgeList events = load_surrogate(base.name, args);
    for (const Timestamp sw : base.sliding_offsets) {
      for (const Timestamp delta : base.window_sizes) {
        const WindowSpec spec = WindowSpec::cover_capped(
            events.min_time(), events.max_time(), delta, sw,
            static_cast<std::size_t>(max_windows));
        const double streaming = time_streaming(events, spec);

        // Small tuning set, as in the paper's "best over configurations".
        double best = -1.0;
        std::string best_name;
        for (const auto mode :
             {ParallelMode::kNested, ParallelMode::kPagerank}) {
          for (const auto kernel : {KernelKind::kSpmm, KernelKind::kSpmv}) {
            PostmortemConfig cfg;
            cfg.mode = mode;
            cfg.kernel = kernel;
            cfg.grain = 2;
            cfg.num_multi_windows = 6;
            const double t = time_postmortem(events, spec, cfg);
            if (best < 0.0 || t < best) {
              best = t;
              best_name = std::string(to_string(mode)) + "/" +
                          std::string(to_string(kernel));
            }
          }
        }

        table.add_row({base.name, Table::fmt(sw), fmt_days(delta),
                       Table::fmt(static_cast<std::uint64_t>(spec.count)),
                       Table::fmt(streaming, 3), Table::fmt(best, 3),
                       best_name,
                       Table::fmt(best > 0 ? streaming / best : 0.0, 1)});
      }
    }
  }
  print(table, args);
  return 0;
}
