// Table 1: the seven temporal datasets and their analysis parameters
// (sliding offsets, window sizes), plus surrogate statistics so the scaled
// reproduction is auditable against the paper's |Events| column.
#include "bench_common.hpp"

#include <set>
#include <sstream>

using namespace pmpr;
using namespace pmpr::bench;

namespace {

std::string join_offsets(const std::vector<Timestamp>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << (i != 0 ? "," : "") << xs[i];
  }
  return os.str();
}

std::string join_sizes(const std::vector<Timestamp>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << (i != 0 ? "," : "") << fmt_days(xs[i]);
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("Table 1 - graphs and parameters (paper vs surrogate)");
  BenchArgs args;
  args.attach(opts);
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Table 1: Graphs and Parameters",
              {"name", "paper |Events|", "surrogate |Events|", "vertices seen",
               "span", "sliding offsets (s)", "window sizes"});

  for (const auto& base : gen::dataset_catalog()) {
    const gen::DatasetSpec spec = gen::scaled(base, args.scale);
    const TemporalEdgeList events =
        gen::generate(spec, static_cast<std::uint64_t>(args.seed));

    std::set<VertexId> seen;
    for (const auto& e : events.events()) {
      seen.insert(e.src);
      seen.insert(e.dst);
    }

    table.add_row({base.name,
                   Table::fmt(static_cast<std::uint64_t>(base.paper_events)),
                   Table::fmt(static_cast<std::uint64_t>(events.size())),
                   Table::fmt(static_cast<std::uint64_t>(seen.size())),
                   fmt_days(base.t_end - base.t_begin),
                   join_offsets(base.sliding_offsets),
                   join_sizes(base.window_sizes)});
  }
  print(table, args);
  return 0;
}
