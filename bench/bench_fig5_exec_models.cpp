// Figure 5: Offline vs Streaming vs Postmortem wall time on four datasets
// (Enron, YouTube, Epinions, wiki-talk) across their window-size grids.
// Postmortem here is the paper's "bare-bones" configuration: partial
// initialization, 6 multi-window graphs, application-level parallelism —
// no per-dataset tuning.
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

namespace {

struct Setup {
  const char* dataset;
  Timestamp sw;
  std::vector<Timestamp> deltas;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("Figure 5 - offline vs streaming vs postmortem");
  BenchArgs args;
  std::int64_t max_windows = 192;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows per configuration");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  using duration::kDay;
  using duration::kYear;
  const std::vector<Setup> setups{
      {"ia-enron-email", 172'800, {2 * kYear, 4 * kYear}},
      {"youtube-growth", 86'400, {60 * kDay, 90 * kDay}},
      {"epinions-user-ratings", 86'400, {60 * kDay, 90 * kDay}},
      {"wiki-talk", 259'200,
       {10 * kDay, 15 * kDay, 90 * kDay, 180 * kDay}},
  };

  Table table("Fig 5: execution model comparison (seconds)",
              {"dataset", "sliding offset (s)", "window size", "windows",
               "offline", "streaming", "postmortem", "best"});

  for (const auto& setup : setups) {
    const TemporalEdgeList events = load_surrogate(setup.dataset, args);
    for (const Timestamp delta : setup.deltas) {
      const WindowSpec spec = WindowSpec::cover_capped(
          events.min_time(), events.max_time(), delta, setup.sw,
          static_cast<std::size_t>(max_windows));

      const double offline = time_offline(events, spec);
      const double streaming = time_streaming(events, spec);

      PostmortemConfig cfg;  // bare-bones per the paper's Fig. 5 setup
      cfg.mode = ParallelMode::kPagerank;
      cfg.kernel = KernelKind::kSpmv;
      cfg.partitioner = par::Partitioner::kStatic;
      cfg.num_multi_windows = 6;
      cfg.partial_init = true;
      const double postmortem = time_postmortem(events, spec, cfg);

      const char* best = "postmortem";
      if (offline < streaming && offline < postmortem) best = "offline";
      if (streaming < offline && streaming < postmortem) best = "streaming";

      table.add_row({setup.dataset, Table::fmt(setup.sw), fmt_days(delta),
                     Table::fmt(static_cast<std::uint64_t>(spec.count)),
                     Table::fmt(offline, 3), Table::fmt(streaming, 3),
                     Table::fmt(postmortem, 3), best});
    }
  }
  print(table, args);
  return 0;
}
