// Shared implementation of the paper's granularity-sweep figures
// (Figs. 7, 9, 10): speedup over streaming on wiki-talk for every
// combination of TBB-style partitioner x parallelization level x
// SpMV/SpMM kernel, across grain sizes 1..2048. The three figures differ
// only in window geometry (256 / 6 / 1024 windows).
#pragma once

#include "bench_common.hpp"

namespace pmpr::bench {

inline int run_granularity_figure(const char* figure, Timestamp delta,
                                  Timestamp sw, std::size_t windows, int argc,
                                  char** argv, double default_scale = 0.1) {
  Options opts(std::string(figure) +
               " - partitioner/granularity sweep on wiki-talk");
  BenchArgs args;
  args.scale = default_scale;
  std::int64_t veclen = 16;
  std::int64_t multi_windows = 6;
  args.attach(opts);
  opts.add("veclen", &veclen, "SpMM vector length");
  opts.add("multi-windows", &multi_windows, "number of multi-window graphs");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  const WindowSpec spec = last_windows(events, delta, sw, windows);
  const MultiWindowSet set = MultiWindowSet::build(
      events, spec, static_cast<std::size_t>(multi_windows));

  const double streaming = time_streaming(events, spec);

  const std::vector<std::size_t> grains{1,  2,  4,   8,   16,  32,
                                        64, 128, 256, 512, 1024, 2048};
  const std::vector<par::Partitioner> partitioners{
      par::Partitioner::kAuto, par::Partitioner::kSimple,
      par::Partitioner::kStatic};
  const std::vector<ParallelMode> modes{
      ParallelMode::kNested, ParallelMode::kPagerank, ParallelMode::kWindow};
  const std::vector<KernelKind> kernels{KernelKind::kSpmm, KernelKind::kSpmv};

  Table table(std::string(figure) + ": speedup over streaming, wiki-talk (sw=" +
                  std::to_string(sw) + ", delta=" + fmt_days(delta) +
                  ", windows=" + std::to_string(spec.count) +
                  ", streaming=" + Table::fmt(streaming, 3) + "s)",
              {"partitioner", "mode", "kernel", "grain", "time (s)",
               "speedup"});

  for (const auto partitioner : partitioners) {
    for (const auto mode : modes) {
      for (const auto kernel : kernels) {
        for (const std::size_t grain : grains) {
          PostmortemConfig cfg;
          cfg.mode = mode;
          cfg.kernel = kernel;
          cfg.partitioner = partitioner;
          cfg.grain = grain;
          cfg.vector_length = static_cast<std::size_t>(veclen);
          cfg.num_multi_windows = static_cast<std::size_t>(multi_windows);
          const double t = time_postmortem_prebuilt(set, cfg);
          table.add_row({std::string(to_string(partitioner)),
                         std::string(to_string(mode)),
                         std::string(to_string(kernel)),
                         Table::fmt(static_cast<std::uint64_t>(grain)),
                         Table::fmt(t, 4),
                         Table::fmt(t > 0 ? streaming / t : 0.0, 1)});
        }
      }
    }
  }
  print(table, args);
  return 0;
}

}  // namespace pmpr::bench
