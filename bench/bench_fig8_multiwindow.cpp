// Figure 8: impact of the number of multi-window graphs (Y) on wiki-talk,
// per parallelization level and grain size. Too few parts -> each SpMV
// traverses events of unrelated windows; past "large enough" the
// performance flattens (the paper's observation).
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Figure 8 - number of multi-window graphs");
  BenchArgs args;
  args.scale = 0.05;
  std::int64_t windows = 1024;
  args.attach(opts);
  opts.add("windows", &windows, "number of analysis windows");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  const WindowSpec spec =
      last_windows(events, 90 * duration::kDay, 43'200,
                   static_cast<std::size_t>(windows));
  const double streaming = time_streaming(events, spec);

  const std::vector<std::size_t> multi_windows{6, 32, 256, 512, 1024};
  const std::vector<std::size_t> grains{1, 16, 256};
  const std::vector<ParallelMode> modes{
      ParallelMode::kPagerank, ParallelMode::kWindow, ParallelMode::kNested};

  Table table(
      "Fig 8: multi-window count sweep, wiki-talk (auto partitioner, SpMV, "
      "windows=" + std::to_string(spec.count) +
          ", streaming=" + Table::fmt(streaming, 3) + "s)",
      {"mode", "multi-windows", "grain", "build (s)", "compute (s)",
       "speedup"});

  for (const auto mode : modes) {
    for (const std::size_t y : multi_windows) {
      Timer build_timer;
      const MultiWindowSet set = MultiWindowSet::build(events, spec, y);
      const double build = build_timer.seconds();
      for (const std::size_t grain : grains) {
        PostmortemConfig cfg;
        cfg.mode = mode;
        cfg.kernel = KernelKind::kSpmv;
        cfg.partitioner = par::Partitioner::kAuto;
        cfg.grain = grain;
        cfg.num_multi_windows = y;
        const double t = time_postmortem_prebuilt(set, cfg);
        table.add_row({std::string(to_string(mode)),
                       Table::fmt(static_cast<std::uint64_t>(set.num_parts())),
                       Table::fmt(static_cast<std::uint64_t>(grain)),
                       Table::fmt(build, 3), Table::fmt(t, 4),
                       Table::fmt(t > 0 ? streaming / t : 0.0, 1)});
      }
    }
  }
  print(table, args);
  return 0;
}
