// Shared plumbing for the figure/table benchmark binaries.
//
// Every binary reproduces one table or figure of the paper and prints its
// rows/series as an aligned text table (plus CSV with --csv). Surrogate
// datasets are scaled for laptop runtimes via --scale; window counts are
// capped like the paper's experiment setups (6 / 256 / 1024 windows).
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/offline_runner.hpp"
#include "exec/postmortem_runner.hpp"
#include "exec/results.hpp"
#include "exec/streaming_runner.hpp"
#include "gen/surrogates.hpp"
#include "graph/window.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pmpr::bench {

/// Common CLI switches. Individual benches add their own on top.
struct BenchArgs {
  double scale = 0.1;        ///< Multiplier on surrogate event counts.
  std::int64_t seed = 42;
  bool csv = false;          ///< Emit CSV instead of aligned text.
  std::int64_t repeats = 1;  ///< Timing repeats (median reported).
  std::string json;          ///< When non-empty, also write results here.

  /// Registers the common flags on `opts`.
  void attach(Options& opts) {
    opts.add("scale", &scale, "surrogate dataset scale factor");
    opts.add("seed", &seed, "generator seed");
    opts.add("csv", &csv, "print CSV instead of aligned text");
    opts.add("repeats", &repeats, "timing repeats, median reported");
    opts.add("json", &json, "write machine-readable results to this path");
  }
};

/// Accumulates name -> {field: number} records and writes them as one JSON
/// object, preserving insertion order. Just enough for the --json emission
/// of benchmark binaries (consumed by ci/bench_smoke.sh and ad-hoc
/// plotting) — not a general serializer: values are finite doubles and
/// names must not need escaping.
class JsonEmitter {
 public:
  /// Sets `record.field = value`, creating the record on first use.
  void set(const std::string& record, const std::string& field,
           double value) {
    fields_for(record).emplace_back(field, value);
  }

  /// Sets `record.counters.name = value` — telemetry counters are grouped
  /// in a nested "counters" object so ci/bench_smoke.sh can tell them from
  /// timing fields.
  void set_counter(const std::string& record, const std::string& name,
                   std::uint64_t value) {
    counters_for(record).emplace_back(name, value);
  }

  [[nodiscard]] bool has(const std::string& record) const {
    for (const auto& rec : records_) {
      if (rec.first == record) return true;
    }
    return false;
  }

  /// Returns `record.field`, or `fallback` when absent.
  [[nodiscard]] double get(const std::string& record,
                           const std::string& field,
                           double fallback = 0.0) const {
    for (const auto& rec : records_) {
      if (rec.first != record) continue;
      for (const auto& kv : rec.second) {
        if (kv.first == field) return kv.second;
      }
    }
    return fallback;
  }

  /// Writes the accumulated records to `path`; returns false on IO failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "  \"" << records_[r].first << "\": {";
      const auto& fields = records_[r].second;
      const auto* counters = counters_of(records_[r].first);
      const bool has_counters = counters != nullptr && !counters->empty();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        out << "\n    \"" << fields[i].first
            << "\": " << fmt_number(fields[i].second)
            << (i + 1 < fields.size() || has_counters ? "," : "\n  ");
      }
      if (has_counters) {
        out << "\n    \"counters\": {";
        for (std::size_t i = 0; i < counters->size(); ++i) {
          out << "\n      \"" << (*counters)[i].first
              << "\": " << (*counters)[i].second
              << (i + 1 < counters->size() ? "," : "\n    ");
        }
        out << "}\n  ";
      }
      out << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    return static_cast<bool>(out);
  }

 private:
  static std::string fmt_number(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  std::vector<std::pair<std::string, double>>& fields_for(
      const std::string& record) {
    for (auto& [name, fields] : records_) {
      if (name == record) return fields;
    }
    records_.emplace_back(record,
                          std::vector<std::pair<std::string, double>>{});
    return records_.back().second;
  }

  std::vector<std::pair<std::string, std::uint64_t>>& counters_for(
      const std::string& record) {
    for (auto& [name, counters] : counter_records_) {
      if (name == record) return counters;
    }
    counter_records_.emplace_back(
        record, std::vector<std::pair<std::string, std::uint64_t>>{});
    return counter_records_.back().second;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>*
  counters_of(const std::string& record) const {
    for (const auto& [name, counters] : counter_records_) {
      if (name == record) return &counters;
    }
    return nullptr;
  }

  std::vector<
      std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      records_;
  std::vector<
      std::pair<std::string, std::vector<std::pair<std::string, std::uint64_t>>>>
      counter_records_;
};

inline void print(const Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_text(std::cout);
  }
  std::cout << std::endl;
}

/// Generates a surrogate scaled by `args.scale` on top of its laptop
/// default size.
inline TemporalEdgeList load_surrogate(const std::string& name,
                                       const BenchArgs& args) {
  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name(name), args.scale);
  return gen::generate(spec, static_cast<std::uint64_t>(args.seed));
}

/// Window spec with exactly `count` windows anchored at the *end* of the
/// data range (the busy region for growth-shaped datasets), like the
/// paper's fixed-window-count studies (Figs. 7-10).
inline WindowSpec last_windows(const TemporalEdgeList& events, Timestamp delta,
                               Timestamp sw, std::size_t count) {
  const Timestamp t_max = events.max_time();
  const Timestamp t_min = events.min_time();
  Timestamp t0 = t_max - delta - static_cast<Timestamp>(count - 1) * sw;
  if (t0 < t_min) t0 = t_min;
  WindowSpec spec;
  spec.t0 = t0;
  spec.delta = delta;
  spec.sw = sw;
  spec.count = count;
  return spec;
}

/// One streaming run (the baseline of most figures); returns total seconds.
inline double time_streaming(const TemporalEdgeList& events,
                             const WindowSpec& spec,
                             bool incremental = true) {
  StreamingOptions opts;
  opts.incremental = incremental;
  ChecksumSink sink(spec.count);
  const RunResult r = run_streaming(events, spec, sink, opts);
  return r.build_seconds + r.compute_seconds;
}

/// One offline run; returns total seconds.
inline double time_offline(const TemporalEdgeList& events,
                           const WindowSpec& spec) {
  OfflineOptions opts;
  ChecksumSink sink(spec.count);
  const RunResult r = run_offline(events, spec, sink, opts);
  return r.build_seconds + r.compute_seconds;
}

/// One postmortem run (building the representation included); returns
/// total seconds.
inline double time_postmortem(const TemporalEdgeList& events,
                              const WindowSpec& spec,
                              const PostmortemConfig& cfg) {
  ChecksumSink sink(spec.count);
  const RunResult r = run_postmortem(events, spec, sink, cfg);
  return r.build_seconds + r.compute_seconds;
}

/// Postmortem on a prebuilt representation (parameter sweeps).
inline double time_postmortem_prebuilt(const MultiWindowSet& set,
                                       const PostmortemConfig& cfg) {
  ChecksumSink sink(set.spec().count);
  const RunResult r = run_postmortem_prebuilt(set, sink, cfg);
  return r.compute_seconds;
}

inline std::string fmt_days(Timestamp seconds) {
  const double days = static_cast<double>(seconds) /
                      static_cast<double>(duration::kDay);
  if (days >= 365.0) {
    return Table::fmt(days / 365.0, 1) + "y";
  }
  return Table::fmt(days, 1) + "d";
}

}  // namespace pmpr::bench
