// Ablation: linear run scan vs per-run binary search in the temporal CSR
// time filter (DESIGN.md §5). Real event data has short runs (few repeats
// per vertex pair) where the linear scan wins; synthetic heavy-multigraph
// data has long runs where lower_bound pays. This bench sweeps run length.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace pmpr;
using namespace pmpr::bench;

namespace {

/// Events with a controlled number of repeats per vertex pair.
TemporalEdgeList repeated_events(std::size_t pairs, std::size_t repeats,
                                 Timestamp t_max, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  TemporalEdgeList events;
  const auto n = static_cast<VertexId>(std::max<std::size_t>(64, pairs / 8));
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    for (std::size_t r = 0; r < repeats; ++r) {
      events.add(u, v,
                 static_cast<Timestamp>(rng.bounded(
                     static_cast<std::uint64_t>(t_max) + 1)));
    }
  }
  events.ensure_vertices(n);
  events.sort_by_time();
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("Ablation - linear vs binary-search time scan");
  BenchArgs args;
  std::int64_t total_events = 400'000;
  args.attach(opts);
  opts.add("events", &total_events, "events per configuration");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  Table table("Ablation: temporal CSR time-filter scan strategy",
              {"run length", "linear (s)", "binsearch (s)",
               "linear/binsearch"});

  for (const std::size_t repeats : {1u, 2u, 4u, 16u, 64u, 256u}) {
    const auto pairs =
        static_cast<std::size_t>(total_events) / repeats;
    const TemporalEdgeList events =
        repeated_events(pairs, repeats, 1'000'000, 42 + repeats);
    const TemporalCsr g =
        TemporalCsr::build(events.events(), events.num_vertices(), true);

    // Query a 10%-of-range window repeatedly.
    const Timestamp ts = 450'000;
    const Timestamp te = 550'000;
    volatile std::uint64_t sink = 0;

    const auto linear = median(time_repeats(
        [&] {
          std::uint64_t count = 0;
          for (VertexId v = 0; v < g.num_vertices(); ++v) {
            g.for_each_active_neighbor(v, ts, te,
                                       [&](VertexId) { ++count; });
          }
          sink = count;
        },
        static_cast<int>(std::max<std::int64_t>(args.repeats, 3))));

    const auto binsearch = median(time_repeats(
        [&] {
          std::uint64_t count = 0;
          for (VertexId v = 0; v < g.num_vertices(); ++v) {
            g.for_each_active_neighbor_binsearch(v, ts, te,
                                                 [&](VertexId) { ++count; });
          }
          sink = count;
        },
        static_cast<int>(std::max<std::int64_t>(args.repeats, 3))));

    table.add_row({Table::fmt(static_cast<std::uint64_t>(repeats)),
                   Table::fmt(linear, 5), Table::fmt(binsearch, 5),
                   Table::fmt(binsearch > 0 ? linear / binsearch : 0.0, 2)});
  }
  print(table, args);
  return 0;
}
