// Extension bench: the postmortem representation driving the paper's §3.1
// kernel family — PageRank, weakly-connected components, k-core, Katz,
// closeness (sampled), betweenness (sampled), degree distributions —
// amortizing one MultiWindowSet build across all of them.
#include "analysis/betweenness.hpp"
#include "analysis/closeness.hpp"
#include "analysis/connected_components.hpp"
#include "analysis/degree_distribution.hpp"
#include "analysis/katz.hpp"
#include "analysis/kcore.hpp"
#include "bench_common.hpp"

using namespace pmpr;
using namespace pmpr::bench;

int main(int argc, char** argv) {
  Options opts("Extension - all analysis kernels on one representation");
  BenchArgs args;
  args.scale = 0.05;
  std::int64_t max_windows = 96;
  std::int64_t samples = 16;
  args.attach(opts);
  opts.add("max-windows", &max_windows, "cap on windows");
  opts.add("samples", &samples,
           "BFS/Brandes sources for closeness/betweenness");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const TemporalEdgeList events = load_surrogate("wiki-talk", args);
  // Windows anchored at the busy end of the growth-shaped dataset.
  const WindowSpec spec =
      last_windows(events, 90 * duration::kDay, 259'200,
                   static_cast<std::size_t>(max_windows));

  Timer build_timer;
  const MultiWindowSet set = MultiWindowSet::build(events, spec, 6);
  const double build = build_timer.seconds();

  Table table("Analysis kernels over one multi-window representation "
              "(wiki-talk, windows=" + std::to_string(spec.count) +
              ", build=" + Table::fmt(build, 3) + "s)",
              {"kernel", "time (s)", "sample headline (last window)"});

  {
    Timer t;
    ChecksumSink sink(spec.count);
    PostmortemConfig cfg;
    cfg.num_multi_windows = 6;
    run_postmortem_prebuilt(set, sink, cfg);
    table.add_row({"pagerank (SpMM, partial init)", Table::fmt(t.seconds(), 3),
                   "checksum " + Table::fmt(sink.weighted().back(), 1)});
  }
  {
    Timer t;
    const auto wcc = analysis::wcc_over_windows(set);
    table.add_row(
        {"connected components", Table::fmt(t.seconds(), 3),
         Table::fmt(static_cast<std::uint64_t>(wcc.back().num_components)) +
             " components, largest " +
             Table::fmt(static_cast<std::uint64_t>(
                 wcc.back().largest_component))});
  }
  {
    Timer t;
    const auto kc = analysis::kcore_over_windows(set);
    table.add_row({"k-core decomposition", Table::fmt(t.seconds(), 3),
                   "degeneracy " + Table::fmt(static_cast<std::uint64_t>(
                                       kc.back().max_core))});
  }
  {
    Timer t;
    const auto katz = analysis::katz_over_windows(set, {});
    table.add_row({"katz centrality", Table::fmt(t.seconds(), 3),
                   "leader v" + Table::fmt(static_cast<std::uint64_t>(
                                    katz.back().top_vertex))});
  }
  {
    Timer t;
    analysis::ClosenessParams p;
    p.sample_sources = static_cast<std::size_t>(samples);
    const auto cl = analysis::closeness_over_windows(set, p);
    table.add_row({"closeness (sampled)", Table::fmt(t.seconds(), 3),
                   "leader v" + Table::fmt(static_cast<std::uint64_t>(
                                    cl.back().top_vertex))});
  }
  {
    Timer t;
    analysis::BetweennessParams p;
    p.sample_sources = static_cast<std::size_t>(samples);
    const auto bc = analysis::betweenness_over_windows(set, p);
    table.add_row({"betweenness (sampled)", Table::fmt(t.seconds(), 3),
                   "leader v" + Table::fmt(static_cast<std::uint64_t>(
                                    bc.back().top_vertex))});
  }
  {
    Timer t;
    const auto dd = analysis::degree_over_windows(set);
    table.add_row({"degree distribution", Table::fmt(t.seconds(), 3),
                   "max degree " + Table::fmt(static_cast<std::uint64_t>(
                                       dd.back().max_degree)) +
                       ", top1% share " +
                       Table::fmt(dd.back().top1pct_share, 2)});
  }
  print(table, args);
  return 0;
}
