#!/usr/bin/env bash
# Out-of-core smoke pass (ctest target io.oocore_smoke): runs the same
# postmortem workload twice through pmpr_run — once fully in RAM, once with
# --storage out-of-core under a hard --memory-budget-mb far smaller than
# the compressed working set — and asserts that
#   * the paged run completes and its checksum line is BYTE-identical to
#     the in-RAM run's (the bit-identical-ranks guarantee, end to end),
#   * paging actually happened (evictions > 0: the budget really was
#     smaller than the working set, so the run could not just cache
#     everything),
#   * the paged run reports a peak resident payload within the budget,
#   * the *measured* (mincore page scan) store residency also honors the
#     budget, modulo kernel-readahead slack — the charge-based policy is
#     audited against ground truth, not just against itself,
#   * peak RSS stays sane (a paged run must not quietly materialize the
#     whole raw representation: its maxrss is capped relative to the
#     in-RAM run's).
# Keeps the --memory-budget-mb paging policy from silently rotting into
# "load everything anyway".
set -euo pipefail

BIN=${1:?usage: oocore_smoke.sh <pmpr_run binary> [out_dir]}
OUT=${2:-.}

IN_RAM="$OUT/OOCORE_in_ram.txt"
PAGED="$OUT/OOCORE_paged.txt"

# Scale 0.5 wiki-talk, 16 parts: a compressed working set of dozens of
# KiB against a 0 MiB budget (= page one part at a time) — every part
# acquisition beyond the first must evict.
COMMON=(--model postmortem --dataset wiki-talk --scale 0.5
        --max-windows 64 --parts 16)

"$BIN" "${COMMON[@]}" --storage in-ram > "$IN_RAM"
"$BIN" "${COMMON[@]}" --storage out-of-core --memory-budget-mb 0 > "$PAGED"

python3 - "$IN_RAM" "$PAGED" <<'EOF'
import re
import sys

def parse(path):
    fields = {}
    with open(path) as f:
        for line in f:
            if ":" in line:
                key, _, rest = line.partition(":")
                fields[key.strip()] = rest.strip()
    return fields

in_ram = parse(sys.argv[1])
paged = parse(sys.argv[2])

# 1. Bit-identical ranks: the checksum line embeds a %.17g digest of every
# window's score vector — byte equality means the paged run reproduced the
# in-RAM ranks exactly.
assert "checksum" in in_ram and "checksum" in paged, \
    f"missing checksum lines: {in_ram.keys()} / {paged.keys()}"
assert in_ram["checksum"] == paged["checksum"], (
    "paged ranks diverge from in-RAM: "
    f"{in_ram['checksum']!r} vs {paged['checksum']!r}")

# 2. The paged run actually paged.
oo = paged.get("oocore", "")
m = re.search(r"(\d+) evictions", oo)
assert m, f"no eviction count in oocore line: {oo!r}"
evictions = int(m.group(1))
assert evictions > 0, \
    f"no evictions — the budget was not smaller than the working set: {oo!r}"

# 3. Peak resident payload obeys the budget: under --memory-budget-mb 0
# the cap is the largest single part, so the peak must be well under the
# full store size.
sizes = re.search(
    r"store ([\d.]+) MiB / raw ([\d.]+) MiB .*peak resident ([\d.]+) MiB",
    oo)
assert sizes, f"cannot parse oocore sizes: {oo!r}"
store_mib, raw_mib, peak_mib = map(float, sizes.groups())
assert store_mib < raw_mib, \
    f"compressed store not smaller than raw: {oo!r}"
assert peak_mib <= store_mib, \
    f"peak resident exceeds the whole store: {oo!r}"

# 4. Measured residency honors the budget. The "residency" line carries
# the mincore-scanned peak next to the charged peak; under budget-mb 0 the
# effective budget is the largest part, i.e. the charged peak. Kernel
# readahead can legitimately fault pages beyond the advised range, so the
# measured peak gets a generous slack (one extra budget's worth or 4 MiB,
# whichever is larger) — what this catches is the store quietly going
# fully resident on stores larger than the slack.
res = paged.get("residency", "")
mres = re.search(r"measured peak (\d+) bytes .*vs charged (\d+) bytes", res)
assert mres, f"cannot parse residency line: {res!r}"
measured_b, charged_b = int(mres.group(1)), int(mres.group(2))
assert measured_b > 0, f"mincore scan saw nothing resident: {res!r}"
slack = max(charged_b, 4 * 1024 * 1024)
assert measured_b <= charged_b + slack, (
    f"measured store residency {measured_b} B blows past the "
    f"{charged_b} B budget charge even with {slack} B readahead slack")

# 5. Real memory: the paged process must not use substantially more than
# the in-RAM run (it holds strictly less graph data; allow 1.5x slack for
# allocator noise on a small-footprint run).
m_ram = re.search(r"(\d+) bytes", in_ram.get("maxrss", ""))
m_paged = re.search(r"(\d+) bytes", paged.get("maxrss", ""))
assert m_ram and m_paged, "missing maxrss lines"
rss_ram, rss_paged = int(m_ram.group(1)), int(m_paged.group(1))
assert rss_paged <= rss_ram * 1.5, (
    f"paged run RSS {rss_paged} not bounded by in-RAM run RSS {rss_ram}")

print(f"oocore smoke OK: checksum match, {evictions} evictions, "
      f"store {store_mib} MiB / raw {raw_mib} MiB, "
      f"peak resident {peak_mib} MiB "
      f"(measured {measured_b} B vs charged {charged_b} B), "
      f"RSS {rss_paged} vs {rss_ram} bytes")
EOF
