#!/usr/bin/env bash
# Formatting gate: checks .clang-format conformance over src/ and tests/
# (fixtures excluded — they exist to violate lint rules, not style).
#
# Degrades gracefully: SKIPs (exit 0) with a message when clang-format is
# not installed, so GCC-only boxes can still run the suite.
#
# Usage: ci/format.sh [--fix]      (--fix rewrites files in place)
# Registered as ctest target `ci.format` when CMake runs with
# -DPMPR_ENABLE_FORMAT=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
MODE="${1:-check}"

CLANG_FORMAT="$(command -v clang-format || true)"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-format-${v}" > /dev/null 2>&1; then
      CLANG_FORMAT="$(command -v "clang-format-${v}")"
      break
    fi
  done
fi
if [[ -z "${CLANG_FORMAT}" ]]; then
  echo "format: SKIP (clang-format not installed)"
  exit 0
fi

mapfile -t FILES < <(find "${ROOT}/src" "${ROOT}/tests" \
  -name '*.cpp' -o -name '*.hpp' \
  | grep -v -e '/tests/lint/fixtures/' -e '/tests/analyze/fixtures/' | sort)

if [[ "${MODE}" == "--fix" ]]; then
  "${CLANG_FORMAT}" -i "${FILES[@]}"
  echo "format: rewrote ${#FILES[@]} files"
  exit 0
fi

FAILED=0
for f in "${FILES[@]}"; do
  if ! "${CLANG_FORMAT}" --dry-run -Werror "${f}" > /dev/null 2>&1; then
    echo "format: ${f#${ROOT}/} needs clang-format"
    FAILED=1
  fi
done
if [[ "${FAILED}" -ne 0 ]]; then
  echo "format: run ci/format.sh --fix"
  exit 1
fi
echo "format: all ${#FILES[@]} files conform"
