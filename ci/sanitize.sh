#!/usr/bin/env bash
# Sanitizer gate for the correctness-critical layers (DESIGN.md §6).
#
#   1. ASan + UBSan: full test suite. Catches the out-of-bounds writes the
#      loaders/builders are hardened against, plus lifetime bugs in the
#      pointer-rich streaming structures.
#   2. TSan: tests/par + tests/streaming + tests/obs. Gates the hand-rolled
#      work-stealing pool (Chase-Lev deques, sleep/notify protocol), the
#      streaming runner's use of it, and the telemetry layer's per-thread
#      counter blocks / trace buffers under pool churn.
#
# Usage: ci/sanitize.sh [asan|tsan|all]      (default: all)
#
# Environment:
#   PMPR_SANITIZE_JOBS       parallel build/test jobs (default:
#                            CTEST_PARALLEL_LEVEL if set, else nproc — so
#                            `ctest -j N` does not fan out N*nproc jobs when
#                            this runs as the ci.sanitize_smoke target)
#   PMPR_SANITIZE_BUILD_DIR  build-tree root (default: <repo>/build-sanitize)
#
# Build trees are configured at -O1 -g without NDEBUG so PMPR_DCHECKs stay
# live, benches/examples are skipped, and -fno-sanitize-recover turns every
# finding into a test failure. Also registered as the ctest target
# `ci.sanitize_smoke` when CMake runs with -DPMPR_ENABLE_SANITIZE_SMOKE=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${PMPR_SANITIZE_JOBS:-${CTEST_PARALLEL_LEVEL:-$(nproc)}}"
BUILD_ROOT="${PMPR_SANITIZE_BUILD_DIR:-${ROOT}/build-sanitize}"
MODE="${1:-all}"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

build_tree() {
  local dir="$1" sanitize="$2"
  mkdir -p "${dir}"
  cmake -S "${ROOT}" -B "${dir}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS_DEBUG="-O1 -g" \
    -DPMPR_SANITIZE="${sanitize}" \
    -DPMPR_WERROR=ON \
    -DPMPR_BUILD_BENCH=OFF \
    -DPMPR_BUILD_EXAMPLES=OFF \
    > "${dir}-configure.log" 2>&1 || {
      cat "${dir}-configure.log"; return 1; }
  cmake --build "${dir}" -j "${JOBS}"
}

run_asan_ubsan() {
  local dir="${BUILD_ROOT}/asan-ubsan"
  echo "=== [1/2] asan+ubsan: configure + build ==="
  build_tree "${dir}" "asan+ubsan"
  echo "=== [1/2] asan+ubsan: full ctest suite ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_tsan() {
  local dir="${BUILD_ROOT}/tsan"
  echo "=== [2/2] thread: configure + build ==="
  build_tree "${dir}" "thread"
  echo "=== [2/2] thread: par + streaming + obs + batch-compile suites ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    -L '^(par_test|streaming_test|obs_test|batch_csr_par_test)$'
}

case "${MODE}" in
  asan) run_asan_ubsan ;;
  tsan) run_tsan ;;
  all)
    run_asan_ubsan
    run_tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "sanitize: all requested gates passed"
