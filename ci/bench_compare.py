#!/usr/bin/env python3
"""Diff a BENCH_suite.json run against a baseline and gate on regressions.

The regression half of the perf-observability loop: bench/bench_suite emits
per-case timings, histogram percentiles, and counter rates; this script
diffs them against a committed baseline with direction-aware tolerance
bands and exits non-zero when any metric regresses past its band.

Usage:
  python3 ci/bench_compare.py CURRENT.json BASELINE.json [options]
  python3 ci/bench_compare.py CURRENT.json BASELINE.json --update-baseline
  python3 ci/bench_compare.py --self-test

Tolerance bands are classified from the metric name:
  *seconds, *_ns, ns_per_*   timing      regression = slower   (+50%)
  *_pNN_ns (percentiles)     tail        regression = slower   (+100%)
  *_per_second               throughput  regression = lower    (-33%)
  *_bytes, *amplification*   footprint   regression = larger   (+25%)
  anything else              count       regression = +/-20% drift

Absolute timings do not transfer between machines, so the always-on ctest
gate (bench.regression, see ci/bench_regression.sh) exercises this script
against same-machine data and fabricated regressions; the committed
ci/bench_baseline.json serves the developer workflow on a fixed box.
--tolerance scales every band for noisier machines.
"""

import argparse
import json
import re
import sys

# Base bands; --tolerance multiplies the allowed drift fraction.
TIMING_SLOWDOWN = 0.50     # timing may grow up to +50%
TAIL_SLOWDOWN = 1.00       # tail percentiles may grow up to +100%
THROUGHPUT_DROP = 0.33     # throughput may drop up to -33%
FOOTPRINT_GROWTH = 0.25    # memory/IO footprints may grow up to +25%
COUNT_DRIFT = 0.20         # counts may drift +/-20%

# meta fields that must match exactly: diffing runs of different shapes
# compares apples to oranges no matter the band.
META_EXACT = ("schema_version", "scale", "max_windows")


def classify(metric):
    """Returns the band kind for a metric name."""
    if metric.endswith("_per_second"):
        return "throughput"
    if re.search(r"_p\d+_ns$", metric):
        # Tail percentiles (p50/p99 of per-window latency histograms) are
        # the noisiest exports: one descheduled window moves them a full
        # log-bucket or two. Wider band, same direction.
        return "tail"
    if (
        metric.endswith("seconds")
        or metric.endswith("_ns")
        or metric.startswith("ns_per_")
        or "ns_per_" in metric
    ):
        return "timing"
    if metric.endswith("_bytes") or "amplification" in metric:
        # Memory/IO footprints (resident peaks, read amplification) only
        # regress in one direction — using *less* memory or decoding fewer
        # bytes per delivered rank is a win, never a failure.
        return "footprint"
    return "count"


def check_metric(metric, current, baseline, tolerance):
    """Returns (ok, ratio, band_text) for one metric value pair."""
    kind = classify(metric)
    if baseline == 0:
        # Nothing to ratio against; only a zero-to-nonzero timing jump is
        # meaningful, and it has no scale — treat as informational.
        return True, float("inf") if current else 1.0, f"{kind} (zero base)"
    ratio = current / baseline
    if kind == "timing":
        limit = 1.0 + TIMING_SLOWDOWN * tolerance
        return ratio <= limit, ratio, f"timing <= {limit:.2f}x"
    if kind == "tail":
        limit = 1.0 + TAIL_SLOWDOWN * tolerance
        return ratio <= limit, ratio, f"tail <= {limit:.2f}x"
    if kind == "throughput":
        limit = 1.0 - min(0.99, THROUGHPUT_DROP * tolerance)
        return ratio >= limit, ratio, f"throughput >= {limit:.2f}x"
    if kind == "footprint":
        limit = 1.0 + FOOTPRINT_GROWTH * tolerance
        return ratio <= limit, ratio, f"footprint <= {limit:.2f}x"
    drift = COUNT_DRIFT * tolerance
    ok = (1.0 - min(0.99, drift)) <= ratio <= (1.0 + drift)
    return ok, ratio, f"count within +/-{drift:.0%}"


def compare(current, baseline, tolerance=1.0, out=sys.stdout):
    """Diffs two suite dicts; returns a list of failure strings."""
    failures = []

    cur_meta = current.get("meta", {})
    base_meta = baseline.get("meta", {})
    for field in META_EXACT:
        if cur_meta.get(field) != base_meta.get(field):
            failures.append(
                f"meta.{field}: current={cur_meta.get(field)} "
                f"baseline={base_meta.get(field)} — runs are not comparable"
            )
    if failures:
        for f in failures:
            print(f"FAIL  {f}", file=out)
        return failures

    for record, base_fields in baseline.items():
        if record == "meta":
            continue
        cur_fields = current.get(record)
        if cur_fields is None:
            failures.append(f"{record}: missing from current run")
            print(f"FAIL  {record}: record missing", file=out)
            continue
        for metric, base_value in base_fields.items():
            if metric == "counters" or not isinstance(
                base_value, (int, float)
            ):
                continue
            if metric not in cur_fields:
                failures.append(f"{record}.{metric}: missing from current run")
                print(f"FAIL  {record}.{metric}: metric missing", file=out)
                continue
            cur_value = cur_fields[metric]
            ok, ratio, band = check_metric(
                metric, cur_value, base_value, tolerance
            )
            status = "ok  " if ok else "FAIL"
            print(
                f"{status}  {record}.{metric}: {cur_value:.6g} vs "
                f"{base_value:.6g}  ({ratio:.3f}x, {band})",
                file=out,
            )
            if not ok:
                failures.append(
                    f"{record}.{metric}: {ratio:.3f}x outside band ({band})"
                )

    for record in current:
        if record != "meta" and record not in baseline:
            print(f"note  {record}: new record (not in baseline)", file=out)
    return failures


class _Sink:
    def write(self, _):
        pass


def self_test():
    """Validates the comparison logic against fabricated runs."""
    base = {
        "meta": {"schema_version": 1, "scale": 0.02, "max_windows": 64,
                 "repeats": 3},
        "fig5.postmortem": {
            "seconds": 1.0,
            "ns_per_window": 1000.0,
            "iterate_p99_ns": 5000.0,
            "edges_per_second": 1e8,
            "total_iterations": 200,
        },
        "micro.spmv_ref": {"ns_per_iteration": 100.0},
        "io.oocore_paging": {
            "resident_peak_bytes": 1.0e6,
            "read_amplification": 4.0,
        },
    }
    sink = _Sink()

    def run(current, tolerance=1.0):
        return compare(current, base, tolerance, out=sink)

    def clone(**overrides):
        cur = json.loads(json.dumps(base))
        for dotted, value in overrides.items():
            record, metric = dotted.rsplit("/", 1)
            cur[record][metric] = value
        return cur

    checks = [
        # Identity must pass: a run compared against itself is never a
        # regression, whatever the machine.
        ("identity passes", run(clone()), False),
        # Within-band noise passes; past-band slowdowns fail.
        ("mild slowdown passes", run(clone(**{"fig5.postmortem/seconds": 1.3})),
         False),
        ("doubled seconds fails", run(clone(**{"fig5.postmortem/seconds": 2.0})),
         True),
        # Tail percentiles get the wider band: 2x is within it, 2.5x not.
        ("doubled p99 passes (tail band)",
         run(clone(**{"fig5.postmortem/iterate_p99_ns": 9000.0})), False),
        ("2.5x p99 fails",
         run(clone(**{"fig5.postmortem/iterate_p99_ns": 12500.0})), True),
        ("doubled micro ns fails",
         run(clone(**{"micro.spmv_ref/ns_per_iteration": 200.0})), True),
        # Direction-aware: faster timings and higher throughput are never
        # regressions.
        ("halved seconds passes",
         run(clone(**{"fig5.postmortem/seconds": 0.5})), False),
        ("doubled throughput passes",
         run(clone(**{"fig5.postmortem/edges_per_second": 2e8})), False),
        ("halved throughput fails",
         run(clone(**{"fig5.postmortem/edges_per_second": 5e7})), True),
        # Footprints are one-sided: growth past the band fails, shrinking
        # is always a win.
        ("doubled resident peak fails",
         run(clone(**{"io.oocore_paging/resident_peak_bytes": 2.0e6})), True),
        ("halved resident peak passes",
         run(clone(**{"io.oocore_paging/resident_peak_bytes": 0.5e6})), False),
        ("doubled read amplification fails",
         run(clone(**{"io.oocore_paging/read_amplification": 8.0})), True),
        ("reduced read amplification passes",
         run(clone(**{"io.oocore_paging/read_amplification": 1.5})), False),
        # Counts drift both ways.
        ("iteration blowup fails",
         run(clone(**{"fig5.postmortem/total_iterations": 400})), True),
        ("iteration collapse fails",
         run(clone(**{"fig5.postmortem/total_iterations": 100})), True),
        # --tolerance widens bands.
        ("tolerance widens band",
         run(clone(**{"fig5.postmortem/seconds": 2.0}), tolerance=3.0), False),
        # Shrinking coverage is itself a regression.
        ("missing record fails",
         run({k: v for k, v in clone().items() if k != "micro.spmv_ref"}),
         True),
        # Mismatched runs are not comparable at all.
        ("scale mismatch fails",
         run({**clone(), "meta": {**base["meta"], "scale": 0.5}}), True),
    ]

    bad = [name for name, failures, expect_fail in checks
           if bool(failures) != expect_fail]
    if bad:
        for name in bad:
            print(f"self-test FAILED: {name}", file=sys.stderr)
        return 1
    print(f"bench_compare self-test OK: {len(checks)} checks")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_suite.json runs with tolerance bands."
    )
    parser.add_argument("current", nargs="?", help="fresh BENCH_suite.json")
    parser.add_argument("baseline", nargs="?", help="baseline to diff against")
    parser.add_argument(
        "--tolerance", type=float, default=1.0,
        help="multiplier on every tolerance band (default 1.0)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite BASELINE with CURRENT instead of comparing",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="validate the comparison logic against fabricated runs",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.current or not args.baseline:
        parser.error("CURRENT and BASELINE are required unless --self-test")

    with open(args.current) as f:
        current = json.load(f)

    if args.update_baseline:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = compare(current, baseline, args.tolerance)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
