#!/usr/bin/env bash
# Telemetry smoke pass (ctest target obs.smoke): runs the documented
# pmpr_run example on a tiny surrogate with --trace, --metrics,
# --profile, and --flight-recorder, then validates the emitted JSON
# shapes — the Chrome trace-event file that ui.perfetto.dev loads (X
# spans, C counter tracks from the sampling profiler, M process/thread
# metadata), the pmpr-metrics-v4 run record (counters, per-phase latency
# histograms, per-tag memory accounting, sampler summary, diagnostics),
# and the pmpr-blackbox-v1 flight-recorder dump. Keeps the observability
# layer's export formats from silently rotting.
set -euo pipefail

BIN=${1:?usage: obs_smoke.sh <pmpr_run binary> [out_dir]}
OUT=${2:-.}

TRACE="$OUT/OBS_trace.json"
METRICS="$OUT/OBS_metrics.json"
BLACKBOX="$OUT/OBS_blackbox.json"

"$BIN" --model postmortem --dataset wiki-talk --scale 0.002 \
  --max-windows 16 --trace "$TRACE" --metrics "$METRICS" \
  --profile --profile-interval-ms 1 --flight-recorder "$BLACKBOX"

python3 - "$TRACE" "$METRICS" "$BLACKBOX" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

assert trace.get("displayTimeUnit") == "ms", "trace: bad displayTimeUnit"
events = trace["traceEvents"]
assert isinstance(events, list) and events, "trace: no events"
names = set()
counter_tracks = set()
thread_names = set()
for ev in events:
    assert ev["ph"] in ("X", "C", "M"), f"trace: unexpected phase {ev}"
    assert isinstance(ev["name"], str) and ev["name"], f"trace: no name {ev}"
    if ev["ph"] == "X":
        assert ev["cat"] == "pmpr", f"trace: unexpected category {ev}"
        assert ev["ts"] >= 0 and ev["dur"] >= 0, f"trace: bad timing {ev}"
        assert isinstance(ev["tid"], int) and isinstance(ev["pid"], int)
        names.add(ev["name"])
    elif ev["ph"] == "C":
        assert isinstance(ev["args"]["value"], (int, float)), \
            f"trace: counter without numeric value {ev}"
        counter_tracks.add(ev["name"])
    else:  # M
        if ev["name"] == "thread_name":
            thread_names.add(ev["args"]["name"])
        else:
            assert ev["name"] == "process_name", f"trace: odd metadata {ev}"
            assert ev["args"]["name"] == "pmpr"
for required in ("postmortem.build_representation", "postmortem.run"):
    assert required in names, f"trace: missing span {required}; got {names}"
# Metadata must label the tracks Perfetto renders: the process, the main
# thread, and the profiler's own thread.
for required in ("main", "obs.sampler"):
    assert required in thread_names, \
        f"trace: missing thread_name {required}; got {thread_names}"
# The sampling profiler must have emitted its scheduler counter tracks,
# and (v3) the memory pillar's RSS + per-tag charge tracks. The oocore
# mem.oocore_resident/mem.budget pair only appears for --storage
# out-of-core runs (no store probe registers here), so it is not required.
for required in ("sched.total_queued", "sched.parked_workers",
                 "sched.steal_success_rate", "progress.windows_processed",
                 "mem.rss", "mem.tagged.graph", "mem.tagged.compiled_kernel",
                 "mem.tagged.decode_scratch", "mem.tagged.oocore_payload",
                 "mem.tagged.obs", "mem.tagged.other"):
    assert required in counter_tracks, \
        f"trace: missing counter track {required}; got {counter_tracks}"
# Metadata events precede the payload so tracks are labelled on load.
phases = [ev["ph"] for ev in events]
assert phases.index("M") < phases.index("X"), "trace: metadata after spans"

with open(sys.argv[2]) as f:
    metrics = json.load(f)

assert metrics["schema"] == "pmpr-metrics-v4", "metrics: bad schema tag"
for field in ("build_seconds", "compute_seconds", "total_seconds"):
    assert metrics[field] >= 0, f"metrics: bad {field}"
assert metrics["num_windows"] > 0, "metrics: no windows"
assert metrics["total_iterations"] > 0, "metrics: no iterations"
assert metrics["peak_memory_bytes"] > 0, "metrics: no memory estimate"
counters = metrics["counters"]
assert counters["edges_traversed"] > 0, "metrics: no edges counted"
assert counters["windows_processed"] == metrics["num_windows"]
# sampler_ticks is a delta over the run interval; on a millisecond-long
# smoke run the ticks may land just outside it, so only presence is
# asserted here (the sampler section below proves the profiler ran).
assert "sampler_ticks" in counters, "metrics: sampler_ticks missing"
assert counters["histogram_records"] > 0, "metrics: no histogram records"

# SIMD dispatch: the run must record which ISA its compiled SpMM sweeps
# resolved to, and the matching per-ISA sweep counter must have fired
# (the postmortem model defaults to compiled SpMM kernels).
assert metrics["simd_isa"] in ("scalar", "avx2", "avx512"), \
    f"metrics: bad simd_isa {metrics.get('simd_isa')!r}"
for isa in ("scalar", "avx2", "avx512"):
    assert f"simd_sweep_{isa}" in counters, \
        f"metrics: simd_sweep_{isa} counter missing"
assert counters[f"simd_sweep_{metrics['simd_isa']}"] > 0, \
    "metrics: no sweeps counted on the resolved ISA"

# v2: per-phase latency histograms. Every processed window passed through
# build/iterate/sink; percentiles are ordered and bounded by the max.
histograms = metrics["histograms"]
for phase in ("build", "iterate", "sink"):
    h = histograms[phase]
    assert h["count"] > 0, f"metrics: empty {phase} histogram"
    assert h["sum_ns"] > 0, f"metrics: zero {phase} sum"
    assert h["p50_ns"] <= h["p90_ns"] <= h["p99_ns"], \
        f"metrics: unordered {phase} percentiles {h}"
    assert h["max_ns"] >= h["p99_ns"] * 8 / 9, \
        f"metrics: {phase} max below p99's bucket {h}"
    assert h["mean_ns"] > 0, f"metrics: zero {phase} mean"

# v3: per-tag memory accounting. pmpr_run enables the accounting gate, so
# the representation (graph) and compiled kernels must show nonzero peaks;
# the measured total peak backs peak_memory_bytes while the estimate stays
# reportable next to it. This in-RAM run decodes nothing, so
# read_amplification is 0 but the field must exist.
memory = metrics["memory"]
tags = memory["tags"]
for tag in ("graph", "compiled_kernel", "decode_scratch", "oocore_payload",
            "obs", "other"):
    t = tags[tag]
    for field in ("alloc_bytes", "free_bytes", "live_bytes", "peak_bytes"):
        assert field in t, f"metrics: memory tag {tag} missing {field}"
    assert t["peak_bytes"] >= max(0, t["live_bytes"]), \
        f"metrics: {tag} peak below live {t}"
assert tags["graph"]["peak_bytes"] > 0, "metrics: no graph bytes charged"
assert tags["compiled_kernel"]["peak_bytes"] > 0, \
    "metrics: no compiled-kernel bytes charged"
assert memory["peak_bytes_measured"] > 0, "metrics: no measured peak"
assert memory["peak_bytes_estimate"] > 0, "metrics: no estimated peak"
assert memory["read_amplification"] >= 0, "metrics: bad read amplification"
assert metrics["peak_memory_bytes"] == memory["peak_bytes_measured"], \
    "metrics: peak_memory_bytes not backed by the measured watermark"

# v2: sampler summary from the --profile run.
sampler = metrics["sampler"]
assert sampler["num_samples"] > 0, "metrics: sampler took no samples"
assert sampler["interval_ms"] == 1, "metrics: wrong sampler interval"
assert sampler["max_parked_workers"] >= 0

# v4: failure-diagnostics section. --flight-recorder keeps the recorder on,
# so it must have recorded events from at least the main thread; no
# watchdog ran and no crash handler was installed here.
diag = metrics["diagnostics"]
fr = diag["flight_recorder"]
assert fr["enabled"] is True, "metrics: flight recorder not enabled"
assert fr["records"] > 0, "metrics: flight recorder recorded nothing"
assert fr["threads"] >= 1, "metrics: no recorder threads"
assert fr["dropped"] >= 0 and fr["drains"] >= 0
wd = diag["watchdog"]
for field in ("arms", "fires", "max_heartbeat_age_ns", "last_stalled_phase"):
    assert field in wd, f"metrics: watchdog section missing {field}"
assert wd["fires"] == 0, "metrics: watchdog fired on a healthy run"
assert diag["crash_handler_installed"] is False
assert isinstance(diag["heartbeats"], list)

windows = metrics["windows"]
assert len(windows) == metrics["num_windows"], "metrics: windows mismatch"
for w in windows:
    assert w["iterations"] > 0, f"metrics: window without iterations {w}"
    assert w["final_residual"] >= 0, f"metrics: bad residual {w}"
    assert len(w["residuals"]) == w["iterations"], \
        f"metrics: trajectory length mismatch {w}"

# pmpr-blackbox-v1: the flight recorder's retained events. The serial
# smoke run records window phase spans on the main thread at minimum.
with open(sys.argv[3]) as f:
    box = json.load(f)
assert box["schema"] == "pmpr-blackbox-v1", "blackbox: bad schema tag"
assert box["ring_capacity"] > 0, "blackbox: bad ring capacity"
stats = box["stats"]
assert stats["records"] > 0, "blackbox: nothing recorded"
assert stats["threads"] >= 1, "blackbox: no threads"
assert isinstance(box["last_error"], str)
assert box["threads"], "blackbox: empty thread table"
for t in box["threads"]:
    for field in ("tid", "label", "records"):
        assert field in t, f"blackbox: thread entry missing {field} {t}"
assert box["events"], "blackbox: no retained events"
kinds = set()
for ev in box["events"]:
    for field in ("t_ns", "tid", "kind", "name", "a", "b"):
        assert field in ev, f"blackbox: event missing {field} {ev}"
    kinds.add(ev["kind"])
assert "span_begin" in kinds and "span_end" in kinds, \
    f"blackbox: no phase spans retained; got {kinds}"
assert "window_done" in kinds, f"blackbox: no window_done events; got {kinds}"

print(f"obs smoke OK: {len(events)} trace events "
      f"({len(counter_tracks)} counter tracks), "
      f"{metrics['num_windows']} windows, "
      f"{sampler['num_samples']} profiler samples, "
      f"{len(box['events'])} blackbox events in {sys.argv[2]}")
EOF
