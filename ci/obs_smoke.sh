#!/usr/bin/env bash
# Telemetry smoke pass (ctest target obs.smoke): runs the documented
# pmpr_run example on a tiny surrogate with --trace and --metrics, then
# validates both emitted JSON shapes — the Chrome trace-event file that
# ui.perfetto.dev loads, and the pmpr-metrics-v1 run record. Keeps the
# observability layer's two export formats from silently rotting.
set -euo pipefail

BIN=${1:?usage: obs_smoke.sh <pmpr_run binary> [out_dir]}
OUT=${2:-.}

TRACE="$OUT/OBS_trace.json"
METRICS="$OUT/OBS_metrics.json"

"$BIN" --model postmortem --dataset wiki-talk --scale 0.002 \
  --max-windows 16 --trace "$TRACE" --metrics "$METRICS"

python3 - "$TRACE" "$METRICS" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

assert trace.get("displayTimeUnit") == "ms", "trace: bad displayTimeUnit"
events = trace["traceEvents"]
assert isinstance(events, list) and events, "trace: no events"
names = set()
for ev in events:
    assert ev["ph"] == "X", f"trace: unexpected phase {ev}"
    assert ev["cat"] == "pmpr", f"trace: unexpected category {ev}"
    assert isinstance(ev["name"], str) and ev["name"], f"trace: no name {ev}"
    assert ev["ts"] >= 0 and ev["dur"] >= 0, f"trace: bad timing {ev}"
    assert isinstance(ev["tid"], int) and isinstance(ev["pid"], int)
    names.add(ev["name"])
for required in ("postmortem.build_representation", "postmortem.run"):
    assert required in names, f"trace: missing span {required}; got {names}"

with open(sys.argv[2]) as f:
    metrics = json.load(f)

assert metrics["schema"] == "pmpr-metrics-v1", "metrics: bad schema tag"
for field in ("build_seconds", "compute_seconds", "total_seconds"):
    assert metrics[field] >= 0, f"metrics: bad {field}"
assert metrics["num_windows"] > 0, "metrics: no windows"
assert metrics["total_iterations"] > 0, "metrics: no iterations"
assert metrics["peak_memory_bytes"] > 0, "metrics: no memory estimate"
counters = metrics["counters"]
assert counters["edges_traversed"] > 0, "metrics: no edges counted"
assert counters["windows_processed"] == metrics["num_windows"]
windows = metrics["windows"]
assert len(windows) == metrics["num_windows"], "metrics: windows mismatch"
for w in windows:
    assert w["iterations"] > 0, f"metrics: window without iterations {w}"
    assert w["final_residual"] >= 0, f"metrics: bad residual {w}"
    assert len(w["residuals"]) == w["iterations"], \
        f"metrics: trajectory length mismatch {w}"

print(f"obs smoke OK: {len(events)} trace events, "
      f"{metrics['num_windows']} windows in {sys.argv[2]}")
EOF
