#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md "Static analysis"):
#
#   1. pmpr-lint (ci/pmpr_lint.py): project-specific concurrency rules —
#      ordering-rationale comments on non-seq_cst atomics, no raw
#      std::mutex/std::thread outside src/par/, reinterpret_cast confined
#      to binary IO, no naked new/delete outside ws_deque.hpp.
#   2. clang-tidy over every src/ translation unit, driven by the
#      compile_commands.json of a build tree (configured here if absent).
#      Fails on any diagnostic (.clang-tidy sets WarningsAsErrors: '*').
#
# Degrades gracefully: when clang-tidy (or a Clang-configured build) is
# unavailable the tidy stage is SKIPPED with a message rather than failed,
# so the gate is usable on GCC-only boxes while still biting in CI images
# that carry Clang. pmpr-lint always runs (pure Python).
#
# Usage: ci/lint.sh [build-dir]     (default: <repo>/build-lint)
# Registered as ctest target `ci.lint` when CMake runs with
# -DPMPR_ENABLE_LINT=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build-lint}"
JOBS="${PMPR_LINT_JOBS:-$(nproc)}"

# ---- 1. pmpr-lint -----------------------------------------------------------
PYTHON="$(command -v python3 || command -v python || true)"
if [[ -z "${PYTHON}" ]]; then
  echo "lint: SKIP pmpr-lint (no python interpreter found)" >&2
else
  echo "=== [1/2] pmpr-lint over src/ ==="
  "${PYTHON}" "${ROOT}/ci/pmpr_lint.py" --root "${ROOT}" "${ROOT}/src"
fi

# ---- 2. clang-tidy ----------------------------------------------------------
CLANG_TIDY="$(command -v clang-tidy || true)"
if [[ -z "${CLANG_TIDY}" ]]; then
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${v}" > /dev/null 2>&1; then
      CLANG_TIDY="$(command -v "clang-tidy-${v}")"
      break
    fi
  done
fi
if [[ -z "${CLANG_TIDY}" ]]; then
  echo "lint: SKIP clang-tidy (not installed; install clang-tidy to enable" \
       "the full gate)"
  echo "lint: pmpr-lint gate passed"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "=== [2/2] configuring ${BUILD_DIR} for compile_commands.json ==="
  cmake -S "${ROOT}" -B "${BUILD_DIR}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPMPR_BUILD_BENCH=OFF \
    -DPMPR_BUILD_EXAMPLES=OFF \
    -DPMPR_WERROR=ON \
    > "${BUILD_DIR}-configure.log" 2>&1 || {
      cat "${BUILD_DIR}-configure.log"; exit 1; }
fi

echo "=== [2/2] clang-tidy over src/ (this may take a while) ==="
mapfile -t SOURCES < <(find "${ROOT}/src" -name '*.cpp' | sort)
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${CLANG_TIDY}" -p "${BUILD_DIR}" \
    -j "${JOBS}" -quiet "${SOURCES[@]}"
else
  "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
fi

echo "lint: all gates passed"
