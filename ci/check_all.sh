#!/usr/bin/env bash
# check_all: every static gate in one run, with a summary table.
#
#   format            ci/format.sh (clang-format conformance)
#   pmpr-lint         ci/pmpr_lint.py over src/ + its fixture self-test
#   analyze.layers    ci/pmpr_analyze.py --pass layers (module DAG)
#   analyze.locks     ci/pmpr_analyze.py --pass locks (lock-order model)
#   analyze.hygiene   ci/pmpr_analyze.py --pass hygiene (header discipline)
#   analyze.fixtures  tests/analyze/run_fixture_tests.py
#   clang-tidy        ci/lint.sh (which re-runs pmpr-lint cheaply first)
#   obs.smoke         ci/obs_smoke.sh (trace/metrics/blackbox JSON shapes)
#   crash.smoke       ci/crash_smoke.sh (crash report, watchdog, recorder
#                     differential)
#
# Every gate runs even after a failure, so one invocation reports the full
# damage; the exit status is non-zero if any gate failed. Gates whose tool
# is missing (clang-format / clang-tidy) report SKIP, matching the
# individual scripts' graceful degradation; the two runtime smokes report
# SKIP when the build dir has no binaries (static gates never require a
# build).
#
# Usage: ci/check_all.sh [build-dir]
#   build-dir (default <repo>/build-lint) supplies compile_commands.json
#   for clang-tidy and the analyzer's freshness cross-check.
#
# Registered as the opt-in ctest target `ci.check_all` when CMake runs
# with -DPMPR_ENABLE_CHECK_ALL=ON.
set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build-lint}"
PYTHON="$(command -v python3 || command -v python || true)"

NAMES=()
STATUSES=()
TIMES=()
FAILED=0

run_gate() {
  local name="$1"
  shift
  echo
  echo "=== ${name} ==="
  local start end status out rc
  start=$(date +%s)
  out="$("$@" 2>&1)"
  rc=$?
  end=$(date +%s)
  echo "${out}"
  if [[ ${rc} -ne 0 ]]; then
    status="FAIL"
    FAILED=1
  elif grep -q "SKIP" <<< "${out}"; then
    status="SKIP"
  else
    status="PASS"
  fi
  NAMES+=("${name}")
  STATUSES+=("${status}")
  TIMES+=("$((end - start))")
}

run_gate "format" bash "${ROOT}/ci/format.sh"

if [[ -n "${PYTHON}" ]]; then
  run_gate "pmpr-lint" "${PYTHON}" "${ROOT}/ci/pmpr_lint.py" \
    --root "${ROOT}" --verbose "${ROOT}/src"
  run_gate "lint.fixtures" "${PYTHON}" \
    "${ROOT}/tests/lint/run_fixture_tests.py" --root "${ROOT}"
  for pass in layers locks hygiene; do
    run_gate "analyze.${pass}" "${PYTHON}" "${ROOT}/ci/pmpr_analyze.py" \
      --root "${ROOT}" --pass "${pass}" \
      --compile-commands "${BUILD_DIR}/compile_commands.json" \
      --json "${BUILD_DIR}/ANALYZE_${pass}.json"
  done
  run_gate "analyze.fixtures" "${PYTHON}" \
    "${ROOT}/tests/analyze/run_fixture_tests.py" --root "${ROOT}"
else
  echo "check_all: SKIP python gates (no interpreter found)" >&2
fi

run_gate "clang-tidy" bash "${ROOT}/ci/lint.sh" "${BUILD_DIR}"

# Runtime smokes ride along when the build tree has the binaries: an
# export format or crash report that stops parsing is a lint-class
# regression even though catching it needs a run.
smoke_or_skip() {
  local name="$1" script="$2"
  shift 2
  local bin
  for bin in "$@"; do
    if [[ ! -x "${bin}" ]]; then
      run_gate "${name}" echo \
        "${name}: SKIP (${bin} not built; configure+build ${BUILD_DIR})"
      return
    fi
  done
  run_gate "${name}" bash "${script}" "$@" "${BUILD_DIR}"
}

if [[ -n "${PYTHON}" ]]; then
  smoke_or_skip "obs.smoke" "${ROOT}/ci/obs_smoke.sh" \
    "${BUILD_DIR}/examples/pmpr_run"
  smoke_or_skip "crash.smoke" "${ROOT}/ci/crash_smoke.sh" \
    "${BUILD_DIR}/tests/crash_probe" "${BUILD_DIR}/examples/pmpr_run"
fi

echo
echo "== check_all summary =="
printf '%-18s %-6s %8s\n' "gate" "result" "seconds"
printf '%-18s %-6s %8s\n' "----" "------" "-------"
for i in "${!NAMES[@]}"; do
  printf '%-18s %-6s %8s\n' "${NAMES[$i]}" "${STATUSES[$i]}" "${TIMES[$i]}"
done

if [[ ${FAILED} -ne 0 ]]; then
  echo "check_all: FAILED (see table above)"
  exit 1
fi
echo "check_all: all gates passed (SKIPs are missing optional tools)"
