#!/usr/bin/env bash
# Failure-diagnostics smoke pass (ctest target obs.crash_smoke): proves the
# postmortem pillar actually works at failure time, not just in unit tests.
#
#   1. crash_probe segv  — an induced SIGSEGV mid-run must kill the process
#      with the real signal AND leave a parseable pmpr-crash-<pid>.json
#      (kind "signal", SIGSEGV identity, counter snapshot, >=1 retained
#      flight-recorder event).
#   2. crash_probe stall — an injected sink sleep must make the watchdog
#      fire within its detection budget and write pmpr-watchdog-<pid>.json
#      naming the stalled phase (window.sink).
#   3. pmpr_run with and without --flight-recorder on one thread must print
#      bit-identical checksums: the recorder observes, never perturbs.
set -euo pipefail

PROBE=${1:?usage: crash_smoke.sh <crash_probe binary> <pmpr_run binary> [out_dir]}
RUN=${2:?usage: crash_smoke.sh <crash_probe binary> <pmpr_run binary> [out_dir]}
OUT=${3:-.}

WORK="$OUT/crash_smoke"
rm -rf "$WORK"
mkdir -p "$WORK/segv" "$WORK/stall"

# --- 1. Induced SIGSEGV -> crash report ------------------------------------
rc=0
"$PROBE" segv "$WORK/segv" || rc=$?
if [ "$rc" -eq 0 ] || [ "$rc" -eq 7 ]; then
  echo "crash_smoke: segv probe did not die by signal (rc=$rc)" >&2
  exit 1
fi

python3 - "$WORK/segv" <<'EOF'
import glob
import json
import sys

reports = glob.glob(sys.argv[1] + "/pmpr-crash-*.json")
assert len(reports) == 1, f"crash: expected one report, got {reports}"
with open(reports[0]) as f:
    crash = json.load(f)
assert crash["schema"] == "pmpr-crash-v1", "crash: bad schema tag"
assert crash["kind"] == "signal", "crash: bad kind"
assert crash["signal_name"] == "SIGSEGV", f"crash: wrong signal {crash}"
assert crash["pid"] > 0 and crash["t_ns"] >= 0
counters = crash["counters"]
assert counters, "crash: no counter snapshot"
assert counters["windows_processed"] > 0, \
    "crash: no windows processed before the fault"
assert crash["threads"], "crash: no thread table"
events = crash["events"]
assert len(events) >= 1, "crash: no flight-recorder events retained"
kinds = {ev["kind"] for ev in events}
assert "window_done" in kinds or "span_begin" in kinds, \
    f"crash: no run breadcrumbs in the ring; got {kinds}"
assert "memory" in crash and "heartbeats" in crash
print(f"crash_smoke segv OK: {reports[0]} with {len(events)} ring events")
EOF

# --- 2. Induced stall -> watchdog dump -------------------------------------
WATCHDOG_MS=300
"$PROBE" stall "$WORK/stall" "$WATCHDOG_MS"

python3 - "$WORK/stall" "$WATCHDOG_MS" <<'EOF'
import glob
import json
import sys

dumps = glob.glob(sys.argv[1] + "/pmpr-watchdog-*.json")
assert len(dumps) == 1, f"stall: expected one dump, got {dumps}"
with open(dumps[0]) as f:
    dump = json.load(f)
assert dump["schema"] == "pmpr-crash-v1", "stall: bad schema tag"
assert dump["kind"] == "watchdog_stall", "stall: bad kind"
assert dump["stalled_phase"] == "window.sink", \
    f"stall: wrong phase {dump['stalled_phase']!r}"
threshold_ns = int(sys.argv[2]) * 1_000_000
assert dump["threshold_ns"] == threshold_ns, f"stall: wrong threshold {dump}"
# Detection budget: threshold + check interval (threshold/4 by default),
# asserted against the acceptance bound of 2x the threshold.
assert threshold_ns < dump["stall_age_ns"] < 2 * threshold_ns, \
    f"stall: fire outside the detection budget ({dump['stall_age_ns']} ns)"
assert dump["events"], "stall: no flight-recorder events in the dump"
hb = dump["heartbeats"]
assert any(b["phase"] == "window.sink" for b in hb), \
    f"stall: heartbeat table does not show the stalled phase; got {hb}"
print(f"crash_smoke stall OK: {dumps[0]} fired at "
      f"{dump['stall_age_ns'] / 1e6:.0f} ms on {dump['stalled_phase']}")
EOF

# --- 3. Recorder on/off ranks must be bit-identical ------------------------
ARGS=(--model postmortem --dataset wiki-talk --scale 0.002 --max-windows 16)
PMPR_THREADS=1 "$RUN" "${ARGS[@]}" > "$WORK/plain.txt"
PMPR_THREADS=1 "$RUN" "${ARGS[@]}" \
  --flight-recorder "$WORK/blackbox.json" > "$WORK/recorded.txt"
PLAIN=$(grep '^checksum' "$WORK/plain.txt")
RECORDED=$(grep '^checksum' "$WORK/recorded.txt")
if [ "$PLAIN" != "$RECORDED" ]; then
  echo "crash_smoke: flight recorder perturbed the ranks" >&2
  echo "  off: $PLAIN" >&2
  echo "  on : $RECORDED" >&2
  exit 1
fi
echo "crash_smoke differential OK: recorder on/off agree ($PLAIN)"
echo "crash smoke OK"
