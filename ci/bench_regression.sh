#!/usr/bin/env bash
# Perf-regression gate (ctest target bench.regression): runs the curated
# bench suite at a tiny scale, then validates the whole gate machinery
# end-to-end on this machine's own numbers — absolute timings do not
# transfer between boxes, so the always-on test never diffs against the
# committed baseline. It proves instead that:
#   1. bench_compare.py's band logic passes its fabricated self-test,
#   2. BENCH_suite.json has the expected records with sane values,
#   3. a run compared against itself passes, and
#   4. a fabricated regression (doubled timings) fails.
# The committed ci/bench_baseline.json serves the fixed-box dev workflow:
#   python3 ci/bench_compare.py build/BENCH_suite.json ci/bench_baseline.json
set -euo pipefail

BIN=${1:?usage: bench_regression.sh <bench_suite binary> [out_dir]}
OUT=${2:-.}
CI_DIR=$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)
SUITE="$OUT/BENCH_suite.json"

# 1. Band logic self-test (no files needed).
python3 "$CI_DIR/bench_compare.py" --self-test

# 2. Run the suite small and validate the emitted shape.
"$BIN" --scale=0.002 --max-windows=16 --micro-iters=20 --json="$SUITE" \
  >/dev/null

python3 - "$SUITE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    suite = json.load(f)

required = {
    "meta": ["schema_version", "scale", "repeats", "max_windows"],
    "fig5.offline": ["seconds", "ns_per_window"],
    "fig5.streaming": ["seconds", "ns_per_window"],
    "fig5.postmortem": ["seconds", "ns_per_window", "iterate_p50_ns",
                        "iterate_p99_ns", "edges_per_second",
                        "total_iterations"],
    "fig6.partial_on": ["seconds"],
    "fig6.partial_off": ["seconds"],
    "fig8.y2": ["compute_seconds"],
    "fig8.y8": ["compute_seconds"],
    "micro.spmv_ref": ["ns_per_iteration"],
    "micro.spmv_compiled": ["ns_per_iteration"],
    "micro.spmm16_compiled": ["ns_per_iteration"],
    "micro.spmm64_compiled": ["ns_per_iteration", "ns_per_lane"],
    "micro.spmm128_compiled": ["ns_per_iteration", "ns_per_lane"],
    "micro.spmm512_compiled": ["ns_per_iteration", "ns_per_lane"],
    "micro.decode_varint": ["ns_per_entry", "entries_per_second"],
    "io.compress_ratio": ["ratio", "bits_per_entry"],
    "io.oocore_paging": ["seconds", "resident_peak_bytes",
                         "read_amplification"],
}
for record, fields in required.items():
    assert record in suite, f"missing record {record}"
    for field in fields:
        assert field in suite[record], f"missing {record}.{field}"
        value = suite[record][field]
        assert value >= 0, f"negative {record}.{field}: {value}"
for record, fields in required.items():
    if record == "meta":
        continue
    for field in fields:
        if field.endswith("seconds") or field == "ns_per_iteration":
            assert suite[record][field] > 0, f"zero timing {record}.{field}"
# Histogram percentiles must be ordered and below the run's wall time.
pm = suite["fig5.postmortem"]
assert pm["iterate_p50_ns"] <= pm["iterate_p99_ns"], "p50 > p99"
assert pm["iterate_p99_ns"] <= pm["seconds"] * 1e9, "p99 above wall time"
# Memory records: a paged run holds a real residency charge, and its
# compile passes decode more encoded bytes than the ranks they deliver
# amortize only when windows are few — either way the ratio is positive.
oo = suite["io.oocore_paging"]
assert oo["resident_peak_bytes"] > 0, "paged run charged no residency"
assert oo["read_amplification"] > 0, "paged run decoded nothing"
print(f"suite shape OK: {len(suite) - 1} records in {sys.argv[1]}")
EOF

# 3. Self-comparison must report no regressions.
python3 "$CI_DIR/bench_compare.py" "$SUITE" "$SUITE" >/dev/null

# 4. Doubling every timing metric must trip the gate.
DOUBLED="$OUT/BENCH_suite_doubled.json"
python3 - "$SUITE" "$DOUBLED" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    suite = json.load(f)
for record, fields in suite.items():
    if record == "meta" or not isinstance(fields, dict):
        continue
    for metric, value in fields.items():
        if isinstance(value, (int, float)) and (
            metric.endswith("seconds") or metric.endswith("_ns")
            or "ns_per_" in metric
        ):
            fields[metric] = value * 2.0
with open(sys.argv[2], "w") as f:
    json.dump(suite, f, indent=2)
EOF

if python3 "$CI_DIR/bench_compare.py" "$DOUBLED" "$SUITE" >/dev/null 2>&1; then
  echo "bench regression gate FAILED: doubled timings were not flagged" >&2
  exit 1
fi

# 5. A fabricated memory blowup (2x the charged residency peak) must trip
# the footprint band even though every timing is untouched.
BLOATED="$OUT/BENCH_suite_bloated.json"
python3 - "$SUITE" "$BLOATED" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    suite = json.load(f)
suite["io.oocore_paging"]["resident_peak_bytes"] *= 2.0
with open(sys.argv[2], "w") as f:
    json.dump(suite, f, indent=2)
EOF

if python3 "$CI_DIR/bench_compare.py" "$BLOATED" "$SUITE" >/dev/null 2>&1; then
  echo "bench regression gate FAILED: doubled residency was not flagged" >&2
  exit 1
fi

echo "bench regression gate OK: self-test, shape, self-compare, fabricated" \
     "timing and memory regressions all behave"
