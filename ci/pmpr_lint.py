#!/usr/bin/env python3
"""pmpr-lint: project-specific concurrency/discipline checks.

Enforces invariants that generic tools (clang-tidy, compiler warnings)
cannot express:

  atomic-order-comment      Every atomic access that names a non-seq_cst
                            memory order must carry an adjacent
                            ordering-rationale comment (trailing on the
                            same line, or a `//` comment within the three
                            preceding lines). This is the ws_deque.hpp
                            documentation discipline, made mandatory.

  raw-concurrency-type      std::mutex / std::thread / std::condition_variable
                            and friends may only appear under src/par/ (the
                            scheduler) or in src/util/thread_annotations.hpp
                            (the sanctioned annotated wrappers). Everything
                            else must use pmpr::Mutex / LockGuard / CondVar
                            so Clang's Thread Safety Analysis sees it.

  reinterpret-cast-outside-io
                            reinterpret_cast is confined to the binary-IO
                            translation units (edge_list.cpp, export.cpp).

  naked-new-delete          No `new` / `delete` expressions outside
                            ws_deque.hpp (whose lock-free buffer handoff
                            genuinely needs manual lifetime management) and
                            the obs/ registries (intentionally leaked so
                            pool workers can flush telemetry at exit).
                            `= delete`d functions are not flagged.

  simd-intrinsics-confined  Raw x86 vector intrinsics (_mm*() calls, the
                            __m128/__m256/__m512/__mmask types) and
                            __builtin_cpu_supports may only appear in the
                            src/pagerank/simd_* translation units. Those
                            files carry the per-file -mavx* compile flags
                            and the runtime-dispatch guards; an intrinsic
                            anywhere else either fails to build on baseline
                            x86-64 or, worse, builds under -march=native
                            and SIGILLs on older machines.

  mmap-syscall-confined     Raw memory-mapping / low-level file syscalls
                            (mmap, munmap, madvise, posix_madvise, mincore,
                            pread, pwrite, ::open, open64) may only appear
                            under src/io/ (the MmapFile wrapper). Everywhere
                            else must go through io::MmapFile so page
                            residency, advice hints, and error handling stay
                            in one audited place. Member `.open()` calls
                            (e.g. std::ifstream) are not flagged.

  proc-syscall-confined     Process-introspection primitives (/proc/self
                            paths, getrusage, mincore) are confined to
                            src/util/, src/io/, and src/obs/ — the memory
                            observability pillar's readers
                            (obs::current_rss_bytes, obs::peak_rss_bytes,
                            io::MmapFile::resident_bytes). Ad-hoc RSS
                            probes elsewhere fragment the cost model and
                            skip the platform normalisation those wrappers
                            own.

  raw-clock                 Direct steady_clock / system_clock /
                            high_resolution_clock ::now() calls are
                            confined to src/util/ (Timer/AccumTimer,
                            logging timestamps) and src/obs/ (the trace
                            epoch). Everything else must go through those
                            wrappers so timing stays mockable and the
                            telemetry cost model holds. The same rule
                            covers sleeping primitives (sleep_for /
                            sleep_until / wait_for / wait_until): a
                            sleeping poll loop outside the sanctioned
                            spots (the CondVar wrapper, the sampler's
                            interruptible pacing, the pool's bounded park)
                            is a latency bug waiting to be profiled, not a
                            synchronisation strategy.

  signal-unsafe-in-handler  Inside PMPR_ASYNC_SIGNAL_SAFE_BEGIN/END
                            comment-marked regions (the crash handler and
                            the registry emitters it calls — obs/crash.cpp,
                            obs/flightrec.cpp, obs/watchdog.cpp,
                            obs/sigsafe.hpp), ban everything a signal
                            handler must not do: malloc/free and `new` /
                            `delete`, locks (LockGuard/mutex/.lock()),
                            iostreams and stdio formatting, and
                            std::string construction. The handler's diet
                            is pre-allocated buffers + write(2); this rule
                            keeps refactors honest about it. An unmatched
                            BEGIN/END pair is itself a violation.

All rules dispatch from one scan per file (ci/pmpr_scan.py): each file is
read and comment-stripped exactly once, then every rule runs over the
cleaned lines. `--verbose` reports where the lint time goes per rule.

Usage: pmpr_lint.py [--root REPO_ROOT] [--verbose] PATH [PATH ...]

PATHs may be files or directories (searched recursively for *.hpp/*.cpp).
Rule allowlists match on the path relative to --root (default: cwd).
Exit status 1 if any violation is found, 0 otherwise.
"""

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import pmpr_scan  # noqa: E402  (sibling module, not a package)

# Files (relative to --root, '/'-separated) where each rule does not apply.
ALLOW = {
    "atomic-order-comment": set(),
    "raw-concurrency-type": {
        "src/util/thread_annotations.hpp",
        # The sampling profiler owns one background std::thread; its mutex
        # and condvar still go through the annotated wrappers.
        "src/obs/sampler.hpp",
        "src/obs/sampler.cpp",
        # Same structure for the watchdog monitor thread.
        "src/obs/watchdog.hpp",
        "src/obs/watchdog.cpp",
    },
    "reinterpret-cast-outside-io": {
        "src/graph/edge_list.cpp",
        "src/exec/export.cpp",
        # Pointer-to-integer for the fault address in the crash banner
        # (void* si_addr -> u64). No aliasing — the integer is only
        # formatted, never dereferenced.
        "src/obs/crash.cpp",
        # src/io/ as a whole is covered via ALLOW_DIRS below.
        # The x86 intrinsic load APIs take __m256i* / int* operands, so the
        # mask-table loads cannot avoid reinterpret_cast (the casts never
        # alias through the result — pure-load laundering the ISA demands).
        "src/pagerank/simd_sweep_avx2.cpp",
    },
    "naked-new-delete": {
        "src/par/ws_deque.hpp",
        # Factory for a private-constructor, mutex-holding (hence immovable)
        # type: make_unique cannot reach the private ctor, so the factory
        # wraps a bare `new` in unique_ptr on the same line.
        "src/graph/paged_multi_window.cpp",
        # Leaked telemetry registries: static-destruction-order safety for
        # pool worker threads flushing counters/spans at exit.
        "src/obs/counters.cpp",
        "src/obs/trace.cpp",
        "src/obs/histogram.cpp",
        "src/obs/memory.cpp",
        # Flight recorder + heartbeat registries: leaked for the same
        # exit-order reason, plus the crash handler may read them at any
        # point of the process's death.
        "src/obs/flightrec.cpp",
        "src/obs/watchdog.cpp",
    },
    "raw-clock": set(),
    "simd-intrinsics-confined": set(),
    "mmap-syscall-confined": {
        # The crash handler must bypass io::MmapFile: only raw ::open +
        # write(2) on pre-rendered paths are async-signal-safe, and the
        # watchdog's safe-path dump reuses the identical writer on
        # purpose (one schema, one audited code path).
        "src/obs/crash.cpp",
    },
    "proc-syscall-confined": set(),
    "signal-unsafe-in-handler": set(),
}
# Path prefixes where a rule does not apply.
ALLOW_DIRS = {
    "raw-concurrency-type": ("src/par/",),
    "raw-clock": ("src/util/", "src/obs/"),
    # The binary-IO layer: varint codec framing and the MmapFile wrapper
    # both reinterpret byte buffers as typed records by design.
    "reinterpret-cast-outside-io": ("src/io/",),
    # The MmapFile wrapper is the single audited home for mapping syscalls.
    "mmap-syscall-confined": ("src/io/",),
    # The sanctioned process-introspection readers: obs/memory.cpp's RSS
    # readers, MmapFile::resident_bytes' mincore scan, and util/ helpers.
    "proc-syscall-confined": ("src/util/", "src/io/", "src/obs/"),
    # The SIMD dispatch + sweep family: the only files built with -mavx*
    # flags, so the only files where the intrinsics cannot SIGILL.
    "simd-intrinsics-confined": ("src/pagerank/simd_",),
}

RELAXED_ORDER = re.compile(
    r"memory_order(_|::)(relaxed|acquire|release|acq_rel|consume)\b"
)
RAW_PRIMITIVE = re.compile(
    r"std::(recursive_mutex|shared_mutex|timed_mutex|mutex|"
    r"condition_variable_any|condition_variable|jthread|thread|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
REINTERPRET = re.compile(r"\breinterpret_cast\b")
NAKED_NEW = re.compile(r"(?<![\w.])new\b|(?<![\w.])delete\b(?:\s*\[\])?")
DELETED_FN = re.compile(r"=\s*(delete|default)\s*[;,)]")
RAW_CLOCK = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
RAW_SLEEP = re.compile(r"\b(sleep_for|sleep_until|wait_for|wait_until)\s*\(")
# Two forms: bare calls to the unambiguous syscall names, and explicitly
# global-qualified `::name(` calls (the only way `open` is flagged — member
# `.open()` and `MmapFile::open()` stay clean because the lookbehinds
# reject a preceding word character, `.`, or `:`).
MMAP_SYSCALL = re.compile(
    r"(?<![\w.:])(mmap|munmap|madvise|posix_madvise|mincore|pread|pwrite|"
    r"open64)\s*\(|"
    r"(?<!\w)::\s*(mmap|munmap|madvise|posix_madvise|mincore|pread|pwrite|"
    r"open|open64)\s*\("
)
# Process-introspection primitives: /proc/self readers and the rusage /
# mincore syscalls (bare or ::-qualified calls; the string literal form
# catches any /proc/self path construction).
PROC_SYSCALL = re.compile(
    r"/proc/self|(?<![\w.:])(getrusage|mincore)\s*\(|"
    r"(?<!\w)::\s*(getrusage|mincore)\s*\("
)
SIMD_INTRINSIC = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[a-z]?\b|\b__mmask\d+\b|"
    r"\b__builtin_cpu_supports\b"
)
# Files additionally exempt from the raw-clock rule's sleeping-primitive
# half (but NOT from its ::now() half): the pool's park protocol uses a
# bounded wait_for as its lost-wakeup backstop.
RAW_SLEEP_ALLOW = {"src/par/thread_pool.cpp"}
# Async-signal-safe region markers (comments, so they survive in .lines
# but not .code) and the constructs banned between them: allocation,
# locking, iostream/stdio formatting, and std::string construction. The
# lookbehind rejects preceding word chars so sigsafe_puts()/my_free()
# style helpers never collide with the libc names.
# The (?![\w/]) lookahead keeps prose like "...SAFE_BEGIN/END regions"
# in doc comments from reading as a real marker.
SIGNAL_MARKER_BEGIN = re.compile(r"PMPR_ASYNC_SIGNAL_SAFE_BEGIN(?![\w/])")
SIGNAL_MARKER_END = re.compile(r"PMPR_ASYNC_SIGNAL_SAFE_END(?![\w/])")
SIGNAL_UNSAFE = re.compile(
    r"(?<![\w.:])(malloc|calloc|realloc|strdup|fopen|fdopen|printf|"
    r"fprintf|snprintf|sprintf|vsnprintf|vprintf|puts|fputs|fwrite)\s*\(|"
    r"\b(LockGuard|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"ostringstream|stringstream|ofstream|ifstream)\b|"
    r"(?:\.|->)\s*lock\s*\(|"
    r"\bstd::(string|cout|cerr|clog)\b"
)
COMMENT_LOOKBACK = 3


def has_adjacent_comment(lines, i):
    """True if lines[i] has a trailing comment or one appears within the
    preceding COMMENT_LOOKBACK lines."""
    if "//" in lines[i] or "*/" in lines[i]:
        return True
    lo = max(0, i - COMMENT_LOOKBACK)
    return any("//" in ln or "*/" in ln for ln in lines[lo:i])


def allowed(rule, rel):
    if rel in ALLOW.get(rule, ()):
        return True
    return any(rel.startswith(d) for d in ALLOW_DIRS.get(rule, ()))


def _regex_rule(name, pattern, message):
    """Rule flagging every stripped-code line matching `pattern`. `message`
    is a format string receiving the match object."""

    def check(scan):
        if allowed(name, scan.rel):
            return
        for i, code in enumerate(scan.code):
            m = pattern.search(code)
            if m:
                yield (scan.rel, i + 1, name, message(m))

    return pmpr_scan.Rule(name, check)


def _check_atomic_order(scan):
    name = "atomic-order-comment"
    if allowed(name, scan.rel):
        return
    for i, code in enumerate(scan.code):
        if RELAXED_ORDER.search(code) and not has_adjacent_comment(
            scan.lines, i
        ):
            yield (
                scan.rel,
                i + 1,
                name,
                "non-seq_cst atomic access without an adjacent "
                "ordering-rationale comment",
            )


def _check_naked_new(scan):
    name = "naked-new-delete"
    if allowed(name, scan.rel):
        return
    for i, code in enumerate(scan.code):
        m = NAKED_NEW.search(DELETED_FN.sub("", code))
        if m:
            yield (
                scan.rel,
                i + 1,
                name,
                f"naked `{m.group(0).strip()}` outside ws_deque.hpp; use "
                "std::unique_ptr / std::make_unique",
            )


def _check_raw_clock(scan):
    name = "raw-clock"
    if allowed(name, scan.rel):
        return
    for i, code in enumerate(scan.code):
        m = RAW_CLOCK.search(code)
        if m:
            yield (
                scan.rel,
                i + 1,
                name,
                f"direct {m.group(1)}::now() outside src/util/ and "
                "src/obs/; use pmpr::Timer/AccumTimer (util/timer.hpp) "
                "or obs::trace_now_ns()",
            )
        if scan.rel not in RAW_SLEEP_ALLOW:
            m = RAW_SLEEP.search(code)
            if m:
                yield (
                    scan.rel,
                    i + 1,
                    name,
                    f"sleeping primitive {m.group(1)}() outside the "
                    "sanctioned spots (CondVar wrapper, obs/ sampler "
                    "pacing, pool park backstop); use event-driven waits, "
                    "not sleep polling",
                )


def _check_signal_unsafe(scan):
    name = "signal-unsafe-in-handler"
    if allowed(name, scan.rel):
        return
    in_region = False
    begin_line = 0
    for i, raw in enumerate(scan.lines):
        if SIGNAL_MARKER_BEGIN.search(raw):
            if in_region:
                yield (
                    scan.rel,
                    i + 1,
                    name,
                    "nested PMPR_ASYNC_SIGNAL_SAFE_BEGIN",
                )
            in_region = True
            begin_line = i + 1
            continue
        if SIGNAL_MARKER_END.search(raw):
            if not in_region:
                yield (
                    scan.rel,
                    i + 1,
                    name,
                    "PMPR_ASYNC_SIGNAL_SAFE_END without a matching BEGIN",
                )
            in_region = False
            continue
        if not in_region:
            continue
        code = scan.code[i]
        m = SIGNAL_UNSAFE.search(code)
        if m is None:
            m = NAKED_NEW.search(DELETED_FN.sub("", code))
        if m:
            yield (
                scan.rel,
                i + 1,
                name,
                f"`{m.group(0).strip()}` inside an async-signal-safe "
                "region; the handler's diet is pre-allocated buffers, "
                "lock-free atomics, and write(2) via obs/sigsafe.hpp",
            )
    if in_region:
        yield (
            scan.rel,
            begin_line,
            name,
            "PMPR_ASYNC_SIGNAL_SAFE_BEGIN without a matching END",
        )


RULES = [
    pmpr_scan.Rule("atomic-order-comment", _check_atomic_order),
    pmpr_scan.Rule("signal-unsafe-in-handler", _check_signal_unsafe),
    _regex_rule(
        "raw-concurrency-type",
        RAW_PRIMITIVE,
        lambda m: f"raw {m.group(0)} outside src/par/; use "
        "pmpr::Mutex/LockGuard/CondVar (util/thread_annotations.hpp)",
    ),
    _regex_rule(
        "reinterpret-cast-outside-io",
        REINTERPRET,
        lambda m: "reinterpret_cast outside the binary-IO allowlist",
    ),
    pmpr_scan.Rule("naked-new-delete", _check_naked_new),
    _regex_rule(
        "simd-intrinsics-confined",
        SIMD_INTRINSIC,
        lambda m: f"raw SIMD intrinsic `{m.group(0).strip()}` outside "
        "src/pagerank/simd_*; only those TUs carry the -mavx* flags and "
        "dispatch guards",
    ),
    pmpr_scan.Rule("raw-clock", _check_raw_clock),
    _regex_rule(
        "mmap-syscall-confined",
        MMAP_SYSCALL,
        lambda m: f"raw mapping syscall `{m.group(0).strip()}` outside "
        "src/io/; go through io::MmapFile (io/mmap_file.hpp)",
    ),
    _regex_rule(
        "proc-syscall-confined",
        PROC_SYSCALL,
        lambda m: f"process introspection `{m.group(0).strip()}` outside "
        "src/util//src/io//src/obs/; use obs::current_rss_bytes / "
        "obs::peak_rss_bytes / io::MmapFile::resident_bytes "
        "(obs/memory.hpp)",
    ),
]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repo root for allowlists")
    ap.add_argument(
        "--verbose",
        action="store_true",
        help="report per-rule cumulative scan time",
    )
    ap.add_argument("paths", nargs="+")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    scans = [
        pmpr_scan.FileScan(f, pmpr_scan.rel_to_root(f, root))
        for f in pmpr_scan.collect_files(args.paths)
    ]
    timings = {}
    violations = pmpr_scan.run_rules(scans, RULES, timings)

    pmpr_scan.print_violations(violations)
    if args.verbose:
        pmpr_scan.print_timings(timings, len(scans))
    if violations:
        print(
            f"pmpr-lint: {len(violations)} violation(s) in "
            f"{len(scans)} file(s)"
        )
        return 1
    print(f"pmpr-lint: OK ({len(scans)} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
