#!/usr/bin/env python3
"""pmpr-analyze: whole-program layering, lock-order, and header-hygiene
analysis.

Where ci/pmpr_lint.py checks one file at a time, this tool builds
*cross-module* state — the include graph and the global lock-acquisition
graph — from a single scan of the tree (ci/pmpr_scan.py) plus, when
available, the build's compile_commands.json (freshness-checked so a stale
cache cannot silently bless a rotten include graph). No libclang: every
pass is driven by the comment-stripped source text, which keeps the gate
runnable on any box with a Python interpreter.

Passes (each an always-on ctest gate; select with --pass):

  layers   The module DAG declared in ci/layers.toml (util → obs → par →
           graph → gen → pagerank → analysis/streaming → exec) against the
           actual include graph. Findings:
             layer-violation      include edge the DAG forbids
             include-cycle        file-level #include cycle (any module)
             undeclared-module    src/ directory absent from layers.toml
             config-cycle         the declared DAG itself is cyclic

  locks    Global lock-order model from PMPR_GUARDED_BY / PMPR_ACQUIRE /
           PMPR_RELEASE / PMPR_EXCLUDES annotations plus lexical
           LockGuard/CondVar scopes. Findings:
             lock-order-cycle     inconsistent acquisition order between
                                  two locks (potential deadlock)
             recursive-lock       re-acquiring a held (non-recursive) lock
             lock-across-wait     lock held across pool.submit / task
                                  wait / join / parallel_for (condvar
                                  waits are exempt: they release the lock)
             excludes-violation   calling a PMPR_EXCLUDES(m) function
                                  while (lexically) holding m
           The model is lexical and name-based; DESIGN.md documents its
           false-negative limits (aliasing, cross-TU call chains).

  hygiene  Header discipline:
             missing-pragma-once  header without #pragma once
             transitive-macro-include
                                  file uses a PMPR_* macro but only gets
                                  its defining header transitively
             internal-header-leak include of an [internal] header from
                                  outside its owning module
             unresolved-include   quoted include that resolves to no file

Findings are matched against ci/analyze_baseline.json; unmatched findings
fail (exit 1), and suppressions that no longer match anything fail too
(stale-suppression), so the gate is fail-closed in both directions.
--json writes a versioned report (schema pmpr-analyze-v1) mirroring the
obs metrics pattern, so CI diffs are reviewable artifacts.

Usage:
  pmpr_analyze.py [--root R] [--config ci/layers.toml]
                  [--baseline ci/analyze_baseline.json]
                  [--compile-commands BUILD/compile_commands.json]
                  [--pass {layers,locks,hygiene,lint,all}]
                  [--json OUT] [--strict-freshness] [--verbose] [PATH ...]

PATH defaults to <root>/src.
"""

import argparse
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import pmpr_scan  # noqa: E402  (sibling module, not a package)

BASELINE_SCHEMA = "pmpr-analyze-baseline-v1"
REPORT_SCHEMA = "pmpr-analyze-v1"


# --------------------------------------------------------------------------
# Config (ci/layers.toml). Hand-rolled parser for the tiny subset we use —
# [section] headers and `key = ["a", "b"]` string-list entries — so the
# gate does not depend on tomllib being importable.
# --------------------------------------------------------------------------


def parse_layers_config(path):
    sections = {}
    current = None
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as e:
        raise SystemExit(f"pmpr-analyze: cannot read config {path}: {e}")
    for lineno, raw in enumerate(text.splitlines(), 1):
        if raw.lstrip().startswith("#"):
            continue
        if '"' in raw:
            # Strip trailing comments conservatively: only after the last
            # quote, so '#' inside a quoted string survives.
            tail = raw.rfind('"')
            hash_idx = raw.find("#", tail + 1)
            line = (raw[:hash_idx] if hash_idx >= 0 else raw).strip()
        else:
            line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = line[1:-1].strip()
            sections.setdefault(current, {})
            continue
        if "=" not in line or current is None:
            raise SystemExit(
                f"pmpr-analyze: {path}:{lineno}: unsupported syntax: {raw!r}"
            )
        key, value = (part.strip() for part in line.split("=", 1))
        if not (value.startswith("[") and value.endswith("]")):
            raise SystemExit(
                f"pmpr-analyze: {path}:{lineno}: expected a string list"
            )
        sections[current][key] = re.findall(r'"([^"]*)"', value)
    if "layers" not in sections or not sections["layers"]:
        raise SystemExit(f"pmpr-analyze: {path}: missing [layers] section")
    return {
        "layers": sections["layers"],
        "internal": sections.get("internal", {}).get("headers", []),
    }


def config_cycle(layers):
    """Returns one cycle (list of modules) in the declared DAG, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in layers}
    stack = []

    def dfs(m):
        color[m] = GRAY
        stack.append(m)
        for dep in layers.get(m, []):
            if dep not in color:
                continue
            if color[dep] == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                found = dfs(dep)
                if found:
                    return found
        stack.pop()
        color[m] = BLACK
        return None

    for m in sorted(layers):
        if color[m] == WHITE:
            found = dfs(m)
            if found:
                return found
    return None


# --------------------------------------------------------------------------
# Tree model: module assignment + include resolution.
# --------------------------------------------------------------------------


def module_of(rel):
    """Module of a src-relative path: 'src/util/x.hpp' -> 'util'; files
    directly under src/ (the umbrella) -> None."""
    parts = pathlib.PurePosixPath(rel).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


class Tree:
    """All scanned files plus the resolved project include graph."""

    def __init__(self, scans, src_root, root):
        self.scans = scans
        self.root = root
        self.by_rel = {s.rel: s for s in scans}
        # Include target "util/check.hpp" -> rel "src/util/check.hpp".
        self.target_of = {}
        for s in scans:
            try:
                target = s.path.resolve().relative_to(src_root).as_posix()
            except ValueError:
                continue
            self.target_of[target] = s.rel
        # rel -> [(lineno, target, resolved_rel_or_None)]
        self.edges = {}
        for s in scans:
            self.edges[s.rel] = [
                (lineno, target, self.target_of.get(target))
                for lineno, target in s.includes
            ]


# --------------------------------------------------------------------------
# Pass 1: layering.
# --------------------------------------------------------------------------


def pass_layers(tree, config, report):
    findings = []
    layers = config["layers"]

    cyc = config_cycle(layers)
    if cyc:
        findings.append(
            ("layers", "config-cycle", "ci/layers.toml", 0,
             "declared module DAG is cyclic: " + " -> ".join(cyc))
        )

    # Module-level edge audit with per-file witnesses.
    actual_deps = {}
    for rel, edges in sorted(tree.edges.items()):
        mod = module_of(rel)
        if mod is None:
            continue  # umbrella files may include everything
        if mod not in layers:
            findings.append(
                ("layers", "undeclared-module", rel, 0,
                 f"module '{mod}' is not declared in layers.toml")
            )
            continue
        allowed = set(layers[mod]) | {mod}
        for lineno, target, resolved in edges:
            if resolved is None:
                continue  # unresolved includes are a hygiene finding
            dep = module_of(resolved)
            if dep is None:
                dep = "<src-root>"
            actual_deps.setdefault(mod, set()).add(dep)
            if dep not in allowed:
                findings.append(
                    ("layers", "layer-violation", rel, lineno,
                     f"includes \"{target}\": module '{mod}' may not "
                     f"depend on '{dep}' (allowed: "
                     f"{', '.join(sorted(allowed)) or 'none'})")
                )

    # File-level include cycles (Tarjan SCC, iterative).
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    nodes = sorted(tree.edges)

    def strong_connect(v0):
        work = [(v0, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            succs = [r for _, _, r in tree.edges.get(v, []) if r is not None]
            recursed = False
            for i in range(pi, len(succs)):
                w = succs[i]
                if w not in index:
                    work.append((v, i + 1))
                    work.append((w, 0))
                    recursed = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if recursed:
                continue
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)

    for v in nodes:
        if v not in index:
            strong_connect(v)
    for scc in sccs:
        self_loop = len(scc) == 1 and any(
            r == scc[0] for _, _, r in tree.edges.get(scc[0], [])
        )
        if len(scc) > 1 or self_loop:
            members = sorted(scc)
            findings.append(
                ("layers", "include-cycle", members[0], 0,
                 "#include cycle: " + " -> ".join(members + [members[0]]))
            )

    report["modules"] = {
        mod: {
            "declared": sorted(layers.get(mod, [])),
            "actual": sorted(actual_deps.get(mod, set()) - {mod}),
        }
        for mod in sorted(set(layers) | set(actual_deps))
    }
    return findings


# --------------------------------------------------------------------------
# Pass 2: lock order.
# --------------------------------------------------------------------------

LOCKGUARD_RE = re.compile(r"\bLockGuard\s+\w+\s*[({]")
MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?(?:pmpr::)?Mutex\s+(\w+)\s*;")
CONDVAR_DECL_RE = re.compile(r"\b(?:pmpr::)?CondVar\s+(\w+)\s*;")
GUARDED_BY_RE = re.compile(r"(\w+)\s+PMPR_(?:PT_)?GUARDED_BY\s*\(")
FN_ANNOT_RE = re.compile(
    r"(\w+)\s*\([^;{}]*?\)\s*(?:const\b\s*)?(?:override\b\s*)?"
    r"(?:noexcept\b\s*)?PMPR_(ACQUIRE|RELEASE|EXCLUDES)\s*\("
)
BLOCKING_MEMBER_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(submit|wait|wait_for|wait_until|join)\s*\("
)
BLOCKING_FREE_RE = re.compile(
    r"\b(parallel_for_range|parallel_for|parallel_reduce_slots|"
    r"parallel_reduce)\s*\("
)
CALL_RE = re.compile(r"\b(\w+)\s*\(")

# The annotation vocabulary itself — not a lock user.
LOCKS_SKIP_FILES = ("util/thread_annotations.hpp",)


def _extract_paren(text, open_idx):
    """Returns the balanced contents of the paren opening at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
    return text[open_idx + 1:]


def _norm_expr(expr):
    expr = re.sub(r"\s+", "", expr)
    expr = expr.replace("this->", "")
    return expr


def _last_ident(expr):
    idents = re.findall(r"\w+", expr)
    return idents[-1] if idents else expr


def pass_locks(tree, report):
    findings = []
    condvars = set()
    mutexes = {}  # node id -> {"file": rel, "guards": [members]}
    acquire_fns = {}  # fn name -> (mutex last-ident or "", file, line)
    excludes_fns = {}  # fn name -> (mutex last-ident, file, line)

    scans = [
        s for s in tree.scans
        if not any(s.rel.endswith(skip) for skip in LOCKS_SKIP_FILES)
    ]

    # Harvest declarations and annotations.
    for s in scans:
        stem = pathlib.PurePosixPath(s.rel).stem
        for i, code in enumerate(s.code):
            for m in CONDVAR_DECL_RE.finditer(code):
                condvars.add(m.group(1))
            for m in MUTEX_DECL_RE.finditer(code):
                mutexes.setdefault(
                    f"{stem}:{m.group(1)}",
                    {"file": s.rel, "line": i + 1, "guards": []},
                )
            for m in GUARDED_BY_RE.finditer(code):
                paren = code.index("(", m.end() - 1)
                mu = _last_ident(_extract_paren(code, paren))
                node = f"{stem}:{mu}"
                mutexes.setdefault(
                    node, {"file": s.rel, "line": i + 1, "guards": []}
                )
                mutexes[node]["guards"].append(m.group(1))
            if "PMPR_ACQUIRE" in code or "PMPR_EXCLUDES" in code:
                window = " ".join(s.code[max(0, i - 2): i + 1])
                for m in FN_ANNOT_RE.finditer(window):
                    kind = m.group(2)
                    open_idx = window.index("(", m.end() - 1)
                    mu = _last_ident(_extract_paren(window, open_idx))
                    entry = (mu, s.rel, i + 1)
                    if kind == "ACQUIRE":
                        acquire_fns[m.group(1)] = entry
                    elif kind == "EXCLUDES":
                        excludes_fns[m.group(1)] = entry

    # Lexical scope walk: per file, track brace depth and the stack of
    # lexically-held LockGuards; acquisition order edges + blocking calls
    # are recorded in character order so `{ LockGuard l(m); } pool.wait(w)`
    # on one line does not false-positive.
    edges = {}  # (from_node, to_node) -> (file, line)

    def add_edge(a, b, rel, lineno):
        if a != b:
            edges.setdefault((a, b), (rel, lineno))

    for s in scans:
        stem = pathlib.PurePosixPath(s.rel).stem
        depth = 0
        held = []  # list of (node, expr, depth_at_decl, line)
        for i, code in enumerate(s.code):
            events = []  # (pos, kind, payload)
            for pos, ch in enumerate(code):
                if ch in "{}":
                    events.append((pos, ch, None))
            for m in LOCKGUARD_RE.finditer(code):
                open_idx = m.end() - 1
                expr = _norm_expr(_extract_paren(code, open_idx))
                events.append((m.start(), "guard", expr))
            for m in BLOCKING_MEMBER_RE.finditer(code):
                recv, meth = m.group(1), m.group(2)
                if recv in condvars or recv == "cv_":
                    continue  # condvar waits release the lock
                events.append((m.start(), "block", f"{recv}.{meth}()"))
            for m in BLOCKING_FREE_RE.finditer(code):
                events.append((m.start(), "block", f"{m.group(1)}()"))
            if "PMPR_" not in code:
                for m in CALL_RE.finditer(code):
                    fn = m.group(1)
                    if fn in excludes_fns:
                        events.append((m.start(), "call-excl", fn))
                    if fn in acquire_fns:
                        events.append((m.start(), "call-acq", fn))
            events.sort(key=lambda e: e[0])
            for _, kind, payload in events:
                if kind == "{":
                    depth += 1
                elif kind == "}":
                    depth -= 1
                    while held and held[-1][2] > depth:
                        held.pop()
                    if depth <= 0:
                        depth = max(depth, 0)
                        held.clear() if depth == 0 else None
                elif kind == "guard":
                    node = f"{stem}:{payload}"
                    for h_node, h_expr, _, h_line in held:
                        if h_expr == payload:
                            findings.append(
                                ("locks", "recursive-lock", s.rel, i + 1,
                                 f"LockGuard({payload}) while already "
                                 f"holding it (acquired line {h_line}; "
                                 "pmpr::Mutex is non-recursive)")
                            )
                        else:
                            add_edge(h_node, node, s.rel, i + 1)
                    held.append((node, payload, depth, i + 1))
                    mutexes.setdefault(
                        node, {"file": s.rel, "line": i + 1, "guards": []}
                    )
                elif kind == "block" and held:
                    locks = ", ".join(h[1] for h in held)
                    findings.append(
                        ("locks", "lock-across-wait", s.rel, i + 1,
                         f"{payload} called while holding {locks}: a lock "
                         "held across a scheduler boundary deadlocks once "
                         "the helping thread re-enters user code")
                    )
                elif kind == "call-excl" and held:
                    mu, decl_rel, decl_line = excludes_fns[payload]
                    for _, h_expr, _, _ in held:
                        if _last_ident(h_expr) == mu:
                            findings.append(
                                ("locks", "excludes-violation", s.rel, i + 1,
                                 f"{payload}() requires PMPR_EXCLUDES({mu}) "
                                 f"({decl_rel}:{decl_line}) but {h_expr} is "
                                 "held here")
                            )
                elif kind == "call-acq" and held:
                    mu, _, _ = acquire_fns[payload]
                    if mu:
                        for h_node, _, _, _ in held:
                            add_edge(h_node, f"{stem}:{mu}", s.rel, i + 1)

    # Cycle detection over the acquired-before graph.
    adj = {}
    for (a, b), _ in edges.items():
        adj.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    seen_cycles = set()

    def dfs(v, path):
        color[v] = GRAY
        path.append(v)
        for w in sorted(adj.get(v, ())):
            if color.get(w, WHITE) == GRAY:
                cyc = tuple(path[path.index(w):] + [w])
                key = frozenset(cyc)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    witnesses = []
                    for x, y in zip(cyc, cyc[1:]):
                        rel, line = edges[(x, y)]
                        witnesses.append(f"{x}->{y} at {rel}:{line}")
                    findings.append(
                        ("locks", "lock-order-cycle",
                         edges[(cyc[0], cyc[1])][0],
                         edges[(cyc[0], cyc[1])][1],
                         "inconsistent lock order (potential deadlock): "
                         + "; ".join(witnesses))
                    )
            elif color.get(w, WHITE) == WHITE:
                dfs(w, path)
        path.pop()
        color[v] = BLACK

    for v in sorted(adj):
        if color.get(v, WHITE) == WHITE:
            dfs(v, [])

    report["lock_graph"] = {
        "locks": {
            node: {
                "file": info["file"],
                "guards": sorted(set(info["guards"])),
            }
            for node, info in sorted(mutexes.items())
        },
        "acquired_before": [
            {"from": a, "to": b, "file": rel, "line": line}
            for (a, b), (rel, line) in sorted(edges.items())
        ],
        "condvars": sorted(condvars),
        "excludes_annotations": {
            fn: mu for fn, (mu, _, _) in sorted(excludes_fns.items())
        },
    }
    return findings


# --------------------------------------------------------------------------
# Pass 3: header hygiene.
# --------------------------------------------------------------------------

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(PMPR_[A-Z0-9_]+)")
MACRO_USE_RE = re.compile(r"\bPMPR_[A-Z0-9_]+\b")
PREPROC_RE = re.compile(r"^\s*#")


def pass_hygiene(tree, config, report):
    findings = []

    # Macro -> defining header(s). Only headers: a macro defined in a .cpp
    # is file-local by construction.
    definers = {}
    for s in tree.scans:
        if not s.is_header():
            continue
        for code in s.code:
            m = DEFINE_RE.match(code)
            if m:
                definers.setdefault(m.group(1), set()).add(s.rel)

    internal = {
        t: tree.target_of.get(t) for t in config["internal"]
    }

    for s in sorted(tree.scans, key=lambda s: s.rel):
        direct = {r for _, _, r in tree.edges.get(s.rel, []) if r is not None}

        if s.is_header() and not any(
            PRAGMA_ONCE_RE.match(c) for c in s.code
        ):
            findings.append(
                ("hygiene", "missing-pragma-once", s.rel, 1,
                 "header without #pragma once")
            )

        for lineno, target, resolved in tree.edges.get(s.rel, []):
            if resolved is None:
                findings.append(
                    ("hygiene", "unresolved-include", s.rel, lineno,
                     f"\"{target}\" does not resolve to a scanned file")
                )
                continue
            if target in internal:
                owner = module_of(resolved)
                if module_of(s.rel) != owner:
                    findings.append(
                        ("hygiene", "internal-header-leak", s.rel, lineno,
                         f"\"{target}\" is internal to '{owner}' "
                         "(ci/layers.toml [internal]); include the "
                         "module's public API instead")
                    )

        # Macro uses that only work because of a transitive include.
        reported = set()
        for i, code in enumerate(s.code):
            if PREPROC_RE.match(code):
                continue  # #ifdef PMPR_X etc. probe, not use
            for macro in MACRO_USE_RE.findall(code):
                if macro in reported:
                    continue
                owners = definers.get(macro)
                if owners is None or len(owners) != 1:
                    continue  # build-defined or ambiguous: out of scope
                owner = next(iter(owners))
                if owner == s.rel or owner in direct:
                    continue
                reported.add(macro)
                findings.append(
                    ("hygiene", "transitive-macro-include", s.rel, i + 1,
                     f"uses {macro} but does not include its definer "
                     f"\"{owner[4:] if owner.startswith('src/') else owner}\""
                     " directly (include what you use)")
                )

    report["macro_definers"] = {
        m: sorted(files) for m, files in sorted(definers.items())
        if len(files) == 1
    }
    return findings


# --------------------------------------------------------------------------
# Freshness: a stale compile_commands.json means the include graph we just
# scanned may not be the one the build sees.
# --------------------------------------------------------------------------


def check_freshness(cc_path, root):
    """Returns a warning string, or None."""
    cc = pathlib.Path(cc_path)
    if not cc.exists():
        return (
            f"compile_commands.json not found at {cc}; analysis ran from "
            "the source scan alone (run cmake to cross-check the build)"
        )
    cache = cc.parent / "CMakeCache.txt"
    stamp = min(
        p.stat().st_mtime for p in [cc, cache] if p.exists()
    )
    newest = None
    for cml in [
        root / "CMakeLists.txt",
        root / "src" / "CMakeLists.txt",
        root / "tests" / "CMakeLists.txt",
        root / "bench" / "CMakeLists.txt",
        root / "examples" / "CMakeLists.txt",
    ]:
        if cml.exists():
            mt = cml.stat().st_mtime
            if newest is None or mt > newest:
                newest = mt
                newest_file = cml
    if newest is not None and newest > stamp:
        return (
            f"stale CMake cache: {newest_file.relative_to(root)} is newer "
            f"than {cc.name} — re-run cmake so the include graph matches "
            "the build"
        )
    return None


def compile_commands_tus(cc_path, root):
    """Set of src-relative .cpp paths the build actually compiles."""
    try:
        entries = json.loads(pathlib.Path(cc_path).read_text())
    except (OSError, ValueError):
        return None
    tus = set()
    for e in entries:
        f = pathlib.Path(e.get("file", ""))
        if not f.is_absolute():
            f = pathlib.Path(e.get("directory", ".")) / f
        try:
            tus.add(f.resolve().relative_to(root).as_posix())
        except ValueError:
            continue
    return tus


# --------------------------------------------------------------------------
# Baseline.
# --------------------------------------------------------------------------


def load_baseline(path):
    p = pathlib.Path(path)
    if not p.exists():
        return []
    try:
        data = json.loads(p.read_text())
    except ValueError as e:
        raise SystemExit(f"pmpr-analyze: malformed baseline {path}: {e}")
    if data.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(
            f"pmpr-analyze: {path}: schema {data.get('schema')!r} != "
            f"{BASELINE_SCHEMA!r}"
        )
    sups = data.get("suppressions", [])
    for s in sups:
        if not all(k in s for k in ("rule", "file", "reason")):
            raise SystemExit(
                f"pmpr-analyze: {path}: every suppression needs "
                f"rule/file/reason: {s}"
            )
    return sups


def apply_baseline(findings, suppressions):
    """Returns (annotated findings, stale suppression findings)."""
    used = [False] * len(suppressions)
    out = []
    for passname, rule, rel, lineno, msg in findings:
        suppressed = False
        for i, s in enumerate(suppressions):
            if s["rule"] != rule or s["file"] != rel:
                continue
            if "contains" in s and s["contains"] not in msg:
                continue
            used[i] = True
            suppressed = True
        out.append((passname, rule, rel, lineno, msg, suppressed))
    stale = [
        ("baseline", "stale-suppression", s["file"], 0,
         f"suppression for [{s['rule']}] no longer matches any finding "
         f"(reason was: {s['reason']}); delete it", False)
        for i, s in enumerate(suppressions) if not used[i]
    ]
    return out, stale


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--root", default=".", help="repo root")
    ap.add_argument("--config", default=None,
                    help="layers config (default <root>/ci/layers.toml, "
                    "falling back to <root>/layers.toml)")
    ap.add_argument("--baseline", default=None,
                    help="suppression file (default "
                    "<root>/ci/analyze_baseline.json)")
    ap.add_argument("--compile-commands", default=None,
                    help="build compile_commands.json for freshness and "
                    "TU-coverage cross-checks")
    ap.add_argument("--pass", dest="passes", default="all",
                    choices=["layers", "locks", "hygiene", "lint", "all"])
    ap.add_argument("--json", dest="json_out", default=None,
                    help="write the versioned findings report here")
    ap.add_argument("--strict-freshness", action="store_true",
                    help="treat a stale/missing compile_commands.json as a "
                    "failure instead of a warning")
    ap.add_argument("--verbose", action="store_true")
    ap.add_argument("paths", nargs="*", help="default: <root>/src")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    src_root = root / "src"
    paths = args.paths or [str(src_root)]

    config_path = args.config
    if config_path is None:
        for candidate in (root / "ci" / "layers.toml", root / "layers.toml"):
            if candidate.exists():
                config_path = candidate
                break
        if config_path is None:
            raise SystemExit(
                f"pmpr-analyze: no layers.toml under {root} (looked in ci/ "
                "and the root); pass --config"
            )
    config = parse_layers_config(config_path)

    baseline_path = args.baseline or (root / "ci" / "analyze_baseline.json")
    suppressions = load_baseline(baseline_path)

    scans = [
        pmpr_scan.FileScan(f, pmpr_scan.rel_to_root(f, root))
        for f in pmpr_scan.collect_files(paths)
    ]
    io_errors = [
        ("scan", "io-error", s.rel, 0, s.error) for s in scans
        if s.error is not None
    ]
    scans = [s for s in scans if s.error is None]
    tree = Tree(scans, src_root, root)

    warnings = []
    if args.compile_commands:
        warn = check_freshness(args.compile_commands, root)
        if warn:
            warnings.append(warn)
        elif args.verbose:
            tus = compile_commands_tus(args.compile_commands, root)
            if tus is not None:
                scanned_cpp = {
                    s.rel for s in scans if s.path.suffix == ".cpp"
                }
                missing = sorted(scanned_cpp - tus)
                if missing:
                    print(
                        "pmpr-analyze: note: scanned but not in "
                        f"compile_commands.json: {', '.join(missing)}"
                    )

    report = {
        "schema": REPORT_SCHEMA,
        "pass": args.passes,
        "root": str(root),
        "config": str(config_path),
        "files_scanned": len(scans),
        "warnings": warnings,
    }

    findings = list(io_errors)
    if args.passes in ("layers", "all"):
        findings += pass_layers(tree, config, report)
    if args.passes in ("locks", "all"):
        findings += pass_locks(tree, report)
    if args.passes in ("hygiene", "all"):
        findings += pass_hygiene(tree, config, report)
    if args.passes == "lint":
        # The pmpr-lint rules ride the same single scan (same FileScan
        # objects) — pmpr_lint.py remains the canonical CLI, this mode
        # exists so ci/check_all.sh can share one tree walk.
        import pmpr_lint
        findings += [
            ("lint", rule, rel, lineno, msg)
            for rel, lineno, rule, msg in pmpr_scan.run_rules(
                scans, pmpr_lint.RULES
            )
        ]

    findings.sort(key=lambda f: (f[0], f[2], f[3], f[1], f[4]))
    annotated, stale = apply_baseline(findings, suppressions)
    annotated += stale
    if args.strict_freshness:
        annotated += [
            ("freshness", "stale-compile-commands", "compile_commands.json",
             0, w, False)
            for w in warnings
        ]

    failed = [f for f in annotated if not f[5]]
    suppressed_count = sum(1 for f in annotated if f[5])

    report["findings"] = [
        {
            "pass": p, "rule": rule, "file": rel, "line": lineno,
            "message": msg, "suppressed": sup,
        }
        for p, rule, rel, lineno, msg, sup in annotated
    ]
    report["summary"] = {
        "total": len(annotated),
        "suppressed": suppressed_count,
        "failed": len(failed),
    }

    if args.json_out:
        out = pathlib.Path(args.json_out)
        out.write_text(json.dumps(report, indent=2) + "\n")

    for w in warnings:
        print(f"pmpr-analyze: warning: {w}", file=sys.stderr)
    for p, rule, rel, lineno, msg, sup in annotated:
        tag = " (suppressed)" if sup else ""
        print(f"{rel}:{lineno}: [{rule}] {msg}{tag}")
    if failed:
        print(
            f"pmpr-analyze[{args.passes}]: {len(failed)} finding(s) "
            f"({suppressed_count} suppressed) in {len(scans)} file(s)"
        )
        return 1
    print(
        f"pmpr-analyze[{args.passes}]: OK ({len(scans)} file(s), "
        f"{suppressed_count} suppressed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
