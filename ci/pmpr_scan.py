"""Shared single-pass source scanning for pmpr's Python static gates.

Both ci/pmpr_lint.py (file-local discipline rules) and ci/pmpr_analyze.py
(whole-program layering / lock-order / header-hygiene passes) consume
C++ sources the same way: read each file exactly once, strip comments and
string literals, and hand the cleaned lines to every interested rule. This
module owns that machinery so the two tools cannot drift:

  * FileScan        one file, read once: raw lines + comment/string-stripped
                    code lines (block comments handled across lines), plus
                    the parsed `#include "..."` directives.
  * Rule            a named check over one FileScan; `run_rules` dispatches
                    every rule from the single scan and accumulates per-rule
                    wall time so `--verbose` can report where lint time goes.
  * collect_files   directory -> *.hpp/*.cpp/*.h expansion (sorted, stable).

Violations are (rel_path, lineno, rule_id, message) tuples everywhere; the
printed form `rel:line: [rule] message` is shared by both tools and relied
on by the fixture self-tests.
"""

import pathlib
import re
import time

SOURCE_SUFFIXES = (".hpp", ".cpp", ".h")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SYSTEM_INCLUDE_RE = re.compile(r"^\s*#\s*include\s+<([^>]+)>")

_STRING_RE = re.compile(r'"(\\.|[^"\\])*"')
_BLOCK_RE = re.compile(r"/\*.*?\*/")


def strip_code(line):
    """Strips // and single-line /* */ comments plus string literals."""
    line = _STRING_RE.sub('""', line)
    line = _BLOCK_RE.sub("", line)
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


class FileScan:
    """One source file, read and comment-stripped exactly once.

    Attributes:
      path      pathlib.Path as given.
      rel       '/'-separated path relative to the scan root (allowlist key).
      lines     raw text lines (comments intact — rules that look for
                rationale comments need them).
      code      same length as `lines`; comments and string literals
                stripped, multi-line /* */ blocks blanked.
      includes  [(lineno, target)] for `#include "target"` directives.
      system_includes  [(lineno, header)] for `#include <header>`.
      error     IO error string, or None. On error all lists are empty.
    """

    def __init__(self, path, rel):
        self.path = pathlib.Path(path)
        self.rel = rel
        self.lines = []
        self.code = []
        self.includes = []
        self.system_includes = []
        self.error = None
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            self.error = str(e)
            return
        self.lines = text.splitlines()
        in_block = False
        for i, raw in enumerate(self.lines):
            line = raw
            if in_block:
                end = line.find("*/")
                if end < 0:
                    self.code.append("")
                    continue
                line = line[end + 2:]
                in_block = False
            code = strip_code(line)
            if "/*" in code:
                code = code[: code.index("/*")]
                in_block = True
            self.code.append(code)
            # Match includes on the pre-strip line: strip_code blanks
            # string literals, which would erase the include target.
            m = INCLUDE_RE.match(line)
            if m:
                self.includes.append((i + 1, m.group(1)))
            else:
                m = SYSTEM_INCLUDE_RE.match(line)
                if m:
                    self.system_includes.append((i + 1, m.group(1)))

    def is_header(self):
        return self.path.suffix in (".hpp", ".h")


class Rule:
    """One named check. Subclasses (or instances with `fn` set) implement
    check(scan) -> iterable of (rel, lineno, rule_id, message)."""

    def __init__(self, name, fn=None):
        self.name = name
        self.fn = fn

    def check(self, scan):
        return self.fn(scan) if self.fn is not None else ()


def collect_files(paths):
    """Expands files/directories into a stable, sorted source-file list."""
    for p in paths:
        p = pathlib.Path(p)
        if p.is_dir():
            yield from sorted(
                q for q in p.rglob("*") if q.suffix in SOURCE_SUFFIXES
            )
        else:
            yield p


def rel_to_root(path, root):
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def run_rules(scans, rules, timings=None):
    """Dispatches every rule over every scan (each file was read once, by
    its FileScan). `timings`, if a dict, accrues per-rule seconds."""
    violations = []
    for scan in scans:
        if scan.error is not None:
            violations.append((scan.rel, 0, "io-error", scan.error))
            continue
        for rule in rules:
            t0 = time.perf_counter()
            violations.extend(rule.check(scan))
            if timings is not None:
                timings[rule.name] = (
                    timings.get(rule.name, 0.0) + time.perf_counter() - t0
                )
    return violations


def print_violations(violations):
    for rel, lineno, rule, msg in violations:
        print(f"{rel}:{lineno}: [{rule}] {msg}")


def print_timings(timings, total_files):
    print(f"-- per-rule timing over {total_files} file(s):")
    width = max((len(n) for n in timings), default=0)
    for name in sorted(timings, key=timings.get, reverse=True):
        print(f"   {name:<{width}}  {timings[name] * 1e3:8.2f} ms")
