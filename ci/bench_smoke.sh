#!/usr/bin/env bash
# Fast sanity pass over the kernel microbenchmarks (ctest target
# bench.smoke): runs the SpMV/SpMM reference + compiled pairs on a tiny
# surrogate, emits BENCH_kernels.json, and validates the JSON shape —
# all four kernel records present with positive timings and the compiled
# entries carrying speedup_vs_reference. Keeps the --json plumbing and the
# compiled benches from silently rotting without paying for a full
# benchmark run in the plain suite.
set -euo pipefail

BIN=${1:?usage: bench_smoke.sh <bench_micro_kernels binary> [out.json]}
OUT=${2:-BENCH_kernels.json}

"$BIN" --scale=0.002 --json="$OUT" \
  --benchmark_filter='BM_Spmv|BM_Spmm' --benchmark_min_time=0.01

python3 - "$OUT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)

required = [
    "BM_SpmvIteration",
    "BM_SpmvIterationCompiled",
    "BM_SpmmIteration16",
    "BM_SpmmIteration16Compiled",
    "BM_SpmmIteration128Compiled",
]
for name in required:
    assert name in data, f"missing record {name}"
    assert data[name]["ns_per_iteration"] > 0, f"{name}: bad timing"
    assert data[name]["items_per_second"] > 0, f"{name}: bad throughput"
for name in ("BM_SpmvIterationCompiled", "BM_SpmmIteration16Compiled"):
    assert "speedup_vs_reference" in data[name], f"{name}: missing speedup"
# --json implies --counters: every kernel record must carry the telemetry
# counter object with real per-iteration work attributed to it.
for name in required:
    counters = data[name].get("counters")
    assert counters, f"{name}: missing counters object"
    assert counters["edges_traversed"] > 0, f"{name}: no edges counted"
print(f"bench smoke OK: {len(data)} records in {sys.argv[1]}")
EOF
