# Sanitizer wiring for the whole tree (library, tests, benches, examples).
#
#   -DPMPR_SANITIZE=address      AddressSanitizer
#   -DPMPR_SANITIZE=undefined    UndefinedBehaviorSanitizer
#   -DPMPR_SANITIZE=asan+ubsan   both in one build (the CI default; ASan and
#                                UBSan compose, TSan does not)
#   -DPMPR_SANITIZE=thread       ThreadSanitizer — gates the concurrency
#                                layer (tests/par, tests/streaming)
#
# Flags are applied directory-wide so every target — including the gtest
# binaries that exercise the work-stealing pool — is instrumented
# consistently; mixing instrumented and uninstrumented translation units
# yields false negatives (ASan) or false positives (TSan).
# ci/sanitize.sh drives the full matrix.

set(PMPR_SANITIZE "" CACHE STRING
    "Sanitizer mode: address, undefined, asan+ubsan, or thread (empty = off)")
set_property(CACHE PMPR_SANITIZE PROPERTY STRINGS
             "" address undefined asan+ubsan thread)

if(PMPR_SANITIZE)
  if(PMPR_SANITIZE STREQUAL "address")
    set(_pmpr_sanitize_arg "address")
  elseif(PMPR_SANITIZE STREQUAL "undefined")
    set(_pmpr_sanitize_arg "undefined")
  elseif(PMPR_SANITIZE STREQUAL "asan+ubsan"
         OR PMPR_SANITIZE STREQUAL "address,undefined")
    set(_pmpr_sanitize_arg "address,undefined")
  elseif(PMPR_SANITIZE STREQUAL "thread")
    set(_pmpr_sanitize_arg "thread")
  else()
    message(FATAL_ERROR
            "PMPR_SANITIZE='${PMPR_SANITIZE}' is not a known mode "
            "(address | undefined | asan+ubsan | thread)")
  endif()

  # -fno-sanitize-recover turns every UBSan diagnostic into a hard failure
  # so ctest actually fails; frame pointers keep the reports readable.
  add_compile_options(-fsanitize=${_pmpr_sanitize_arg}
                      -fno-omit-frame-pointer
                      -fno-sanitize-recover=all
                      -g)
  add_link_options(-fsanitize=${_pmpr_sanitize_arg})
  message(STATUS "pmpr: building with -fsanitize=${_pmpr_sanitize_arg}")
endif()
