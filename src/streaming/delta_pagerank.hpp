// Riedy-style ∆-push incremental PageRank (paper §3.3.2, Eq. 3).
//
// STINGER's streaming PageRank does not re-iterate the whole graph after a
// batch of edge changes: it propagates the *change* from the vertices whose
// neighborhoods were touched, following
//
//   ∆x_{k+1} = d·A_∆ᵀD_∆⁻¹·∆x_k + d·(A_∆ᵀD_∆⁻¹ − AᵀD⁻¹)·x + r
//
// (the paper's Eq. 3, with d the damping factor = 1 − α_teleport and r the
// residual). This implementation realizes the same idea as a threshold-
// driven worklist: vertices affected by the batch are re-evaluated; any
// whose value moves more than a push threshold enqueue their out-neighbors;
// when the frontier dies out, a small number of full power sweeps absorb
// the global teleport/dangling coupling and certify the usual L1 tolerance,
// so results stay numerically interchangeable with the other execution
// models.
//
// Compared to IncrementalPagerank (plain warm restart), the ∆-push pass
// touches far fewer edges per window when batches are small relative to
// the window — the streaming model's best case.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pagerank/pagerank.hpp"
#include "streaming/dynamic_graph.hpp"

namespace pmpr::streaming {

/// Work statistics distinguishing the localized phase from the certifying
/// full sweeps (exposed so benchmarks can show where ∆-push wins).
struct DeltaPagerankStats {
  PagerankStats pagerank;          ///< Final residual + full-sweep count.
  std::size_t frontier_rounds = 0; ///< Worklist rounds executed.
  std::size_t frontier_visits = 0; ///< Vertex re-evaluations in the phase.
};

class DeltaPagerank {
 public:
  DeltaPagerank(const DynamicGraph& graph, PagerankParams params);

  /// Refreshes PageRank after the caller applied `inserted` and `removed`
  /// to the graph. The batches are only used to seed the frontier; the
  /// graph is the source of truth. First call (or call after reset())
  /// cold-starts with full power iteration.
  DeltaPagerankStats update(std::span<const TemporalEdge> inserted,
                            std::span<const TemporalEdge> removed);

  void reset() { has_previous_ = false; }

  [[nodiscard]] std::span<const double> values() const { return x_; }

 private:
  void seed_frontier(std::span<const TemporalEdge> batch);
  /// Re-evaluates one vertex from the current vector; returns the change.
  double evaluate(VertexId v, double base) const;
  DeltaPagerankStats converge_full();

  const DynamicGraph& graph_;
  PagerankParams params_;
  std::vector<double> x_;
  std::vector<double> scratch_;
  std::vector<std::uint8_t> prev_active_;
  std::vector<VertexId> frontier_;
  std::vector<std::uint32_t> queued_epoch_;
  std::uint32_t epoch_ = 0;
  bool has_previous_ = false;
};

}  // namespace pmpr::streaming
