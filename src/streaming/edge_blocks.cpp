#include "streaming/edge_blocks.hpp"

#include <cassert>

namespace pmpr::streaming {

bool BlockChain::insert(VertexId nbr, BlockPool& pool) {
  // Scan the chain for an existing slot (merge) while remembering the last
  // block with spare capacity.
  EdgeBlock* spare = nullptr;
  EdgeBlock* last = nullptr;
  for (EdgeBlock* b = head_; b != nullptr; b = b->next) {
    for (std::uint32_t i = 0; i < b->count; ++i) {
      if (b->slots[i].nbr == nbr) {
        ++b->slots[i].weight;
        return false;
      }
    }
    if (b->count < kEdgeBlockCapacity) spare = b;
    last = b;
  }
  if (spare == nullptr) {
    EdgeBlock* fresh = pool.acquire();
    if (last != nullptr) {
      last->next = fresh;
    } else {
      head_ = fresh;
    }
    spare = fresh;
  }
  spare->slots[spare->count++] = EdgeSlot{nbr, 1};
  ++degree_;
  return true;
}

int BlockChain::remove(VertexId nbr, BlockPool& pool) {
  EdgeBlock* prev = nullptr;
  for (EdgeBlock* b = head_; b != nullptr; prev = b, b = b->next) {
    for (std::uint32_t i = 0; i < b->count; ++i) {
      if (b->slots[i].nbr != nbr) continue;
      if (--b->slots[i].weight > 0) return 0;
      // Slot emptied: fill the hole with the block's last slot.
      b->slots[i] = b->slots[b->count - 1];
      --b->count;
      --degree_;
      if (b->count == 0) {
        if (prev != nullptr) {
          prev->next = b->next;
        } else {
          head_ = b->next;
        }
        pool.release(b);
      }
      return 1;
    }
  }
  assert(false && "remove of an event that was never inserted");
  return 0;
}

void BlockChain::clear(BlockPool& pool) {
  while (head_ != nullptr) {
    EdgeBlock* next = head_->next;
    pool.release(head_);
    head_ = next;
  }
  degree_ = 0;
}

}  // namespace pmpr::streaming
