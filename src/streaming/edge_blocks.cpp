#include "streaming/edge_blocks.hpp"

#include <unordered_set>

#include "util/check.hpp"

namespace pmpr::streaming {

bool BlockChain::insert(VertexId nbr, BlockPool& pool) {
  // Scan the chain for an existing slot (merge) while remembering the last
  // block with spare capacity.
  EdgeBlock* spare = nullptr;
  EdgeBlock* last = nullptr;
  for (EdgeBlock* b = head_; b != nullptr; b = b->next) {
    for (std::uint32_t i = 0; i < b->count; ++i) {
      if (b->slots[i].nbr == nbr) {
        ++b->slots[i].weight;
        return false;
      }
    }
    if (b->count < kEdgeBlockCapacity) spare = b;
    last = b;
  }
  if (spare == nullptr) {
    EdgeBlock* fresh = pool.acquire();
    if (last != nullptr) {
      last->next = fresh;
    } else {
      head_ = fresh;
    }
    spare = fresh;
  }
  spare->slots[spare->count++] = EdgeSlot{nbr, 1};
  ++degree_;
  return true;
}

int BlockChain::remove(VertexId nbr, BlockPool& pool) {
  EdgeBlock* prev = nullptr;
  for (EdgeBlock* b = head_; b != nullptr; prev = b, b = b->next) {
    for (std::uint32_t i = 0; i < b->count; ++i) {
      if (b->slots[i].nbr != nbr) continue;
      if (--b->slots[i].weight > 0) return 0;
      // Slot emptied: fill the hole with the block's last slot.
      b->slots[i] = b->slots[b->count - 1];
      --b->count;
      --degree_;
      if (b->count == 0) {
        if (prev != nullptr) {
          prev->next = b->next;
        } else {
          head_ = b->next;
        }
        pool.release(b);
      }
      return 1;
    }
  }
  PMPR_CHECK_MSG(false, "remove of event towards vertex "
                            << nbr << " that was never inserted (the "
                            << "expire stream does not match the inserts)");
  return 0;
}

void BlockChain::validate(VertexId num_vertices) const {
  std::unordered_set<VertexId> seen;
  std::uint32_t slots = 0;
  for (const EdgeBlock* b = head_; b != nullptr; b = b->next) {
    PMPR_CHECK_MSG(b->count >= 1,
                   "edge-block chain holds an empty block (should have been "
                   "released to the pool)");
    PMPR_CHECK_MSG(b->count <= kEdgeBlockCapacity,
                   "edge block claims " << b->count << " slots, capacity is "
                                        << kEdgeBlockCapacity);
    for (std::uint32_t i = 0; i < b->count; ++i) {
      const EdgeSlot& s = b->slots[i];
      PMPR_CHECK_MSG(s.nbr < num_vertices,
                     "edge slot references vertex " << s.nbr
                         << " outside [0, " << num_vertices << ")");
      PMPR_CHECK_MSG(s.weight >= 1,
                     "edge slot towards " << s.nbr << " has zero weight "
                         << "(should have been erased)");
      PMPR_CHECK_MSG(seen.insert(s.nbr).second,
                     "neighbor " << s.nbr << " appears in two slots of the "
                         << "same chain");
      ++slots;
    }
  }
  PMPR_CHECK_MSG(slots == degree_, "chain holds " << slots
                                       << " slots but cached degree is "
                                       << degree_);
}

void BlockChain::clear(BlockPool& pool) {
  while (head_ != nullptr) {
    EdgeBlock* next = head_->next;
    pool.release(head_);
    head_ = next;
  }
  degree_ = 0;
}

}  // namespace pmpr::streaming
