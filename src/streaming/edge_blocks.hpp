// Edge-block storage for the streaming dynamic graph.
//
// This reproduces the core layout of STINGER (Riedy et al.), the streaming
// middleware the paper benchmarks against: each vertex owns a linked chain
// of fixed-capacity edge blocks; parallel events between the same vertex
// pair merge into one slot with a multiplicity counter. Blocks come from a
// pooled arena with a free list, so insertion/expiry costs are dominated by
// chain scans and pointer chasing — exactly the structural overhead the
// paper's streaming baseline pays.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "graph/types.hpp"

namespace pmpr::streaming {

/// One stored (distinct) edge endpoint with its event multiplicity.
struct EdgeSlot {
  VertexId nbr = 0;
  std::uint32_t weight = 0;  ///< Number of live events for this pair.
};

/// STINGER uses smallish blocks; 14 slots + metadata keeps a block within
/// two cache lines.
inline constexpr std::size_t kEdgeBlockCapacity = 14;

struct EdgeBlock {
  std::array<EdgeSlot, kEdgeBlockCapacity> slots;
  std::uint32_t count = 0;
  EdgeBlock* next = nullptr;
};

/// Arena + free-list allocator for edge blocks. Blocks are recycled on
/// release; the arena only grows (deque keeps addresses stable).
class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  EdgeBlock* acquire() {
    if (free_ != nullptr) {
      EdgeBlock* b = free_;
      free_ = b->next;
      b->count = 0;
      b->next = nullptr;
      return b;
    }
    arena_.emplace_back();
    return &arena_.back();
  }

  void release(EdgeBlock* b) {
    b->next = free_;
    free_ = b;
  }

  [[nodiscard]] std::size_t blocks_allocated() const { return arena_.size(); }

 private:
  std::deque<EdgeBlock> arena_;
  EdgeBlock* free_ = nullptr;
};

/// A per-vertex adjacency: chain of edge blocks plus a cached distinct
/// degree. `insert` and `remove` return the degree delta (0 or ±1).
class BlockChain {
 public:
  /// Adds one event towards `nbr`; merges into an existing slot if present.
  /// Returns true if this created a new distinct neighbor.
  bool insert(VertexId nbr, BlockPool& pool);

  /// Removes one event towards `nbr` (weight--; slot erased at zero).
  /// Returns +1 if a distinct neighbor disappeared, 0 if only the weight
  /// dropped. Throws pmpr::InvariantError if the event was never inserted
  /// (the streaming runner only expires events it inserted; an unknown
  /// removal means the caller's stream is inconsistent).
  int remove(VertexId nbr, BlockPool& pool);

  [[nodiscard]] std::uint32_t degree() const { return degree_; }
  [[nodiscard]] bool empty() const { return degree_ == 0; }

  /// Iterates distinct neighbors: fn(nbr, weight).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const EdgeBlock* b = head_; b != nullptr; b = b->next) {
      for (std::uint32_t i = 0; i < b->count; ++i) {
        fn(b->slots[i].nbr, b->slots[i].weight);
      }
    }
  }

  /// Releases every block back to the pool.
  void clear(BlockPool& pool);

  /// Chain-integrity audit: every block non-empty with count <= capacity,
  /// every slot's weight >= 1 and neighbor < num_vertices, no neighbor
  /// duplicated across the chain, cached degree == total slot count.
  /// Throws pmpr::InvariantError naming the first violation.
  void validate(VertexId num_vertices) const;

 private:
  EdgeBlock* head_ = nullptr;
  std::uint32_t degree_ = 0;  ///< Distinct neighbors (total slot count).
};

}  // namespace pmpr::streaming
