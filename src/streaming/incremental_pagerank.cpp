#include "streaming/incremental_pagerank.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "obs/counters.hpp"
#include "pagerank/partial_init.hpp"

namespace pmpr::streaming {

IncrementalPagerank::IncrementalPagerank(const DynamicGraph& graph,
                                         PagerankParams params)
    : graph_(graph),
      params_(params),
      x_(graph.num_vertices(), 0.0),
      scratch_(graph.num_vertices(), 0.0),
      prev_active_(graph.num_vertices(), 0) {}

void IncrementalPagerank::reset() { has_previous_ = false; }

void IncrementalPagerank::build_initial_vector() {
  const std::size_t n = x_.size();
  std::vector<std::uint8_t> cur_active(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    cur_active[v] = graph_.is_active(static_cast<VertexId>(v)) ? 1 : 0;
  }
  if (has_previous_) {
    // Carry the previous solution onto the new active set (same rescaling
    // as the postmortem partial initialization, Eq. 4).
    partial_init(x_, prev_active_, cur_active, graph_.num_active(), x_);
  } else {
    full_init(cur_active, graph_.num_active(), x_);
  }
  prev_active_ = std::move(cur_active);
}

PagerankStats IncrementalPagerank::update(const par::ForOptions* parallel) {
  const std::size_t n = x_.size();
  PagerankStats stats;
  if (graph_.num_active() == 0) {
    std::fill(x_.begin(), x_.end(), 0.0);
    has_previous_ = false;
    return stats;
  }
  build_initial_vector();

  const auto n_active = static_cast<double>(graph_.num_active());
  const double one_minus_alpha = 1.0 - params_.alpha;
  double* cur = x_.data();
  double* next = scratch_.data();

  auto sweep = [&](const double* from, double* to, double base,
                   std::size_t lo, std::size_t hi) {
    double diff = 0.0;
    std::uint64_t edges = 0;  // flushed once per chunk, not per edge
    for (std::size_t v = lo; v < hi; ++v) {
      if (!graph_.is_active(static_cast<VertexId>(v))) {
        to[v] = 0.0;
        continue;
      }
      double sum = 0.0;
      graph_.for_each_in(static_cast<VertexId>(v),
                         [&](VertexId u, std::uint32_t /*weight*/) {
                           sum += from[u] /
                                  static_cast<double>(graph_.out_degree(u));
                           ++edges;
                         });
      const double value = base + one_minus_alpha * sum;
      diff += std::abs(value - from[v]);
      to[v] = value;
    }
    obs::count(obs::Counter::kEdgesTraversed, edges);
    return diff;
  };

  for (int iter = 0; iter < params_.max_iters; ++iter) {
    double dangling = 0.0;
    if (params_.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        if (graph_.is_active(static_cast<VertexId>(v)) &&
            graph_.out_degree(static_cast<VertexId>(v)) == 0) {
          dangling += cur[v];
        }
      }
    }
    const double base =
        (params_.alpha + one_minus_alpha * dangling) / n_active;

    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce(
          0, n, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep(cur, next, base, lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep(cur, next, base, 0, n);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (obs::metrics_enabled()) stats.residuals.push_back(diff);
    if (diff < params_.tol) break;
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));
  if (params_.redistribute_dangling) {
    obs::count(obs::Counter::kDanglingScanned,
               static_cast<std::uint64_t>(stats.iterations) * n);
  }
  if (stats.converged(params_)) obs::count(obs::Counter::kLanesConverged);

  if (cur != x_.data()) {
    std::memcpy(x_.data(), cur, n * sizeof(double));
  }
  has_previous_ = true;
  return stats;
}

}  // namespace pmpr::streaming
