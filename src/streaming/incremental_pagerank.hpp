// Incremental PageRank for the streaming model (paper §3.3.2).
//
// After every batch of graph updates the analysis is refreshed from the
// previous solution rather than from scratch, following the approach of
// Riedy's streaming PageRank (Eq. 3 in the paper): the previous vector is
// carried over (renormalized onto the new active set, which bounds the
// residual r introduced by the batch) and power iterations run until the
// residual falls below tolerance. Because consecutive windows are similar,
// this converges in far fewer iterations than a cold start — the streaming
// model's one algorithmic advantage.
//
// Iterations traverse the dynamic graph's edge-block chains directly, so
// the kernel pays the pointer-chasing cost of the mutable representation —
// faithful to running PageRank inside STINGER.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pagerank/pagerank.hpp"
#include "streaming/dynamic_graph.hpp"

namespace pmpr::streaming {

class IncrementalPagerank {
 public:
  IncrementalPagerank(const DynamicGraph& graph, PagerankParams params);

  /// Refreshes the PageRank vector for the graph's current state. The first
  /// call cold-starts from the uniform vector; later calls warm-start from
  /// the previous solution. Non-null `parallel` runs each sweep as a
  /// parallel_for — the only level of parallelism the streaming model has.
  PagerankStats update(const par::ForOptions* parallel = nullptr);

  /// Forgets the previous solution (next update cold-starts). Used by the
  /// "streaming without incremental" ablation.
  void reset();

  [[nodiscard]] std::span<const double> values() const { return x_; }

 private:
  void build_initial_vector();

  const DynamicGraph& graph_;
  PagerankParams params_;
  std::vector<double> x_;
  std::vector<double> scratch_;
  std::vector<std::uint8_t> prev_active_;
  bool has_previous_ = false;
};

}  // namespace pmpr::streaming
