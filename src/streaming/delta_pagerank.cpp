#include "streaming/delta_pagerank.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "obs/counters.hpp"
#include "pagerank/partial_init.hpp"

namespace pmpr::streaming {

DeltaPagerank::DeltaPagerank(const DynamicGraph& graph, PagerankParams params)
    : graph_(graph),
      params_(params),
      x_(graph.num_vertices(), 0.0),
      scratch_(graph.num_vertices(), 0.0),
      prev_active_(graph.num_vertices(), 0),
      queued_epoch_(graph.num_vertices(), 0) {}

double DeltaPagerank::evaluate(VertexId v, double base) const {
  double sum = 0.0;
  graph_.for_each_in(v, [&](VertexId u, std::uint32_t /*weight*/) {
    sum += x_[u] / static_cast<double>(graph_.out_degree(u));
  });
  return base + (1.0 - params_.alpha) * sum;
}

void DeltaPagerank::seed_frontier(std::span<const TemporalEdge> batch) {
  auto enqueue = [this](VertexId v) {
    if (queued_epoch_[v] != epoch_ && graph_.is_active(v)) {
      queued_epoch_[v] = epoch_;
      frontier_.push_back(v);
    }
  };
  for (const auto& e : batch) {
    // The destination's pull sum changed directly; the source's out-degree
    // changed, which perturbs every one of its current out-neighbors.
    enqueue(e.dst);
    graph_.for_each_out(e.src,
                        [&](VertexId w, std::uint32_t) { enqueue(w); });
  }
}

DeltaPagerankStats DeltaPagerank::converge_full() {
  // Full power iterations from the current vector until the L1 criterion —
  // identical math to IncrementalPagerank's loop; also certifies the
  // frontier phase's result.
  DeltaPagerankStats stats;
  const std::size_t n = x_.size();
  const auto n_active = static_cast<double>(graph_.num_active());
  const double d = 1.0 - params_.alpha;
  double* cur = x_.data();
  double* next = scratch_.data();
  for (int iter = 0; iter < params_.max_iters; ++iter) {
    double dangling = 0.0;
    if (params_.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        if (graph_.is_active(static_cast<VertexId>(v)) &&
            graph_.out_degree(static_cast<VertexId>(v)) == 0) {
          dangling += cur[v];
        }
      }
    }
    const double base = (params_.alpha + d * dangling) / n_active;
    double diff = 0.0;
    std::uint64_t edges = 0;  // flushed once per iteration, not per edge
    for (std::size_t v = 0; v < n; ++v) {
      if (!graph_.is_active(static_cast<VertexId>(v))) {
        next[v] = 0.0;
        continue;
      }
      double sum = 0.0;
      graph_.for_each_in(static_cast<VertexId>(v),
                         [&](VertexId u, std::uint32_t) {
                           sum += cur[u] /
                                  static_cast<double>(graph_.out_degree(u));
                           ++edges;
                         });
      const double value = base + d * sum;
      diff += std::abs(value - cur[v]);
      next[v] = value;
    }
    obs::count(obs::Counter::kEdgesTraversed, edges);
    std::swap(cur, next);
    stats.pagerank.iterations = iter + 1;
    stats.pagerank.final_residual = diff;
    if (obs::metrics_enabled()) stats.pagerank.residuals.push_back(diff);
    if (diff < params_.tol) break;
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.pagerank.iterations));
  if (params_.redistribute_dangling) {
    obs::count(obs::Counter::kDanglingScanned,
               static_cast<std::uint64_t>(stats.pagerank.iterations) * n);
  }
  if (stats.pagerank.converged(params_)) {
    obs::count(obs::Counter::kLanesConverged);
  }
  if (cur != x_.data()) {
    std::memcpy(x_.data(), cur, n * sizeof(double));
  }
  return stats;
}

DeltaPagerankStats DeltaPagerank::update(
    std::span<const TemporalEdge> inserted,
    std::span<const TemporalEdge> removed) {
  DeltaPagerankStats stats;
  const std::size_t n = x_.size();
  if (graph_.num_active() == 0) {
    std::fill(x_.begin(), x_.end(), 0.0);
    has_previous_ = false;
    return stats;
  }

  // Carry the previous solution onto the new active set.
  std::vector<std::uint8_t> cur_active(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    cur_active[v] = graph_.is_active(static_cast<VertexId>(v)) ? 1 : 0;
  }
  if (has_previous_) {
    partial_init(x_, prev_active_, cur_active, graph_.num_active(), x_);
  } else {
    full_init(cur_active, graph_.num_active(), x_);
  }
  prev_active_ = std::move(cur_active);

  if (has_previous_) {
    // ---- Localized ∆-push phase (Eq. 3's restricted propagation) -------
    const auto n_active = static_cast<double>(graph_.num_active());
    const double d = 1.0 - params_.alpha;
    // Push threshold: tight enough that the certification sweeps converge
    // in a couple of iterations, loose enough to keep the frontier local.
    const double theta = params_.tol / (8.0 * n_active);

    ++epoch_;
    frontier_.clear();
    seed_frontier(inserted);
    seed_frontier(removed);

    // Base frozen across the phase; the certification sweeps repair the
    // teleport/dangling coupling afterwards.
    double dangling = 0.0;
    if (params_.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        if (prev_active_[v] != 0 &&
            graph_.out_degree(static_cast<VertexId>(v)) == 0) {
          dangling += x_[v];
        }
      }
    }
    const double base = (params_.alpha + d * dangling) / n_active;

    const std::size_t max_rounds = 64;
    std::vector<VertexId> next_frontier;
    for (std::size_t round = 0;
         round < max_rounds && !frontier_.empty() &&
         stats.frontier_visits < 4 * n;
         ++round) {
      ++stats.frontier_rounds;
      next_frontier.clear();
      ++epoch_;
      for (const VertexId v : frontier_) {
        ++stats.frontier_visits;
        const double value = evaluate(v, base);
        const double change = std::abs(value - x_[v]);
        x_[v] = value;
        if (change > theta) {
          graph_.for_each_out(v, [&](VertexId w, std::uint32_t) {
            if (queued_epoch_[w] != epoch_ && graph_.is_active(w)) {
              queued_epoch_[w] = epoch_;
              next_frontier.push_back(w);
            }
          });
        }
      }
      frontier_.swap(next_frontier);
    }

    // The localized updates do not preserve total probability mass, and a
    // mass error can only decay at the slow damping rate d per sweep —
    // which would erase the phase's benefit. Project back onto the mass-1
    // manifold before certifying.
    double mass = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (prev_active_[v] != 0) mass += x_[v];
    }
    if (mass > 0.0) {
      const double inv = 1.0 / mass;
      for (std::size_t v = 0; v < n; ++v) x_[v] *= inv;
    }
  }

  // ---- Certification: full sweeps to the shared tolerance --------------
  const DeltaPagerankStats full = converge_full();
  stats.pagerank = full.pagerank;
  has_previous_ = true;
  return stats;
}

}  // namespace pmpr::streaming
