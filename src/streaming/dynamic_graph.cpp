#include "streaming/dynamic_graph.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "util/check.hpp"

namespace pmpr::streaming {

namespace {

/// Shared endpoint validation for the single-event entry points.
void check_endpoints(VertexId u, VertexId v, VertexId n, const char* op) {
  PMPR_CHECK_MSG(u < n && v < n, op << " <" << u << ", " << v
                                    << "> has an endpoint outside the vertex "
                                    << "space [0, " << n << ")");
}

}  // namespace

DynamicGraph::DynamicGraph(VertexId num_vertices)
    : vertices_(num_vertices) {}

void DynamicGraph::track_activity(VertexId v, bool was_active) {
  const bool now_active = is_active(v);
  if (was_active && !now_active) {
    --num_active_;
  } else if (!was_active && now_active) {
    ++num_active_;
  }
}

void DynamicGraph::insert_event(VertexId u, VertexId v) {
  check_endpoints(u, v, num_vertices(), "insert of event");
  const bool u_was = is_active(u);
  const bool v_was = u == v ? u_was : is_active(v);
  if (vertices_[u].out.insert(v, pool_)) ++num_edges_;
  vertices_[v].in.insert(u, pool_);
  track_activity(u, u_was);
  if (v != u) track_activity(v, v_was);
}

void DynamicGraph::remove_event(VertexId u, VertexId v) {
  check_endpoints(u, v, num_vertices(), "remove of event");
  const bool u_was = is_active(u);
  const bool v_was = u == v ? u_was : is_active(v);
  if (vertices_[u].out.remove(v, pool_) != 0) --num_edges_;
  vertices_[v].in.remove(u, pool_);
  track_activity(u, u_was);
  if (v != u) track_activity(v, v_was);
}

void DynamicGraph::insert_batch(std::span<const TemporalEdge> events) {
  check_batch(events, "insert batch");
  for (const auto& e : events) insert_event(e.src, e.dst);
}

void DynamicGraph::remove_batch(std::span<const TemporalEdge> events) {
  check_batch(events, "remove batch");
  for (const auto& e : events) remove_event(e.src, e.dst);
}

void DynamicGraph::check_batch(std::span<const TemporalEdge> events,
                               const char* op) const {
  const VertexId n = num_vertices();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TemporalEdge& e = events[i];
    PMPR_CHECK_MSG(e.src < n && e.dst < n,
                   op << " event " << i << " = <" << e.src << ", " << e.dst
                      << ", " << e.time << "> has an endpoint outside the "
                      << "vertex space [0, " << n << ")");
  }
}

void DynamicGraph::validate() const {
  const VertexId n = num_vertices();
  std::size_t edges = 0;
  std::size_t active = 0;
  // (src, dst, weight) triples from each direction; equal multisets iff the
  // two adjacency directions describe the same graph.
  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> out_edges;
  std::vector<std::tuple<VertexId, VertexId, std::uint32_t>> in_edges;
  for (VertexId v = 0; v < n; ++v) {
    vertices_[v].out.validate(n);
    vertices_[v].in.validate(n);
    edges += vertices_[v].out.degree();
    if (is_active(v)) ++active;
    vertices_[v].out.for_each([&](VertexId nbr, std::uint32_t w) {
      out_edges.emplace_back(v, nbr, w);
    });
    vertices_[v].in.for_each([&](VertexId nbr, std::uint32_t w) {
      in_edges.emplace_back(nbr, v, w);
    });
  }
  PMPR_CHECK_MSG(edges == num_edges_,
                 "chains hold " << edges << " distinct edges but the cached "
                                << "count is " << num_edges_);
  PMPR_CHECK_MSG(active == num_active_,
                 "recount finds " << active << " active vertices but the "
                                  << "cached count is " << num_active_);
  std::sort(out_edges.begin(), out_edges.end());
  std::sort(in_edges.begin(), in_edges.end());
  PMPR_CHECK_MSG(out_edges == in_edges,
                 "out- and in-adjacency describe different edge sets ("
                     << out_edges.size() << " vs " << in_edges.size()
                     << " slots; directions out of sync)");
}

}  // namespace pmpr::streaming
