#include "streaming/dynamic_graph.hpp"

namespace pmpr::streaming {

DynamicGraph::DynamicGraph(VertexId num_vertices)
    : vertices_(num_vertices) {}

void DynamicGraph::track_activity(VertexId v, bool was_active) {
  const bool now_active = is_active(v);
  if (was_active && !now_active) {
    --num_active_;
  } else if (!was_active && now_active) {
    ++num_active_;
  }
}

void DynamicGraph::insert_event(VertexId u, VertexId v) {
  const bool u_was = is_active(u);
  const bool v_was = u == v ? u_was : is_active(v);
  if (vertices_[u].out.insert(v, pool_)) ++num_edges_;
  vertices_[v].in.insert(u, pool_);
  track_activity(u, u_was);
  if (v != u) track_activity(v, v_was);
}

void DynamicGraph::remove_event(VertexId u, VertexId v) {
  const bool u_was = is_active(u);
  const bool v_was = u == v ? u_was : is_active(v);
  if (vertices_[u].out.remove(v, pool_) != 0) --num_edges_;
  vertices_[v].in.remove(u, pool_);
  track_activity(u, u_was);
  if (v != u) track_activity(v, v_was);
}

void DynamicGraph::insert_batch(std::span<const TemporalEdge> events) {
  for (const auto& e : events) insert_event(e.src, e.dst);
}

void DynamicGraph::remove_batch(std::span<const TemporalEdge> events) {
  for (const auto& e : events) remove_event(e.src, e.dst);
}

}  // namespace pmpr::streaming
