// The streaming execution model's graph: a mutable directed multigraph over
// a fixed vertex space, maintaining both adjacency directions as edge-block
// chains (STINGER stores both too; the pull-style PageRank reads in-edges
// and out-degrees).
//
// The streaming runner drives it window by window: events arriving in the
// new window are inserted, events that slid out are removed. Unlike the
// postmortem representation, only the *current* graph exists — which is
// precisely why the streaming model cannot parallelize across windows
// (paper §3.3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "streaming/edge_blocks.hpp"

namespace pmpr::streaming {

class DynamicGraph {
 public:
  explicit DynamicGraph(VertexId num_vertices);

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(vertices_.size());
  }

  /// One event ⟨u,v⟩ enters the window. Throws pmpr::InvariantError if an
  /// endpoint is outside the fixed vertex space (also in release builds —
  /// the chains would otherwise be indexed out of bounds).
  void insert_event(VertexId u, VertexId v);
  /// One previously inserted event ⟨u,v⟩ expires from the window. Throws
  /// pmpr::InvariantError on out-of-range endpoints or if the event was
  /// never inserted.
  void remove_event(VertexId u, VertexId v);

  /// Batch forms used by the streaming runner (counts update bookkeeping).
  /// Endpoints are validated before any mutation, so a malformed batch is
  /// rejected whole instead of leaving the graph half-updated.
  void insert_batch(std::span<const TemporalEdge> events);
  void remove_batch(std::span<const TemporalEdge> events);

  [[nodiscard]] std::uint32_t out_degree(VertexId u) const {
    return vertices_[u].out.degree();
  }
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const {
    return vertices_[v].in.degree();
  }
  [[nodiscard]] bool is_active(VertexId v) const {
    return !vertices_[v].out.empty() || !vertices_[v].in.empty();
  }
  [[nodiscard]] std::size_t num_active() const { return num_active_; }

  /// Distinct directed edges currently in the graph.
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  template <typename Fn>
  void for_each_out(VertexId u, Fn&& fn) const {
    vertices_[u].out.for_each(fn);
  }
  template <typename Fn>
  void for_each_in(VertexId v, Fn&& fn) const {
    vertices_[v].in.for_each(fn);
  }

  [[nodiscard]] std::size_t blocks_allocated() const {
    return pool_.blocks_allocated();
  }

  /// Deep structural audit, O(V + E): every chain passes its integrity
  /// check, the out and in directions describe the same weighted edge set,
  /// and the cached num_edges()/num_active() match a recount. Throws
  /// pmpr::InvariantError. Invoked per window by the streaming runner when
  /// StreamingOptions::validate is set.
  void validate() const;

 private:
  struct VertexRecord {
    BlockChain out;
    BlockChain in;
  };

  void track_activity(VertexId v, bool was_active);
  /// Validates every endpoint of `events` before any mutation.
  void check_batch(std::span<const TemporalEdge> events, const char* op) const;

  std::vector<VertexRecord> vertices_;
  BlockPool pool_;
  std::size_t num_active_ = 0;
  std::size_t num_edges_ = 0;
};

}  // namespace pmpr::streaming
