// Postmortem betweenness centrality over the sliding windows.
//
// Betweenness is named alongside closeness in the paper's §3.1 and has a
// streaming-update literature of its own (Green, McColl & Bader, cited in
// §3.2). Exact betweenness is Brandes' algorithm — one augmented BFS per
// vertex; for large windows this kernel also supports the standard
// source-sampling estimator (Brandes–Pich): accumulate dependencies from k
// sampled sources and scale by n/k.
//
// Computed on the undirected window graph (unweighted shortest paths),
// endpoints excluded, each unordered pair counted once (scores are halved).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

struct BetweennessParams {
  /// 0 = exact (one Brandes pass per active vertex); otherwise the number
  /// of sampled sources per window (estimates scale by actives/samples).
  std::size_t sample_sources = 0;
  std::uint64_t seed = 42;
};

struct BetweennessResult {
  std::vector<double> score;  ///< Per local vertex; 0 if inactive.
  std::size_t num_active = 0;
  std::size_t passes = 0;  ///< Brandes passes performed.
};

BetweennessResult betweenness_window(const MultiWindowGraph& part,
                                     Timestamp ts, Timestamp te,
                                     const BetweennessParams& params);

struct BetweennessSummary {
  std::size_t window = 0;
  VertexId top_vertex = kInvalidVertex;
  double top_score = 0.0;
  std::size_t num_active = 0;
};

std::vector<BetweennessSummary> betweenness_over_windows(
    const MultiWindowSet& set, const BetweennessParams& params,
    const par::ForOptions* parallel = nullptr);

}  // namespace pmpr::analysis
