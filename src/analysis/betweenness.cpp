#include "analysis/betweenness.hpp"

#include <algorithm>

#include "analysis/undirected.hpp"
#include "util/rng.hpp"

namespace pmpr::analysis {

namespace {

/// One Brandes pass from `source`: BFS computing shortest-path counts, then
/// reverse accumulation of dependencies into `score`.
struct BrandesScratch {
  std::vector<std::int32_t> dist;
  std::vector<double> sigma;  ///< Shortest-path counts.
  std::vector<double> delta;  ///< Dependencies.
  std::vector<VertexId> order;

  void resize(std::size_t n) {
    dist.assign(n, -1);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    order.clear();
    order.reserve(n);
  }
};

void brandes_pass(const UndirectedWindow& g, VertexId source,
                  BrandesScratch& s, std::vector<double>& score,
                  double weight) {
  s.resize(g.degree.size());
  s.dist[source] = 0;
  s.sigma[source] = 1.0;
  s.order.push_back(source);
  for (std::size_t head = 0; head < s.order.size(); ++head) {
    const VertexId v = s.order[head];
    for (const VertexId u : g.neighbors(v)) {
      if (s.dist[u] < 0) {
        s.dist[u] = s.dist[v] + 1;
        s.order.push_back(u);
      }
      if (s.dist[u] == s.dist[v] + 1) {
        s.sigma[u] += s.sigma[v];
      }
    }
  }
  // Reverse accumulation (order is BFS order, so reverse = non-increasing
  // distance).
  for (std::size_t i = s.order.size(); i-- > 1;) {
    const VertexId u = s.order[i];
    for (const VertexId v : g.neighbors(u)) {
      if (s.dist[v] == s.dist[u] - 1) {
        s.delta[v] += (s.sigma[v] / s.sigma[u]) * (1.0 + s.delta[u]);
      }
    }
    score[u] += weight * s.delta[u];
  }
}

}  // namespace

BetweennessResult betweenness_window(const MultiWindowGraph& part,
                                     Timestamp ts, Timestamp te,
                                     const BetweennessParams& params) {
  const std::size_t n = part.num_local();
  BetweennessResult result;
  result.score.assign(n, 0.0);

  const UndirectedWindow g = build_undirected_window(part, ts, te);
  std::vector<VertexId> actives;
  for (std::size_t v = 0; v < n; ++v) {
    if (g.degree[v] > 0) actives.push_back(static_cast<VertexId>(v));
  }
  // Activity for reporting counts every window participant (self-loop-only
  // vertices have betweenness 0 but are active).
  {
    std::vector<std::uint8_t> active(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                       [&](VertexId u) {
                                         active[v] = 1;
                                         active[u] = 1;
                                       });
    }
    for (std::size_t v = 0; v < n; ++v) result.num_active += active[v];
  }
  if (actives.size() < 3) return result;

  BrandesScratch scratch;
  const bool exact = params.sample_sources == 0 ||
                     params.sample_sources >= actives.size();
  if (exact) {
    for (const VertexId s : actives) {
      brandes_pass(g, s, scratch, result.score, 1.0);
      ++result.passes;
    }
  } else {
    Xoshiro256 rng(params.seed);
    for (std::size_t i = 0; i < params.sample_sources; ++i) {
      const std::size_t j = i + rng.bounded(actives.size() - i);
      std::swap(actives[i], actives[j]);
    }
    const double weight = static_cast<double>(actives.size()) /
                          static_cast<double>(params.sample_sources);
    for (std::size_t i = 0; i < params.sample_sources; ++i) {
      brandes_pass(g, actives[i], scratch, result.score, weight);
      ++result.passes;
    }
  }
  // Undirected: every pair was counted from both endpoints.
  for (auto& s : result.score) s *= 0.5;
  return result;
}

std::vector<BetweennessSummary> betweenness_over_windows(
    const MultiWindowSet& set, const BetweennessParams& params,
    const par::ForOptions* parallel) {
  const std::size_t m = set.spec().count;
  std::vector<BetweennessSummary> out(m);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const auto& part = set.part_for_window(w);
      const BetweennessResult r = betweenness_window(
          part, set.spec().start(w), set.spec().end(w), params);
      BetweennessSummary& s = out[w];
      s.window = w;
      s.num_active = r.num_active;
      for (std::size_t v = 0; v < r.score.size(); ++v) {
        if (r.score[v] > s.top_score) {
          s.top_score = r.score[v];
          s.top_vertex = part.global_of(static_cast<VertexId>(v));
        }
      }
    }
  };
  if (parallel != nullptr) {
    par::parallel_for_range(0, m, *parallel, body);
  } else {
    body(0, m);
  }
  return out;
}

}  // namespace pmpr::analysis
