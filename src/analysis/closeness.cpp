#include "analysis/closeness.hpp"

#include <algorithm>
#include <deque>

#include "analysis/undirected.hpp"
#include "util/rng.hpp"

namespace pmpr::analysis {

namespace {

/// BFS distances from `source` over the undirected window graph.
/// `dist` uses kUnreached for unreachable vertices.
constexpr std::uint32_t kUnreached = ~0u;

void bfs(const UndirectedWindow& g, VertexId source,
         std::vector<std::uint32_t>& dist, std::vector<VertexId>& queue) {
  std::fill(dist.begin(), dist.end(), kUnreached);
  queue.clear();
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (const VertexId u : g.neighbors(v)) {
      if (dist[u] == kUnreached) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
}

/// Connected-component labels and sizes of the undirected graph, active
/// vertices only (degree 0 actives form singleton components).
void components(const UndirectedWindow& g,
                const std::vector<std::uint8_t>& active,
                std::vector<std::uint32_t>& comp,
                std::vector<std::size_t>& comp_size) {
  const std::size_t n = g.degree.size();
  comp.assign(n, kUnreached);
  comp_size.clear();
  std::vector<VertexId> queue;
  for (std::size_t v = 0; v < n; ++v) {
    if (active[v] == 0 || comp[v] != kUnreached) continue;
    const auto id = static_cast<std::uint32_t>(comp_size.size());
    comp_size.push_back(0);
    comp[v] = id;
    queue.clear();
    queue.push_back(static_cast<VertexId>(v));
    while (!queue.empty()) {
      const VertexId w = queue.back();
      queue.pop_back();
      ++comp_size[id];
      for (const VertexId u : g.neighbors(w)) {
        if (comp[u] == kUnreached) {
          comp[u] = id;
          queue.push_back(u);
        }
      }
    }
  }
}

}  // namespace

ClosenessResult closeness_window(const MultiWindowGraph& part, Timestamp ts,
                                 Timestamp te,
                                 const ClosenessParams& params) {
  const std::size_t n = part.num_local();
  ClosenessResult result;
  result.score.assign(n, 0.0);

  const UndirectedWindow g = build_undirected_window(part, ts, te);

  std::vector<std::uint8_t> active(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) {
                                       active[v] = 1;
                                       active[u] = 1;
                                     });
  }
  for (std::size_t v = 0; v < n; ++v) result.num_active += active[v];
  if (result.num_active < 2) return result;
  const double n_minus_1 = static_cast<double>(result.num_active - 1);

  std::vector<std::uint32_t> comp;
  std::vector<std::size_t> comp_size;
  components(g, active, comp, comp_size);

  std::vector<std::uint32_t> dist(n);
  std::vector<VertexId> queue;
  queue.reserve(n);

  const bool exact = params.sample_sources == 0 ||
                     params.sample_sources >= result.num_active;
  if (exact) {
    // BFS from every active vertex: exact Wasserman–Faust closeness.
    for (std::size_t v = 0; v < n; ++v) {
      if (active[v] == 0) continue;
      const std::size_t r = comp_size[comp[v]];
      if (r < 2) continue;
      bfs(g, static_cast<VertexId>(v), dist, queue);
      ++result.bfs_performed;
      std::uint64_t total = 0;
      for (const VertexId u : queue) total += dist[u];
      const double r_minus_1 = static_cast<double>(r - 1);
      result.score[v] = (r_minus_1 / static_cast<double>(total)) *
                        (r_minus_1 / n_minus_1);
    }
    return result;
  }

  // Pivot sampling: BFS from k sources; every vertex estimates its average
  // distance from the samples of its own component (distances symmetric).
  std::vector<VertexId> actives;
  actives.reserve(result.num_active);
  for (std::size_t v = 0; v < n; ++v) {
    if (active[v] != 0) actives.push_back(static_cast<VertexId>(v));
  }
  Xoshiro256 rng(params.seed);
  // Partial Fisher–Yates for the first k picks.
  for (std::size_t i = 0; i < params.sample_sources; ++i) {
    const std::size_t j = i + rng.bounded(actives.size() - i);
    std::swap(actives[i], actives[j]);
  }

  std::vector<double> dist_sum(n, 0.0);
  std::vector<std::uint32_t> hits(n, 0);
  for (std::size_t s = 0; s < params.sample_sources; ++s) {
    const VertexId source = actives[s];
    if (comp_size[comp[source]] < 2) continue;
    bfs(g, source, dist, queue);
    ++result.bfs_performed;
    for (const VertexId u : queue) {
      if (u == source) continue;
      dist_sum[u] += dist[u];
      ++hits[u];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (active[v] == 0 || hits[v] == 0) continue;
    const double avg = dist_sum[v] / hits[v];
    const double r_minus_1 =
        static_cast<double>(comp_size[comp[v]] - 1);
    if (avg <= 0.0) continue;
    // Same Wasserman–Faust form as the exact path with total ≈ avg·(r-1):
    // C(v) = ((r-1)/total)·((r-1)/(n-1)) = (1/avg)·((r-1)/(n-1)).
    result.score[v] = (1.0 / avg) * (r_minus_1 / n_minus_1);
  }
  return result;
}

std::vector<ClosenessSummary> closeness_over_windows(
    const MultiWindowSet& set, const ClosenessParams& params,
    const par::ForOptions* parallel) {
  const std::size_t m = set.spec().count;
  std::vector<ClosenessSummary> out(m);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const auto& part = set.part_for_window(w);
      const ClosenessResult r = closeness_window(
          part, set.spec().start(w), set.spec().end(w), params);
      ClosenessSummary& s = out[w];
      s.window = w;
      s.num_active = r.num_active;
      for (std::size_t v = 0; v < r.score.size(); ++v) {
        if (r.score[v] > s.top_score) {
          s.top_score = r.score[v];
          s.top_vertex = part.global_of(static_cast<VertexId>(v));
        }
      }
    }
  };
  if (parallel != nullptr) {
    par::parallel_for_range(0, m, *parallel, body);
  } else {
    body(0, m);
  }
  return out;
}

}  // namespace pmpr::analysis
