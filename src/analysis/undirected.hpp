// Undirected per-window adjacency, derived on demand from a multi-window
// graph's reverse temporal CSR. Several analyses (k-core, closeness,
// degree distributions) follow the convention of ignoring edge direction;
// this helper builds the deduplicated symmetric CSR of one window in the
// part's local vertex space (self-loops dropped).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multi_window.hpp"

namespace pmpr::analysis {

struct UndirectedWindow {
  std::vector<std::size_t> row_ptr;  ///< n + 1 entries.
  std::vector<VertexId> adj;         ///< 2 x (distinct undirected edges).
  std::vector<std::uint32_t> degree;
  std::size_t num_edges = 0;  ///< Distinct undirected edges.

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {adj.data() + row_ptr[v], adj.data() + row_ptr[v + 1]};
  }
};

/// Builds the undirected simple graph of window [ts, te] of `part`.
UndirectedWindow build_undirected_window(const MultiWindowGraph& part,
                                         Timestamp ts, Timestamp te);

}  // namespace pmpr::analysis
