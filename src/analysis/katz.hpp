// Postmortem Katz centrality over the sliding windows.
//
// A second iterative centrality on the same representation (the paper cites
// streaming Katz updates, Nathan & Bader): x = β·1 + a·Aᵀx iterated to a
// fixpoint, restricted to the window's active set. Like PageRank it
// benefits from warm-starting each window from its predecessor, so this
// kernel reuses the partial-initialization idea (values are carried, not
// renormalized — Katz is not a distribution).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multi_window.hpp"
#include "pagerank/window_state.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

struct KatzParams {
  /// Attenuation a. Convergence needs a < 1/λ_max; social-graph practice
  /// keeps it small.
  double attenuation = 0.05;
  double beta = 1.0;    ///< Base centrality per active vertex.
  double tol = 1e-9;    ///< L1 convergence threshold.
  int max_iters = 200;
};

struct KatzStats {
  int iterations = 0;
  double final_residual = 0.0;
};

/// Katz for window [ts, te] of `part`. `x` (size = locals) is the starting
/// guess on entry (e.g. the previous window's result, or all beta) and the
/// result on exit; inactive vertices end at 0. `state` must match the
/// window (only `active` is used; degrees are not needed for Katz).
KatzStats katz_window(const MultiWindowGraph& part, Timestamp ts,
                      Timestamp te, const WindowState& state,
                      std::span<double> x, std::span<double> scratch,
                      const KatzParams& params,
                      const par::ForOptions* parallel = nullptr);

/// Per-window Katz summary for the whole analysis (sequential windows with
/// warm starts; kernel optionally parallel).
struct KatzSummary {
  std::size_t window = 0;
  int iterations = 0;
  VertexId top_vertex = kInvalidVertex;  ///< Global id of the Katz leader.
  double top_score = 0.0;
};

std::vector<KatzSummary> katz_over_windows(
    const MultiWindowSet& set, const KatzParams& params,
    const par::ForOptions* parallel = nullptr, bool warm_start = true);

}  // namespace pmpr::analysis
