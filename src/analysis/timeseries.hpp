// Downstream time-series utilities over per-window PageRank (or any
// per-window vertex scores).
//
// The paper frames postmortem analysis as producing a time series that an
// application then consumes ("applications will have a downstream analysis
// that will depend on these vectors", §2.2). These helpers cover the common
// consumptions: top-k ranking per window, rank trajectories of a vertex,
// leadership churn between windows, and rank-correlation between
// consecutive windows (how fast the ordering drifts).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/result_sink.hpp"
#include "graph/types.hpp"

namespace pmpr::analysis {

using Scored = std::pair<VertexId, double>;

/// Top-k (vertex, score) pairs of window `w`, descending by score (ties by
/// ascending vertex id for determinism).
std::vector<Scored> top_k(const StoreAllSink& sink, std::size_t w,
                          std::size_t k);

/// 1-based rank of `v` in window `w`; 0 if the vertex has no score there.
std::size_t rank_of(const StoreAllSink& sink, std::size_t w, VertexId v);

/// Rank trajectory of `v` across all windows (0 where absent).
std::vector<std::size_t> rank_trajectory(const StoreAllSink& sink, VertexId v);

/// Jaccard similarity of the top-k sets of two windows — 1 means the same
/// leaders, 0 a complete change of guard.
double topk_jaccard(const StoreAllSink& sink, std::size_t w1, std::size_t w2,
                    std::size_t k);

/// Spearman rank correlation between two windows over the vertices scored
/// in both. Returns 1 for identical orderings, 0 if fewer than 2 shared
/// vertices.
double spearman(const StoreAllSink& sink, std::size_t w1, std::size_t w2);

/// Per-step churn series: topk_jaccard(w-1, w, k) for every w >= 1.
std::vector<double> churn_series(const StoreAllSink& sink, std::size_t k);

}  // namespace pmpr::analysis
