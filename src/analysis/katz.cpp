#include "analysis/katz.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace pmpr::analysis {

namespace {

double sweep_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                  const WindowState& state, std::span<const double> x,
                  std::span<double> x_next, const KatzParams& params,
                  std::size_t lo, std::size_t hi) {
  double diff = 0.0;
  for (std::size_t v = lo; v < hi; ++v) {
    if (state.active[v] == 0) {
      x_next[v] = 0.0;
      continue;
    }
    double sum = 0.0;
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) { sum += x[u]; });
    const double next = params.beta + params.attenuation * sum;
    diff += std::abs(next - x[v]);
    x_next[v] = next;
  }
  return diff;
}

}  // namespace

KatzStats katz_window(const MultiWindowGraph& part, Timestamp ts,
                      Timestamp te, const WindowState& state,
                      std::span<double> x, std::span<double> scratch,
                      const KatzParams& params,
                      const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  assert(x.size() == n && scratch.size() == n);
  KatzStats stats;
  if (state.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  double* cur = x.data();
  double* next = scratch.data();
  for (int iter = 0; iter < params.max_iters; ++iter) {
    std::span<const double> cur_span(cur, n);
    std::span<double> next_span(next, n);
    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce(
          0, n, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep_rows(part, ts, te, state, cur_span, next_span,
                              params, lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep_rows(part, ts, te, state, cur_span, next_span, params, 0,
                        n);
    }
    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (diff < params.tol) break;
  }
  if (cur != x.data()) {
    std::memcpy(x.data(), cur, n * sizeof(double));
  }
  return stats;
}

std::vector<KatzSummary> katz_over_windows(const MultiWindowSet& set,
                                           const KatzParams& params,
                                           const par::ForOptions* parallel,
                                           bool warm_start) {
  const std::size_t m = set.spec().count;
  std::vector<KatzSummary> out(m);

  std::vector<double> x;
  std::vector<double> scratch;
  WindowState state;
  std::size_t carry_part = SIZE_MAX;

  for (std::size_t w = 0; w < m; ++w) {
    const std::size_t p = set.part_index_for_window(w);
    const auto& part = set.part(p);
    const std::size_t n = part.num_local();
    const Timestamp ts = set.spec().start(w);
    const Timestamp te = set.spec().end(w);
    compute_window_state(part, ts, te, state, parallel);

    if (!warm_start || p != carry_part) {
      x.assign(n, 0.0);
      scratch.assign(n, 0.0);
      for (std::size_t v = 0; v < n; ++v) {
        if (state.active[v] != 0) x[v] = params.beta;
      }
    } else {
      // Carry previous window's scores; activate newcomers at beta.
      for (std::size_t v = 0; v < n; ++v) {
        if (state.active[v] == 0) {
          x[v] = 0.0;
        } else if (x[v] == 0.0) {
          x[v] = params.beta;
        }
      }
    }
    carry_part = p;

    const KatzStats stats =
        katz_window(part, ts, te, state, x, scratch, params, parallel);

    KatzSummary& s = out[w];
    s.window = w;
    s.iterations = stats.iterations;
    for (std::size_t v = 0; v < n; ++v) {
      if (x[v] > s.top_score) {
        s.top_score = x[v];
        s.top_vertex = part.global_of(static_cast<VertexId>(v));
      }
    }
  }
  return out;
}

}  // namespace pmpr::analysis
