#include "analysis/degree_distribution.hpp"

#include <algorithm>

#include "analysis/undirected.hpp"

namespace pmpr::analysis {

double DegreeDistribution::top_share(double percent) const {
  if (num_active == 0) return 0.0;
  percent = std::clamp(percent, 0.0, 1.0);
  auto take = static_cast<std::size_t>(
      static_cast<double>(num_active) * percent);
  take = std::max<std::size_t>(take, 1);

  std::uint64_t total = 0;
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    total += static_cast<std::uint64_t>(d) * histogram[d];
  }
  if (total == 0) return 0.0;

  std::uint64_t top = 0;
  for (std::size_t d = histogram.size(); d-- > 0 && take > 0;) {
    const std::size_t here = std::min<std::size_t>(histogram[d], take);
    top += static_cast<std::uint64_t>(d) * here;
    take -= here;
  }
  return static_cast<double>(top) / static_cast<double>(total);
}

DegreeDistribution degree_distribution_window(const MultiWindowGraph& part,
                                              Timestamp ts, Timestamp te) {
  const std::size_t n = part.num_local();
  DegreeDistribution out;

  const UndirectedWindow g = build_undirected_window(part, ts, te);
  std::vector<std::uint8_t> active(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) {
                                       active[v] = 1;
                                       active[u] = 1;
                                     });
  }

  std::uint64_t degree_sum = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (active[v] == 0) continue;
    ++out.num_active;
    const std::uint32_t d = g.degree[v];
    out.max_degree = std::max(out.max_degree, d);
    degree_sum += d;
    if (d >= out.histogram.size()) out.histogram.resize(d + 1, 0);
    ++out.histogram[d];
  }
  out.mean_degree = out.num_active > 0
                        ? static_cast<double>(degree_sum) /
                              static_cast<double>(out.num_active)
                        : 0.0;
  return out;
}

std::vector<DegreeSummary> degree_over_windows(
    const MultiWindowSet& set, const par::ForOptions* parallel) {
  const std::size_t m = set.spec().count;
  std::vector<DegreeSummary> out(m);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const auto& part = set.part_for_window(w);
      const DegreeDistribution d = degree_distribution_window(
          part, set.spec().start(w), set.spec().end(w));
      out[w] = DegreeSummary{w, d.max_degree, d.mean_degree, d.num_active,
                             d.top_share(0.01)};
    }
  };
  if (parallel != nullptr) {
    par::parallel_for_range(0, m, *parallel, body);
  } else {
    body(0, m);
  }
  return out;
}

}  // namespace pmpr::analysis
