#include "analysis/undirected.hpp"

#include <algorithm>
#include <utility>

namespace pmpr::analysis {

UndirectedWindow build_undirected_window(const MultiWindowGraph& part,
                                         Timestamp ts, Timestamp te) {
  const std::size_t n = part.num_local();
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t v = 0; v < n; ++v) {
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          if (u == static_cast<VertexId>(v)) return;
          const VertexId a = std::min<VertexId>(u, static_cast<VertexId>(v));
          const VertexId b = std::max<VertexId>(u, static_cast<VertexId>(v));
          edges.emplace_back(a, b);
        });
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  UndirectedWindow g;
  g.num_edges = edges.size();
  g.degree.assign(n, 0);
  for (const auto& [a, b] : edges) {
    ++g.degree[a];
    ++g.degree[b];
  }
  g.row_ptr.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    g.row_ptr[v + 1] = g.row_ptr[v] + g.degree[v];
  }
  g.adj.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (const auto& [a, b] : edges) {
    g.adj[cursor[a]++] = b;
    g.adj[cursor[b]++] = a;
  }
  return g;
}

}  // namespace pmpr::analysis
