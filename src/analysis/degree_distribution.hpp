// Per-window degree distributions.
//
// The paper's related work opens with HyperHeadTail (Stolman & Matulef),
// a streaming estimator for the degree distribution of a dynamic graph
// split into windows — exactly the question the postmortem representation
// answers exactly and cheaply: one pass per window over the temporal CSR.
// Also used by the dataset surrogates' self-checks (power-law sanity).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

struct DegreeDistribution {
  /// histogram[d] = number of active vertices with undirected distinct
  /// degree d (index 0 = active vertices with only self-loops).
  std::vector<std::size_t> histogram;
  std::uint32_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t num_active = 0;

  /// Fraction of degree mass held by the top `percent` (0,1] of vertices —
  /// a skewness measure (≈ percent for regular graphs, >> for power laws).
  [[nodiscard]] double top_share(double percent) const;
};

/// Exact undirected degree distribution of window [ts, te] of `part`.
DegreeDistribution degree_distribution_window(const MultiWindowGraph& part,
                                              Timestamp ts, Timestamp te);

struct DegreeSummary {
  std::size_t window = 0;
  std::uint32_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t num_active = 0;
  double top1pct_share = 0.0;
};

std::vector<DegreeSummary> degree_over_windows(
    const MultiWindowSet& set, const par::ForOptions* parallel = nullptr);

}  // namespace pmpr::analysis
