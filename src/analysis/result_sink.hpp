// Per-window result consumption — the downstream-analysis interface.
//
// Runners hand every window's converged vector to a ResultSink. Sinks let
// benchmarks avoid materializing all m vectors (ChecksumSink) while tests
// and applications keep them (StoreAllSink) — the paper notes downstream
// analyses consume the whole time series (§2.2), which is exactly what
// analysis/timeseries.hpp does with a StoreAllSink. Lives in analysis/
// (below exec/ in the module DAG, ci/layers.toml) so those consumers never
// depend on the runners.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace pmpr {

/// Receives one converged PageRank vector per window. consume_* is called
/// exactly once per window; calls for *different* windows may be concurrent.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// `pr` is indexed by global vertex id (offline / streaming models).
  virtual void consume_dense(std::size_t window,
                             std::span<const double> pr) = 0;

  /// `pr[i]` belongs to global vertex `ids[i]` (postmortem model: the part's
  /// local→global map). Vertices absent from `ids` have PageRank 0.
  virtual void consume_mapped(std::size_t window,
                              std::span<const VertexId> ids,
                              std::span<const double> pr) = 0;
};

/// Discards results (pure-timing benchmarks where even a checksum is noise).
class NullSink final : public ResultSink {
 public:
  void consume_dense(std::size_t, std::span<const double>) override {}
  void consume_mapped(std::size_t, std::span<const VertexId>,
                      std::span<const double>) override {}
};

/// Keeps a model-independent fingerprint per window: Σ_v pr[v]·(v+1) and
/// Σ_v pr[v]. Equal across execution models up to float tolerance — used by
/// the equivalence tests and to keep benchmark kernels honest.
class ChecksumSink final : public ResultSink {
 public:
  explicit ChecksumSink(std::size_t num_windows)
      : weighted_(num_windows, 0.0), mass_(num_windows, 0.0) {}

  void consume_dense(std::size_t window, std::span<const double> pr) override {
    double weighted = 0.0;
    double mass = 0.0;
    for (std::size_t v = 0; v < pr.size(); ++v) {
      weighted += pr[v] * static_cast<double>(v + 1);
      mass += pr[v];
    }
    weighted_[window] = weighted;
    mass_[window] = mass;
  }

  void consume_mapped(std::size_t window, std::span<const VertexId> ids,
                      std::span<const double> pr) override {
    double weighted = 0.0;
    double mass = 0.0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      weighted += pr[i] * static_cast<double>(ids[i] + 1);
      mass += pr[i];
    }
    weighted_[window] = weighted;
    mass_[window] = mass;
  }

  [[nodiscard]] const std::vector<double>& weighted() const {
    return weighted_;
  }
  [[nodiscard]] const std::vector<double>& mass() const { return mass_; }

 private:
  std::vector<double> weighted_;
  std::vector<double> mass_;
};

/// Stores every window's vector as sorted (global id, value) pairs.
class StoreAllSink final : public ResultSink {
 public:
  explicit StoreAllSink(std::size_t num_windows) : windows_(num_windows) {}

  void consume_dense(std::size_t window, std::span<const double> pr) override {
    auto& out = windows_[window];
    out.clear();
    for (std::size_t v = 0; v < pr.size(); ++v) {
      if (pr[v] != 0.0) out.emplace_back(static_cast<VertexId>(v), pr[v]);
    }
  }

  void consume_mapped(std::size_t window, std::span<const VertexId> ids,
                      std::span<const double> pr) override {
    auto& out = windows_[window];
    out.clear();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (pr[i] != 0.0) out.emplace_back(ids[i], pr[i]);
    }
  }

  [[nodiscard]] std::size_t num_windows() const { return windows_.size(); }
  [[nodiscard]] const std::vector<std::pair<VertexId, double>>& window(
      std::size_t w) const {
    return windows_[w];
  }

  /// Expands window `w` to a dense vector over [0, n).
  [[nodiscard]] std::vector<double> dense(std::size_t w, VertexId n) const {
    std::vector<double> out(n, 0.0);
    for (const auto& [v, value] : windows_[w]) out[v] = value;
    return out;
  }

 private:
  std::vector<std::vector<std::pair<VertexId, double>>> windows_;
};

}  // namespace pmpr
