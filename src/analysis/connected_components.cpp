#include "analysis/connected_components.hpp"

#include <algorithm>
#include <map>

namespace pmpr::analysis {

WccResult wcc_window(const MultiWindowGraph& part, Timestamp ts,
                     Timestamp te) {
  const std::size_t n = part.num_local();
  WccResult result;
  result.label.assign(n, kInvalidVertex);

  // Activity + initial labels (own id).
  for (std::size_t v = 0; v < n; ++v) {
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          result.label[v] = static_cast<VertexId>(v);
          result.label[u] = u;
        });
  }
  for (std::size_t v = 0; v < n; ++v) {
    result.num_active += result.label[v] != kInvalidVertex ? 1 : 0;
  }

  // Min-label propagation; each in-edge (u -> v) is treated as undirected
  // by updating both endpoints, so the fixpoint is the weak components.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    for (std::size_t v = 0; v < n; ++v) {
      if (result.label[v] == kInvalidVertex) continue;
      VertexId best = result.label[v];
      part.in.for_each_active_neighbor(
          static_cast<VertexId>(v), ts, te, [&](VertexId u) {
            best = std::min(best, result.label[u]);
          });
      if (best < result.label[v]) {
        result.label[v] = best;
        changed = true;
      }
      // Push back to in-neighbors so min labels flow against edge
      // direction too.
      part.in.for_each_active_neighbor(
          static_cast<VertexId>(v), ts, te, [&](VertexId u) {
            if (best < result.label[u]) {
              result.label[u] = best;
              changed = true;
            }
          });
    }
  }

  // Component census.
  std::map<VertexId, std::size_t> sizes;
  for (std::size_t v = 0; v < n; ++v) {
    if (result.label[v] != kInvalidVertex) ++sizes[result.label[v]];
  }
  result.num_components = sizes.size();
  for (const auto& [root, size] : sizes) {
    result.largest_component = std::max(result.largest_component, size);
  }
  return result;
}

std::vector<WccSummary> wcc_over_windows(const MultiWindowSet& set,
                                         const par::ForOptions* parallel) {
  const std::size_t m = set.spec().count;
  std::vector<WccSummary> out(m);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const auto& part = set.part_for_window(w);
      const WccResult r =
          wcc_window(part, set.spec().start(w), set.spec().end(w));
      out[w] = WccSummary{w, r.num_components, r.largest_component,
                          r.num_active};
    }
  };
  if (parallel != nullptr) {
    par::parallel_for_range(0, m, *parallel, body);
  } else {
    body(0, m);
  }
  return out;
}

}  // namespace pmpr::analysis
