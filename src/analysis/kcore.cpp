#include "analysis/kcore.hpp"

#include <algorithm>
#include <utility>

#include "analysis/undirected.hpp"

namespace pmpr::analysis {

KcoreResult kcore_window(const MultiWindowGraph& part, Timestamp ts,
                         Timestamp te) {
  const std::size_t n = part.num_local();
  KcoreResult result;
  result.core.assign(n, 0);

  const UndirectedWindow g = build_undirected_window(part, ts, te);

  // Activity from the directed view (a vertex with only self-loops is
  // active but has undirected degree 0 -> core 0).
  std::vector<std::uint8_t> active(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) {
                                       active[v] = 1;
                                       active[u] = 1;
                                     });
  }
  for (std::size_t v = 0; v < n; ++v) result.num_active += active[v];
  if (result.num_active == 0) return result;

  // Matula–Beck peeling with bin sort (Batagelj–Zaveršnik layout).
  const std::uint32_t max_deg =
      g.degree.empty() ? 0 : *std::max_element(g.degree.begin(), g.degree.end());
  std::vector<std::size_t> bin(max_deg + 2, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (active[v]) ++bin[g.degree[v]];
  }
  std::size_t start = 0;
  for (std::uint32_t d = 0; d <= max_deg; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(result.num_active);
  std::vector<std::size_t> pos(n, 0);
  {
    std::vector<std::size_t> cursor(bin.begin(), bin.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      pos[v] = cursor[g.degree[v]]++;
      order[pos[v]] = static_cast<VertexId>(v);
    }
  }

  std::vector<std::uint32_t> deg = g.degree;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const VertexId v = order[i];
    result.core[v] = deg[v];
    result.max_core = std::max(result.max_core, deg[v]);
    for (std::size_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      const VertexId u = g.adj[e];
      if (deg[u] <= deg[v]) continue;
      // Move u one bin down: swap with the first vertex of its bin.
      const std::size_t du = deg[u];
      const std::size_t pu = pos[u];
      const std::size_t pw = bin[du];
      const VertexId w = order[pw];
      if (u != w) {
        order[pu] = w;
        order[pw] = u;
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --deg[u];
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (active[v] && result.core[v] == result.max_core) {
      ++result.innermost_size;
    }
  }
  return result;
}

std::vector<KcoreSummary> kcore_over_windows(const MultiWindowSet& set,
                                             const par::ForOptions* parallel) {
  const std::size_t m = set.spec().count;
  std::vector<KcoreSummary> out(m);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const auto& part = set.part_for_window(w);
      const KcoreResult r =
          kcore_window(part, set.spec().start(w), set.spec().end(w));
      out[w] = KcoreSummary{w, r.max_core, r.innermost_size, r.num_active};
    }
  };
  if (parallel != nullptr) {
    par::parallel_for_range(0, m, *parallel, body);
  } else {
    body(0, m);
  }
  return out;
}

}  // namespace pmpr::analysis
