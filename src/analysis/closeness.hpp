// Postmortem closeness centrality over the sliding windows.
//
// Closeness is the second centrality the paper names when motivating the
// sliding-window model (§3.1) and has its own streaming literature
// (Sariyüce et al., cited in §3.2). Exact closeness needs all-pairs BFS —
// Θ(V·E) per window — so, as is standard for large graphs, this kernel
// supports both exact computation and pivot sampling (Eppstein–Wang style):
// BFS from k sampled sources estimates every vertex's average distance.
//
// Closeness of v here is the harmonic-free classic variant restricted to
// v's reachable set, computed on the undirected window graph:
//   C(v) = (r_v - 1) / Σ_{u reachable} d(v, u) · (r_v - 1) / (n_active - 1)
// (the Wasserman–Faust correction, so scores are comparable across
// differently-sized components).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

struct ClosenessParams {
  /// 0 = exact (BFS from every active vertex); otherwise the number of
  /// sampled BFS sources per window.
  std::size_t sample_sources = 0;
  std::uint64_t seed = 42;
};

struct ClosenessResult {
  /// score[v] = estimated closeness of local vertex v (0 if inactive or
  /// isolated).
  std::vector<double> score;
  std::size_t num_active = 0;
  std::size_t bfs_performed = 0;
};

/// Closeness for window [ts, te] of `part`.
ClosenessResult closeness_window(const MultiWindowGraph& part, Timestamp ts,
                                 Timestamp te, const ClosenessParams& params);

struct ClosenessSummary {
  std::size_t window = 0;
  VertexId top_vertex = kInvalidVertex;  ///< Global id of the most central.
  double top_score = 0.0;
  std::size_t num_active = 0;
};

/// Per-window closeness leaders, optionally window-parallel.
std::vector<ClosenessSummary> closeness_over_windows(
    const MultiWindowSet& set, const ClosenessParams& params,
    const par::ForOptions* parallel = nullptr);

}  // namespace pmpr::analysis
