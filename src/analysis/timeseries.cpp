#include "analysis/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace pmpr::analysis {

namespace {

std::vector<Scored> sorted_window(const StoreAllSink& sink, std::size_t w) {
  std::vector<Scored> scores = sink.window(w);
  std::sort(scores.begin(), scores.end(),
            [](const Scored& a, const Scored& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return scores;
}

}  // namespace

std::vector<Scored> top_k(const StoreAllSink& sink, std::size_t w,
                          std::size_t k) {
  std::vector<Scored> scores = sorted_window(sink, w);
  if (scores.size() > k) scores.resize(k);
  return scores;
}

std::size_t rank_of(const StoreAllSink& sink, std::size_t w, VertexId v) {
  const std::vector<Scored> scores = sorted_window(sink, w);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].first == v) return i + 1;
  }
  return 0;
}

std::vector<std::size_t> rank_trajectory(const StoreAllSink& sink,
                                         VertexId v) {
  std::vector<std::size_t> out(sink.num_windows(), 0);
  for (std::size_t w = 0; w < sink.num_windows(); ++w) {
    out[w] = rank_of(sink, w, v);
  }
  return out;
}

double topk_jaccard(const StoreAllSink& sink, std::size_t w1, std::size_t w2,
                    std::size_t k) {
  const auto a = top_k(sink, w1, k);
  const auto b = top_k(sink, w2, k);
  if (a.empty() && b.empty()) return 1.0;
  std::set<VertexId> sa;
  for (const auto& [v, s] : a) sa.insert(v);
  std::size_t inter = 0;
  std::set<VertexId> uni(sa);
  for (const auto& [v, s] : b) {
    if (sa.count(v) != 0) ++inter;
    uni.insert(v);
  }
  return uni.empty() ? 0.0
                     : static_cast<double>(inter) /
                           static_cast<double>(uni.size());
}

double spearman(const StoreAllSink& sink, std::size_t w1, std::size_t w2) {
  const std::vector<Scored> a = sorted_window(sink, w1);
  const std::vector<Scored> b = sorted_window(sink, w2);
  std::map<VertexId, std::size_t> rank_a;
  for (std::size_t i = 0; i < a.size(); ++i) rank_a[a[i].first] = i + 1;
  std::map<VertexId, std::size_t> rank_b;
  for (std::size_t i = 0; i < b.size(); ++i) rank_b[b[i].first] = i + 1;

  // Shared vertices, re-ranked within the intersection.
  std::vector<std::pair<std::size_t, std::size_t>> shared;
  for (const auto& [v, ra] : rank_a) {
    const auto it = rank_b.find(v);
    if (it != rank_b.end()) shared.emplace_back(ra, it->second);
  }
  const std::size_t n = shared.size();
  if (n < 2) return 0.0;

  // Compress each side's ranks to 1..n preserving order.
  auto compress = [&](bool first_side) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return first_side ? shared[x].first < shared[y].first
                        : shared[x].second < shared[y].second;
    });
    std::vector<std::size_t> rank(n);
    for (std::size_t i = 0; i < n; ++i) rank[order[i]] = i + 1;
    return rank;
  };
  const auto ra = compress(true);
  const auto rb = compress(false);

  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ra[i]) - static_cast<double>(rb[i]);
    d2 += d * d;
  }
  const auto nd = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nd * (nd * nd - 1.0));
}

std::vector<double> churn_series(const StoreAllSink& sink, std::size_t k) {
  std::vector<double> out;
  if (sink.num_windows() < 2) return out;
  out.reserve(sink.num_windows() - 1);
  for (std::size_t w = 1; w < sink.num_windows(); ++w) {
    out.push_back(topk_jaccard(sink, w - 1, w, k));
  }
  return out;
}

}  // namespace pmpr::analysis
