// Postmortem k-core decomposition over the sliding windows.
//
// The paper's related work (§3.2) highlights postmortem k-core analysis of
// dynamic graphs (Gabert et al.) and streaming k-core (Sariyüce et al.);
// §3.1 lists k-core among the kernels the sliding-window formulation
// supports. This kernel computes the core number of every active vertex of
// a window (treating edges as undirected, the standard convention) with the
// Matula–Beck peeling algorithm in O(E + V) per window, directly on the
// multi-window representation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

struct KcoreResult {
  /// core[v] = core number of local vertex v; 0 for inactive vertices.
  std::vector<std::uint32_t> core;
  std::uint32_t max_core = 0;  ///< Degeneracy of the window graph.
  std::size_t num_active = 0;
  /// Vertices in the innermost (max_core) core.
  std::size_t innermost_size = 0;
};

/// Core decomposition of window [ts, te] of `part`.
KcoreResult kcore_window(const MultiWindowGraph& part, Timestamp ts,
                         Timestamp te);

struct KcoreSummary {
  std::size_t window = 0;
  std::uint32_t max_core = 0;
  std::size_t innermost_size = 0;
  std::size_t num_active = 0;
};

/// Per-window degeneracy series, optionally window-parallel.
std::vector<KcoreSummary> kcore_over_windows(
    const MultiWindowSet& set, const par::ForOptions* parallel = nullptr);

}  // namespace pmpr::analysis
