// Postmortem weakly-connected components over the sliding windows.
//
// The paper (§3.1) notes the temporal-CSR machinery is not PageRank-
// specific: "different analysis could be done using other kernels like
// closeness and betweenness centrality, connecting component, k-core".
// This kernel computes weakly-connected components per window by label
// propagation directly on the multi-window representation — the same
// time-filtered traversal as the PageRank SpMV, demonstrating the
// representation's generality.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr::analysis {

/// Components of one window over a part's local vertex space.
struct WccResult {
  /// label[v] = smallest local id in v's component; kInvalidVertex for
  /// vertices inactive in this window.
  std::vector<VertexId> label;
  std::size_t num_components = 0;
  std::size_t largest_component = 0;  ///< Vertex count of the biggest WCC.
  std::size_t num_active = 0;
  int rounds = 0;  ///< Propagation rounds until fixpoint.
};

/// Label propagation (min-label, push+pull over the in-CSR so direction is
/// ignored) for window [ts, te] of `part`.
WccResult wcc_window(const MultiWindowGraph& part, Timestamp ts, Timestamp te);

/// Per-window summary for the whole analysis.
struct WccSummary {
  std::size_t window = 0;
  std::size_t num_components = 0;
  std::size_t largest_component = 0;
  std::size_t num_active = 0;
};

/// Runs wcc_window for every window of `set`, optionally window-parallel.
std::vector<WccSummary> wcc_over_windows(
    const MultiWindowSet& set, const par::ForOptions* parallel = nullptr);

}  // namespace pmpr::analysis
