// Persistence for computed time series.
//
// A postmortem run produces one score vector per window; downstream
// analysis often happens elsewhere (notebooks, plotting). These helpers
// write a StoreAllSink as CSV (window,vertex,score — one row per nonzero)
// or as a compact binary file, and read both back. Round-tripping is exact
// for binary and 17-significant-digit for CSV.
#pragma once

#include <string>

#include "exec/results.hpp"

namespace pmpr {

/// Writes `sink` as CSV. Throws std::runtime_error on IO failure.
void save_series_csv(const StoreAllSink& sink, const std::string& path);

/// Reads a CSV written by save_series_csv. Throws on malformed input.
StoreAllSink load_series_csv(const std::string& path);

/// Compact binary form (magic-tagged, little-endian).
void save_series_binary(const StoreAllSink& sink, const std::string& path);
StoreAllSink load_series_binary(const std::string& path);

}  // namespace pmpr
