#include "exec/metrics.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/crash.hpp"
#include "obs/flightrec.hpp"
#include "obs/memory.hpp"
#include "obs/sampler.hpp"
#include "obs/watchdog.hpp"

namespace pmpr::obs {

namespace {

/// Shortest-round-trip-ish double formatting for JSON (no inf/nan inputs
/// by contract: residuals and seconds are finite).
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void write_phase_histogram(const PhaseHistogram& h, std::ostream& out) {
  out << "{\"count\": " << h.total_count()
      << ", \"mean_ns\": " << fmt(h.mean_ns())
      << ", \"p50_ns\": " << h.percentile_ns(0.50)
      << ", \"p90_ns\": " << h.percentile_ns(0.90)
      << ", \"p99_ns\": " << h.percentile_ns(0.99)
      << ", \"max_ns\": " << h.max_ns << ", \"sum_ns\": " << h.sum_ns
      << "}";
}

}  // namespace

void write_metrics_json(const RunResult& result, std::ostream& out,
                        const Sampler* sampler) {
  out << "{\n";
  out << "  \"schema\": \"pmpr-metrics-v4\",\n";
  out << "  \"build_seconds\": " << fmt(result.build_seconds) << ",\n";
  out << "  \"compute_seconds\": " << fmt(result.compute_seconds) << ",\n";
  out << "  \"total_seconds\": " << fmt(result.total_seconds()) << ",\n";
  out << "  \"num_windows\": " << result.num_windows << ",\n";
  out << "  \"total_iterations\": " << result.total_iterations << ",\n";
  out << "  \"peak_memory_bytes\": " << result.peak_memory_bytes << ",\n";
  // Resolved SIMD ISA of the run ("scalar"/"avx2"/"avx512"; "" for results
  // predating the field). The simd_sweep_* counters say how many compiled
  // SpMM sweeps actually ran on each ISA.
  out << "  \"simd_isa\": \"" << result.simd_isa << "\",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << to_string(static_cast<Counter>(i))
        << "\": " << result.counters.values[i];
  }
  out << "\n  },\n";

  out << "  \"histograms\": {";
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    out << (p == 0 ? "\n" : ",\n") << "    \""
        << to_string(static_cast<Phase>(p)) << "\": ";
    write_phase_histogram(result.histograms.phases[p], out);
  }
  out << "\n  },\n";

  // Memory pillar (v3). Always present, all zeros when
  // obs::set_memory_accounting_enabled(true) was not active during the
  // run. alloc/free are run deltas; live/peak are process watermarks.
  out << "  \"memory\": {\n";
  out << "    \"tags\": {";
  for (std::size_t i = 0; i < kNumMemTags; ++i) {
    const MemTagSnapshot& t = result.memory.tags[i];
    out << (i == 0 ? "\n" : ",\n") << "      \""
        << to_string(static_cast<MemTag>(i))
        << "\": {\"alloc_bytes\": " << t.alloc_bytes
        << ", \"free_bytes\": " << t.free_bytes
        << ", \"live_bytes\": " << t.live_bytes
        << ", \"peak_bytes\": " << t.peak_bytes << "}";
  }
  out << "\n    },\n";
  out << "    \"total_live_bytes\": " << result.memory.total_live_bytes
      << ",\n";
  out << "    \"peak_bytes_measured\": " << result.memory.total_peak_bytes
      << ",\n";
  out << "    \"peak_bytes_estimate\": " << result.peak_memory_estimate_bytes
      << ",\n";
  // Oocore ground truth vs charge: the mincore-scanned store residency
  // peak against the budget charge the LRU policy maintained. The signed
  // delta exposes readahead (positive) and lazy faulting (negative).
  out << "    \"oocore_resident_peak_charged_bytes\": "
      << result.oocore_resident_peak_bytes << ",\n";
  out << "    \"oocore_resident_peak_measured_bytes\": "
      << result.oocore_measured_resident_peak_bytes << ",\n";
  out << "    \"oocore_residency_delta_bytes\": "
      << (static_cast<long long>(result.oocore_measured_resident_peak_bytes) -
          static_cast<long long>(result.oocore_resident_peak_bytes))
      << ",\n";
  out << "    \"read_amplification\": " << fmt(result.read_amplification)
      << "\n  },\n";

  // Always present so consumers need no existence checks; all zeros when
  // no sampler ran.
  const SamplerSummary sum =
      sampler != nullptr ? sampler->summary() : SamplerSummary{};
  out << "  \"sampler\": {\n";
  out << "    \"num_samples\": " << sum.num_samples << ",\n";
  out << "    \"interval_ms\": " << sum.interval_ms << ",\n";
  out << "    \"mean_total_queued\": " << fmt(sum.mean_total_queued)
      << ",\n";
  out << "    \"max_total_queued\": " << sum.max_total_queued << ",\n";
  out << "    \"mean_parked_workers\": " << fmt(sum.mean_parked_workers)
      << ",\n";
  out << "    \"max_parked_workers\": " << sum.max_parked_workers << ",\n";
  out << "    \"mean_steal_success_rate\": "
      << fmt(sum.mean_steal_success_rate) << "\n  },\n";

  // Diagnostics pillar (v4): flight-recorder health, watchdog totals, and
  // the live heartbeat table, read at write time (process-wide state, not
  // a RunResult delta — a metrics file is often the last artifact a sick
  // run manages to produce). All zeros/empty when the gates were off.
  const FlightRecorderStats fr = flight_recorder_stats();
  const WatchdogStats wd = watchdog_stats();
  out << "  \"diagnostics\": {\n";
  out << "    \"flight_recorder\": {\"enabled\": "
      << (flight_recorder_enabled() ? "true" : "false")
      << ", \"records\": " << fr.records << ", \"dropped\": " << fr.dropped
      << ", \"drains\": " << fr.drains << ", \"threads\": " << fr.threads
      << "},\n";
  out << "    \"watchdog\": {\"arms\": " << wd.arms
      << ", \"fires\": " << wd.fires
      << ", \"max_heartbeat_age_ns\": " << wd.max_heartbeat_age_ns
      << ", \"last_stalled_phase\": \"" << wd.last_stalled_phase << "\"},\n";
  out << "    \"crash_handler_installed\": "
      << (crash_handler_installed() ? "true" : "false") << ",\n";
  out << "    \"heartbeats\": [";
  const std::vector<HeartbeatView> beats = heartbeat_table();
  for (std::size_t i = 0; i < beats.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      {\"tid\": " << beats[i].tid
        << ", \"label\": \"" << beats[i].label << "\", \"phase\": \""
        << beats[i].phase << "\", \"age_ns\": " << beats[i].age_ns
        << ", \"beats\": " << beats[i].beats << "}";
  }
  out << (beats.empty() ? "]\n" : "\n    ]\n") << "  },\n";

  out << "  \"windows\": [";
  for (std::size_t w = 0; w < result.num_windows; ++w) {
    const int iters = w < result.iterations_per_window.size()
                          ? result.iterations_per_window[w]
                          : 0;
    const double final_residual =
        w < result.final_residuals.size() ? result.final_residuals[w] : 0.0;
    out << (w == 0 ? "\n" : ",\n");
    out << "    {\"window\": " << w << ", \"iterations\": " << iters
        << ", \"final_residual\": " << fmt(final_residual)
        << ", \"residuals\": [";
    if (w < result.residual_trajectories.size()) {
      const auto& traj = result.residual_trajectories[w];
      for (std::size_t i = 0; i < traj.size(); ++i) {
        out << (i == 0 ? "" : ", ") << fmt(traj[i]);
      }
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

bool write_metrics_json(const RunResult& result, const std::string& path,
                        const Sampler* sampler) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(result, out, sampler);
  return static_cast<bool>(out);
}

}  // namespace pmpr::obs
