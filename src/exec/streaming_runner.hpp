// Streaming execution model (paper §3.3.2): one mutable STINGER-style graph
// advanced window by window — events sliding into the window are inserted,
// events sliding out are removed — with incremental PageRank refreshed
// after each batch. Windows are inherently sequential; the only available
// parallelism is inside the kernel.
#pragma once

#include <string_view>

#include "exec/results.hpp"
#include "graph/edge_list.hpp"
#include "graph/window.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "par/parallel_for.hpp"

namespace pmpr {

/// How the streaming model refreshes PageRank after each window batch.
enum class StreamingAlgorithm {
  /// Power iteration warm-started from the previous solution.
  kWarmRestart,
  /// Riedy-style ∆-push (Eq. 3): localized frontier propagation from the
  /// changed vertices, then certifying sweeps. Runs sequentially.
  kDeltaPush,
};

[[nodiscard]] std::string_view to_string(StreamingAlgorithm a);
StreamingAlgorithm parse_streaming_algorithm(std::string_view name);

struct StreamingOptions {
  PagerankParams pr;
  /// SIMD selection, kept uniform across the three runners so pmpr_run can
  /// plumb one value everywhere. The streaming kernels have no wide
  /// sweeps; the resolved ISA is validated (a forced unsupported mode
  /// still fails fast) and recorded in RunResult::simd_isa.
  SimdMode simd = SimdMode::kAuto;
  /// Warm-start each window's PageRank from the previous solution
  /// (Riedy-style incremental update). Off = cold start every window.
  bool incremental = true;
  StreamingAlgorithm algorithm = StreamingAlgorithm::kWarmRestart;
  bool parallel_kernel = true;
  par::Partitioner partitioner = par::Partitioner::kAuto;
  std::size_t grain = 1;
  /// Run DynamicGraph::validate() after every window's batch mutation
  /// (throws pmpr::InvariantError on a structural violation). O(V + E) per
  /// window — debugging / sanitizer-CI aid, not for benchmarking.
  bool validate = false;
  par::ThreadPool* pool = nullptr;
};

/// Runs the streaming model over every window of `spec`. `events` must be
/// time-sorted (they are replayed as the edge stream). `build_seconds` of
/// the result accounts the graph mutation (insert/expire) time.
RunResult run_streaming(const TemporalEdgeList& events, const WindowSpec& spec,
                        ResultSink& sink, const StreamingOptions& opts);

}  // namespace pmpr
