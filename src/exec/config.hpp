// Postmortem execution configuration (paper §4.3–§4.4, §6.3.6).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "graph/edge_list.hpp"
#include "graph/multi_window.hpp"
#include "graph/window.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "pagerank/window_state.hpp"
#include "par/partitioner.hpp"

namespace pmpr {

/// Which level(s) of parallelism the postmortem driver uses (paper §4.3).
enum class ParallelMode {
  kWindow,    ///< Across windows; each PageRank runs sequentially.
  kPagerank,  ///< Windows in order; parallelism inside each PageRank.
  kNested,    ///< Both at once (workstealing adapts between them).
};

/// SpMV-style (one window at a time) vs SpMM-inspired (a batch of windows
/// per matrix traversal, §4.4).
enum class KernelKind { kSpmv, kSpmm };

/// How the multi-window representation is stored while computing.
enum class StorageKind {
  /// Raw temporal CSR arrays, all parts resident (the seed behavior and
  /// the ablation baseline for the compressed paths).
  kInRam,
  /// Chunked delta+varint parts, all resident; the compile passes stream
  /// from the chunks (io/compressed_csr.hpp) — the raw arrays never exist
  /// after the build.
  kCompressed,
  /// Compressed parts serialized to an mmap-backed store file and paged
  /// in/out under config.memory_budget_bytes
  /// (graph/paged_multi_window.hpp). Requires compiled_kernels.
  kOutOfCore,
};

[[nodiscard]] std::string_view to_string(ParallelMode m);
[[nodiscard]] std::string_view to_string(KernelKind k);
[[nodiscard]] std::string_view to_string(StorageKind s);
ParallelMode parse_parallel_mode(std::string_view name);
KernelKind parse_kernel_kind(std::string_view name);
StorageKind parse_storage_kind(std::string_view name);

struct PostmortemConfig {
  PagerankParams pr;
  ParallelMode mode = ParallelMode::kNested;
  KernelKind kernel = KernelKind::kSpmm;
  par::Partitioner partitioner = par::Partitioner::kAuto;
  std::size_t grain = 1;
  /// Number of multi-window graphs Y (paper evaluates 6..1024, Fig. 8).
  std::size_t num_multi_windows = 6;
  /// How windows are assigned to multi-window graphs (kBalancedEvents is
  /// the paper's future-work decomposition; see graph/multi_window.hpp).
  PartitionPolicy partition_policy = PartitionPolicy::kUniformWindows;
  /// SpMM lanes ("vector length"; paper uses 8 or 16).
  std::size_t vector_length = 16;
  /// Hard cap on SpMM lanes per batch, clamped to [1, kMaxSpmmLanes].
  /// vector_length asks for a width; max_lanes bounds what any batch may
  /// actually get (the pre-PR 6 kernels were hard-clamped at 64).
  std::size_t max_lanes = kMaxSpmmLanes;
  /// ISA override for the compiled SpMM sweeps (kAuto = best the CPU
  /// supports; forced modes are for differential testing / perf triage and
  /// throw InvariantError when unsupported). Resolved once per run and
  /// recorded in RunResult::simd_isa.
  SimdMode simd = SimdMode::kAuto;
  /// Use the batch-compiled adjacency kernels (precomputed lane masks, run
  /// compression, active-row compaction — pagerank/batch_csr.hpp) instead
  /// of the reference traversal that re-derives lane membership per edge
  /// per iteration. Bit-identical results; off retains the reference
  /// kernels for differential testing and ablation.
  bool compiled_kernels = true;
  bool partial_init = true;
  /// Representation storage: raw in-RAM (default), compressed in-RAM, or
  /// the mmap-backed out-of-core store. The compressed kinds require
  /// compiled_kernels (the reference traversal needs raw arrays) — the
  /// runner throws InvariantError otherwise. Ranks are bit-identical
  /// across all three.
  StorageKind storage = StorageKind::kInRam;
  /// kOutOfCore only: hard cap on resident compressed payload bytes. 0 =
  /// "one part at a time" (the cap adjusts to the largest part).
  std::size_t memory_budget_bytes = 0;
  /// kOutOfCore only: store-file location; empty picks a unique temp file.
  std::string spill_path;
  /// Run MultiWindowSet::validate() on the representation before computing
  /// (throws pmpr::InvariantError on a structural violation). O(V + E)
  /// once per run — cheap insurance for debugging and sanitizer CI.
  bool validate = false;
  /// Pool override for tests; nullptr = global pool.
  par::ThreadPool* pool = nullptr;
};

/// Per-window work profile used by suggest_config.
struct WorkloadProfile {
  std::size_t num_windows = 0;
  /// Share of all window-edges carried by the two heaviest windows, in
  /// [0, 1]. Detects the Enron/Epinions-like spike datasets where a couple
  /// of windows dominate (Fig. 4 discussion).
  double top2_share = 0.0;

  static WorkloadProfile from_window_edges(
      std::span<const std::size_t> window_edge_counts);
};

/// The paper's §6.3.6 rules of thumb: SpMM is never a bad choice; the auto
/// partitioner with grain <= 4; nested parallelism unless a couple of
/// windows dominate the workload (then application-level) or there are
/// very few windows relative to the machine.
PostmortemConfig suggest_config(const WorkloadProfile& profile,
                                std::size_t num_threads);

/// One-call form: profiles `events` under `spec` (event counts per window)
/// and applies the §6.3.6 rules. `num_threads` = 0 uses the global pool's
/// size.
PostmortemConfig suggest_config_for(const TemporalEdgeList& events,
                                    const WindowSpec& spec,
                                    std::size_t num_threads = 0);

}  // namespace pmpr
