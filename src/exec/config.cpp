#include "exec/config.hpp"

#include <algorithm>

#include "graph/window_stats.hpp"
#include "par/thread_pool.hpp"
#include "util/check.hpp"

namespace pmpr {

std::string_view to_string(ParallelMode m) {
  switch (m) {
    case ParallelMode::kWindow:
      return "window";
    case ParallelMode::kPagerank:
      return "pagerank";
    case ParallelMode::kNested:
      return "nested";
  }
  return "?";
}

std::string_view to_string(KernelKind k) {
  return k == KernelKind::kSpmv ? "spmv" : "spmm";
}

std::string_view to_string(StorageKind s) {
  switch (s) {
    case StorageKind::kInRam:
      return "in-ram";
    case StorageKind::kCompressed:
      return "compressed";
    case StorageKind::kOutOfCore:
      return "out-of-core";
  }
  return "?";
}

ParallelMode parse_parallel_mode(std::string_view name) {
  if (name == "window") return ParallelMode::kWindow;
  if (name == "pagerank" || name == "pr") return ParallelMode::kPagerank;
  return ParallelMode::kNested;
}

KernelKind parse_kernel_kind(std::string_view name) {
  return name == "spmv" ? KernelKind::kSpmv : KernelKind::kSpmm;
}

StorageKind parse_storage_kind(std::string_view name) {
  if (name == "in-ram" || name == "ram") return StorageKind::kInRam;
  if (name == "compressed") return StorageKind::kCompressed;
  if (name == "out-of-core" || name == "oocore") return StorageKind::kOutOfCore;
  // Unlike the mode/kernel parsers, a typo here must not fall back: a user
  // who asked for out-of-core and silently got in-RAM OOMs instead of
  // paging.
  PMPR_CHECK_MSG(false, "unknown storage kind '"
                            << name
                            << "' (expected in-ram, compressed, out-of-core)");
}

WorkloadProfile WorkloadProfile::from_window_edges(
    std::span<const std::size_t> window_edge_counts) {
  WorkloadProfile p;
  p.num_windows = window_edge_counts.size();
  std::size_t total = 0;
  std::size_t top1 = 0;
  std::size_t top2 = 0;
  for (const std::size_t e : window_edge_counts) {
    total += e;
    if (e >= top1) {
      top2 = top1;
      top1 = e;
    } else if (e > top2) {
      top2 = e;
    }
  }
  p.top2_share =
      total > 0 ? static_cast<double>(top1 + top2) / static_cast<double>(total)
                : 0.0;
  return p;
}

PostmortemConfig suggest_config(const WorkloadProfile& profile,
                                std::size_t num_threads) {
  PostmortemConfig cfg;
  cfg.kernel = KernelKind::kSpmm;  // "SpMM is never a bad choice"
  cfg.partitioner = par::Partitioner::kAuto;
  cfg.grain = 4;  // "granularity size under 4 usually provides good results"
  cfg.partial_init = true;
  cfg.vector_length = 16;

  // Application-level parallelization when a couple of windows carry most
  // of the load or there are too few windows to feed the machine;
  // otherwise nested.
  const bool dominated = profile.top2_share > 0.5;
  const bool few_windows = profile.num_windows < 2 * num_threads;
  cfg.mode = (dominated || few_windows) ? ParallelMode::kPagerank
                                        : ParallelMode::kNested;

  // Keep at least a handful of windows per multi-window graph.
  cfg.num_multi_windows =
      std::max<std::size_t>(1, std::min<std::size_t>(6, profile.num_windows));
  return cfg;
}

PostmortemConfig suggest_config_for(const TemporalEdgeList& events,
                                    const WindowSpec& spec,
                                    std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = par::ThreadPool::global().num_threads();
  }
  const std::vector<std::size_t> counts = window_event_counts(events, spec);
  return suggest_config(WorkloadProfile::from_window_edges(counts),
                        num_threads);
}

}  // namespace pmpr
