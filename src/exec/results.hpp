// Shared result plumbing for the three execution models.
//
// Runners time their phases (graph construction vs PageRank) and fill a
// RunResult with convergence, telemetry, and memory bookkeeping. The
// per-window vectors themselves go to a ResultSink
// (analysis/result_sink.hpp, re-exported here so runner callers get both
// halves from one include).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/result_sink.hpp"  // IWYU pragma: export
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/memory.hpp"

namespace pmpr {

/// Timing and convergence bookkeeping for one full analysis run.
struct RunResult {
  double build_seconds = 0.0;    ///< Graph representation construction.
  double compute_seconds = 0.0;  ///< PageRank iterations (incl. init).
  std::uint64_t total_iterations = 0;
  std::size_t num_windows = 0;
  std::vector<int> iterations_per_window;

  /// Last-iteration L1 residual per window (always filled).
  std::vector<double> final_residuals;
  /// Per-window per-iteration L1 residuals. Entries are empty unless
  /// obs::set_metrics_enabled(true) was active during the run (kernels
  /// skip the per-iteration recording otherwise).
  std::vector<std::vector<double>> residual_trajectories;
  /// Telemetry counters accrued registry-wide between run start and end
  /// (obs::counters_snapshot delta). All zero when counters are disabled;
  /// concurrent unrelated runs share the registry, so attribute with care.
  obs::CounterSnapshot counters;
  /// Per-phase (build/init/iterate/sink) per-window latency distributions,
  /// same registry-wide delta semantics as `counters`. All empty when
  /// obs::set_histograms_enabled(true) was not active during the run.
  obs::HistogramSnapshot histograms;
  /// Peak resident bytes of the run's representation + working sets. When
  /// memory accounting was enabled this is the *measured* tagged-charge
  /// watermark (memory.total_peak_bytes); otherwise it falls back to the
  /// model-specific estimate. peak_memory_estimate_bytes always keeps the
  /// estimate so drift between the two stays reportable.
  std::size_t peak_memory_bytes = 0;
  /// The model's formula-based estimate, regardless of accounting state.
  std::size_t peak_memory_estimate_bytes = 0;
  /// Tagged-accounting snapshot delta across the run (alloc/free are run
  /// deltas; live/peak are process watermarks at run end). All zero when
  /// obs::set_memory_accounting_enabled(true) was not active.
  obs::MemorySnapshot memory;
  /// Read amplification of compressed/oocore runs: encoded bytes decoded
  /// by compile passes over rank bytes delivered to sinks. 0 when the run
  /// decoded nothing (in-RAM storage) or counters were disabled.
  double read_amplification = 0.0;
  /// Resolved SIMD ISA of the run's options ("scalar" / "avx2" / "avx512").
  /// Compiled SpMM sweeps executed on this ISA; the per-ISA simd_sweep_*
  /// counters record how many. Set by all three runners (the SpMV-shaped
  /// offline/streaming kernels record what dispatch resolved even though
  /// they do not run the wide sweeps).
  std::string simd_isa;

  /// Bytes of the stored representation (raw or compressed, whichever the
  /// run used; postmortem runner only).
  std::size_t representation_bytes = 0;
  /// Out-of-core runs (StorageKind::kOutOfCore) only, zero otherwise:
  /// peak charged resident payload, on-disk store size, and the raw
  /// (uncompressed col+time) bytes the same adjacency would occupy — the
  /// working set an in-RAM run needs. store/raw is the compression ratio,
  /// peak/raw the residency reduction.
  std::size_t oocore_resident_peak_bytes = 0;
  std::size_t oocore_store_bytes = 0;
  std::size_t oocore_raw_bytes = 0;
  /// Measured (mincore) peak residency of the oocore store, the ground
  /// truth for oocore_resident_peak_bytes' charge-based accounting. Zero
  /// for non-oocore runs.
  std::size_t oocore_measured_resident_peak_bytes = 0;

  [[nodiscard]] double total_seconds() const {
    return build_seconds + compute_seconds;
  }
};

}  // namespace pmpr
