#include "exec/postmortem_runner.hpp"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "graph/memory_budget.hpp"
#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "pagerank/partial_init.hpp"
#include "pagerank/spmm_temporal.hpp"
#include "pagerank/spmv_temporal.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pmpr {

namespace {

/// Per-execution-context scratch. Acquired per work item from a per-thread
/// stack: the common case reuses the same state for consecutive items on a
/// thread (which is what lets partial initialization chain, §4.3.1); the
/// rare nested-steal reentrancy gets a fresh state instead of corrupting
/// the busy one.
struct ThreadState {
  WindowState ws;
  SpmmWindowState spmm_ws;
  CompiledWindowCsr compiled_win;
  CompiledBatchCsr compiled_batch;
  /// Chunk-decode buffers for compressed parts, reused across the serial
  /// compile passes (the parallel passes allocate per callback).
  io::DecodeScratch decode_scratch;
  std::vector<double> x;
  std::vector<double> scratch;
  std::vector<double> lane_buf;

  // Carry for partial initialization: result of the previous item this
  // state processed.
  std::vector<double> prev_x;
  std::vector<std::uint8_t> prev_active;      // SpMV
  std::vector<std::uint64_t> prev_mask;       // SpMM, n * prev_words
  std::size_t prev_lanes = 0;                 // SpMM
  std::size_t prev_words = 1;                 // SpMM mask words
  std::size_t carry_part = SIZE_MAX;
  std::size_t carry_index = SIZE_MAX;
};

struct WorkItem {
  std::size_t part;
  std::size_t index;  // window-in-part (SpMV) or batch-in-part (SpMM)
};

/// SpMM batch geometry for one part (§4.4): W windows are divided into
/// `lanes` regions of `region` consecutive windows; batch j takes the j-th
/// window of every region, so batch j+1 holds the successors of batch j.
struct PartBatching {
  std::size_t lanes_max = 0;
  std::size_t region = 0;
  std::size_t num_batches = 0;
};

PartBatching batching_for(std::size_t num_windows, std::size_t vector_length,
                          std::size_t max_lanes) {
  // The kernels handle up to kMaxSpmmLanes since the multi-word masks of
  // PR 6; max_lanes is the config's own (tighter) cap.
  const std::size_t cap =
      std::min(std::max<std::size_t>(max_lanes, 1), kMaxSpmmLanes);
  PartBatching b;
  b.lanes_max = std::min(std::max<std::size_t>(vector_length, 1),
                         std::min<std::size_t>(num_windows, cap));
  b.region = (num_windows + b.lanes_max - 1) / b.lanes_max;
  b.num_batches = b.region;
  return b;
}

std::size_t lanes_of_batch(const PartBatching& b, std::size_t num_windows,
                           std::size_t j) {
  // Lane r exists iff r*region + j < num_windows.
  if (j >= num_windows) return 0;
  return (num_windows - j - 1) / b.region + 1;
}

/// Eq. 4 for one SpMM lane over lane-interleaved storage. Masks are
/// multi-word: prev_mask is n * prev_words, cur_mask n * cur_words.
void spmm_partial_init_lane(std::span<const double> prev_x,
                            std::size_t prev_lanes, std::size_t prev_words,
                            std::size_t kp,
                            std::span<const std::uint64_t> prev_mask,
                            std::span<double> cur_x, std::size_t cur_lanes,
                            std::size_t cur_words, std::size_t k,
                            std::span<const std::uint64_t> cur_mask,
                            std::size_t cur_num_active) {
  const std::size_t n = cur_mask.size() / cur_words;
  const auto prev_has = [&](std::size_t v) {
    return mask_test(prev_mask.data() + v * prev_words, kp);
  };
  const auto cur_has = [&](std::size_t v) {
    return mask_test(cur_mask.data() + v * cur_words, k);
  };
  if (cur_num_active == 0) {
    for (std::size_t v = 0; v < n; ++v) cur_x[v * cur_lanes + k] = 0.0;
    return;
  }
  std::size_t shared = 0;
  double mass = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (prev_has(v) && cur_has(v)) {
      ++shared;
      mass += prev_x[v * prev_lanes + kp];
    }
  }
  const double uniform = 1.0 / static_cast<double>(cur_num_active);
  if (shared == 0 || mass <= 0.0) {
    for (std::size_t v = 0; v < n; ++v) {
      cur_x[v * cur_lanes + k] = cur_has(v) ? uniform : 0.0;
    }
    obs::count(obs::Counter::kVerticesReseeded, cur_num_active);
    return;
  }
  obs::count(obs::Counter::kVerticesReused, shared);
  obs::count(obs::Counter::kVerticesReseeded, cur_num_active - shared);
  const double scale =
      (static_cast<double>(shared) / static_cast<double>(cur_num_active)) /
      mass;
  for (std::size_t v = 0; v < n; ++v) {
    if (!cur_has(v)) {
      cur_x[v * cur_lanes + k] = 0.0;
    } else if (prev_has(v)) {
      cur_x[v * cur_lanes + k] = prev_x[v * prev_lanes + kp] * scale;
    } else {
      cur_x[v * cur_lanes + k] = uniform;
    }
  }
}

class PostmortemDriver {
 public:
  /// Exactly one of `set` / `paged` is non-null. The paged form processes
  /// the work list part-major, holding a pin lease on one part at a time.
  PostmortemDriver(const MultiWindowSet* set, PagedMultiWindowSet* paged,
                   ResultSink& sink, const PostmortemConfig& cfg,
                   RunResult& result)
      : set_(set),
        paged_(paged),
        spec_(set != nullptr ? set->spec() : paged->spec()),
        sink_(sink),
        cfg_(cfg),
        result_(result) {
    pool_ = cfg.pool != nullptr ? cfg.pool : &par::ThreadPool::global();
    for_opts_ = par::ForOptions{cfg.partitioner, cfg.grain, pool_};
    kernel_par_ =
        cfg.mode == ParallelMode::kWindow ? nullptr : &for_opts_;

    // One work-item list spanning all parts, ordered by part then index so
    // contiguous chunks chain partial initialization. The paged driver
    // additionally relies on this order: items of one part are contiguous,
    // so a single lease covers a maximal run.
    const std::size_t num_parts =
        set != nullptr ? set->num_parts() : paged->num_parts();
    for (std::size_t p = 0; p < num_parts; ++p) {
      const MultiWindowGraph& part =
          set != nullptr ? set->part(p) : paged->part_meta(p);
      const std::size_t count =
          cfg.kernel == KernelKind::kSpmv
              ? part.num_windows
              : batching_for(part.num_windows, cfg.vector_length,
                             cfg.max_lanes)
                    .num_batches;
      for (std::size_t i = 0; i < count; ++i) items_.push_back({p, i});
    }

    state_stacks_.resize(pool_->num_threads() + 1);
  }

  void run() {
    result_.num_windows = spec_.count;
    result_.iterations_per_window.assign(spec_.count, 0);
    result_.final_residuals.assign(spec_.count, 0.0);
    result_.residual_trajectories.assign(spec_.count, {});

    if (paged_ != nullptr) {
      run_paged();
    } else if (cfg_.mode == ParallelMode::kPagerank) {
      // Windows strictly in order, parallelism inside the kernel only.
      StateLease lease(*this);
      for (const WorkItem& item : items_) process(*lease.state, item);
    } else {
      par::parallel_for_range(
          0, items_.size(), for_opts_, [this](std::size_t lo, std::size_t hi) {
            StateLease lease(*this);
            for (std::size_t i = lo; i < hi; ++i) {
              process(*lease.state, items_[i]);
            }
          });
    }

    for (const int iters : result_.iterations_per_window) {
      result_.total_iterations += static_cast<std::uint64_t>(iters);
    }
  }

 private:
  /// RAII acquisition of a per-thread state (stack per thread slot; only
  /// the owning thread touches its stack, so no locking).
  struct StateLease {
    explicit StateLease(PostmortemDriver& driver) : d(driver) {
      const int idx = par::ThreadPool::current_worker_index();
      slot = idx >= 0 ? static_cast<std::size_t>(idx) : d.pool_->num_threads();
      auto& stack = d.state_stacks_[slot];
      if (stack.empty()) {
        state_holder = std::make_unique<ThreadState>();
      } else {
        state_holder = std::move(stack.back());
        stack.pop_back();
      }
      state = state_holder.get();
    }
    ~StateLease() {
      d.state_stacks_[slot].push_back(std::move(state_holder));
    }
    PostmortemDriver& d;
    std::size_t slot = 0;
    std::unique_ptr<ThreadState> state_holder;
    ThreadState* state = nullptr;
  };

  /// Part-major paged execution: maximal runs of same-part items share one
  /// pin lease; groups run strictly in sequence so at most one part (plus
  /// LRU leftovers under the budget) is resident. Within a group the
  /// configured mode applies as usual.
  void run_paged() {
    std::size_t i = 0;
    while (i < items_.size()) {
      const std::size_t p = items_[i].part;
      std::size_t j = i;
      while (j < items_.size() && items_[j].part == p) ++j;
      PagedMultiWindowSet::Lease lease = paged_->acquire(p);
      // Published to the workers by the parallel_for fork below.
      paged_part_ = &lease.part();
      if (cfg_.mode == ParallelMode::kPagerank) {
        StateLease slease(*this);
        for (std::size_t k = i; k < j; ++k) process(*slease.state, items_[k]);
      } else {
        par::parallel_for_range(
            i, j, for_opts_, [this](std::size_t lo, std::size_t hi) {
              StateLease slease(*this);
              for (std::size_t k = lo; k < hi; ++k) {
                process(*slease.state, items_[k]);
              }
            });
      }
      paged_part_ = nullptr;
      i = j;
    }
  }

  /// The part an item reads: the pinned one under paged execution (the
  /// paged store's slot graphs are only mapped while leased), the set's
  /// otherwise.
  [[nodiscard]] const MultiWindowGraph& part_of(const WorkItem& item) const {
    return paged_ != nullptr ? *paged_part_ : set_->part(item.part);
  }

  void process(ThreadState& st, const WorkItem& item) {
    if (cfg_.kernel == KernelKind::kSpmv) {
      process_spmv(st, item);
    } else {
      process_spmm(st, item);
    }
  }

  void process_spmv(ThreadState& st, const WorkItem& item) {
    const MultiWindowGraph& part = part_of(item);
    const std::size_t w = part.first_window + item.index;
    const Timestamp ts = spec_.start(w);
    const Timestamp te = spec_.end(w);
    const std::size_t n = part.num_local();

    st.x.resize(n);
    st.scratch.resize(n);
    {
      PMPR_TRACE_SPAN("window.build");
      PMPR_FR_PHASE("window.build", w);
      obs::PhaseTimer timing(obs::Phase::kBuild);
      if (cfg_.compiled_kernels) {
        compile_window(part, ts, te, st.ws, st.compiled_win, kernel_par_,
                       &st.decode_scratch);
      } else {
        compute_window_state(part, ts, te, st.ws, kernel_par_);
      }
    }

    const bool partial = cfg_.partial_init && item.index > 0 &&
                         st.carry_part == item.part &&
                         st.carry_index == item.index - 1 &&
                         st.prev_x.size() == n;
    {
      PMPR_TRACE_SPAN("window.init");
      PMPR_FR_PHASE("window.init", w);
      obs::PhaseTimer timing(obs::Phase::kInit);
      if (partial) {
        partial_init(st.prev_x, st.prev_active, st.ws.active, st.ws.num_active,
                     st.x);
      } else {
        full_init(st.ws.active, st.ws.num_active, st.x);
      }
    }

    PagerankStats stats;
    {
      PMPR_TRACE_SPAN("window.iterate");
      PMPR_FR_PHASE("window.iterate", w);
      obs::PhaseTimer timing(obs::Phase::kIterate);
      stats = cfg_.compiled_kernels
                  ? pagerank_window_spmv(st.ws, st.compiled_win, st.x,
                                         st.scratch, cfg_.pr, kernel_par_)
                  : pagerank_window_spmv(part, ts, te, st.ws, st.x, st.scratch,
                                         cfg_.pr, kernel_par_);
    }
    result_.iterations_per_window[w] = stats.iterations;
    result_.final_residuals[w] = stats.final_residual;
    result_.residual_trajectories[w] = std::move(stats.residuals);
    obs::count(obs::Counter::kWindowsProcessed);
    obs::fr_record(obs::FrEvent::kWindowDone, nullptr, w, stats.iterations);
    {
      PMPR_TRACE_SPAN("window.sink");
      PMPR_FR_PHASE("window.sink", w);
      obs::PhaseTimer timing(obs::Phase::kSink);
      sink_.consume_mapped(w, part.local_to_global, st.x);
      // Read-amplification denominator: rank bytes this window delivered.
      obs::count(obs::Counter::kWindowOutputBytes, n * sizeof(double));
    }

    st.prev_x.swap(st.x);
    st.prev_active.swap(st.ws.active);
    st.carry_part = item.part;
    st.carry_index = item.index;
  }

  void process_spmm(ThreadState& st, const WorkItem& item) {
    const MultiWindowGraph& part = part_of(item);
    const PartBatching geo =
        batching_for(part.num_windows, cfg_.vector_length, cfg_.max_lanes);
    const std::size_t j = item.index;
    const std::size_t lanes = lanes_of_batch(geo, part.num_windows, j);
    assert(lanes >= 1);
    const std::size_t n = part.num_local();

    SpmmBatch batch;
    batch.lanes = lanes;
    batch.first_window = part.first_window + j;
    batch.window_stride = geo.region;

    st.x.resize(n * lanes);
    st.scratch.resize(n * lanes);
    {
      PMPR_TRACE_SPAN("batch.build");
      PMPR_FR_PHASE("batch.build", batch.first_window);
      obs::PhaseTimer timing(obs::Phase::kBuild);
      if (cfg_.compiled_kernels) {
        compile_spmm_batch(part, spec_, batch, st.spmm_ws, st.compiled_batch,
                           kernel_par_, &st.decode_scratch);
      } else {
        compute_spmm_state(part, spec_, batch, st.spmm_ws, kernel_par_);
      }
    }

    const bool partial = cfg_.partial_init && j > 0 &&
                         st.carry_part == item.part &&
                         st.carry_index == j - 1 &&
                         st.prev_lanes >= lanes &&
                         st.prev_x.size() == n * st.prev_lanes;
    {
      PMPR_TRACE_SPAN("batch.init");
      PMPR_FR_PHASE("batch.init", batch.first_window);
      obs::PhaseTimer timing(obs::Phase::kInit);
      const std::size_t words = st.spmm_ws.mask_words;
      for (std::size_t k = 0; k < lanes; ++k) {
        if (partial) {
          // Lane k's window is the successor of the previous batch's lane k.
          spmm_partial_init_lane(st.prev_x, st.prev_lanes, st.prev_words, k,
                                 st.prev_mask, st.x, lanes, words, k,
                                 st.spmm_ws.active_mask,
                                 st.spmm_ws.num_active[k]);
        } else {
          const double uniform =
              st.spmm_ws.num_active[k] > 0
                  ? 1.0 / static_cast<double>(st.spmm_ws.num_active[k])
                  : 0.0;
          for (std::size_t v = 0; v < n; ++v) {
            st.x[v * lanes + k] =
                mask_test(st.spmm_ws.mask_of(v), k) ? uniform : 0.0;
          }
          obs::count(obs::Counter::kVerticesReseeded,
                     st.spmm_ws.num_active[k]);
        }
      }
    }

    SpmmStats stats;
    {
      PMPR_TRACE_SPAN("batch.iterate");
      PMPR_FR_PHASE("batch.iterate", batch.first_window);
      obs::PhaseTimer timing(obs::Phase::kIterate);
      stats = cfg_.compiled_kernels
                  ? pagerank_spmm(st.spmm_ws, st.compiled_batch, st.x,
                                  st.scratch, cfg_.pr, kernel_par_,
                                  cfg_.simd)
                  : pagerank_spmm(part, spec_, batch, st.spmm_ws, st.x,
                                  st.scratch, cfg_.pr, kernel_par_);
    }
    obs::count(obs::Counter::kWindowsProcessed, lanes);
    obs::fr_record(obs::FrEvent::kWindowDone, nullptr, batch.first_window,
                   lanes);

    PMPR_TRACE_SPAN("batch.sink");
    PMPR_FR_PHASE("batch.sink", batch.first_window);
    obs::PhaseTimer sink_timing(obs::Phase::kSink);
    st.lane_buf.resize(n);
    for (std::size_t k = 0; k < lanes; ++k) {
      const std::size_t w = batch.window_of_lane(k);
      for (std::size_t v = 0; v < n; ++v) {
        st.lane_buf[v] = st.x[v * lanes + k];
      }
      result_.iterations_per_window[w] = stats.lane_stats[k].iterations;
      result_.final_residuals[w] = stats.lane_stats[k].final_residual;
      result_.residual_trajectories[w] = std::move(stats.lane_stats[k].residuals);
      sink_.consume_mapped(w, part.local_to_global, st.lane_buf);
    }
    // Read-amplification denominator: one rank vector per lane's window.
    obs::count(obs::Counter::kWindowOutputBytes, lanes * n * sizeof(double));

    st.prev_x.swap(st.x);
    st.prev_mask = st.spmm_ws.active_mask;  // copy; spmm_ws reused next item
    st.prev_lanes = lanes;
    st.prev_words = st.spmm_ws.mask_words;
    st.carry_part = item.part;
    st.carry_index = j;
  }

  const MultiWindowSet* set_ = nullptr;
  PagedMultiWindowSet* paged_ = nullptr;
  /// Pinned part of the group run_paged() is currently processing.
  /// Written between groups only (before the fork / after the join), read
  /// by the workers.
  const MultiWindowGraph* paged_part_ = nullptr;
  const WindowSpec spec_;
  ResultSink& sink_;
  const PostmortemConfig& cfg_;
  RunResult& result_;
  par::ThreadPool* pool_ = nullptr;
  par::ForOptions for_opts_;
  const par::ForOptions* kernel_par_ = nullptr;
  std::vector<WorkItem> items_;
  std::vector<std::vector<std::unique_ptr<ThreadState>>> state_stacks_;
};

}  // namespace

namespace {

/// Compressed representations stream through the compile passes; the
/// reference (non-compiled) traversal reads the raw arrays and cannot run.
void check_storage_supported(const PostmortemConfig& config) {
  PMPR_CHECK_MSG(config.compiled_kernels ||
                     config.storage == StorageKind::kInRam,
                 to_string(config.storage)
                     << " storage requires compiled_kernels: the reference "
                        "kernels traverse the raw temporal CSR");
}

/// Folds the run's memory accounting into `result` (which must already
/// hold its counter delta). alloc/free tallies become run deltas against
/// `before`; live/peak stay the process watermarks at run end — watermarks
/// have no meaningful delta. peak_memory_bytes prefers the measured
/// tagged-charge watermark over the model estimate when accounting was on;
/// the estimate always survives in peak_memory_estimate_bytes so drift
/// between the two stays reportable.
void finish_memory_accounting(const obs::MemorySnapshot& before,
                              std::size_t estimate_bytes, RunResult& result) {
  obs::MemorySnapshot mem = obs::memory_snapshot();
  for (std::size_t i = 0; i < obs::kNumMemTags; ++i) {
    // Monotone tallies: never smaller than at run start unless a test
    // reset the registry mid-run, hence the clamp.
    mem.tags[i].alloc_bytes -=
        std::min(mem.tags[i].alloc_bytes, before.tags[i].alloc_bytes);
    mem.tags[i].free_bytes -=
        std::min(mem.tags[i].free_bytes, before.tags[i].free_bytes);
  }
  result.memory = mem;
  result.peak_memory_estimate_bytes = estimate_bytes;
  result.peak_memory_bytes =
      obs::memory_accounting_enabled() && mem.total_peak_bytes > 0
          ? static_cast<std::size_t>(mem.total_peak_bytes)
          : estimate_bytes;
  const std::uint64_t decoded = result.counters[obs::Counter::kBytesDecoded];
  const std::uint64_t delivered =
      result.counters[obs::Counter::kWindowOutputBytes];
  if (decoded > 0 && delivered > 0) {
    result.read_amplification =
        static_cast<double>(decoded) / static_cast<double>(delivered);
  }
}

}  // namespace

RunResult run_postmortem_prebuilt(const MultiWindowSet& set, ResultSink& sink,
                                  const PostmortemConfig& config) {
  PMPR_CHECK_MSG(config.storage != StorageKind::kOutOfCore,
                 "run_postmortem_prebuilt cannot page; use "
                 "run_postmortem_paged or run_postmortem with "
                 "StorageKind::kOutOfCore");
  if (config.validate) set.validate();
  RunResult result;
  // Resolve up front: a forced-but-unsupported simd mode fails the run
  // here, before any work, instead of deep inside the first batch.
  result.simd_isa = std::string(to_string(resolve_simd(config.simd)));
  const obs::CounterSnapshot before = obs::counters_snapshot();
  const obs::HistogramSnapshot hist_before = obs::histograms_snapshot();
  const obs::MemorySnapshot mem_before = obs::memory_snapshot();
  Timer timer;
  {
    PMPR_TRACE_SPAN("postmortem.run");
    PostmortemDriver driver(&set, nullptr, sink, config, result);
    driver.run();
  }
  result.compute_seconds = timer.seconds();
  result.counters = obs::counters_snapshot().delta_since(before);
  result.histograms = obs::histograms_snapshot().delta_since(hist_before);
  const std::size_t kernel_contexts =
      config.mode == ParallelMode::kPagerank
          ? 1
          : (config.pool != nullptr ? config.pool->num_threads()
                                    : par::ThreadPool::global().num_threads()) +
                1;
  const std::size_t vlen =
      config.kernel == KernelKind::kSpmm ? config.vector_length : 1;
  const MemoryEstimate est = estimate_memory(set, vlen);
  result.representation_bytes = est.representation_bytes;
  finish_memory_accounting(mem_before, est.peak_bytes(kernel_contexts),
                           result);
  return result;
}

RunResult run_postmortem_paged(PagedMultiWindowSet& paged, ResultSink& sink,
                               const PostmortemConfig& config) {
  PMPR_CHECK_MSG(config.compiled_kernels,
                 "out-of-core storage requires compiled_kernels: the "
                 "reference kernels traverse the raw temporal CSR");
  if (config.validate) {
    // Part at a time, bounded by the budget like any other access.
    for (std::size_t p = 0; p < paged.num_parts(); ++p) {
      paged.acquire(p).part().validate();
    }
  }
  RunResult result;
  result.simd_isa = std::string(to_string(resolve_simd(config.simd)));
  const obs::CounterSnapshot before = obs::counters_snapshot();
  const obs::HistogramSnapshot hist_before = obs::histograms_snapshot();
  const obs::MemorySnapshot mem_before = obs::memory_snapshot();
  Timer timer;
  {
    PMPR_TRACE_SPAN("postmortem.run_paged");
    PostmortemDriver driver(nullptr, &paged, sink, config, result);
    driver.run();
  }
  result.compute_seconds = timer.seconds();
  // Publish the store's paging activity as counters before snapshotting so
  // the run's delta includes them.
  const PagingStats ps = paged.stats();
  obs::count(obs::Counter::kPartsEvicted, ps.parts_evicted);
  obs::count(obs::Counter::kPartRefaults, ps.part_refaults);
  result.counters = obs::counters_snapshot().delta_since(before);
  result.histograms = obs::histograms_snapshot().delta_since(hist_before);
  result.representation_bytes = ps.store_bytes;
  result.oocore_resident_peak_bytes = ps.peak_resident_bytes;
  result.oocore_store_bytes = ps.store_bytes;
  result.oocore_raw_bytes = ps.raw_bytes;
  result.oocore_measured_resident_peak_bytes =
      ps.measured_resident_peak_bytes;
  // For paged runs the fallback "estimate" is itself a paging measurement:
  // charged payload peak plus the always-resident vertex maps. The tagged
  // watermark (when accounting is on) additionally sees compiled kernels
  // and decode scratch, so the two legitimately diverge.
  std::size_t meta_bytes = 0;
  for (std::size_t p = 0; p < paged.num_parts(); ++p) {
    meta_bytes +=
        paged.part_meta(p).local_to_global.size() * sizeof(VertexId);
  }
  finish_memory_accounting(mem_before, ps.peak_resident_bytes + meta_bytes,
                           result);
  return result;
}

RunResult run_postmortem(const TemporalEdgeList& events,
                         const WindowSpec& spec, ResultSink& sink,
                         const PostmortemConfig& config) {
  check_storage_supported(config);
  Timer build_timer;
  double build_seconds = 0.0;
  const obs::HistogramSnapshot hist_before = obs::histograms_snapshot();

  if (config.storage == StorageKind::kOutOfCore) {
    std::unique_ptr<PagedMultiWindowSet> paged;
    {
      PMPR_TRACE_SPAN("postmortem.build_paged_store");
      obs::PhaseTimer timing(obs::Phase::kBuild);
      PagedMultiWindowSet::Options opts;
      opts.num_parts = config.num_multi_windows;
      opts.policy = config.partition_policy;
      opts.budget_bytes = config.memory_budget_bytes;
      opts.spill_path = config.spill_path;
      paged = PagedMultiWindowSet::build(events, spec, opts);
      build_seconds = build_timer.seconds();
    }
    RunResult result = run_postmortem_paged(*paged, sink, config);
    result.build_seconds = build_seconds;
    result.histograms = obs::histograms_snapshot().delta_since(hist_before);
    return result;
  }

  MultiWindowSet set = [&] {
    PMPR_TRACE_SPAN("postmortem.build_representation");
    obs::PhaseTimer timing(obs::Phase::kBuild);
    MultiWindowSet s = MultiWindowSet::build(
        events, spec, config.num_multi_windows, config.partition_policy);
    if (config.storage == StorageKind::kCompressed) s.compress_in_place();
    build_seconds = build_timer.seconds();
    return s;
  }();

  RunResult result = run_postmortem_prebuilt(set, sink, config);
  result.build_seconds = build_seconds;
  // Re-delta from before the representation build so its kBuild recording
  // is attributed to this run too (prebuilt only saw its own interval).
  result.histograms = obs::histograms_snapshot().delta_since(hist_before);
  return result;
}

}  // namespace pmpr
