// Offline execution model (paper §3.3.1): rebuild an independent graph for
// every window from the event data, run PageRank from a cold start. The
// per-window reconstruction dominates the cost — the baseline the
// postmortem representation eliminates.
#pragma once

#include "exec/results.hpp"
#include "graph/edge_list.hpp"
#include "graph/window.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "par/parallel_for.hpp"

namespace pmpr {

struct OfflineOptions {
  PagerankParams pr;
  /// SIMD selection, kept uniform across the three runners so pmpr_run can
  /// plumb one value everywhere. The offline model's SpMV kernels have no
  /// wide sweeps; the resolved ISA is validated (a forced unsupported mode
  /// still fails fast) and recorded in RunResult::simd_isa.
  SimdMode simd = SimdMode::kAuto;
  /// Parallelize inside each PageRank (application-level).
  bool parallel_kernel = true;
  /// Rebuild + solve different windows concurrently — the "massively
  /// parallel" deployment §3.3.1 describes (each window independent, so
  /// this maps to a cluster; here it maps to the pool). Exclusive with
  /// parallel_kernel in effect: when set, kernels run sequentially.
  bool parallel_windows = false;
  par::Partitioner partitioner = par::Partitioner::kAuto;
  std::size_t grain = 1;
  /// Run WindowGraph::validate() on every rebuilt window graph (throws
  /// pmpr::InvariantError on a structural violation).
  bool validate = false;
  par::ThreadPool* pool = nullptr;
};

/// Runs the offline model over every window of `spec`. `events` must be
/// time-sorted. Results are delivered to `sink` in window order.
RunResult run_offline(const TemporalEdgeList& events, const WindowSpec& spec,
                      ResultSink& sink, const OfflineOptions& opts);

}  // namespace pmpr
