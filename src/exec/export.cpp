#include "exec/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pmpr {

void save_series_csv(const StoreAllSink& sink, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << "window,vertex,score\n";
  char buf[64];
  for (std::size_t w = 0; w < sink.num_windows(); ++w) {
    for (const auto& [v, score] : sink.window(w)) {
      std::snprintf(buf, sizeof(buf), "%zu,%u,%.17g\n", w, v, score);
      out << buf;
    }
  }
  if (!out) throw std::runtime_error("write failure on " + path);
}

StoreAllSink load_series_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != "window,vertex,score") {
    throw std::runtime_error(path + ": missing series CSV header");
  }
  // Two passes are avoided by buffering rows grouped per window.
  std::vector<std::vector<std::pair<VertexId, double>>> windows;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::size_t w = 0;
    unsigned v = 0;
    double score = 0.0;
    if (std::sscanf(line.c_str(), "%zu,%u,%lg", &w, &v, &score) != 3) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed series row: '" + line + "'");
    }
    if (w >= windows.size()) windows.resize(w + 1);
    windows[w].emplace_back(static_cast<VertexId>(v), score);
  }
  StoreAllSink sink(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    std::vector<VertexId> ids;
    std::vector<double> scores;
    ids.reserve(windows[w].size());
    scores.reserve(windows[w].size());
    for (const auto& [v, s] : windows[w]) {
      ids.push_back(v);
      scores.push_back(s);
    }
    sink.consume_mapped(w, ids, scores);
  }
  return sink;
}

namespace {
// Version 1 files are a bare magic followed by the payload; version 2 adds
// a 4-byte extended header (endianness tag, payload codec, reserved byte)
// so readers can reject foreign-endian or unknown-codec files instead of
// decoding garbage. Writers emit v2; the loader accepts both.
constexpr char kMagicV1[8] = {'P', 'M', 'P', 'R', 'T', 'S', '0', '1'};
constexpr char kMagicV2[8] = {'P', 'M', 'P', 'R', 'T', 'S', '0', '2'};
/// Written as a native u16; a reader on the other endianness sees 0x0201.
constexpr std::uint16_t kEndianTag = 0x0102;
/// Payload codecs. Only raw ⟨vertex,score⟩ rows exist today; the tag
/// reserves space for a compressed payload without another magic bump.
constexpr std::uint8_t kCodecRawRows = 0;
}  // namespace

void save_series_binary(const StoreAllSink& sink, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(kMagicV2, sizeof(kMagicV2));
  out.write(reinterpret_cast<const char*>(&kEndianTag), sizeof(kEndianTag));
  const std::uint8_t codec = kCodecRawRows;
  const std::uint8_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&codec), sizeof(codec));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  const std::uint64_t windows = sink.num_windows();
  out.write(reinterpret_cast<const char*>(&windows), sizeof(windows));
  for (std::size_t w = 0; w < windows; ++w) {
    const auto& rows = sink.window(w);
    const std::uint64_t count = rows.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [v, score] : rows) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
      out.write(reinterpret_cast<const char*>(&score), sizeof(score));
    }
  }
  if (!out) throw std::runtime_error("write failure on " + path);
}

StoreAllSink load_series_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  // Header counts are bounded against the file size before any allocation
  // sized from them, so a corrupt or hostile header cannot trigger a
  // multi-gigabyte resize (mirrors the edge_list.cpp binary-loader
  // defense). Each row costs sizeof(VertexId) + sizeof(double) bytes and
  // each window at least its own 8-byte count field.
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error(path + ": cannot stat file");
  constexpr std::uint64_t kRowBytes = sizeof(VertexId) + sizeof(double);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, "PMPRTS", 6) != 0) {
    throw std::runtime_error(path + ": not a pmpr time-series file");
  }
  std::uint64_t header_bytes = sizeof(magic);
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    std::uint16_t endian = 0;
    std::uint8_t codec = 0;
    std::uint8_t reserved = 0;
    in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
    in.read(reinterpret_cast<char*>(&codec), sizeof(codec));
    in.read(reinterpret_cast<char*>(&reserved), sizeof(reserved));
    if (!in) throw std::runtime_error(path + ": truncated header");
    if (endian != kEndianTag) {
      throw std::runtime_error(path +
                               ": endianness mismatch (file written on a "
                               "different-endian machine)");
    }
    if (codec != kCodecRawRows) {
      throw std::runtime_error(path + ": unknown payload codec " +
                               std::to_string(codec));
    }
    // `reserved` is deliberately ignored: a future minor extension may set
    // it without breaking this reader.
    header_bytes += sizeof(endian) + sizeof(codec) + sizeof(reserved);
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    throw std::runtime_error(
        path + ": unsupported time-series format version '" +
        std::string(magic + 6, 2) + "'");
  }
  std::uint64_t windows = 0;
  in.read(reinterpret_cast<char*>(&windows), sizeof(windows));
  if (!in) throw std::runtime_error(path + ": truncated header");
  std::uint64_t payload = file_size - header_bytes - sizeof(windows);
  if (windows > payload / sizeof(std::uint64_t)) {
    throw std::runtime_error(path + ": window count " +
                             std::to_string(windows) +
                             " exceeds what the file can hold");
  }
  StoreAllSink sink(windows);
  std::vector<VertexId> ids;
  std::vector<double> scores;
  for (std::size_t w = 0; w < windows; ++w) {
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in) throw std::runtime_error(path + ": truncated window header");
    payload -= sizeof(count);
    if (count > payload / kRowBytes) {
      throw std::runtime_error(path + ": window " + std::to_string(w) +
                               " row count " + std::to_string(count) +
                               " exceeds what the file can hold");
    }
    payload -= count * kRowBytes;
    ids.resize(count);
    scores.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      in.read(reinterpret_cast<char*>(&ids[i]), sizeof(VertexId));
      in.read(reinterpret_cast<char*>(&scores[i]), sizeof(double));
      if (!in) throw std::runtime_error(path + ": truncated window payload");
    }
    sink.consume_mapped(w, ids, scores);
  }
  return sink;
}

}  // namespace pmpr
