// Runtime telemetry: run-metrics serialization (observability pillar 3).
//
// Lives in exec/ (not obs/) because it serializes exec's RunResult: the
// exporter sits above both the runners and the telemetry layer in the
// module DAG (ci/layers.toml). The API keeps the pmpr::obs namespace it
// has always had — callers say obs::write_metrics_json.
//
// Every runner fills RunResult with per-window convergence data, telemetry
// counter deltas, per-phase latency histograms, and memory accounting
// (tagged live/peak per MemTag, measured vs estimated peak, oocore
// residency, read amplification); write_metrics_json emits the whole
// record as one JSON object (schema "pmpr-metrics-v4", validated by
// ci/obs_smoke.sh). Benchmarks and the pmpr_run example expose it via
// `--metrics <path>`; pass a Sampler to also embed the scheduler-profile
// summary (the "sampler" and "memory" sections are always present —
// zeroed when disabled — so consumers need no existence checks).
#pragma once

#include <iosfwd>
#include <string>

#include "exec/results.hpp"

namespace pmpr::obs {

class Sampler;

/// Writes `result` as one JSON object:
///   { "schema": "pmpr-metrics-v4", "build_seconds": ..., ...,
///     "diagnostics": {"flight_recorder": {...}, "watchdog": {...},
///                     "crash_handler_installed": ..., "heartbeats": [...]},
///     "counters": {"tasks_spawned": ...},
///     "histograms": {"build": {"count": ..., "p50_ns": ..., ...}, ...},
///     "memory": {"tags": {"graph": {"live_bytes": ..., ...}, ...},
///                "peak_bytes_measured": ..., "read_amplification": ...},
///     "sampler": {"num_samples": ..., "mean_total_queued": ..., ...},
///     "windows": [{...}, ...] }
/// `sampler` may be null (the "sampler" section is then all zeros).
void write_metrics_json(const RunResult& result, std::ostream& out,
                        const Sampler* sampler = nullptr);

/// File variant; returns false on IO failure.
[[nodiscard]] bool write_metrics_json(const RunResult& result,
                                      const std::string& path,
                                      const Sampler* sampler = nullptr);

}  // namespace pmpr::obs
