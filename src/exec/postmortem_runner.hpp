// Postmortem execution model (paper §4): the whole temporal graph is encoded
// once as a MultiWindowSet; PageRank runs over windows with
//   * partial initialization chained across consecutive windows processed by
//     the same thread (§4.2, §4.3.1),
//   * window-level / application-level / nested parallelism on the
//     work-stealing pool (§4.3),
//   * the SpMV or SpMM-inspired kernel (§4.4); SpMM batches are strided so
//     every batch after the first still partial-initializes.
#pragma once

#include "exec/config.hpp"
#include "exec/results.hpp"
#include "graph/edge_list.hpp"
#include "graph/multi_window.hpp"
#include "graph/paged_multi_window.hpp"

namespace pmpr {

/// Builds the multi-window representation (timed as build_seconds) and runs
/// the analysis. `events` must be time-sorted. config.storage picks the
/// representation: raw in-RAM, compressed in-RAM (chunk-streaming compile),
/// or the mmap-backed out-of-core store paged under
/// config.memory_budget_bytes. Ranks are bit-identical across the three.
RunResult run_postmortem(const TemporalEdgeList& events,
                         const WindowSpec& spec, ResultSink& sink,
                         const PostmortemConfig& config);

/// Runs on an already-built representation (build_seconds = 0). Benchmarks
/// use this to sweep execution parameters without re-paying construction.
/// Honors compressed parts (set.compress_in_place()) but not
/// StorageKind::kOutOfCore — use run_postmortem_paged for that.
RunResult run_postmortem_prebuilt(const MultiWindowSet& set, ResultSink& sink,
                                  const PostmortemConfig& config);

/// Runs on an already-built paged store. Parts are processed part-major:
/// each part is pinned (PagedMultiWindowSet::acquire) while its windows /
/// batches compute — possibly in parallel — then released to the LRU.
/// Requires config.compiled_kernels (the reference traversal needs raw
/// arrays). Fills the oocore_* fields of RunResult from the store's
/// PagingStats.
RunResult run_postmortem_paged(PagedMultiWindowSet& paged, ResultSink& sink,
                               const PostmortemConfig& config);

}  // namespace pmpr
