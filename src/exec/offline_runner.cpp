#include "exec/offline_runner.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pmpr {

namespace {

/// Builds window `w`'s graph and runs a cold-start PageRank into `x`.
/// Returns the iteration count.
int solve_window(const TemporalEdgeList& events, const WindowSpec& spec,
                 std::size_t w, const OfflineOptions& opts,
                 const par::ForOptions* kernel_par, std::vector<double>& x,
                 std::vector<double>& scratch, double& build_seconds,
                 double& compute_seconds) {
  Timer build_timer;
  const auto slice = events.slice(spec.start(w), spec.end(w));
  const WindowGraph g = build_window_graph(slice, events.num_vertices());
  build_seconds = build_timer.seconds();
  if (opts.validate) g.validate();

  Timer compute_timer;
  x.resize(g.num_vertices);
  scratch.resize(g.num_vertices);
  full_init(g.is_active, g.num_active, x);
  const PagerankStats stats = pagerank(g, x, scratch, opts.pr, kernel_par);
  compute_seconds = compute_timer.seconds();
  return stats.iterations;
}

}  // namespace

RunResult run_offline(const TemporalEdgeList& events, const WindowSpec& spec,
                      ResultSink& sink, const OfflineOptions& opts) {
  spec.validate();
  PMPR_CHECK_MSG(events.is_sorted_by_time(),
                 "run_offline slices events per window and requires them "
                 "time-sorted; call sort_by_time() first");
  RunResult result;
  result.num_windows = spec.count;
  result.iterations_per_window.assign(spec.count, 0);

  par::ForOptions for_opts{opts.partitioner, opts.grain, opts.pool};

  if (opts.parallel_windows) {
    // Window-level fan-out: each window is fully independent (cold start,
    // own graph), so this is embarrassingly parallel. Phase times are
    // summed across windows (total work, not wall time).
    std::atomic<std::int64_t> build_ns{0};
    std::atomic<std::int64_t> compute_ns{0};
    par::parallel_for(0, spec.count, for_opts, [&](std::size_t w) {
      std::vector<double> x;
      std::vector<double> scratch;
      double build = 0.0;
      double compute = 0.0;
      const int iters = solve_window(events, spec, w, opts,
                                     /*kernel_par=*/nullptr, x, scratch,
                                     build, compute);
      result.iterations_per_window[w] = iters;
      sink.consume_dense(w, x);
      // relaxed (both): commutative time totals, read only after the
      // parallel_for join publishes them.
      build_ns.fetch_add(static_cast<std::int64_t>(build * 1e9),
                         std::memory_order_relaxed);
      compute_ns.fetch_add(static_cast<std::int64_t>(compute * 1e9),
                           std::memory_order_relaxed);  // relaxed: as above
    });
    result.build_seconds = static_cast<double>(build_ns.load()) * 1e-9;
    result.compute_seconds = static_cast<double>(compute_ns.load()) * 1e-9;
  } else {
    const par::ForOptions* kernel_par =
        opts.parallel_kernel ? &for_opts : nullptr;
    std::vector<double> x;
    std::vector<double> scratch;
    for (std::size_t w = 0; w < spec.count; ++w) {
      double build = 0.0;
      double compute = 0.0;
      const int iters = solve_window(events, spec, w, opts, kernel_par, x,
                                     scratch, build, compute);
      result.iterations_per_window[w] = iters;
      sink.consume_dense(w, x);
      result.build_seconds += build;
      result.compute_seconds += compute;
    }
  }

  for (const int iters : result.iterations_per_window) {
    result.total_iterations += static_cast<std::uint64_t>(iters);
  }
  return result;
}

}  // namespace pmpr
