#include "exec/offline_runner.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>

#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pmpr {

namespace {

/// Rough resident bytes of one offline window's working set: the window
/// CSR (row pointers + columns), degrees, activity, and the two PageRank
/// vectors. An estimate for RunResult::peak_memory_bytes, not a
/// measurement.
std::size_t window_bytes(const WindowGraph& g) {
  return (g.num_vertices + 1) * sizeof(std::size_t)     // row_ptr
         + g.in.num_edges() * sizeof(VertexId)          // columns
         + g.num_vertices * sizeof(std::uint32_t)       // out_degree
         + g.num_vertices * sizeof(std::uint8_t)        // is_active
         + 2 * g.num_vertices * sizeof(double);         // x + scratch
}

/// Builds window `w`'s graph and runs a cold-start PageRank into `x`.
/// Returns the kernel stats; `memory_bytes` gets the window's estimated
/// working-set size.
PagerankStats solve_window(const TemporalEdgeList& events,
                           const WindowSpec& spec, std::size_t w,
                           const OfflineOptions& opts,
                           const par::ForOptions* kernel_par,
                           std::vector<double>& x,
                           std::vector<double>& scratch,
                           double& build_seconds, double& compute_seconds,
                           std::size_t& memory_bytes) {
  Timer build_timer;
  PMPR_TRACE_SPAN("offline.window");
  const WindowGraph g = [&] {
    PMPR_TRACE_SPAN("window.build");
    PMPR_FR_PHASE("window.build", w);
    obs::PhaseTimer timing(obs::Phase::kBuild);
    const auto slice = events.slice(spec.start(w), spec.end(w));
    return build_window_graph(slice, events.num_vertices());
  }();
  build_seconds = build_timer.seconds();
  if (opts.validate) g.validate();
  memory_bytes = window_bytes(g);

  Timer compute_timer;
  x.resize(g.num_vertices);
  scratch.resize(g.num_vertices);
  {
    PMPR_TRACE_SPAN("window.init");
    PMPR_FR_PHASE("window.init", w);
    obs::PhaseTimer timing(obs::Phase::kInit);
    full_init(g.is_active, g.num_active, x);
  }
  PMPR_TRACE_SPAN("window.iterate");
  PMPR_FR_PHASE("window.iterate", w);
  obs::PhaseTimer iterate_timing(obs::Phase::kIterate);
  PagerankStats stats = pagerank(g, x, scratch, opts.pr, kernel_par);
  compute_seconds = compute_timer.seconds();
  obs::count(obs::Counter::kWindowsProcessed);
  obs::fr_record(obs::FrEvent::kWindowDone, nullptr, w, stats.iterations);
  return stats;
}

}  // namespace

RunResult run_offline(const TemporalEdgeList& events, const WindowSpec& spec,
                      ResultSink& sink, const OfflineOptions& opts) {
  spec.validate();
  PMPR_CHECK_MSG(events.is_sorted_by_time(),
                 "run_offline slices events per window and requires them "
                 "time-sorted; call sort_by_time() first");
  RunResult result;
  result.simd_isa = std::string(to_string(resolve_simd(opts.simd)));
  result.num_windows = spec.count;
  result.iterations_per_window.assign(spec.count, 0);
  result.final_residuals.assign(spec.count, 0.0);
  result.residual_trajectories.assign(spec.count, {});
  // Per-window working-set estimates; distinct slots, no synchronization
  // needed even when windows run in parallel.
  std::vector<std::size_t> window_memory(spec.count, 0);

  const obs::CounterSnapshot before = obs::counters_snapshot();
  const obs::HistogramSnapshot hist_before = obs::histograms_snapshot();
  PMPR_TRACE_SPAN("offline.run");

  par::ForOptions for_opts{opts.partitioner, opts.grain, opts.pool};

  auto record = [&](std::size_t w, PagerankStats stats) {
    result.iterations_per_window[w] = stats.iterations;
    result.final_residuals[w] = stats.final_residual;
    result.residual_trajectories[w] = std::move(stats.residuals);
  };

  if (opts.parallel_windows) {
    // Window-level fan-out: each window is fully independent (cold start,
    // own graph), so this is embarrassingly parallel. Phase times are
    // summed across windows (total work, not wall time).
    std::atomic<std::int64_t> build_ns{0};
    std::atomic<std::int64_t> compute_ns{0};
    par::parallel_for(0, spec.count, for_opts, [&](std::size_t w) {
      std::vector<double> x;
      std::vector<double> scratch;
      double build = 0.0;
      double compute = 0.0;
      PagerankStats stats =
          solve_window(events, spec, w, opts, /*kernel_par=*/nullptr, x,
                       scratch, build, compute, window_memory[w]);
      record(w, std::move(stats));
      {
        PMPR_TRACE_SPAN("window.sink");
        PMPR_FR_PHASE("window.sink", w);
        obs::PhaseTimer timing(obs::Phase::kSink);
        sink.consume_dense(w, x);
      }
      // relaxed (both): commutative time totals, read only after the
      // parallel_for join publishes them.
      build_ns.fetch_add(static_cast<std::int64_t>(build * 1e9),
                         std::memory_order_relaxed);
      compute_ns.fetch_add(static_cast<std::int64_t>(compute * 1e9),
                           std::memory_order_relaxed);  // relaxed: as above
    });
    result.build_seconds = static_cast<double>(build_ns.load()) * 1e-9;
    result.compute_seconds = static_cast<double>(compute_ns.load()) * 1e-9;
  } else {
    const par::ForOptions* kernel_par =
        opts.parallel_kernel ? &for_opts : nullptr;
    std::vector<double> x;
    std::vector<double> scratch;
    for (std::size_t w = 0; w < spec.count; ++w) {
      double build = 0.0;
      double compute = 0.0;
      PagerankStats stats = solve_window(events, spec, w, opts, kernel_par, x,
                                         scratch, build, compute,
                                         window_memory[w]);
      record(w, std::move(stats));
      {
        PMPR_TRACE_SPAN("window.sink");
        PMPR_FR_PHASE("window.sink", w);
        obs::PhaseTimer timing(obs::Phase::kSink);
        sink.consume_dense(w, x);
      }
      result.build_seconds += build;
      result.compute_seconds += compute;
    }
  }

  for (const int iters : result.iterations_per_window) {
    result.total_iterations += static_cast<std::uint64_t>(iters);
  }
  // Peak estimate: the largest single window when sequential; with
  // parallel_windows up to `threads` windows are resident at once, so sum
  // the largest `threads` estimates.
  std::sort(window_memory.begin(), window_memory.end(),
            std::greater<std::size_t>());
  std::size_t resident = opts.parallel_windows
                             ? (opts.pool != nullptr
                                    ? opts.pool->num_threads()
                                    : par::ThreadPool::global().num_threads())
                             : 1;
  resident = std::min(resident, window_memory.size());
  for (std::size_t i = 0; i < resident; ++i) {
    result.peak_memory_bytes += window_memory[i];
  }
  result.counters = obs::counters_snapshot().delta_since(before);
  result.histograms = obs::histograms_snapshot().delta_since(hist_before);
  return result;
}

}  // namespace pmpr
