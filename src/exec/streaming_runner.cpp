#include "exec/streaming_runner.hpp"

#include <algorithm>
#include <utility>

#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "streaming/delta_pagerank.hpp"
#include "streaming/dynamic_graph.hpp"
#include "streaming/incremental_pagerank.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pmpr {

std::string_view to_string(StreamingAlgorithm a) {
  return a == StreamingAlgorithm::kWarmRestart ? "warm-restart"
                                               : "delta-push";
}

StreamingAlgorithm parse_streaming_algorithm(std::string_view name) {
  if (name == "delta-push" || name == "delta") {
    return StreamingAlgorithm::kDeltaPush;
  }
  return StreamingAlgorithm::kWarmRestart;
}

namespace {

/// The per-window insert/expire batches of the sliding-window edge stream.
struct WindowBatches {
  std::span<const TemporalEdge> inserted;
  std::span<const TemporalEdge> removed;
};

WindowBatches advance_graph(streaming::DynamicGraph& graph,
                            const TemporalEdgeList& events,
                            const WindowSpec& spec, std::size_t w) {
  WindowBatches batches;
  if (w == 0) {
    batches.inserted = events.slice(spec.start(0), spec.end(0));
    graph.insert_batch(batches.inserted);
    return batches;
  }
  const Timestamp prev_start = spec.start(w - 1);
  const Timestamp prev_end = spec.end(w - 1);
  const Timestamp cur_start = spec.start(w);
  const Timestamp cur_end = spec.end(w);
  if (cur_start > prev_end) {
    // Disjoint windows: drop everything, insert the new window whole.
    batches.removed = events.slice(prev_start, prev_end);
    batches.inserted = events.slice(cur_start, cur_end);
  } else {
    // Overlapping slide: expire [prev_start, cur_start), admit
    // (prev_end, cur_end].
    batches.removed = events.slice(prev_start, cur_start - 1);
    batches.inserted = events.slice(prev_end + 1, cur_end);
  }
  graph.remove_batch(batches.removed);
  graph.insert_batch(batches.inserted);
  return batches;
}

}  // namespace

RunResult run_streaming(const TemporalEdgeList& events, const WindowSpec& spec,
                        ResultSink& sink, const StreamingOptions& opts) {
  spec.validate();
  PMPR_CHECK_MSG(events.is_sorted_by_time(),
                 "run_streaming replays events as the edge stream and "
                 "requires them time-sorted; call sort_by_time() first");
  RunResult result;
  result.simd_isa = std::string(to_string(resolve_simd(opts.simd)));
  result.num_windows = spec.count;
  result.iterations_per_window.assign(spec.count, 0);
  result.final_residuals.assign(spec.count, 0.0);
  result.residual_trajectories.assign(spec.count, {});

  const obs::CounterSnapshot before = obs::counters_snapshot();
  const obs::HistogramSnapshot hist_before = obs::histograms_snapshot();
  PMPR_TRACE_SPAN("streaming.run");

  const VertexId n = events.num_vertices();
  streaming::DynamicGraph graph(n);
  streaming::IncrementalPagerank warm(graph, opts.pr);
  streaming::DeltaPagerank delta(graph, opts.pr);
  const bool use_delta = opts.algorithm == StreamingAlgorithm::kDeltaPush;

  par::ForOptions for_opts{opts.partitioner, opts.grain, opts.pool};
  const par::ForOptions* kernel_par =
      opts.parallel_kernel ? &for_opts : nullptr;

  AccumTimer mutate_timer;
  AccumTimer compute_timer;
  std::size_t max_live_edges = 0;
  for (std::size_t w = 0; w < spec.count; ++w) {
    WindowBatches batches;
    {
      ScopedAccum timing(mutate_timer);
      PMPR_TRACE_SPAN("window.mutate");
      PMPR_FR_PHASE("window.mutate", w);
      // Graph mutation is the streaming model's "build" phase.
      obs::PhaseTimer phase_timing(obs::Phase::kBuild);
      batches = advance_graph(graph, events, spec, w);
      if (opts.validate) graph.validate();
    }

    PagerankStats stats;
    {
      ScopedAccum timing(compute_timer);
      PMPR_TRACE_SPAN("window.iterate");
      PMPR_FR_PHASE("window.iterate", w);
      // Warm-restart/delta re-seeding happens inside update(): the iterate
      // phase covers init for the streaming model.
      obs::PhaseTimer phase_timing(obs::Phase::kIterate);
      if (use_delta) {
        if (!opts.incremental) delta.reset();
        stats = delta.update(batches.inserted, batches.removed).pagerank;
      } else {
        if (!opts.incremental) warm.reset();
        stats = warm.update(kernel_par);
      }
    }

    result.iterations_per_window[w] = stats.iterations;
    result.total_iterations += static_cast<std::uint64_t>(stats.iterations);
    result.final_residuals[w] = stats.final_residual;
    result.residual_trajectories[w] = std::move(stats.residuals);
    max_live_edges = std::max(max_live_edges, graph.num_edges());
    obs::count(obs::Counter::kWindowsProcessed);
    obs::fr_record(obs::FrEvent::kWindowDone, nullptr, w, stats.iterations);
    PMPR_TRACE_SPAN("window.sink");
    PMPR_FR_PHASE("window.sink", w);
    obs::PhaseTimer sink_timing(obs::Phase::kSink);
    sink.consume_dense(w, use_delta ? delta.values() : warm.values());
  }
  result.build_seconds = mutate_timer.seconds();
  result.compute_seconds = compute_timer.seconds();
  // Rough resident estimate: the live dynamic adjacency at its largest
  // window (endpoints + timestamp per directed edge, both directions) plus
  // the dense per-vertex state (rank + residual/scratch + degree + flags).
  result.peak_memory_bytes =
      2 * max_live_edges * (2 * sizeof(VertexId) + sizeof(Timestamp)) +
      static_cast<std::size_t>(n) *
          (2 * sizeof(double) + 2 * sizeof(VertexId));
  result.counters = obs::counters_snapshot().delta_since(before);
  result.histograms = obs::histograms_snapshot().delta_since(hist_before);
  return result;
}

}  // namespace pmpr
