#include "gen/surrogates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmpr::gen {

namespace {

using pmpr::duration::kDay;
using pmpr::duration::kYear;

/// Rough epoch seconds for the first of a year (leap-day precision is
/// irrelevant for surrogate shapes).
constexpr Timestamp year_start(int year) {
  return static_cast<Timestamp>(year - 1970) * kYear;
}

std::vector<DatasetSpec> make_catalog() {
  std::vector<DatasetSpec> cat;

  {
    DatasetSpec d;
    d.name = "ca-cit-HepTh";
    d.paper_events = 2'673'133;
    d.events = 150'000;
    d.topology = {.scale = 14, .a = 0.55, .b = 0.2, .c = 0.2, .noise = 0.1};
    d.t_begin = year_start(1993);
    d.t_end = year_start(2001) + 90 * kDay;
    d.profile = {ProfileShape::kIrregular, 4.0, 0.0};
    d.sliding_offsets = {43'200, 86'400, 172'800};
    d.window_sizes = {10 * kDay, 15 * kDay, 90 * kDay,
                      180 * kDay, 730 * kDay, 1460 * kDay};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "stackoverflow";
    d.paper_events = 47'903'266;
    d.events = 500'000;
    d.topology = {.scale = 16, .a = 0.57, .b = 0.19, .c = 0.19, .noise = 0.1};
    d.t_begin = year_start(2008) + 210 * kDay;
    d.t_end = year_start(2015) + 210 * kDay;
    d.profile = {ProfileShape::kGrowth, 2.0, 0.0};
    d.sliding_offsets = {43'200, 86'400};
    d.window_sizes = {10 * kDay, 15 * kDay, 90 * kDay, 180 * kDay,
                      730 * kDay};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "askubuntu";
    d.paper_events = 726'661;
    d.events = 120'000;
    d.topology = {.scale = 14, .a = 0.57, .b = 0.19, .c = 0.19, .noise = 0.1};
    d.t_begin = year_start(2009);
    d.t_end = year_start(2015) + 270 * kDay;
    d.profile = {ProfileShape::kGrowth, 1.5, 0.0};
    d.sliding_offsets = {86'400, 172'800};
    d.window_sizes = {90 * kDay, 180 * kDay};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "youtube-growth";
    d.paper_events = 12'223'774;
    d.events = 300'000;
    d.topology = {.scale = 15, .a = 0.6, .b = 0.18, .c = 0.18, .noise = 0.1};
    d.t_begin = year_start(2006) + 340 * kDay;
    d.t_end = year_start(2007) + 190 * kDay;
    d.profile = {ProfileShape::kSteadyBursty, 4.0, 0.08};
    d.sliding_offsets = {43'200, 86'400};
    d.window_sizes = {60 * kDay, 90 * kDay};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "epinions-user-ratings";
    d.paper_events = 13'668'281;
    d.events = 300'000;
    // Bipartite-ish reviews: skew sources harder than destinations.
    d.topology = {.scale = 15, .a = 0.62, .b = 0.2, .c = 0.12, .noise = 0.1};
    d.t_begin = year_start(2001) + 14 * kDay;
    d.t_end = year_start(2002) + 70 * kDay;
    d.profile = {ProfileShape::kBurst, 0.35, 0.08};
    d.sliding_offsets = {43'200, 86'400};
    d.window_sizes = {60 * kDay, 90 * kDay};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "ia-enron-email";
    d.paper_events = 1'134'990;
    d.events = 150'000;
    d.topology = {.scale = 13, .a = 0.55, .b = 0.22, .c = 0.18, .noise = 0.1};
    d.t_begin = year_start(1997);
    d.t_end = year_start(2003);
    // The 2001 scandal spike (Fig. 4a).
    d.profile = {ProfileShape::kSpike, 0.8, 0.05};
    d.sliding_offsets = {86'400, 172'800};
    d.window_sizes = {2 * kYear, 4 * kYear};
    cat.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "wiki-talk";
    d.paper_events = 6'100'538;
    d.events = 400'000;
    d.topology = {.scale = 15, .a = 0.57, .b = 0.19, .c = 0.19, .noise = 0.1};
    d.t_begin = year_start(2001) + 270 * kDay;
    d.t_end = year_start(2007);
    d.profile = {ProfileShape::kGrowth, 2.2, 0.0};
    d.sliding_offsets = {43'200, 86'400, 172'800, 259'200};
    d.window_sizes = {10 * kDay, 15 * kDay, 90 * kDay, 180 * kDay};
    cat.push_back(std::move(d));
  }
  return cat;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_catalog() {
  static const std::vector<DatasetSpec> catalog = make_catalog();
  return catalog;
}

const DatasetSpec& dataset_by_name(std::string_view name) {
  for (const auto& d : dataset_catalog()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown dataset surrogate: " +
                              std::string(name));
}

DatasetSpec scaled(const DatasetSpec& spec, double factor) {
  DatasetSpec out = spec;
  if (factor <= 0.0) factor = 1.0;
  out.events = std::max<std::size_t>(
      1000, static_cast<std::size_t>(
                static_cast<double>(spec.events) * factor));
  const int shift = static_cast<int>(std::lround(std::log2(factor)));
  out.topology.scale =
      std::clamp(spec.topology.scale + shift, 8, 24);
  return out;
}

TemporalEdgeList generate(const DatasetSpec& spec, std::uint64_t seed) {
  // Independent deterministic streams for times and endpoints.
  std::uint64_t name_hash = 1469598103934665603ULL;
  for (const char ch : spec.name) {
    name_hash = (name_hash ^ static_cast<std::uint64_t>(ch)) *
                1099511628211ULL;
  }
  Xoshiro256 root(seed ^ name_hash);
  Xoshiro256 time_rng = root.fork();
  Xoshiro256 edge_rng = root.fork();

  const std::vector<Timestamp> times = sample_timestamps(
      spec.profile, spec.events, spec.t_begin, spec.t_end, time_rng);

  RmatSampler sampler(spec.topology);
  std::vector<TemporalEdge> edges;
  edges.reserve(times.size());
  for (const Timestamp t : times) {
    const auto [src, dst] = sampler.sample(edge_rng);
    edges.push_back({src, dst, t});
  }
  TemporalEdgeList list(std::move(edges));
  list.ensure_vertices(sampler.num_vertices());
  return list;
}

}  // namespace pmpr::gen
