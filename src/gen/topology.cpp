#include "gen/topology.hpp"

namespace pmpr::gen {

std::pair<VertexId, VertexId> RmatSampler::sample(Xoshiro256& rng) const {
  VertexId src = 0;
  VertexId dst = 0;
  for (int level = 0; level < p_.scale; ++level) {
    // Jitter the quadrant probabilities per level (Graph500-style noise).
    const double na = p_.a * (1.0 + p_.noise * (rng.uniform() - 0.5));
    const double nb = p_.b * (1.0 + p_.noise * (rng.uniform() - 0.5));
    const double nc = p_.c * (1.0 + p_.noise * (rng.uniform() - 0.5));
    const double nd =
        (1.0 - p_.a - p_.b - p_.c) * (1.0 + p_.noise * (rng.uniform() - 0.5));
    const double total = na + nb + nc + nd;
    const double r = rng.uniform() * total;

    src <<= 1;
    dst <<= 1;
    if (r < na) {
      // top-left: no bits set
    } else if (r < na + nb) {
      dst |= 1;
    } else if (r < na + nb + nc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

}  // namespace pmpr::gen
