// Edge-endpoint topology sampler.
//
// The paper evaluates on real social/collaboration/communication networks
// whose degree distributions are heavily skewed ("social graphs have power
// law edge distribution", §6.3.2). Our surrogates draw endpoints from an
// R-MAT distribution (Chakrabarti et al.), the standard synthetic model
// with that property; per-level parameter noise avoids the artificial
// self-similarity of plain R-MAT.
#pragma once

#include <cstdint>
#include <utility>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace pmpr::gen {

struct RmatParams {
  int scale = 14;  ///< Vertex space is [0, 2^scale).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  ///< d = 1 - a - b - c.
  double noise = 0.1;  ///< Per-level multiplicative jitter on (a,b,c,d).
};

class RmatSampler {
 public:
  explicit RmatSampler(RmatParams params) : p_(params) {}

  [[nodiscard]] VertexId num_vertices() const {
    return VertexId{1} << p_.scale;
  }

  /// Draws one (src, dst) pair. Self-loops are possible and kept (PageRank
  /// and the window graphs handle them).
  std::pair<VertexId, VertexId> sample(Xoshiro256& rng) const;

 private:
  RmatParams p_;
};

}  // namespace pmpr::gen
