// Temporal event-arrival profiles.
//
// Fig. 4 of the paper shows that the seven datasets have very different
// edge distributions over time — Enron spikes around the 2001 scandal,
// Epinions bursts near its 2001 peak, wiki-talk/stackoverflow/askubuntu
// grow smoothly, YouTube is bursty-but-steady, HepTh is irregular. Those
// shapes drive which parallelization level wins (§6.1), so the surrogates
// must reproduce them. A profile is a bucketed density over the dataset's
// time range from which timestamps are sampled deterministically.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace pmpr::gen {

enum class ProfileShape {
  kUniform,       ///< Flat arrival rate.
  kSpike,         ///< Low background + one dominant gaussian spike (Enron).
  kBurst,         ///< Heavy early burst, long light tail (Epinions).
  kGrowth,        ///< Polynomially increasing rate (wiki-talk, SO, AU).
  kSteadyBursty,  ///< Steady base with many small bursts (YouTube).
  kIrregular,     ///< Piecewise-random levels (ca-cit-HepTh).
};

[[nodiscard]] std::string_view to_string(ProfileShape s);

struct TemporalProfile {
  ProfileShape shape = ProfileShape::kUniform;
  /// Shape-specific knobs:
  ///   kSpike/kBurst : p1 = peak position in [0,1], p2 = peak width in (0,1]
  ///   kGrowth       : p1 = growth exponent (>0)
  ///   kSteadyBursty : p1 = burst amplitude, p2 = burst frequency in (0,1]
  ///   kIrregular    : p1 = level variance
  double p1 = 0.0;
  double p2 = 0.0;
};

/// Relative event density per bucket over the time range (all > 0,
/// unnormalized). `rng` drives the stochastic shapes (bursty/irregular);
/// deterministic for a given seed.
std::vector<double> profile_weights(const TemporalProfile& profile,
                                    std::size_t buckets, Xoshiro256& rng);

/// Draws `count` timestamps in [t_begin, t_end] following the profile,
/// returned sorted non-decreasing. Bucket counts are assigned by largest
/// remainder, so the realized histogram matches the profile exactly.
std::vector<Timestamp> sample_timestamps(const TemporalProfile& profile,
                                         std::size_t count, Timestamp t_begin,
                                         Timestamp t_end, Xoshiro256& rng,
                                         std::size_t buckets = 512);

}  // namespace pmpr::gen
