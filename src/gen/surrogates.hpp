// The seven dataset surrogates (paper Table 1 / Fig. 4).
//
// The paper's datasets come from SNAP / Network Repository / DIMACS; this
// offline reproduction regenerates each as a synthetic temporal edge set
// matching the published shape: scaled event count, power-law topology, the
// dataset's time range and its temporal arrival profile, plus the sliding
// offset / window size grids of Table 1 (see DESIGN.md §2 for the
// substitution rationale).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gen/temporal_profile.hpp"
#include "gen/topology.hpp"
#include "graph/edge_list.hpp"

namespace pmpr::gen {

struct DatasetSpec {
  std::string name;
  std::size_t paper_events = 0;  ///< |Events| reported in Table 1.
  std::size_t events = 0;        ///< Surrogate default (laptop-scaled).
  RmatParams topology;
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
  TemporalProfile profile;
  /// Table 1 parameter grids (seconds).
  std::vector<Timestamp> sliding_offsets;
  std::vector<Timestamp> window_sizes;
};

/// All seven surrogates in paper order.
const std::vector<DatasetSpec>& dataset_catalog();

/// Lookup by name; throws std::invalid_argument for unknown names.
const DatasetSpec& dataset_by_name(std::string_view name);

/// Returns a copy with the event count (and vertex-space scale, roughly
/// logarithmically) multiplied by `factor`.
DatasetSpec scaled(const DatasetSpec& spec, double factor);

/// Generates the surrogate's temporal edge list (sorted by time).
/// Deterministic in (spec, seed).
TemporalEdgeList generate(const DatasetSpec& spec, std::uint64_t seed = 42);

}  // namespace pmpr::gen
