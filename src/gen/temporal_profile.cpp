#include "gen/temporal_profile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pmpr::gen {

std::string_view to_string(ProfileShape s) {
  switch (s) {
    case ProfileShape::kUniform:
      return "uniform";
    case ProfileShape::kSpike:
      return "spike";
    case ProfileShape::kBurst:
      return "burst";
    case ProfileShape::kGrowth:
      return "growth";
    case ProfileShape::kSteadyBursty:
      return "steady-bursty";
    case ProfileShape::kIrregular:
      return "irregular";
  }
  return "?";
}

std::vector<double> profile_weights(const TemporalProfile& profile,
                                    std::size_t buckets, Xoshiro256& rng) {
  assert(buckets > 0);
  std::vector<double> w(buckets, 1.0);
  auto frac = [buckets](std::size_t b) {
    return (static_cast<double>(b) + 0.5) / static_cast<double>(buckets);
  };

  switch (profile.shape) {
    case ProfileShape::kUniform:
      break;
    case ProfileShape::kSpike: {
      const double center = profile.p1;
      const double width = std::max(profile.p2, 1e-3);
      for (std::size_t b = 0; b < buckets; ++b) {
        const double z = (frac(b) - center) / width;
        w[b] = 0.1 + 20.0 * std::exp(-z * z);
      }
      break;
    }
    case ProfileShape::kBurst: {
      const double center = profile.p1;
      const double width = std::max(profile.p2, 1e-3);
      for (std::size_t b = 0; b < buckets; ++b) {
        const double z = (frac(b) - center) / width;
        // Asymmetric: sharp rise, slower decay after the peak.
        const double tail = frac(b) > center ? 0.5 : 1.0;
        w[b] = 0.05 + 40.0 * std::exp(-z * z * tail);
      }
      break;
    }
    case ProfileShape::kGrowth: {
      const double g = std::max(profile.p1, 0.1);
      for (std::size_t b = 0; b < buckets; ++b) {
        w[b] = 0.02 + std::pow(frac(b), g);
      }
      break;
    }
    case ProfileShape::kSteadyBursty: {
      const double amplitude = std::max(profile.p1, 0.0);
      const double frequency = std::clamp(profile.p2, 0.0, 1.0);
      for (std::size_t b = 0; b < buckets; ++b) {
        w[b] = 1.0;
        if (rng.uniform() < frequency) {
          w[b] += amplitude * (0.5 + rng.uniform());
        }
      }
      break;
    }
    case ProfileShape::kIrregular: {
      const double variance = std::max(profile.p1, 0.1);
      std::size_t b = 0;
      while (b < buckets) {
        // Random-length segment at a random level.
        const std::size_t len =
            1 + static_cast<std::size_t>(rng.bounded(buckets / 8 + 1));
        const double level = 0.2 + variance * rng.uniform() * rng.uniform();
        for (std::size_t i = 0; i < len && b < buckets; ++i, ++b) {
          w[b] = level;
        }
      }
      break;
    }
  }
  return w;
}

std::vector<Timestamp> sample_timestamps(const TemporalProfile& profile,
                                         std::size_t count, Timestamp t_begin,
                                         Timestamp t_end, Xoshiro256& rng,
                                         std::size_t buckets) {
  assert(t_end >= t_begin);
  buckets = std::min(buckets, std::max<std::size_t>(count, 1));
  const std::vector<double> w = profile_weights(profile, buckets, rng);
  const double total_w = std::accumulate(w.begin(), w.end(), 0.0);

  // Largest-remainder allocation of `count` events to buckets.
  std::vector<std::size_t> alloc(buckets, 0);
  std::vector<std::pair<double, std::size_t>> remainders(buckets);
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double exact =
        static_cast<double>(count) * w[b] / total_w;
    alloc[b] = static_cast<std::size_t>(exact);
    assigned += alloc[b];
    remainders[b] = {exact - std::floor(exact), b};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < count && i < buckets; ++i, ++assigned) {
    ++alloc[remainders[i].second];
  }

  // Emit uniform timestamps inside each bucket, sorted within the bucket;
  // buckets are visited in order so the whole output is sorted.
  const double span = static_cast<double>(t_end - t_begin) + 1.0;
  const double bucket_span = span / static_cast<double>(buckets);
  std::vector<Timestamp> out;
  out.reserve(count);
  std::vector<Timestamp> bucket_times;
  for (std::size_t b = 0; b < buckets; ++b) {
    bucket_times.clear();
    const double lo = static_cast<double>(t_begin) +
                      static_cast<double>(b) * bucket_span;
    for (std::size_t i = 0; i < alloc[b]; ++i) {
      const double t = lo + rng.uniform() * bucket_span;
      bucket_times.push_back(std::min(
          t_end, static_cast<Timestamp>(t)));
    }
    std::sort(bucket_times.begin(), bucket_times.end());
    out.insert(out.end(), bucket_times.begin(), bucket_times.end());
  }
  return out;
}

}  // namespace pmpr::gen
