#include "graph/csr.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pmpr {

Csr Csr::from_pairs(std::span<const std::pair<VertexId, VertexId>> edges,
                    VertexId num_vertices, bool dedup) {
  Csr g;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [src, dst] : edges) {
    PMPR_CHECK_MSG(src < num_vertices && dst < num_vertices,
                   "edge <" << src << ", " << dst << "> has an endpoint "
                            << "outside the vertex space [0, " << num_vertices
                            << ")");
    ++g.row_ptr_[src + 1];
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
  }
  g.col_.resize(edges.size());
  std::vector<std::size_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const auto& [src, dst] : edges) {
    g.col_[cursor[src]++] = dst;
  }
  // Sort each row; optionally drop duplicates and compact.
  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::sort(g.col_.begin() + static_cast<std::ptrdiff_t>(g.row_ptr_[v]),
              g.col_.begin() + static_cast<std::ptrdiff_t>(g.row_ptr_[v + 1]));
  }
  if (dedup) {
    std::size_t write = 0;
    std::size_t row_start = 0;
    for (std::size_t v = 0; v < num_vertices; ++v) {
      const std::size_t row_end = g.row_ptr_[v + 1];
      std::size_t read = row_start;
      while (read < row_end) {
        const VertexId u = g.col_[read];
        g.col_[write++] = u;
        while (read < row_end && g.col_[read] == u) ++read;
      }
      row_start = row_end;
      g.row_ptr_[v + 1] = write;
    }
    g.col_.resize(write);
  }
  return g;
}

void Csr::validate() const {
  if (row_ptr_.empty()) {
    PMPR_CHECK_MSG(col_.empty(), "default-constructed Csr holds entries");
    return;
  }
  const std::size_t n = row_ptr_.size() - 1;
  PMPR_CHECK_MSG(row_ptr_.front() == 0,
                 "row_ptr[0] = " << row_ptr_.front() << ", expected 0");
  for (std::size_t v = 0; v < n; ++v) {
    PMPR_CHECK_MSG(row_ptr_[v] <= row_ptr_[v + 1],
                   "row_ptr not monotone at vertex " << v);
  }
  PMPR_CHECK_MSG(row_ptr_.back() == col_.size(),
                 "row_ptr.back() = " << row_ptr_.back() << " but col holds "
                                     << col_.size() << " entries");
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = row_ptr_[v]; i < row_ptr_[v + 1]; ++i) {
      PMPR_CHECK_MSG(col_[i] < n, "row " << v << " references vertex "
                                         << col_[i] << " outside [0, " << n
                                         << ")");
      PMPR_CHECK_MSG(i == row_ptr_[v] || col_[i - 1] <= col_[i],
                     "row " << v << " not sorted at entry " << i);
    }
  }
}

void WindowGraph::validate() const {
  PMPR_CHECK_MSG(out_degree.size() == num_vertices &&
                     is_active.size() == num_vertices,
                 "per-vertex arrays sized " << out_degree.size() << "/"
                     << is_active.size() << " for a vertex space of "
                     << num_vertices);
  PMPR_CHECK_MSG(in.num_vertices() == num_vertices ||
                     (num_vertices == 0 && in.num_edges() == 0),
                 "in-CSR covers " << in.num_vertices()
                                  << " vertices, window graph has "
                                  << num_vertices);
  in.validate();
  PMPR_CHECK_MSG(in.num_edges() == num_edges,
                 "in-CSR stores " << in.num_edges()
                                  << " edges, cached count is " << num_edges);
  std::size_t active = 0;
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    active += is_active[v] != 0 ? 1 : 0;
    degree_sum += out_degree[v];
    PMPR_CHECK_MSG(is_active[v] != 0 || (out_degree[v] == 0 &&
                                         in.neighbors(v).empty()),
                   "vertex " << v << " marked inactive but has incident "
                             << "edges");
  }
  PMPR_CHECK_MSG(active == num_active,
                 "recount finds " << active << " active vertices, cached "
                                  << "count is " << num_active);
  PMPR_CHECK_MSG(degree_sum == num_edges,
                 "out-degrees sum to " << degree_sum << ", edge count is "
                                       << num_edges);
}

WindowGraph build_window_graph(std::span<const TemporalEdge> events,
                               VertexId num_vertices) {
  WindowGraph w;
  w.num_vertices = num_vertices;
  w.is_active.assign(num_vertices, 0);

  // Deduplicate (src, dst) pairs: sort then unique.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(events.size());
  for (const auto& e : events) pairs.emplace_back(e.src, e.dst);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  w.num_edges = pairs.size();

  w.out_degree.assign(num_vertices, 0);
  std::vector<std::pair<VertexId, VertexId>> reversed;
  reversed.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    ++w.out_degree[src];
    w.is_active[src] = 1;
    w.is_active[dst] = 1;
    reversed.emplace_back(dst, src);
  }
  w.in = Csr::from_pairs(reversed, num_vertices, /*dedup=*/false);

  w.num_active = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    w.num_active += w.is_active[v];
  }
  return w;
}

}  // namespace pmpr
