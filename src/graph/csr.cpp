#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>

namespace pmpr {

Csr Csr::from_pairs(std::span<const std::pair<VertexId, VertexId>> edges,
                    VertexId num_vertices, bool dedup) {
  Csr g;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [src, dst] : edges) {
    assert(src < num_vertices && dst < num_vertices);
    ++g.row_ptr_[src + 1];
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
  }
  g.col_.resize(edges.size());
  std::vector<std::size_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const auto& [src, dst] : edges) {
    g.col_[cursor[src]++] = dst;
  }
  // Sort each row; optionally drop duplicates and compact.
  for (std::size_t v = 0; v < num_vertices; ++v) {
    std::sort(g.col_.begin() + static_cast<std::ptrdiff_t>(g.row_ptr_[v]),
              g.col_.begin() + static_cast<std::ptrdiff_t>(g.row_ptr_[v + 1]));
  }
  if (dedup) {
    std::size_t write = 0;
    std::size_t row_start = 0;
    for (std::size_t v = 0; v < num_vertices; ++v) {
      const std::size_t row_end = g.row_ptr_[v + 1];
      std::size_t read = row_start;
      while (read < row_end) {
        const VertexId u = g.col_[read];
        g.col_[write++] = u;
        while (read < row_end && g.col_[read] == u) ++read;
      }
      row_start = row_end;
      g.row_ptr_[v + 1] = write;
    }
    g.col_.resize(write);
  }
  return g;
}

WindowGraph build_window_graph(std::span<const TemporalEdge> events,
                               VertexId num_vertices) {
  WindowGraph w;
  w.num_vertices = num_vertices;
  w.is_active.assign(num_vertices, 0);

  // Deduplicate (src, dst) pairs: sort then unique.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(events.size());
  for (const auto& e : events) pairs.emplace_back(e.src, e.dst);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  w.num_edges = pairs.size();

  w.out_degree.assign(num_vertices, 0);
  std::vector<std::pair<VertexId, VertexId>> reversed;
  reversed.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    ++w.out_degree[src];
    w.is_active[src] = 1;
    w.is_active[dst] = 1;
    reversed.emplace_back(dst, src);
  }
  w.in = Csr::from_pairs(reversed, num_vertices, /*dedup=*/false);

  w.num_active = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    w.num_active += w.is_active[v];
  }
  return w;
}

}  // namespace pmpr
