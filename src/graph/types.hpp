// Core value types shared across the library.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace pmpr {

/// Vertex identifier. 32 bits: every dataset in the paper (and every
/// surrogate we generate) has far fewer than 4B vertices.
using VertexId = std::uint32_t;

/// Reserved sentinel (used e.g. by MultiWindowGraph::local_of and the
/// analysis kernels for "no vertex"). Loaders reject events that use it as
/// an endpoint, which also keeps `max id + 1` from overflowing VertexId.
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Event timestamp in arbitrary integer time units (the surrogates use
/// seconds since epoch, matching the sliding offsets the paper quotes:
/// 43200 = 12 hours, 86400 = 1 day, ...).
using Timestamp = std::int64_t;

/// One temporal event ⟨u, v, t⟩: a directed relation from `src` to `dst`
/// observed at time `time` (paper §2.1).
struct TemporalEdge {
  VertexId src = 0;
  VertexId dst = 0;
  Timestamp time = 0;

  friend auto operator<=>(const TemporalEdge&, const TemporalEdge&) = default;
};

/// Common time constants for readable experiment definitions.
namespace duration {
inline constexpr Timestamp kHour = 3600;
inline constexpr Timestamp kDay = 24 * kHour;
inline constexpr Timestamp kYear = 365 * kDay;
}  // namespace duration

}  // namespace pmpr
