#include "graph/edge_list.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "par/parallel_sort.hpp"

namespace pmpr {

TemporalEdgeList::TemporalEdgeList(std::vector<TemporalEdge> edges)
    : edges_(std::move(edges)) {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const TemporalEdge& e = edges_[i];
    PMPR_CHECK_MSG(e.src != kInvalidVertex && e.dst != kInvalidVertex,
                   "event " << i << " uses the reserved vertex id "
                            << kInvalidVertex);
    num_vertices_ = std::max({num_vertices_, e.src + 1, e.dst + 1});
  }
}

void TemporalEdgeList::add(VertexId src, VertexId dst, Timestamp time) {
  PMPR_CHECK_MSG(src != kInvalidVertex && dst != kInvalidVertex,
                 "event <" << src << ", " << dst
                           << "> uses the reserved vertex id "
                           << kInvalidVertex);
  edges_.push_back({src, dst, time});
  num_vertices_ = std::max({num_vertices_, src + 1, dst + 1});
}

void TemporalEdgeList::ensure_vertices(VertexId n) {
  num_vertices_ = std::max(num_vertices_, n);
}

bool TemporalEdgeList::is_sorted_by_time() const {
  return std::is_sorted(
      edges_.begin(), edges_.end(),
      [](const TemporalEdge& a, const TemporalEdge& b) { return a.time < b.time; });
}

void TemporalEdgeList::sort_by_time() {
  // Parallel stable merge sort above its sequential cutoff; plain
  // stable_sort below it (see par/parallel_sort.hpp).
  parallel_sort(edges_, [](const TemporalEdge& a, const TemporalEdge& b) {
    return a.time < b.time;
  });
}

Timestamp TemporalEdgeList::min_time() const {
  PMPR_CHECK_MSG(!edges_.empty(), "min_time() of an empty event list");
  return edges_.front().time;
}

Timestamp TemporalEdgeList::max_time() const {
  PMPR_CHECK_MSG(!edges_.empty(), "max_time() of an empty event list");
  return edges_.back().time;
}

std::span<const TemporalEdge> TemporalEdgeList::slice(Timestamp ts,
                                                      Timestamp te) const {
  // Sortedness is a precondition; the O(E) scan is debug-only because
  // slice() runs once per window.
  PMPR_DCHECK(is_sorted_by_time());
  const auto lo = std::lower_bound(
      edges_.begin(), edges_.end(), ts,
      [](const TemporalEdge& e, Timestamp t) { return e.time < t; });
  const auto hi = std::upper_bound(
      lo, edges_.end(), te,
      [](Timestamp t, const TemporalEdge& e) { return t < e.time; });
  return {std::to_address(lo), static_cast<std::size_t>(hi - lo)};
}

TemporalEdgeList TemporalEdgeList::load_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  TemporalEdgeList list;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    Timestamp t = 0;
    if (!(ss >> u >> v >> t)) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed event line: '" + line + "'");
    }
    // Reject ids that would wrap when narrowed to VertexId instead of
    // silently aliasing distinct vertices (kInvalidVertex is reserved).
    if (u >= kInvalidVertex || v >= kInvalidVertex) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": vertex id out of range: '" + line + "'");
    }
    list.add(static_cast<VertexId>(u), static_cast<VertexId>(v), t);
  }
  return list;
}

void TemporalEdgeList::save_text(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << "# pmpr temporal edge list: src dst time\n";
  for (const auto& e : edges_) {
    out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
  }
  if (!out) throw std::runtime_error("write failure on " + path);
}

namespace {
constexpr char kMagic[8] = {'P', 'M', 'P', 'R', 'E', 'L', '0', '1'};
}

TemporalEdgeList TemporalEdgeList::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(path + ": not a pmpr edge-list file");
  }
  std::uint64_t count = 0;
  std::uint64_t vertices = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&vertices), sizeof(vertices));
  if (!in) throw std::runtime_error(path + ": truncated header");
  if (vertices > kInvalidVertex) {
    throw std::runtime_error(path + ": vertex count " +
                             std::to_string(vertices) +
                             " exceeds the 32-bit vertex space");
  }
  // Check the declared payload against the real file size before the
  // allocation: a corrupt count must neither truncate silently nor drive a
  // multi-GB resize.
  const std::streamoff payload_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_end = in.tellg();
  const auto available =
      static_cast<std::uint64_t>(file_end - payload_begin);
  if (count != available / sizeof(TemporalEdge) ||
      available % sizeof(TemporalEdge) != 0) {
    throw std::runtime_error(
        path + ": header declares " + std::to_string(count) +
        " events but the payload holds " + std::to_string(available) +
        " bytes (truncated or corrupt)");
  }
  in.seekg(payload_begin);
  std::vector<TemporalEdge> edges(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(TemporalEdge)));
  if (!in) throw std::runtime_error(path + ": truncated payload");
  // The constructor rejects reserved vertex ids in the payload.
  TemporalEdgeList list(std::move(edges));
  list.ensure_vertices(static_cast<VertexId>(vertices));
  return list;
}

void TemporalEdgeList::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = edges_.size();
  const std::uint64_t vertices = num_vertices_;
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&vertices), sizeof(vertices));
  out.write(reinterpret_cast<const char*>(edges_.data()),
            static_cast<std::streamsize>(count * sizeof(TemporalEdge)));
  if (!out) throw std::runtime_error("write failure on " + path);
}

}  // namespace pmpr
