// Out-of-core multi-window store (the --memory-budget-mb paging policy).
//
// MultiWindowSet keeps every part's adjacency resident, so the working set
// is Σ_w bytes(E_w) — which for fig5-scale runs exceeds small-memory
// machines. PagedMultiWindowSet instead serializes each part's
// chunk-compressed in-adjacency (io/compressed_csr.hpp) into one store
// file during a *sequential* build (build → compress → append → discard,
// so peak build residency is one raw part), then mmaps the store and hands
// out parts on demand:
//
//   * acquire(p) maps part p's payload as a zero-copy view
//     (CompressedTemporalCsr::map_at) and returns an RAII Lease pinning it.
//   * Resident payload bytes are charged against a hard budget; when an
//     acquire would overflow it, least-recently-used *unpinned* parts are
//     evicted first. Eviction drops the part's CompressedTemporalCsr view
//     and madvise(MADV_DONTNEED)s its payload range — clean file-backed
//     pages, so the kernel frees them immediately and RSS shrinks.
//   * If the pinned parts alone exceed the budget the acquire throws
//     pmpr::InvariantError: the budget is a hard cap, not a hint.
//
// Part metadata (window range, span, local_to_global) stays resident: the
// vertex maps are O(|V_w|) against the O(|E_w|) payload and the driver
// needs them to scatter local ranks into the global vector after the part
// is already evictable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/multi_window.hpp"
#include "graph/window.hpp"
#include "io/compressed_csr.hpp"
#include "io/mmap_file.hpp"
#include "obs/memory.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr {

/// Eviction/refault accounting for one store's lifetime.
struct PagingStats {
  std::size_t parts_evicted = 0;   ///< Evictions (budget pressure only).
  std::size_t part_refaults = 0;   ///< Re-acquires of an evicted part.
  std::size_t bytes_evicted = 0;   ///< Payload bytes dropped by evictions.
  std::size_t peak_resident_bytes = 0;  ///< Max charged payload at any time.
  /// Max *measured* store residency (mincore page scan, sampled on every
  /// part map). The ground truth the charged peak is audited against:
  /// kernel readahead can push it above the charge, lazy faulting below.
  std::size_t measured_resident_peak_bytes = 0;
  std::size_t store_bytes = 0;     ///< On-disk store file size.
  std::size_t raw_bytes = 0;       ///< Σ raw (col+time) bytes — the
                                   ///< working set an in-RAM run needs.
  std::size_t chunks_total = 0;    ///< Σ chunks across all parts.
};

class PagedMultiWindowSet : public obs::ResidencyProbe {
 public:
  struct Options {
    std::size_t num_parts = 1;
    PartitionPolicy policy = PartitionPolicy::kUniformWindows;
    /// Hard cap on resident payload bytes. 0 means "one part at a time":
    /// the cap adjusts to the largest single part.
    std::size_t budget_bytes = 0;
    /// Store file location; empty picks a unique file under the system
    /// temp directory. The file is deleted when the set is destroyed.
    std::string spill_path;
    std::size_t target_chunk_entries = io::kDefaultChunkEntries;
  };

  /// Sequential out-of-core build: decomposes exactly like
  /// MultiWindowSet::build (same partition_boundaries, same
  /// build_multi_window_part), but only one raw part is ever resident.
  /// Throws pmpr::InvariantError on unsorted events / bad spec / IO
  /// failure. Heap-allocated because leases keep back-pointers and the
  /// store embeds a mutex (non-movable).
  static std::unique_ptr<PagedMultiWindowSet> build(
      const TemporalEdgeList& events, const WindowSpec& spec,
      const Options& opts);

  PagedMultiWindowSet(const PagedMultiWindowSet&) = delete;
  PagedMultiWindowSet& operator=(const PagedMultiWindowSet&) = delete;
  ~PagedMultiWindowSet() override;

  /// RAII pin: the part stays resident (never evicted) while any Lease on
  /// it lives. Move-only; released on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : set_(other.set_), part_(other.part_) {
      other.set_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    [[nodiscard]] bool valid() const { return set_ != nullptr; }
    /// The pinned part: metadata + in_compressed view (is_compressed()
    /// always true; the raw `in` CSR stays empty).
    [[nodiscard]] const MultiWindowGraph& part() const;
    void release();

   private:
    friend class PagedMultiWindowSet;
    Lease(PagedMultiWindowSet* set, std::size_t part) noexcept
        : set_(set), part_(part) {}
    PagedMultiWindowSet* set_ = nullptr;
    std::size_t part_ = 0;
  };

  /// Maps (or re-uses) part p and pins it. Evicts LRU unpinned parts as
  /// needed to stay under the budget; throws pmpr::InvariantError if the
  /// pinned residency alone cannot fit. Thread-safe.
  [[nodiscard]] Lease acquire(std::size_t p);

  [[nodiscard]] const WindowSpec& spec() const { return spec_; }
  [[nodiscard]] VertexId num_global_vertices() const { return num_global_; }
  [[nodiscard]] std::size_t num_parts() const { return parts_.size(); }
  [[nodiscard]] std::size_t budget_bytes() const { return budget_bytes_; }
  [[nodiscard]] const std::string& store_path() const { return store_path_; }

  /// Always-resident metadata of part p (window range, span, event count,
  /// vertex map) — the adjacency may or may not be mapped.
  [[nodiscard]] const MultiWindowGraph& part_meta(std::size_t p) const {
    return parts_[p].graph;
  }
  [[nodiscard]] std::size_t part_index_for_window(std::size_t w) const;

  /// Charged resident payload bytes right now. Thread-safe.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// Snapshot of the paging counters. Thread-safe.
  [[nodiscard]] PagingStats stats() const;

  /// obs::ResidencyProbe monitor reads, feeding the sampler's
  /// mem.oocore_resident / mem.budget trace tracks. Lock-free: file_ and
  /// budget_bytes_ are set once in build() before the probe registers and
  /// never change afterwards; the scan itself is a pure mincore read.
  [[nodiscard]] std::uint64_t probe_resident_bytes() const override;
  [[nodiscard]] std::uint64_t probe_budget_bytes() const override;

 private:
  PagedMultiWindowSet() = default;

  struct PartSlot {
    MultiWindowGraph graph;  ///< Metadata always; in_compressed when mapped.
    std::uint64_t store_offset = 0;  ///< Serialized blob range in the file.
    std::uint64_t store_size = 0;
    std::size_t payload_bytes = 0;   ///< Budget charge while resident.
    std::size_t pin_count = 0;
    std::uint64_t last_use = 0;      ///< LRU clock value of the last pin.
    bool ever_mapped = false;        ///< Distinguishes refaults from faults.
    obs::MemCharge charge;  ///< payload_bytes under kOocorePayload while
                            ///< mapped (reset on map, released on evict).
  };

  void release_pin(std::size_t p);
  /// Evicts LRU unpinned parts until `need` more bytes fit. Caller holds
  /// mu_.
  void make_room(std::size_t need) PMPR_REQUIRES(mu_);

  WindowSpec spec_;
  VertexId num_global_ = 0;
  std::size_t budget_bytes_ = 0;
  std::string store_path_;
  bool owns_store_file_ = false;
  std::shared_ptr<io::MmapFile> file_;

  mutable Mutex mu_;
  // Slot layout is fixed after build (never resized), and the metadata
  // members of each slot's graph are immutable — readable without the
  // lock. The residency state (graph.in_compressed, pin_count, last_use,
  // ever_mapped) mutates only under mu_; a held pin guarantees
  // in_compressed stays set, which is what makes Lease::part() lock-free.
  std::vector<PartSlot> parts_;
  std::size_t resident_bytes_ PMPR_GUARDED_BY(mu_) = 0;
  std::uint64_t clock_ PMPR_GUARDED_BY(mu_) = 0;
  PagingStats stats_ PMPR_GUARDED_BY(mu_);
};

}  // namespace pmpr
