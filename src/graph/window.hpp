// Sliding-window model (paper §2.1, Fig. 1).
//
// A WindowSpec defines the analyzed graph sequence G_0..G_{m-1}:
//   G_i = G(T_i, T_i + delta),  T_i = t0 + i * sw,
// where an event ⟨u,v,t⟩ belongs to G_i iff T_i <= t <= T_i + delta
// (both bounds inclusive, as in the paper).
#pragma once

#include <cstddef>
#include <utility>

#include "graph/types.hpp"

namespace pmpr {

struct WindowSpec {
  Timestamp t0 = 0;     ///< Start of the first window (paper: dataset start).
  Timestamp delta = 0;  ///< Window size δ.
  Timestamp sw = 1;     ///< Sliding offset between consecutive windows.
  std::size_t count = 0;  ///< Number of windows m.

  /// Inclusive start of window i.
  [[nodiscard]] Timestamp start(std::size_t i) const {
    return t0 + static_cast<Timestamp>(i) * sw;
  }
  /// Inclusive end of window i.
  [[nodiscard]] Timestamp end(std::size_t i) const { return start(i) + delta; }

  [[nodiscard]] bool contains(std::size_t i, Timestamp t) const {
    return t >= start(i) && t <= end(i);
  }

  /// Half-open range [lo, hi) of window indices whose interval contains `t`,
  /// clamped to [0, count). Empty range if no window contains `t`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> windows_containing(
      Timestamp t) const;

  /// Verifies the spec is well-formed: sw > 0 (a zero slide loops forever)
  /// and delta >= 0. Throws pmpr::InvariantError, also in release builds.
  void validate() const;

  /// Spec covering [t_min, t_max]: t0 = t_min, and enough windows that the
  /// last window starts at or before t_max (so every event lands in at least
  /// one window when sw <= delta + 1). Always at least one window. Throws
  /// pmpr::InvariantError on sw <= 0 or delta < 0.
  static WindowSpec cover(Timestamp t_min, Timestamp t_max, Timestamp delta,
                          Timestamp sw);

  /// Same as cover() but with the window count capped at `max_windows`
  /// (used to reproduce the paper's fixed window counts of 6/256/1024).
  static WindowSpec cover_capped(Timestamp t_min, Timestamp t_max,
                                 Timestamp delta, Timestamp sw,
                                 std::size_t max_windows);
};

}  // namespace pmpr
