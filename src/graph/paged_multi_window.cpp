#include "graph/paged_multi_window.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace pmpr {

namespace {

/// Unique store path under the system temp directory. Pid + process-local
/// counter keeps parallel ctest shards from colliding.
std::string default_store_path() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  return (dir / ("pmpr-oocore-" + std::to_string(pid) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".bin"))
      .string();
}

}  // namespace

std::unique_ptr<PagedMultiWindowSet> PagedMultiWindowSet::build(
    const TemporalEdgeList& events, const WindowSpec& spec,
    const Options& opts) {
  spec.validate();
  PMPR_CHECK_MSG(spec.count >= 1,
                 "PagedMultiWindowSet::build needs at least one window");
  PMPR_CHECK_MSG(events.is_sorted_by_time(),
                 "PagedMultiWindowSet::build requires time-sorted events; "
                 "call sort_by_time() first");

  auto set = std::unique_ptr<PagedMultiWindowSet>(new PagedMultiWindowSet());
  // No concurrency during build; the guard only satisfies the thread-safety
  // analysis for the stats_ writes below.
  LockGuard build_lock(set->mu_);
  set->spec_ = spec;
  set->num_global_ = events.num_vertices();
  set->store_path_ =
      opts.spill_path.empty() ? default_store_path() : opts.spill_path;
  set->owns_store_file_ = true;

  const std::size_t num_parts =
      std::max<std::size_t>(1, std::min(opts.num_parts, spec.count));
  const std::vector<std::size_t> boundaries =
      partition_boundaries(events, spec, num_parts, opts.policy);

  std::ofstream out(set->store_path_, std::ios::binary | std::ios::trunc);
  PMPR_CHECK_MSG(static_cast<bool>(out), "cannot open out-of-core store "
                                             << set->store_path_
                                             << " for writing");

  // Sequential build: one raw part resident at a time. Each part is built,
  // chunk-compressed, appended to the store, and its adjacency discarded —
  // only the metadata (and the vertex map) survives in RAM.
  std::uint64_t offset = 0;
  std::size_t largest_payload = 0;
  std::vector<std::uint8_t> blob;
  for (std::size_t p = 0; p < boundaries.size() - 1; ++p) {
    const std::size_t first = boundaries[p];
    const std::size_t last = boundaries[p + 1];  // exclusive
    if (first == last) continue;
    const Timestamp span_start = spec.start(first);
    const Timestamp span_end = spec.end(last - 1);
    MultiWindowGraph part = build_multi_window_part(
        events.slice(span_start, span_end), first, last - first, span_start,
        span_end);

    const io::CompressedTemporalCsr packed =
        compress_temporal_csr(part.in, opts.target_chunk_entries);
    part.in = TemporalCsr{};  // drop the raw arrays before the next part

    blob.clear();
    packed.serialize_to(blob);
    io::CompressedTemporalCsr::write_bytes(out, blob);
    PMPR_CHECK_MSG(static_cast<bool>(out), "short write to out-of-core store "
                                               << set->store_path_);

    PartSlot slot;
    slot.graph = std::move(part);
    slot.store_offset = offset;
    slot.store_size = blob.size();
    slot.payload_bytes = packed.encoded_bytes();
    set->parts_.push_back(std::move(slot));

    offset += blob.size();
    largest_payload = std::max(largest_payload, packed.encoded_bytes());
    set->stats_.raw_bytes += packed.raw_adjacency_bytes();
    set->stats_.chunks_total += packed.num_chunks();
  }
  out.close();
  PMPR_CHECK_MSG(!set->parts_.empty(),
                 "paged build produced no parts (empty window spec?)");
  set->stats_.store_bytes = offset;

  // Budget 0 = "one part at a time". A nonzero budget must at least hold
  // the largest part: it is a hard cap, so an impossible configuration is
  // rejected here rather than deadlocking the first acquire.
  set->budget_bytes_ =
      opts.budget_bytes == 0 ? largest_payload : opts.budget_bytes;
  PMPR_CHECK_MSG(largest_payload <= set->budget_bytes_,
                 "memory budget " << set->budget_bytes_
                                  << " B cannot hold the largest part ("
                                  << largest_payload
                                  << " B compressed); raise the budget or "
                                     "increase num_parts");

  set->file_ = std::make_shared<io::MmapFile>(
      io::MmapFile::open(set->store_path_));
  PMPR_CHECK_MSG(set->file_->bytes().size() == offset,
                 "out-of-core store " << set->store_path_ << " holds "
                                      << set->file_->bytes().size()
                                      << " B, expected " << offset);
  // Hand the sampler a real-residency probe for this store so the trace
  // charts mem.oocore_resident against mem.budget. One probe at a time —
  // the most recently built store wins; the destructor unregisters.
  obs::register_residency_probe(set.get());
  return set;
}

PagedMultiWindowSet::~PagedMultiWindowSet() {
  // Stop the sampler from probing before the mappings go away.
  obs::unregister_residency_probe(this);
  // Drop every mapping before unlinking the store.
  for (auto& slot : parts_) slot.graph.in_compressed.reset();
  file_.reset();
  if (owns_store_file_ && !store_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(store_path_, ec);  // best effort
  }
}

PagedMultiWindowSet::Lease& PagedMultiWindowSet::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    release();
    set_ = other.set_;
    part_ = other.part_;
    other.set_ = nullptr;
  }
  return *this;
}

const MultiWindowGraph& PagedMultiWindowSet::Lease::part() const {
  PMPR_CHECK_MSG(set_ != nullptr, "part() on a released Lease");
  return set_->parts_[part_].graph;
}

void PagedMultiWindowSet::Lease::release() {
  if (set_ == nullptr) return;
  set_->release_pin(part_);
  set_ = nullptr;
}

PagedMultiWindowSet::Lease PagedMultiWindowSet::acquire(std::size_t p) {
  PMPR_CHECK_MSG(p < parts_.size(), "acquire(" << p << ") on a store with "
                                               << parts_.size() << " parts");
  LockGuard lock(mu_);
  PartSlot& slot = parts_[p];
  if (!slot.graph.is_compressed()) {
    const bool refault = slot.ever_mapped;
    if (refault) ++stats_.part_refaults;
    // Map-fault latency: the timeline span distinguishes first faults from
    // refaults; the distribution lands in the io.page phase histogram.
    PMPR_TRACE_SPAN(refault ? "oocore.refault" : "oocore.map");
    obs::PhaseTimer timing(obs::Phase::kPage);
    // Paging is I/O-bound and can legitimately be the slowest thing in a
    // run: beat the heartbeat so the watchdog knows the thread is in here,
    // and breadcrumb refaults (a refault storm is the classic postmortem).
    obs::heartbeat("oocore.page");
    if (refault) {
      obs::fr_record(obs::FrEvent::kRefault, "oocore.refault", p,
                     slot.payload_bytes);
    }
    make_room(slot.payload_bytes);
    io::CompressedTemporalCsr packed = io::CompressedTemporalCsr::map_at(
        file_, slot.store_offset, slot.store_size);
    packed.advise(io::Advice::kWillNeed);
    slot.graph.in_compressed =
        std::make_shared<const io::CompressedTemporalCsr>(std::move(packed));
    slot.ever_mapped = true;
    slot.charge.reset(obs::MemTag::kOocorePayload, slot.payload_bytes);
    resident_bytes_ += slot.payload_bytes;
    stats_.peak_resident_bytes =
        std::max(stats_.peak_resident_bytes, resident_bytes_);
    // Ground-truth watermark: an mincore scan of the whole store, taken
    // only on the map path where mmap/madvise syscalls are already in
    // play. Kernel readahead may legitimately put it above the charged
    // peak; lazy faulting below.
    stats_.measured_resident_peak_bytes =
        std::max(stats_.measured_resident_peak_bytes,
                 file_->resident_bytes());
  }
  ++slot.pin_count;
  slot.last_use = ++clock_;
  return Lease(this, p);
}

void PagedMultiWindowSet::release_pin(std::size_t p) {
  LockGuard lock(mu_);
  PartSlot& slot = parts_[p];
  PMPR_CHECK_MSG(slot.pin_count > 0, "release of an unpinned part " << p);
  --slot.pin_count;
}

void PagedMultiWindowSet::make_room(std::size_t need) {
  PMPR_CHECK_MSG(need <= budget_bytes_,
                 "part payload of " << need << " B exceeds the "
                                    << budget_bytes_ << " B memory budget");
  while (resident_bytes_ + need > budget_bytes_) {
    std::size_t victim = parts_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      const PartSlot& s = parts_[i];
      if (s.graph.is_compressed() && s.pin_count == 0 && s.last_use < oldest) {
        victim = i;
        oldest = s.last_use;
      }
    }
    PMPR_CHECK_MSG(victim < parts_.size(),
                   "memory budget " << budget_bytes_
                                    << " B exhausted: " << resident_bytes_
                                    << " B pinned, " << need
                                    << " B more needed and nothing evictable");
    PartSlot& v = parts_[victim];
    PMPR_TRACE_SPAN("oocore.evict");
    obs::fr_record(obs::FrEvent::kEvict, "oocore.evict", victim,
                   v.payload_bytes);
    // madvise(DONTNEED) on the clean file-backed payload pages frees them
    // immediately; the next acquire refaults from the store file.
    v.graph.in_compressed->advise(io::Advice::kDontNeed);
    v.graph.in_compressed.reset();
    v.charge.release();
    resident_bytes_ -= v.payload_bytes;
    ++stats_.parts_evicted;
    stats_.bytes_evicted += v.payload_bytes;
  }
}

std::size_t PagedMultiWindowSet::part_index_for_window(std::size_t w) const {
  PMPR_CHECK_MSG(w < spec_.count, "window " << w << " outside the spec's "
                                            << spec_.count << " windows");
  std::size_t lo = 0;
  std::size_t hi = parts_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (parts_[mid].graph.first_window <= w) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t PagedMultiWindowSet::resident_bytes() const {
  LockGuard lock(mu_);
  return resident_bytes_;
}

PagingStats PagedMultiWindowSet::stats() const {
  LockGuard lock(mu_);
  return stats_;
}

std::uint64_t PagedMultiWindowSet::probe_resident_bytes() const {
  // Lock-free monitor read: file_ is set once in build() before the probe
  // registers and never reassigned; the scan itself touches no guarded
  // state.
  return file_ != nullptr ? file_->resident_bytes() : 0;
}

std::uint64_t PagedMultiWindowSet::probe_budget_bytes() const {
  return budget_bytes_;
}

}  // namespace pmpr
