#include "graph/memory_budget.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace pmpr {

namespace {

/// Working vectors per execution context for a part with `vertices` locals:
/// x + scratch + prev_x (3 doubles) per lane, degrees (u32) per lane,
/// activity mask (mask_words_for(lanes) u64 words), plus the batch-compiled
/// adjacency (pagerank/batch_csr.hpp): row pointers, run-compressed
/// neighbor + multi-word lane mask entries (bounded by the part's stored
/// events — run compression and mask-0 dropping only shrink it), and the
/// compacted active/dangling lists (dangling masks are also words-wide).
std::size_t working_bytes(std::size_t vertices, std::size_t events,
                          std::size_t vector_length) {
  const std::size_t lanes = std::max<std::size_t>(1, vector_length);
  const std::size_t words = mask_words_for(lanes);
  const std::size_t mask_bytes = words * sizeof(std::uint64_t);
  const std::size_t vectors =
      vertices * (3 * sizeof(double) * lanes +
                  sizeof(std::uint32_t) * lanes + mask_bytes);
  const std::size_t compiled =
      (vertices + 1) * sizeof(std::size_t)               // row_ptr
      + events * (sizeof(VertexId) + mask_bytes)         // nbr + mask
      + vertices * (2 * sizeof(VertexId) + mask_bytes);  // lists
  return vectors + compiled;
}

std::size_t representation_bytes_for(std::size_t vertices,
                                     std::size_t events) {
  return (vertices + 1) * sizeof(std::size_t)  // row pointers
         + events * (sizeof(VertexId) + sizeof(Timestamp))  // colA + timeA
         + vertices * sizeof(VertexId);                     // local->global
}

}  // namespace

MemoryEstimate estimate_memory(const MultiWindowSet& set,
                               std::size_t vector_length) {
  MemoryEstimate est;
  for (std::size_t p = 0; p < set.num_parts(); ++p) {
    const auto& part = set.part(p);
    const std::size_t bytes = part.memory_bytes();
    est.representation_bytes += bytes;
    if (bytes >= est.largest_part_bytes) {
      est.largest_part_bytes = bytes;
      est.working_bytes_per_context =
          working_bytes(part.num_local(), part.num_events, vector_length);
    }
  }
  return est;
}

MemoryEstimate predict_memory(const TemporalEdgeList& events,
                              const WindowSpec& spec, std::size_t num_parts,
                              std::size_t vector_length) {
  num_parts = std::max<std::size_t>(1, std::min(num_parts, spec.count));
  MemoryEstimate est;
  for (std::size_t p = 0; p < num_parts; ++p) {
    const std::size_t first = p * spec.count / num_parts;
    const std::size_t last = (p + 1) * spec.count / num_parts;
    if (first == last) continue;
    const std::size_t part_events =
        events.slice(spec.start(first), spec.end(last - 1)).size();
    const std::size_t part_vertices = std::min<std::size_t>(
        2 * part_events, events.num_vertices());
    const std::size_t bytes =
        representation_bytes_for(part_vertices, part_events);
    est.representation_bytes += bytes;
    if (bytes >= est.largest_part_bytes) {
      est.largest_part_bytes = bytes;
      est.working_bytes_per_context =
          working_bytes(part_vertices, part_events, vector_length);
    }
  }
  return est;
}

std::size_t suggest_num_multi_windows(const TemporalEdgeList& events,
                                      const WindowSpec& spec,
                                      std::size_t budget_bytes,
                                      std::size_t vector_length,
                                      std::size_t contexts) {
  contexts = std::max<std::size_t>(1, contexts);
  std::size_t y = 1;
  while (y < spec.count) {
    const MemoryEstimate est =
        predict_memory(events, spec, y, vector_length);
    if (est.peak_bytes(contexts) <= budget_bytes) return y;
    y *= 2;
  }
  return std::min<std::size_t>(y, spec.count);
}

std::size_t suggest_num_parts_for_budget(const TemporalEdgeList& events,
                                         const WindowSpec& spec,
                                         std::size_t budget_bytes,
                                         std::size_t vector_length,
                                         std::size_t contexts) {
  contexts = std::max<std::size_t>(1, contexts);
  std::size_t y = 1;
  while (y < spec.count) {
    const MemoryEstimate est =
        predict_memory(events, spec, y, vector_length);
    const std::size_t resident =
        est.largest_part_bytes + contexts * est.working_bytes_per_context;
    if (resident <= budget_bytes) return y;
    y *= 2;
  }
  return std::min<std::size_t>(y, spec.count);
}

}  // namespace pmpr
