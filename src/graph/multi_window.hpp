// Multi-window graphs (paper §4.1).
//
// The single temporal CSR over all events makes one SpMV cost Θ(|Events|)
// even when the window holds few edges. The fix: partition the window
// sequence into `num_parts` contiguous groups ("multi-window graphs"), each
// storing only the events relevant to its windows, over its own compacted
// local vertex space V_w. Events spanning a part boundary are duplicated
// into both parts (Σ|E_w| >= |Events|) — memory traded for per-window work
// proportional to Θ(|E_w|).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/temporal_csr.hpp"
#include "graph/types.hpp"
#include "graph/window.hpp"
#include "io/compressed_csr.hpp"

namespace pmpr {

/// One multi-window graph: a contiguous run of windows plus the in-adjacency
/// temporal CSR over the local (compacted) vertex space.
struct MultiWindowGraph {
  std::size_t first_window = 0;  ///< Global index of the first window held.
  std::size_t num_windows = 0;   ///< Contiguous windows [first, first+num).
  Timestamp span_start = 0;      ///< Earliest time any held window covers.
  Timestamp span_end = 0;        ///< Latest time any held window covers.
  std::size_t num_events = 0;    ///< Events stored (duplicates across parts).

  /// Sorted global ids of the vertices that occur in this part; local id i
  /// corresponds to global id local_to_global[i].
  std::vector<VertexId> local_to_global;

  /// Reverse (in-neighbor) temporal CSR in local ids — the layout the
  /// pull-style PageRank kernels traverse. Empty when the part is
  /// compressed (in_compressed replaces it).
  TemporalCsr in;

  /// Chunked delta+varint form of `in` (io/compressed_csr.hpp) — either an
  /// owning re-encoding (compress()) or a zero-copy view into the paged
  /// store's mmap (graph/paged_multi_window.hpp). When set, `in` is empty
  /// and the batch-compile passes stream from the chunks; the reference
  /// (non-compiled) kernels cannot run on such a part.
  std::shared_ptr<const io::CompressedTemporalCsr> in_compressed;

  [[nodiscard]] bool is_compressed() const { return in_compressed != nullptr; }

  /// Re-encodes `in` with the chunked codec and drops the raw arrays.
  void compress(std::size_t target_chunk_entries = io::kDefaultChunkEntries);

  [[nodiscard]] VertexId num_local() const {
    return static_cast<VertexId>(local_to_global.size());
  }
  [[nodiscard]] VertexId global_of(VertexId local) const {
    return local_to_global[local];
  }
  /// Binary search; kInvalidVertex if the global vertex never occurs here.
  [[nodiscard]] VertexId local_of(VertexId global) const;

  [[nodiscard]] std::size_t memory_bytes() const {
    return (is_compressed() ? in_compressed->memory_bytes()
                            : in.memory_bytes()) +
           local_to_global.size() * sizeof(VertexId);
  }

  /// Deep structural audit: window range non-empty, span ordered,
  /// local_to_global strictly sorted (the local_of binary search depends on
  /// it), CSR sized to the local space, stored events within the span, plus
  /// the CSR's own validate(). Throws pmpr::InvariantError.
  void validate() const;
};

/// How the window sequence is split into multi-window parts.
enum class PartitionPolicy {
  /// Equal window counts per part — the paper's scheme ("we distribute the
  /// graphs uniformly to the multi-window graphs").
  kUniformWindows,
  /// Near-equal *event* counts per part — the alternative the paper's
  /// conclusion raises as future work ("this may not be the decomposition
  /// that minimize memory and work overheads"). Balances per-part work for
  /// spike-shaped datasets at the cost of uneven window counts.
  kBalancedEvents,
};

[[nodiscard]] std::string_view to_string(PartitionPolicy p);

/// Window-range boundaries per part under `policy`: boundaries[p] ..
/// boundaries[p+1] is the half-open window range of part p (num_parts + 1
/// values). Shared by MultiWindowSet::build and the out-of-core
/// PagedMultiWindowSet so both decompose identically.
std::vector<std::size_t> partition_boundaries(const TemporalEdgeList& events,
                                              const WindowSpec& spec,
                                              std::size_t num_parts,
                                              PartitionPolicy policy);

/// Builds one part from its event slice (already restricted to the span).
MultiWindowGraph build_multi_window_part(std::span<const TemporalEdge> slice,
                                         std::size_t first_window,
                                         std::size_t num_windows,
                                         Timestamp span_start,
                                         Timestamp span_end);

/// The full postmortem representation: spec + all multi-window parts.
class MultiWindowSet {
 public:
  /// Builds `num_parts` parts (clamped to [1, spec.count]); window-to-part
  /// assignment follows `policy`. `events` must be time-sorted and `spec`
  /// well-formed (sw > 0, delta >= 0, count >= 1) — both are verified up
  /// front (also in release builds) and violations throw
  /// pmpr::InvariantError. Parts build in parallel.
  static MultiWindowSet build(
      const TemporalEdgeList& events, const WindowSpec& spec,
      std::size_t num_parts,
      PartitionPolicy policy = PartitionPolicy::kUniformWindows);

  /// Assembles a set from pre-built parts (the paged store maps its parts
  /// from the store file and adopts them here so the postmortem driver
  /// sees one uniform interface). Parts must already cover the spec
  /// contiguously — validate() audits, adopt() only spot-checks shape.
  static MultiWindowSet adopt(const WindowSpec& spec, VertexId num_global,
                              std::vector<MultiWindowGraph> parts);

  /// Re-encodes every part's in-adjacency with the chunked delta+varint
  /// codec and drops the raw arrays (MultiWindowGraph::compress). The
  /// compiled-kernel compile passes then stream from the chunks; the
  /// reference kernels cannot run on a compressed set.
  void compress_in_place(
      std::size_t target_chunk_entries = io::kDefaultChunkEntries);

  [[nodiscard]] const WindowSpec& spec() const { return spec_; }
  [[nodiscard]] VertexId num_global_vertices() const { return num_global_; }
  [[nodiscard]] std::size_t num_parts() const { return parts_.size(); }
  [[nodiscard]] const MultiWindowGraph& part(std::size_t p) const {
    return parts_[p];
  }

  /// Which part holds window `w`.
  [[nodiscard]] std::size_t part_index_for_window(std::size_t w) const;
  [[nodiscard]] const MultiWindowGraph& part_for_window(std::size_t w) const {
    return parts_[part_index_for_window(w)];
  }

  /// Σ_w |E_w| over parts — the duplication-aware event total.
  [[nodiscard]] std::size_t total_events() const;
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Audits the whole set: parts cover the window sequence contiguously
  /// without gaps or overlap, every part's global ids stay inside the
  /// global vertex space, spans match the spec, and each part passes its
  /// own validate(). Throws pmpr::InvariantError.
  void validate() const;

 private:
  WindowSpec spec_;
  VertexId num_global_ = 0;
  std::vector<MultiWindowGraph> parts_;
};

}  // namespace pmpr
