#include "graph/window_stats.hpp"

#include "graph/csr.hpp"

namespace pmpr {

std::vector<std::size_t> window_event_counts(const TemporalEdgeList& events,
                                             const WindowSpec& spec) {
  std::vector<std::size_t> counts(spec.count, 0);
  for (std::size_t w = 0; w < spec.count; ++w) {
    counts[w] = events.slice(spec.start(w), spec.end(w)).size();
  }
  return counts;
}

std::vector<std::size_t> window_edge_counts(const TemporalEdgeList& events,
                                            const WindowSpec& spec) {
  std::vector<std::size_t> counts(spec.count, 0);
  for (std::size_t w = 0; w < spec.count; ++w) {
    counts[w] = build_window_graph(events.slice(spec.start(w), spec.end(w)),
                                   events.num_vertices())
                    .num_edges;
  }
  return counts;
}

}  // namespace pmpr
