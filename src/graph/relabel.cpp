#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>

namespace pmpr {

Relabeling relabel_by_activity(const TemporalEdgeList& events) {
  const VertexId n = events.num_vertices();
  std::vector<std::uint64_t> activity(n, 0);
  for (const auto& e : events.events()) {
    ++activity[e.src];
    ++activity[e.dst];
  }
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     return activity[a] > activity[b];
                   });
  Relabeling r;
  r.inverse = std::move(order);
  r.forward.resize(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    r.forward[r.inverse[new_id]] = new_id;
  }
  return r;
}

TemporalEdgeList apply_relabeling(const TemporalEdgeList& events,
                                  const Relabeling& relabeling) {
  std::vector<TemporalEdge> out;
  out.reserve(events.size());
  for (const auto& e : events.events()) {
    out.push_back({relabeling.to_new(e.src), relabeling.to_new(e.dst),
                   e.time});
  }
  TemporalEdgeList list(std::move(out));
  list.ensure_vertices(events.num_vertices());
  return list;
}

}  // namespace pmpr
