#include "graph/window.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pmpr {

void WindowSpec::validate() const {
  PMPR_CHECK_MSG(sw > 0, "window slide sw = " << sw << " must be positive");
  PMPR_CHECK_MSG(delta >= 0,
                 "window size delta = " << delta << " must be non-negative");
}

std::pair<std::size_t, std::size_t> WindowSpec::windows_containing(
    Timestamp t) const {
  PMPR_DCHECK(sw > 0);
  // Need: t0 + i*sw <= t <= t0 + i*sw + delta
  //   <=> (t - delta - t0) / sw <= i <= (t - t0) / sw
  const Timestamp rel = t - t0;
  if (rel < 0) return {0, 0};
  const auto hi_idx = static_cast<std::size_t>(rel / sw);  // floor, rel >= 0
  const Timestamp lo_num = rel - delta;
  std::size_t lo_idx = 0;
  if (lo_num > 0) {
    // ceil(lo_num / sw) for positive operands.
    lo_idx = static_cast<std::size_t>((lo_num + sw - 1) / sw);
  }
  const std::size_t lo = std::min(lo_idx, count);
  const std::size_t hi = std::min(hi_idx + 1, count);
  return {std::min(lo, hi), hi};
}

WindowSpec WindowSpec::cover(Timestamp t_min, Timestamp t_max, Timestamp delta,
                             Timestamp sw) {
  WindowSpec spec;
  spec.t0 = t_min;
  spec.delta = delta;
  spec.sw = sw;
  spec.count = 1;
  spec.validate();
  if (t_max < t_min) t_max = t_min;
  spec.count = static_cast<std::size_t>((t_max - t_min) / sw) + 1;
  return spec;
}

WindowSpec WindowSpec::cover_capped(Timestamp t_min, Timestamp t_max,
                                    Timestamp delta, Timestamp sw,
                                    std::size_t max_windows) {
  WindowSpec spec = cover(t_min, t_max, delta, sw);
  spec.count = std::max<std::size_t>(1, std::min(spec.count, max_windows));
  return spec;
}

}  // namespace pmpr
