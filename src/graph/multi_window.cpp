#include "graph/multi_window.hpp"

#include <algorithm>
#include <cassert>

#include "par/task_group.hpp"
#include "util/check.hpp"

namespace pmpr {

VertexId MultiWindowGraph::local_of(VertexId global) const {
  const auto it =
      std::lower_bound(local_to_global.begin(), local_to_global.end(), global);
  if (it == local_to_global.end() || *it != global) return kInvalidVertex;
  return static_cast<VertexId>(it - local_to_global.begin());
}

void MultiWindowGraph::compress(std::size_t target_chunk_entries) {
  if (is_compressed()) return;
  in_compressed = std::make_shared<const io::CompressedTemporalCsr>(
      compress_temporal_csr(in, target_chunk_entries));
  in = TemporalCsr{};
}

MultiWindowGraph build_multi_window_part(std::span<const TemporalEdge> slice,
                                         std::size_t first_window,
                                         std::size_t num_windows,
                                         Timestamp span_start,
                                         Timestamp span_end) {
  MultiWindowGraph part;
  part.first_window = first_window;
  part.num_windows = num_windows;
  part.span_start = span_start;
  part.span_end = span_end;
  part.num_events = slice.size();

  // Compact vertex space: collect and sort distinct endpoints.
  part.local_to_global.reserve(slice.size() * 2);
  for (const auto& e : slice) {
    part.local_to_global.push_back(e.src);
    part.local_to_global.push_back(e.dst);
  }
  std::sort(part.local_to_global.begin(), part.local_to_global.end());
  part.local_to_global.erase(
      std::unique(part.local_to_global.begin(), part.local_to_global.end()),
      part.local_to_global.end());
  part.local_to_global.shrink_to_fit();

  // Remap events to local ids and build the reverse temporal CSR.
  std::vector<TemporalEdge> local_events;
  local_events.reserve(slice.size());
  for (const auto& e : slice) {
    local_events.push_back(
        {part.local_of(e.src), part.local_of(e.dst), e.time});
  }
  part.in = TemporalCsr::build(local_events, part.num_local(),
                               /*reverse=*/true);
  return part;
}

std::string_view to_string(PartitionPolicy p) {
  return p == PartitionPolicy::kUniformWindows ? "uniform-windows"
                                               : "balanced-events";
}

namespace {

/// Window-range boundaries per part: boundaries[p]..boundaries[p+1] is the
/// half-open window range of part p.
std::vector<std::size_t> uniform_boundaries(std::size_t windows,
                                            std::size_t parts) {
  std::vector<std::size_t> b(parts + 1);
  for (std::size_t p = 0; p <= parts; ++p) b[p] = p * windows / parts;
  return b;
}

/// Greedy linear partitioning on per-window event counts: each part closes
/// once it holds at least (remaining events / remaining parts). Keeps every
/// part non-empty.
std::vector<std::size_t> balanced_boundaries(const TemporalEdgeList& events,
                                             const WindowSpec& spec,
                                             std::size_t parts) {
  std::vector<std::size_t> cost(spec.count);
  std::size_t total = 0;
  for (std::size_t w = 0; w < spec.count; ++w) {
    cost[w] = events.slice(spec.start(w), spec.end(w)).size();
    total += cost[w];
  }
  std::vector<std::size_t> b;
  b.reserve(parts + 1);
  b.push_back(0);
  std::size_t remaining = total;
  std::size_t w = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t parts_left = parts - p;
    // Leave at least one window per remaining part.
    const std::size_t max_end = spec.count - (parts_left - 1);
    const std::size_t target =
        (remaining + parts_left - 1) / parts_left;
    std::size_t acc = 0;
    std::size_t end = w;
    while (end < max_end && (acc < target || end == w)) {
      acc += cost[end];
      ++end;
    }
    remaining -= acc;
    w = end;
    b.push_back(end);
  }
  b.back() = spec.count;
  return b;
}

}  // namespace

std::vector<std::size_t> partition_boundaries(const TemporalEdgeList& events,
                                              const WindowSpec& spec,
                                              std::size_t num_parts,
                                              PartitionPolicy policy) {
  num_parts = std::max<std::size_t>(1, std::min(num_parts, spec.count));
  return policy == PartitionPolicy::kUniformWindows
             ? uniform_boundaries(spec.count, num_parts)
             : balanced_boundaries(events, spec, num_parts);
}

MultiWindowSet MultiWindowSet::build(const TemporalEdgeList& events,
                                     const WindowSpec& spec,
                                     std::size_t num_parts,
                                     PartitionPolicy policy) {
  spec.validate();
  PMPR_CHECK_MSG(spec.count >= 1,
                 "MultiWindowSet::build needs at least one window");
  PMPR_CHECK_MSG(events.is_sorted_by_time(),
                 "MultiWindowSet::build requires time-sorted events; call "
                 "sort_by_time() first");
  MultiWindowSet set;
  set.spec_ = spec;
  set.num_global_ = events.num_vertices();
  num_parts = std::max<std::size_t>(1, std::min(num_parts, spec.count));
  set.parts_.resize(num_parts);

  const std::vector<std::size_t> boundaries =
      partition_boundaries(events, spec, num_parts, policy);

  par::TaskGroup group;
  for (std::size_t p = 0; p < num_parts; ++p) {
    const std::size_t first = boundaries[p];
    const std::size_t last = boundaries[p + 1];  // exclusive
    const std::size_t nwin = last - first;
    if (nwin == 0) continue;
    const Timestamp span_start = spec.start(first);
    const Timestamp span_end = spec.end(last - 1);
    group.run([&set, &events, p, first, nwin, span_start, span_end] {
      set.parts_[p] = build_multi_window_part(
          events.slice(span_start, span_end), first, nwin, span_start,
          span_end);
    });
  }
  group.wait();

  // Drop any empty parts created when num_parts > count (defensive; the
  // clamp above should prevent it).
  std::erase_if(set.parts_,
                [](const MultiWindowGraph& g) { return g.num_windows == 0; });
  return set;
}

MultiWindowSet MultiWindowSet::adopt(const WindowSpec& spec,
                                     VertexId num_global,
                                     std::vector<MultiWindowGraph> parts) {
  spec.validate();
  PMPR_CHECK_MSG(!parts.empty(), "adopt needs at least one part");
  MultiWindowSet set;
  set.spec_ = spec;
  set.num_global_ = num_global;
  set.parts_ = std::move(parts);
  return set;
}

void MultiWindowSet::compress_in_place(std::size_t target_chunk_entries) {
  par::TaskGroup group;
  for (auto& part : parts_) {
    group.run([&part, target_chunk_entries] {
      part.compress(target_chunk_entries);
    });
  }
  group.wait();
}

std::size_t MultiWindowSet::part_index_for_window(std::size_t w) const {
  assert(w < spec_.count);
  // Parts hold contiguous, sorted window ranges: binary search.
  std::size_t lo = 0;
  std::size_t hi = parts_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (parts_[mid].first_window <= w) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  assert(w >= parts_[lo].first_window &&
         w < parts_[lo].first_window + parts_[lo].num_windows);
  return lo;
}

void MultiWindowGraph::validate() const {
  PMPR_CHECK_MSG(num_windows >= 1, "part holds no windows");
  PMPR_CHECK_MSG(span_start <= span_end,
                 "part span [" << span_start << ", " << span_end
                               << "] is inverted");
  for (std::size_t i = 1; i < local_to_global.size(); ++i) {
    PMPR_CHECK_MSG(local_to_global[i - 1] < local_to_global[i],
                   "local_to_global not strictly increasing at index "
                       << i << ": " << local_to_global[i - 1]
                       << " >= " << local_to_global[i]);
  }
  // Compressed parts are audited on a full decode: the codec must
  // reproduce a structurally valid raw CSR (and the decode itself verifies
  // chunk-table/payload integrity).
  const TemporalCsr* csr = &in;
  TemporalCsr decoded;
  if (is_compressed()) {
    PMPR_CHECK_MSG(in.num_entries() == 0 && in.num_vertices() == 0,
                   "compressed part still holds a raw in-CSR");
    PMPR_CHECK_MSG(in_compressed->num_rows() == num_local(),
                   "compressed in-CSR covers " << in_compressed->num_rows()
                                               << " rows, local space has "
                                               << num_local());
    decoded = decompress_temporal_csr(*in_compressed);
    csr = &decoded;
  }
  PMPR_CHECK_MSG(csr->num_vertices() == num_local() ||
                     (num_local() == 0 && csr->num_entries() == 0),
                 "in-CSR covers " << csr->num_vertices()
                                  << " vertices, local space has "
                                  << num_local());
  PMPR_CHECK_MSG(csr->num_entries() == num_events,
                 "in-CSR stores " << csr->num_entries()
                                  << " events, part says " << num_events);
  csr->validate();
  for (VertexId v = 0; v < csr->num_vertices(); ++v) {
    for (const Timestamp t : csr->row_times(v)) {
      PMPR_CHECK_MSG(t >= span_start && t <= span_end,
                     "row " << v << " stores an event at time " << t
                            << " outside the part span [" << span_start
                            << ", " << span_end << "]");
    }
  }
}

void MultiWindowSet::validate() const {
  spec_.validate();
  PMPR_CHECK_MSG(!parts_.empty(), "multi-window set holds no parts");
  std::size_t next_window = 0;
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const MultiWindowGraph& part = parts_[p];
    part.validate();
    PMPR_CHECK_MSG(part.first_window == next_window,
                   "part " << p << " starts at window " << part.first_window
                           << ", expected " << next_window
                           << " (gap or overlap in the window coverage)");
    PMPR_CHECK_MSG(part.span_start == spec_.start(part.first_window) &&
                       part.span_end == spec_.end(part.first_window +
                                                  part.num_windows - 1),
                   "part " << p << " span does not match its window range");
    for (const VertexId g : part.local_to_global) {
      PMPR_CHECK_MSG(g < num_global_,
                     "part " << p << " maps a local vertex to global id " << g
                             << " outside [0, " << num_global_ << ")");
    }
    next_window += part.num_windows;
  }
  PMPR_CHECK_MSG(next_window == spec_.count,
                 "parts cover " << next_window << " windows, spec has "
                                << spec_.count);
}

std::size_t MultiWindowSet::total_events() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p.num_events;
  return total;
}

std::size_t MultiWindowSet::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p.memory_bytes();
  return total;
}

}  // namespace pmpr
