// Vertex relabeling for locality.
//
// Skewed (power-law) graphs benefit from ordering hot vertices together:
// relabeling by descending total event count packs the high-degree rows —
// the vertices every SpMV touches most — into a contiguous, cache-friendly
// prefix of the PageRank vector. A classic CSR optimization, orthogonal to
// everything in the paper (PageRank is invariant under relabeling; the
// sink maps results back through the permutation).
#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace pmpr {

/// A vertex permutation: new_id = forward[old_id], old_id = inverse[new_id].
struct Relabeling {
  std::vector<VertexId> forward;
  std::vector<VertexId> inverse;

  [[nodiscard]] VertexId to_new(VertexId old_id) const {
    return forward[old_id];
  }
  [[nodiscard]] VertexId to_old(VertexId new_id) const {
    return inverse[new_id];
  }
};

/// Permutation ordering vertices by descending total event count (ties by
/// ascending old id, so the result is deterministic).
Relabeling relabel_by_activity(const TemporalEdgeList& events);

/// Applies a relabeling, preserving event order (still time-sorted).
TemporalEdgeList apply_relabeling(const TemporalEdgeList& events,
                                  const Relabeling& relabeling);

}  // namespace pmpr
