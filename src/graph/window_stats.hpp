// Per-window workload statistics.
//
// The §6.3.6 parameter rules ("look at the load balance in edges of
// different time windows") and the Fig. 4 edge-distribution series both
// need per-window sizes. Event counts come from two binary searches per
// window on the sorted list — O(m log |Events|) total; distinct-edge
// counts require building each window graph and are proportionally more
// expensive, so both variants are provided.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "graph/window.hpp"

namespace pmpr {

/// Events (with multiplicity) per window.
std::vector<std::size_t> window_event_counts(const TemporalEdgeList& events,
                                             const WindowSpec& spec);

/// Distinct directed edges per window (dedup cost per window).
std::vector<std::size_t> window_edge_counts(const TemporalEdgeList& events,
                                            const WindowSpec& spec);

}  // namespace pmpr
