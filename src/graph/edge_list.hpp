// Temporal edge set (paper §2.1): the postmortem input — the full event
// database ⟨u, v, t⟩, known in advance and sorted by non-decreasing time.
//
// Provides construction, validation, text/binary IO, and the time-range
// queries the execution models are built on (events of one window / one
// multi-window span are a contiguous slice of the sorted list).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace pmpr {

class TemporalEdgeList {
 public:
  TemporalEdgeList() = default;
  /// Adopts `edges`. Throws pmpr::InvariantError if any endpoint uses the
  /// reserved id kInvalidVertex (which would overflow num_vertices()).
  explicit TemporalEdgeList(std::vector<TemporalEdge> edges);

  /// Appends an event. Invalidates sortedness if out of order. Throws
  /// pmpr::InvariantError on a reserved endpoint id.
  void add(VertexId src, VertexId dst, Timestamp time);

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] std::span<const TemporalEdge> events() const { return edges_; }
  [[nodiscard]] const TemporalEdge& operator[](std::size_t i) const {
    return edges_[i];
  }

  /// Number of vertices = max endpoint id + 1 (0 if empty). O(1); maintained
  /// incrementally.
  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }

  /// Raises the vertex-space size (ids are global even if some never occur).
  void ensure_vertices(VertexId n);

  [[nodiscard]] bool is_sorted_by_time() const;

  /// Stable-sorts events by timestamp (postmortem precondition).
  void sort_by_time();

  /// Earliest / latest event time. Requires a non-empty, time-sorted list.
  [[nodiscard]] Timestamp min_time() const;
  [[nodiscard]] Timestamp max_time() const;

  /// Contiguous slice of events with ts <= t <= te. Requires time-sorted.
  [[nodiscard]] std::span<const TemporalEdge> slice(Timestamp ts,
                                                    Timestamp te) const;

  /// Text IO: one "src dst time" triple per line; '#' starts a comment.
  /// Throws std::runtime_error on malformed input or IO failure.
  static TemporalEdgeList load_text(const std::string& path);
  void save_text(const std::string& path) const;

  /// Binary IO (little-endian, magic-tagged). Throws on failure.
  static TemporalEdgeList load_binary(const std::string& path);
  void save_binary(const std::string& path) const;

 private:
  std::vector<TemporalEdge> edges_;
  VertexId num_vertices_ = 0;
};

}  // namespace pmpr
