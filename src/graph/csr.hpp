// Static CSR graph and the per-window graph bundle used by the offline
// execution model (paper §3.3.1) and as the ground truth in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace pmpr {

/// Plain compressed-sparse-row adjacency over a fixed vertex space [0, n).
class Csr {
 public:
  Csr() = default;

  /// Builds from (src, dst) pairs. If `dedup`, parallel edges collapse to
  /// one (the per-window graphs are simple graphs, paper §2.1). Throws
  /// pmpr::InvariantError (also in release builds) if any endpoint is
  /// >= num_vertices — a bad endpoint would otherwise write out of bounds.
  static Csr from_pairs(std::span<const std::pair<VertexId, VertexId>> edges,
                        VertexId num_vertices, bool dedup);

  /// Structural audit: row_ptr monotone and consistent with col, every
  /// column id in range, rows sorted. Throws pmpr::InvariantError.
  void validate() const;

  [[nodiscard]] VertexId num_vertices() const {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const { return col_.size(); }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {col_.data() + row_ptr_[v], col_.data() + row_ptr_[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(row_ptr_[v + 1] - row_ptr_[v]);
  }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<VertexId>& col() const { return col_; }

 private:
  std::vector<std::size_t> row_ptr_;  // n + 1 entries
  std::vector<VertexId> col_;
};

/// One window's graph in the global vertex space, shaped for a pull-style
/// PageRank: in-adjacency + distinct out-degrees + the active vertex set
/// (a vertex is active iff it has at least one incident edge in the window;
/// |V_i| in the paper's Eq. 1 is the active count).
struct WindowGraph {
  VertexId num_vertices = 0;            ///< Global vertex-space size.
  Csr in;                               ///< Deduplicated in-adjacency.
  std::vector<std::uint32_t> out_degree;  ///< Distinct out-neighbors.
  std::vector<std::uint8_t> is_active;  ///< 1 iff vertex active this window.
  std::size_t num_active = 0;
  std::size_t num_edges = 0;  ///< Distinct directed edges in the window.

  /// Deep structural audit: array sizes match the vertex space, the CSR is
  /// well-formed, cached num_active/num_edges match recounts, out-degrees
  /// sum to the edge count, and activity agrees with incident edges.
  /// Throws pmpr::InvariantError.
  void validate() const;
};

/// Builds the window graph from the events of that window (any order,
/// duplicates allowed). This is the per-window reconstruction cost the
/// offline model pays (paper: "the cost of the application will be driven
/// by the cost of building the graphs").
WindowGraph build_window_graph(std::span<const TemporalEdge> events,
                               VertexId num_vertices);

}  // namespace pmpr
