#include "graph/temporal_csr.hpp"

#include <algorithm>
#include <numeric>
#include <type_traits>
#include <utility>

#include "par/parallel_for.hpp"
#include "util/check.hpp"

namespace pmpr {

TemporalCsr TemporalCsr::build(std::span<const TemporalEdge> events,
                               VertexId num_vertices, bool reverse) {
  TemporalCsr g;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  auto row_of = [reverse](const TemporalEdge& e) {
    return reverse ? e.dst : e.src;
  };
  auto col_of = [reverse](const TemporalEdge& e) {
    return reverse ? e.src : e.dst;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TemporalEdge& e = events[i];
    PMPR_CHECK_MSG(e.src < num_vertices && e.dst < num_vertices,
                   "event " << i << " = <" << e.src << ", " << e.dst << ", "
                            << e.time << "> has an endpoint outside the "
                            << "vertex space [0, " << num_vertices << ")");
    ++g.row_ptr_[row_of(e) + 1];
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
  }

  g.col_.resize(events.size());
  g.time_.resize(events.size());
  {
    std::vector<std::size_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
    for (const auto& e : events) {
      const std::size_t at = cursor[row_of(e)]++;
      g.col_[at] = col_of(e);
      g.time_[at] = e.time;
    }
  }

  // Sort every row by <neighbor, time> so events between the same pair form
  // a consecutive, time-ascending run. Rows are independent -> parallel.
  par::parallel_for_range(
      0, num_vertices, {},
      [&g](std::size_t lo_v, std::size_t hi_v) {
        std::vector<std::uint32_t> order;
        std::vector<VertexId> tmp_col;
        std::vector<Timestamp> tmp_time;
        for (std::size_t v = lo_v; v < hi_v; ++v) {
          const std::size_t lo = g.row_ptr_[v];
          const std::size_t hi = g.row_ptr_[v + 1];
          const std::size_t len = hi - lo;
          if (len < 2) continue;
          order.resize(len);
          std::iota(order.begin(), order.end(), 0u);
          std::sort(order.begin(), order.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      const VertexId ca = g.col_[lo + a];
                      const VertexId cb = g.col_[lo + b];
                      if (ca != cb) return ca < cb;
                      return g.time_[lo + a] < g.time_[lo + b];
                    });
          tmp_col.resize(len);
          tmp_time.resize(len);
          for (std::size_t k = 0; k < len; ++k) {
            tmp_col[k] = g.col_[lo + order[k]];
            tmp_time[k] = g.time_[lo + order[k]];
          }
          std::copy(tmp_col.begin(), tmp_col.end(), g.col_.begin() + lo);
          std::copy(tmp_time.begin(), tmp_time.end(), g.time_.begin() + lo);
        }
      });
  g.charge_.reset(obs::MemTag::kGraph, g.memory_bytes());
  return g;
}

void TemporalCsr::validate() const {
  if (row_ptr_.empty()) {
    PMPR_CHECK_MSG(col_.empty() && time_.empty(),
                   "default-constructed TemporalCsr holds entries");
    return;
  }
  const std::size_t n = row_ptr_.size() - 1;
  PMPR_CHECK_MSG(row_ptr_.front() == 0,
                 "row_ptr[0] = " << row_ptr_.front() << ", expected 0");
  for (std::size_t v = 0; v < n; ++v) {
    PMPR_CHECK_MSG(row_ptr_[v] <= row_ptr_[v + 1],
                   "row_ptr not monotone at vertex " << v << ": "
                       << row_ptr_[v] << " > " << row_ptr_[v + 1]);
  }
  PMPR_CHECK_MSG(row_ptr_.back() == col_.size(),
                 "row_ptr.back() = " << row_ptr_.back() << " but col holds "
                                     << col_.size() << " entries");
  PMPR_CHECK_MSG(time_.size() == col_.size(),
                 "time array holds " << time_.size() << " entries, col holds "
                                     << col_.size());
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = row_ptr_[v]; i < row_ptr_[v + 1]; ++i) {
      PMPR_CHECK_MSG(col_[i] < n, "row " << v << " entry " << i
                                         << " references vertex " << col_[i]
                                         << " outside [0, " << n << ")");
      if (i > row_ptr_[v]) {
        // <neighbor, time> lexicographic order within the row.
        const bool ordered =
            col_[i - 1] < col_[i] ||
            (col_[i - 1] == col_[i] && time_[i - 1] <= time_[i]);
        PMPR_CHECK_MSG(ordered, "row " << v << " not sorted by <neighbor, "
                                       << "time> at entry " << i << ": <"
                                       << col_[i - 1] << ", " << time_[i - 1]
                                       << "> before <" << col_[i] << ", "
                                       << time_[i] << ">");
      }
    }
  }
}

TemporalCsr TemporalCsr::adopt(std::vector<std::size_t> row_ptr,
                               std::vector<VertexId> col,
                               std::vector<Timestamp> time) {
  PMPR_CHECK_MSG(col.size() == time.size(),
                 "adopt: col holds " << col.size() << " entries, time holds "
                                     << time.size());
  PMPR_CHECK_MSG(
      row_ptr.empty() ? col.empty()
                      : (row_ptr.front() == 0 && row_ptr.back() == col.size()),
      "adopt: row_ptr does not bracket the " << col.size() << " entries");
  TemporalCsr g;
  g.row_ptr_ = std::move(row_ptr);
  g.col_ = std::move(col);
  g.time_ = std::move(time);
  g.charge_.reset(obs::MemTag::kGraph, g.memory_bytes());
  return g;
}

// The io layer cannot see graph/types.hpp, so it defines its own scalar
// widths; the bridge is only sound while they agree.
static_assert(std::is_same_v<io::ColId, VertexId>,
              "io::ColId must match VertexId");
static_assert(std::is_same_v<io::TimeValue, Timestamp>,
              "io::TimeValue must match Timestamp");

io::CompressedTemporalCsr compress_temporal_csr(
    const TemporalCsr& csr, std::size_t target_chunk_entries) {
  return io::CompressedTemporalCsr::encode(csr.row_ptr(), csr.col(),
                                           csr.time(), target_chunk_entries);
}

TemporalCsr decompress_temporal_csr(const io::CompressedTemporalCsr& packed) {
  io::DecodeScratch scratch;
  packed.decode_all(scratch);
  if (packed.num_rows() == 0) return TemporalCsr{};
  return TemporalCsr::adopt(std::move(scratch.row_ptr),
                            std::move(scratch.cols),
                            std::move(scratch.times));
}

}  // namespace pmpr
