// Temporal CSR (paper §4.1, Fig. 3): the postmortem graph representation.
//
// Like CSR, but each adjacency entry carries the event timestamp (timeA).
// The entries of a row are sorted by ⟨neighbor, time⟩, so all events between
// the same vertex pair form a consecutive *run*. An edge (v, u) exists in
// window [ts, te] iff the run for u contains at least one timestamp in
// [ts, te]; iterating the distinct active neighbors of v is a single scan
// of the row with run skipping.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "io/compressed_csr.hpp"
#include "obs/memory.hpp"

namespace pmpr {

/// Calls `fn(u)` once per distinct neighbor u in a ⟨neighbor, time⟩-sorted
/// row (given as parallel col/time spans) with at least one event in
/// [ts, te]. Shared by TemporalCsr::for_each_active_neighbor and the
/// compressed-chunk streaming passes (pagerank/batch_csr.cpp), which apply
/// it to rows decoded into io::DecodeScratch without materializing a CSR.
template <typename Fn>
void for_each_active_neighbor_in_row(std::span<const VertexId> cols,
                                     std::span<const Timestamp> times,
                                     Timestamp ts, Timestamp te, Fn&& fn) {
  std::size_t i = 0;
  const std::size_t n = cols.size();
  while (i < n) {
    const VertexId u = cols[i];
    bool active = false;
    // Scan this run; timestamps within a run are ascending, so we could
    // stop testing once past te (later events in the run are later).
    while (i < n && cols[i] == u) {
      const Timestamp t = times[i];
      if (t >= ts && t <= te) active = true;
      ++i;
    }
    if (active) fn(u);
  }
}

class TemporalCsr {
 public:
  TemporalCsr() = default;

  /// Adopts pre-built arrays (row_ptr.size() == rows + 1; col/time
  /// parallel). For the io bridge (decompress_temporal_csr) and tests that
  /// construct exact layouts; throws pmpr::InvariantError when the sizes
  /// disagree. Does NOT verify row sort order — call validate() for that.
  static TemporalCsr adopt(std::vector<std::size_t> row_ptr,
                           std::vector<VertexId> col,
                           std::vector<Timestamp> time);

  /// Builds over vertex space [0, n). If `reverse`, rows are destinations
  /// and columns are sources (the layout the pull-style PageRank reads).
  /// Throws pmpr::InvariantError if any event endpoint is >= num_vertices
  /// (also in release builds; a bad endpoint would otherwise write out of
  /// bounds).
  static TemporalCsr build(std::span<const TemporalEdge> events,
                           VertexId num_vertices, bool reverse);

  /// Deep structural audit, O(V + E): row_ptr monotone and consistent with
  /// the entry arrays, every column id in range, every row sorted by
  /// ⟨neighbor, time⟩. Throws pmpr::InvariantError naming the first
  /// violation. Cheap enough for tests and validate-mode runs, not for
  /// per-query use.
  void validate() const;

  [[nodiscard]] VertexId num_vertices() const {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  /// Number of stored events (= |Events| of the slice it was built from).
  [[nodiscard]] std::size_t num_entries() const { return col_.size(); }

  [[nodiscard]] std::span<const VertexId> row_cols(VertexId v) const {
    return {col_.data() + row_ptr_[v], col_.data() + row_ptr_[v + 1]};
  }
  [[nodiscard]] std::span<const Timestamp> row_times(VertexId v) const {
    return {time_.data() + row_ptr_[v], time_.data() + row_ptr_[v + 1]};
  }

  // Read-only views (spans, not container references: the backing vectors
  // are an implementation detail and must not leak a mutable-size handle).
  [[nodiscard]] std::span<const std::size_t> row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const VertexId> col() const { return col_; }
  [[nodiscard]] std::span<const Timestamp> time() const { return time_; }

  /// Calls `fn(u)` once per distinct neighbor u of v that has at least one
  /// event in [ts, te]. This is the SpMV inner loop of the paper.
  template <typename Fn>
  void for_each_active_neighbor(VertexId v, Timestamp ts, Timestamp te,
                                Fn&& fn) const {
    for_each_active_neighbor_in_row(row_cols(v), row_times(v), ts, te,
                                    std::forward<Fn>(fn));
  }

  /// Variant of for_each_active_neighbor that binary-searches each
  /// ⟨v,u⟩ run for the first event >= ts instead of scanning it. Wins only
  /// when runs are long (many repeated events between the same pair);
  /// bench_ablation_timescan quantifies the crossover. Results identical.
  template <typename Fn>
  void for_each_active_neighbor_binsearch(VertexId v, Timestamp ts,
                                          Timestamp te, Fn&& fn) const {
    const std::size_t lo = row_ptr_[v];
    const std::size_t hi = row_ptr_[v + 1];
    std::size_t i = lo;
    while (i < hi) {
      const VertexId u = col_[i];
      // Find the end of the run.
      std::size_t j = i + 1;
      while (j < hi && col_[j] == u) ++j;
      // First event in the run with time >= ts.
      const Timestamp* first = time_.data() + i;
      const Timestamp* last = time_.data() + j;
      const Timestamp* it = std::lower_bound(first, last, ts);
      if (it != last && *it <= te) fn(u);
      i = j;
    }
  }

  /// Approximate bytes used by the representation (the paper's memory-cost
  /// discussion: encoding * (V + 2E) per direction with 64-bit time and
  /// 32-bit ids here).
  [[nodiscard]] std::size_t memory_bytes() const {
    return row_ptr_.size() * sizeof(std::size_t) +
           col_.size() * sizeof(VertexId) + time_.size() * sizeof(Timestamp);
  }

 private:
  std::vector<std::size_t> row_ptr_;  // n + 1
  std::vector<VertexId> col_;         // |Events| entries (rowA order)
  std::vector<Timestamp> time_;       // parallel to col_
  obs::MemCharge charge_;             // memory_bytes() under MemTag::kGraph
};

/// Re-encodes the CSR with the chunked delta+varint codec
/// (io/compressed_csr.hpp). Lossless: decompress_temporal_csr round-trips
/// every row bit-exactly, including adversarial timestamp patterns.
io::CompressedTemporalCsr compress_temporal_csr(
    const TemporalCsr& csr,
    std::size_t target_chunk_entries = io::kDefaultChunkEntries);

/// Inverse of compress_temporal_csr (materializes the raw arrays).
TemporalCsr decompress_temporal_csr(const io::CompressedTemporalCsr& packed);

}  // namespace pmpr
