// Memory accounting for the postmortem representation (paper §4.1).
//
// The paper sizes the multi-window decomposition by memory: "we propose
// that a window graph should be accommodated by the system memory when
// computing Pagerank" with a total representation cost of
// encoding·(Σ_w |V_w| + 2·|E_w|) plus the intermediate PageRank vectors.
// These helpers estimate both terms and pick the smallest part count whose
// largest part (graph + working vectors) fits a byte budget.
#pragma once

#include <cstddef>

#include "graph/edge_list.hpp"
#include "graph/multi_window.hpp"
#include "graph/window.hpp"

namespace pmpr {

struct MemoryEstimate {
  /// Bytes of the encoded representation across all parts
  /// (row pointers + colA + timeA + vertex maps).
  std::size_t representation_bytes = 0;
  /// Bytes of the largest single part (the unit that must be resident
  /// while its windows compute).
  std::size_t largest_part_bytes = 0;
  /// Per-execution-context working set for the largest part: PageRank
  /// vector, scratch, partial-init carry, degrees and activity — times the
  /// SpMM vector length — plus the batch-compiled adjacency
  /// (pagerank/batch_csr.hpp; entries bounded by the part's stored
  /// events).
  std::size_t working_bytes_per_context = 0;

  /// Peak bytes with `contexts` simultaneously active parts/kernels.
  [[nodiscard]] std::size_t peak_bytes(std::size_t contexts) const {
    return representation_bytes + contexts * working_bytes_per_context;
  }
};

/// Measures an already-built set.
MemoryEstimate estimate_memory(const MultiWindowSet& set,
                               std::size_t vector_length);

/// Predicts the estimate for a hypothetical uniform-windows decomposition
/// into `num_parts`, without building it (event counts come from binary
/// searches on the sorted list; vertex counts are upper-bounded by
/// min(2·events, |V|)).
MemoryEstimate predict_memory(const TemporalEdgeList& events,
                              const WindowSpec& spec, std::size_t num_parts,
                              std::size_t vector_length);

/// §4.1's sizing rule: the smallest number of multi-window graphs whose
/// predicted peak (with `contexts` concurrent kernels) fits
/// `budget_bytes`. Returns spec.count (maximum decomposition) if even that
/// does not fit — the caller should then shrink the dataset or the budget.
std::size_t suggest_num_multi_windows(const TemporalEdgeList& events,
                                      const WindowSpec& spec,
                                      std::size_t budget_bytes,
                                      std::size_t vector_length,
                                      std::size_t contexts);

/// Out-of-core sizing rule for the paged store
/// (graph/paged_multi_window.hpp): the smallest number of parts whose
/// *largest single part* — its representation plus `contexts` concurrent
/// working sets — fits `budget_bytes`. Unlike suggest_num_multi_windows,
/// the sum over parts is irrelevant: evicted parts cost nothing resident.
/// Returns spec.count if even the maximum decomposition does not fit.
std::size_t suggest_num_parts_for_budget(const TemporalEdgeList& events,
                                         const WindowSpec& spec,
                                         std::size_t budget_bytes,
                                         std::size_t vector_length,
                                         std::size_t contexts);

}  // namespace pmpr
