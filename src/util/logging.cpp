#include "util/logging.hpp"

#include <cstdio>

namespace pmpr {

namespace detail {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

Mutex& log_mutex() {
  static Mutex m;
  return m;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void emit(LogLevel level, std::string_view msg) {
  LockGuard lock(log_mutex());
  std::fprintf(stderr, "[pmpr %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = detail::log_threshold();
  detail::log_threshold() = level;
  return prev;
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

}  // namespace pmpr
