#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace pmpr {

namespace detail {

LogLevel& log_threshold() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

Mutex& log_mutex() {
  static Mutex m;
  return m;
}

namespace {

std::atomic<bool> g_log_annotations{false};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

/// Small sequential id claimed on a thread's first annotated log line —
/// readable in interleaved output, unlike the opaque std::thread::id hash.
unsigned log_thread_id() {
  static std::atomic<unsigned> next{0};
  // relaxed: only uniqueness matters, ids carry no ordering.
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-07T12:34:56.789Z" into `buf`. 25 bytes nominal, but GCC's
/// -Wformat-truncation reasons about tm's full int ranges, so callers pass
/// a buffer sized for the worst-case rendering (80 bytes).
void format_utc_now(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
}

}  // namespace

void emit(LogLevel level, std::string_view msg) {
  // relaxed: advisory formatting toggle, no data published through it.
  if (g_log_annotations.load(std::memory_order_relaxed)) {
    char stamp[80];
    format_utc_now(stamp, sizeof(stamp));
    const unsigned tid = log_thread_id();
    LockGuard lock(log_mutex());
    std::fprintf(stderr, "[pmpr %s %s t%u] %.*s\n", level_tag(level), stamp,
                 tid, static_cast<int>(msg.size()), msg.data());
    return;
  }
  LockGuard lock(log_mutex());
  std::fprintf(stderr, "[pmpr %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

bool set_log_annotations(bool enabled) {
  // seq_cst exchange: toggles are rare control-plane calls; keep them
  // strongly ordered with the lines around them.
  return detail::g_log_annotations.exchange(enabled);
}

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = detail::log_threshold();
  detail::log_threshold() = level;
  return prev;
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

}  // namespace pmpr
