// Wall-clock timing utilities used by the benchmark harnesses and the
// execution-model runners to report per-phase times (graph build, PageRank,
// total), mirroring the measurements reported in the paper's Section 6.
#pragma once

#include <chrono>
#include <cstdint>

namespace pmpr {

/// Monotonic wall-clock stopwatch.
///
/// Construction starts the clock; `seconds()` / `millis()` read the elapsed
/// time without stopping, `reset()` restarts from zero.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/reset, in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time since construction/reset, in nanoseconds.
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
///
/// Used where a phase is interleaved with others (e.g. the streaming runner
/// separates "graph mutation" time from "PageRank" time within one window
/// advance).
class AccumTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); }

  [[nodiscard]] double seconds() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
};

/// RAII start/stop for one AccumTimer interval: construction starts the
/// timer, destruction stops it. Exception-safe — the interval is recorded
/// even if the timed scope unwinds — which manual start()/stop() pairs are
/// not.
class ScopedAccum {
 public:
  explicit ScopedAccum(AccumTimer& accum) : accum_(accum) { accum_.start(); }
  ~ScopedAccum() { accum_.stop(); }

  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  AccumTimer& accum_;
};

}  // namespace pmpr
