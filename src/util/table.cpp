#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace pmpr {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }
std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << csv_escape(columns_[c]) << (c + 1 < columns_.size() ? "," : "");
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  }
}

}  // namespace pmpr
