#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pmpr {

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double v : sample) s += v;
  return s / static_cast<double>(sample.size());
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::size_t percentile_bucket(std::span<const std::uint64_t> counts,
                              double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return counts.size();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile observation, 1-based: q = 0 is the first
  // observation, q = 1 the last.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return i;
  }
  return counts.size() - 1;  // unreachable: seen == total >= rank
}

double median(std::span<const double> sample) {
  return percentile(sample, 0.5);
}

double geomean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : sample) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  s.mean = mean(sample);
  s.min = *std::min_element(sample.begin(), sample.end());
  s.max = *std::max_element(sample.begin(), sample.end());
  double sq = 0.0;
  for (double v : sample) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sample.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sample.size() - 1))
                 : 0.0;
  s.median = median(sample);
  s.p95 = percentile(sample, 0.95);
  return s;
}

}  // namespace pmpr
