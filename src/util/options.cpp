#include "util/options.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>

namespace pmpr {

Options::Options(std::string program_summary)
    : summary_(std::move(program_summary)) {}

Options& Options::add(const std::string& name, std::string* target,
                      const std::string& help) {
  Opt o;
  o.name = name;
  o.help = help;
  o.default_repr = *target;
  o.set = [target](const std::string& v) {
    *target = v;
    return true;
  };
  opts_.push_back(std::move(o));
  return *this;
}

Options& Options::add(const std::string& name, std::int64_t* target,
                      const std::string& help) {
  Opt o;
  o.name = name;
  o.help = help;
  o.default_repr = std::to_string(*target);
  o.set = [target](const std::string& v) {
    std::int64_t parsed = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), parsed);
    if (ec != std::errc() || ptr != v.data() + v.size()) return false;
    *target = parsed;
    return true;
  };
  opts_.push_back(std::move(o));
  return *this;
}

Options& Options::add(const std::string& name, double* target,
                      const std::string& help) {
  Opt o;
  o.name = name;
  o.help = help;
  o.default_repr = std::to_string(*target);
  // Same parser discipline as the integer path: from_chars consumes the
  // whole value with no leading whitespace and no locale dependence, so
  // "--alpha= 0.85" fails identically to "--iters= 5".
  o.set = [target](const std::string& v) {
    double parsed = 0.0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), parsed);
    if (ec != std::errc() || ptr != v.data() + v.size()) return false;
    *target = parsed;
    return true;
  };
  opts_.push_back(std::move(o));
  return *this;
}

Options& Options::add(const std::string& name, bool* target,
                      const std::string& help) {
  Opt o;
  o.name = name;
  o.help = help;
  o.default_repr = *target ? "true" : "false";
  o.is_flag = true;
  o.set = [target](const std::string& v) {
    if (v == "true" || v == "1" || v.empty()) {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      return false;
    }
    return true;
  };
  opts_.push_back(std::move(o));
  return *this;
}

const Options::Opt* Options::find(const std::string& name) const {
  for (const auto& o : opts_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

void Options::print_help(const char* argv0) const {
  std::printf("%s\n\nUsage: %s [options]\n\nOptions:\n", summary_.c_str(),
              argv0);
  for (const auto& o : opts_) {
    std::printf("  --%-24s %s (default: %s)\n",
                (o.name + (o.is_flag ? "" : " <value>")).c_str(),
                o.help.c_str(), o.default_repr.c_str());
  }
  std::printf("  --%-24s print this help\n", "help");
}

bool Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      saw_help_ = true;
      print_help(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    const Opt* opt = find(body);
    bool negated = false;
    if (opt == nullptr && body.rfind("no-", 0) == 0) {
      opt = find(body.substr(3));
      if (opt != nullptr && opt->is_flag) {
        negated = true;
      } else {
        opt = nullptr;
      }
    }
    if (opt == nullptr) {
      std::fprintf(stderr, "error: unknown option --%s (try --help)\n",
                   body.c_str());
      return false;
    }

    if (opt->is_flag) {
      if (negated) {
        opt->set("false");
      } else if (has_value) {
        if (!opt->set(value)) {
          std::fprintf(stderr, "error: bad boolean for --%s: '%s'\n",
                       body.c_str(), value.c_str());
          return false;
        }
      } else {
        opt->set("true");
      }
      continue;
    }

    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --%s expects a value\n", body.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!opt->set(value)) {
      std::fprintf(stderr, "error: cannot parse value for --%s: '%s'\n",
                   body.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace pmpr
