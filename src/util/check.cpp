#include "util/check.hpp"

namespace pmpr::detail {

void throw_invariant_failure(const char* file, int line, const char* expr,
                             const std::string& message) {
  std::ostringstream out;
  out << "invariant violation at " << file << ":" << line << ": CHECK("
      << expr << ") failed";
  if (!message.empty()) out << ": " << message;
  throw InvariantError(out.str());
}

}  // namespace pmpr::detail
