// Deterministic, seedable random number generation for the synthetic dataset
// generators (src/gen) and the property-based tests.
//
// We avoid std::mt19937 for the hot generator paths: xoshiro256** is faster,
// has a tiny state, and is trivially splittable via SplitMix64 seeding, which
// lets independent generator streams (one per dataset surrogate, one per
// temporal segment) be derived from a single user-facing seed without
// correlation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pmpr {

/// SplitMix64: used to expand a single 64-bit seed into full generator state.
/// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it can drive std::distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high-quality bits -> [0,1) with full double precision.
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fork an independent stream. The child is seeded from this stream's
  /// output, so forks are reproducible given the root seed.
  Xoshiro256 fork() { return Xoshiro256(operator()()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pmpr
