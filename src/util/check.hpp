// Runtime invariant checks (DESIGN.md §6: failure injection / validation).
//
// Three tiers, chosen by cost and audience:
//
//   PMPR_CHECK(cond)            always on, including -DNDEBUG release
//   PMPR_CHECK_MSG(cond, ...)   builds. For validating *external* data
//                               (files, CLI values, user-supplied event
//                               batches) and structural invariants whose
//                               violation would otherwise be UB (out-of-
//                               bounds writes, corrupt chains). Throws
//                               pmpr::InvariantError with file:line, the
//                               failed expression, and an optional
//                               streamed message.
//
//   PMPR_DCHECK(cond)           debug-only (compiled out under NDEBUG).
//   PMPR_DCHECK_MSG(cond, ...)  For hot-path preconditions that are too
//                               expensive to verify in release (per-element
//                               checks inside kernels) but cheap insurance
//                               in sanitizer/debug builds.
//
//   validate() methods          deep structural audits (O(V+E)) on
//                               TemporalCsr, MultiWindowGraph/Set,
//                               WindowGraph, DynamicGraph. Invoked from
//                               tests and, behind the `validate` flag of the
//                               runner configs, after every build/mutation.
//
// Policy: a failed PMPR_CHECK means the *input or caller* broke the
// contract — the exception is recoverable and carries enough context to
// diagnose. A failed PMPR_DCHECK means *our* code broke an internal
// invariant — fix the bug, don't catch the error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmpr {

/// Thrown by PMPR_CHECK / validate() on a violated invariant or malformed
/// external input. Derives from std::logic_error: the condition was
/// checkable before the call.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

/// Builds the exception message and throws. Out-of-line so the cold throw
/// path costs one call in the checked code.
[[noreturn]] void throw_invariant_failure(const char* file, int line,
                                          const char* expr,
                                          const std::string& message);

/// Stream-collects the optional message of PMPR_CHECK_MSG.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pmpr

/// Always-on invariant check; throws pmpr::InvariantError when `cond` is
/// false. Survives -DNDEBUG — use for external input and UB-preventing
/// structural checks.
#define PMPR_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      ::pmpr::detail::throw_invariant_failure(__FILE__, __LINE__, #cond, \
                                              std::string());            \
    }                                                                    \
  } while (false)

/// PMPR_CHECK with a streamed context message:
///   PMPR_CHECK_MSG(v < n, "vertex " << v << " out of range [0," << n << ")");
/// The message expression is only evaluated on failure.
#define PMPR_CHECK_MSG(cond, message)                                  \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::pmpr::detail::throw_invariant_failure(                         \
          __FILE__, __LINE__, #cond,                                   \
          (::pmpr::detail::CheckMessageBuilder() << message).str());   \
    }                                                                  \
  } while (false)

/// Debug-only variants: full checks without NDEBUG, no-ops (arguments
/// unevaluated) with it. `sizeof` keeps the expressions syntactically
/// checked in release so they cannot rot.
#ifndef NDEBUG
#define PMPR_DCHECK(cond) PMPR_CHECK(cond)
#define PMPR_DCHECK_MSG(cond, message) PMPR_CHECK_MSG(cond, message)
#else
#define PMPR_DCHECK(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond) ? 0 : 1))
#define PMPR_DCHECK_MSG(cond, message) \
  static_cast<void>(sizeof(static_cast<bool>(cond) ? 0 : 1))
#endif
