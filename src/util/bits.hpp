// Bit-manipulation helpers shared by the lane-mask layers.
//
// Lane indices are std::size_t everywhere: a multi-word lane index is
// word * 64 + bit and may exceed 64, so the ctz result must never pass
// through a narrower type on its way into lane arithmetic. ctz64 is the
// single sanctioned spot that converts a mask word into a lane offset.
//
// A "lane mask" is `words` consecutive std::uint64_t values, bit k of
// word w naming lane w * 64 + k. Storage is always padded to the compiled
// kernels' template instantiation set {1, 2, 4, 8} words (64 / 128 / 256 /
// 512 lanes) so a runtime word count can be dispatched to a compile-time
// one without a remainder path; bits at or above the lane count are zero
// by construction.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace pmpr {

/// Index of the lowest set bit of `x` as std::size_t. Precondition: the
/// callers' loops guarantee x != 0 (countr_zero(0) would return 64, which
/// is never a valid in-word bit index).
[[nodiscard]] constexpr std::size_t ctz64(std::uint64_t x) {
  return static_cast<std::size_t>(std::countr_zero(x));
}

inline constexpr std::size_t kLanesPerMaskWord = 64;

/// Words backing a `lanes`-wide mask, rounded up to {1, 2, 4, 8} — the set
/// the compiled kernels are instantiated for. lanes = 0 maps to 1 word.
[[nodiscard]] constexpr std::size_t mask_words_for(std::size_t lanes) {
  const std::size_t raw =
      (lanes + kLanesPerMaskWord - 1) / kLanesPerMaskWord;
  return std::bit_ceil(raw == 0 ? std::size_t{1} : raw);
}

[[nodiscard]] constexpr bool mask_test(const std::uint64_t* words,
                                       std::size_t lane) {
  return (words[lane / kLanesPerMaskWord] >>
              (lane % kLanesPerMaskWord) & 1) != 0;
}

constexpr void mask_set(std::uint64_t* words, std::size_t lane) {
  words[lane / kLanesPerMaskWord] |= std::uint64_t{1}
                                     << (lane % kLanesPerMaskWord);
}

constexpr void mask_clear(std::uint64_t* words, std::size_t lane) {
  words[lane / kLanesPerMaskWord] &= ~(std::uint64_t{1}
                                       << (lane % kLanesPerMaskWord));
}

/// Whether any of the `num_words` words has a bit set.
[[nodiscard]] constexpr bool mask_any(const std::uint64_t* words,
                                      std::size_t num_words) {
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < num_words; ++w) acc |= words[w];
  return acc != 0;
}

/// Sets every bit in the inclusive lane range [lo, hi]. The caller
/// guarantees the range fits the mask's words.
constexpr void mask_set_range(std::uint64_t* words, std::size_t lo,
                              std::size_t hi) {
  const std::size_t w_lo = lo / kLanesPerMaskWord;
  const std::size_t w_hi = hi / kLanesPerMaskWord;
  const std::size_t b_lo = lo % kLanesPerMaskWord;
  const std::size_t b_hi = hi % kLanesPerMaskWord;
  if (w_lo == w_hi) {
    const std::uint64_t run = b_hi - b_lo + 1 >= kLanesPerMaskWord
                                  ? ~std::uint64_t{0}
                                  : ((std::uint64_t{1} << (b_hi - b_lo + 1)) -
                                     1);
    words[w_lo] |= run << b_lo;
    return;
  }
  words[w_lo] |= ~std::uint64_t{0} << b_lo;
  for (std::size_t w = w_lo + 1; w < w_hi; ++w) words[w] = ~std::uint64_t{0};
  words[w_hi] |= b_hi + 1 >= kLanesPerMaskWord
                     ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (b_hi + 1)) - 1;
}

/// Invokes `fn(lane)` for every set lane, ascending.
template <typename Fn>
constexpr void for_each_set_lane(const std::uint64_t* words,
                                 std::size_t num_words, Fn&& fn) {
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t m = words[w];
    while (m != 0) {
      fn(w * kLanesPerMaskWord + ctz64(m));
      m &= m - 1;
    }
  }
}

}  // namespace pmpr
