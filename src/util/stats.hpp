// Small descriptive-statistics helpers used by the benchmark harnesses
// (median-of-repeats timing) and by the dataset generators' self-checks
// (degree-distribution sanity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pmpr {

/// Summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double median = 0.0;
  double p95 = 0.0;
};

/// Computes a full summary of `sample`. An empty sample yields all zeros.
Summary summarize(std::span<const double> sample);

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> sample);

/// Linear-interpolation percentile. `q` is clamped to [0, 1] (out-of-range
/// quantiles never index out of bounds). 0 for an empty sample.
double percentile(std::span<const double> sample, double q);

/// Percentile over *bucketed* data: `counts[i]` observations fell into
/// bucket i. Returns the smallest index whose cumulative count covers
/// quantile `q` (clamped to [0, 1]) of the total, or `counts.size()` when
/// every bucket is empty. The single CDF-walk shared by every histogram
/// export in the tree (obs/histogram percentiles above all) — callers map
/// the index back to a bucket boundary themselves.
std::size_t percentile_bucket(std::span<const std::uint64_t> counts,
                              double q);

/// Median (= percentile 0.5).
double median(std::span<const double> sample);

/// Geometric mean; 0 if any element is <= 0 or the sample is empty.
/// Used to aggregate speedups across configurations (Fig. 11 summaries).
double geomean(std::span<const double> sample);

/// Runs `fn` `repeats` times and returns the elapsed seconds of each run.
/// The first `warmup` runs are executed but not recorded.
template <typename Fn>
std::vector<double> time_repeats(Fn&& fn, int repeats, int warmup = 0);

}  // namespace pmpr

#include "util/timer.hpp"

namespace pmpr {

template <typename Fn>
std::vector<double> time_repeats(Fn&& fn, int repeats, int warmup) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < warmup + repeats; ++i) {
    Timer t;
    fn();
    if (i >= warmup) out.push_back(t.seconds());
  }
  return out;
}

}  // namespace pmpr
