#include "util/date.hpp"

#include <charconv>
#include <cstdio>

namespace pmpr {

// Howard Hinnant's days_from_civil / civil_from_days (public-domain
// algorithms, http://howardhinnant.github.io/date_algorithms.html).
std::int64_t days_from_civil(const CivilDate& date) {
  const int y = date.year - (date.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (date.month + (date.month > 2 ? -3 : 9)) + 2) / 5 + date.day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t days) {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const auto doe = static_cast<unsigned>(days - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  CivilDate out;
  out.day = doy - (153 * mp + 2) / 5 + 1;
  out.month = mp + (mp < 10 ? 3 : -9);
  out.year = static_cast<int>(y + (out.month <= 2 ? 1 : 0));
  return out;
}

std::int64_t timestamp_from_date(const CivilDate& date) {
  return days_from_civil(date) * kSecondsPerDay;
}

std::optional<CivilDate> parse_date(std::string_view text) {
  auto parse_int = [](std::string_view s, int& out) {
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  const char sep = text.find('/') != std::string_view::npos ? '/' : '-';
  // Split on the separator *after* the (possibly signed) year.
  const std::size_t first = text.find(sep, 1);
  if (first == std::string_view::npos) return std::nullopt;
  const std::size_t second = text.find(sep, first + 1);
  if (second == std::string_view::npos) return std::nullopt;

  int year = 0;
  int month = 0;
  int day = 0;
  if (!parse_int(text.substr(0, first), year) ||
      !parse_int(text.substr(first + 1, second - first - 1), month) ||
      !parse_int(text.substr(second + 1), day)) {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31) return std::nullopt;
  CivilDate date{year, static_cast<unsigned>(month),
                 static_cast<unsigned>(day)};
  // Round-trip check rejects impossible dates like Feb 30.
  if (civil_from_days(days_from_civil(date)).day != date.day) {
    return std::nullopt;
  }
  return date;
}

std::string format_date(std::int64_t t) {
  // Floor toward the containing civil day for negative times.
  std::int64_t days = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --days;
  const CivilDate date = civil_from_days(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", date.year, date.month,
                date.day);
  return buf;
}

}  // namespace pmpr
