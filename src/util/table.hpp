// Aligned-text and CSV table emitters.
//
// Every benchmark binary prints the rows/series of the paper figure it
// reproduces. The text form is human-readable (aligned columns); the same
// Table can also be dumped as CSV for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmpr {

class Table {
 public:
  /// `title` is printed above the table (and as a CSV comment line).
  explicit Table(std::string title, std::vector<std::string> columns);

  /// Appends a row. The number of cells must equal the number of columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);

  /// Writes aligned text to `os`.
  void print_text(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV to `os` (title as a leading `#` comment).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmpr
