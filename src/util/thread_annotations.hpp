// Clang Thread Safety Analysis wrappers + annotated synchronisation types.
//
// The pmpr scheduler (src/par/) reimplements TBB's work-stealing pool, and
// its locking protocol used to live in comments only. This header makes it
// machine-checked: build with Clang and `-Wthread-safety
// -Werror=thread-safety` (added automatically by the top-level
// CMakeLists.txt) and every lock acquisition, guarded-state access, and
// lock-ordering contract annotated below is verified at compile time.
// Under GCC the attributes expand to nothing and the wrappers are
// zero-overhead aliases for the std primitives they hold.
//
// Policy (see DESIGN.md "Static analysis"):
//   * All mutex/condvar use outside src/par/ goes through pmpr::Mutex /
//     pmpr::LockGuard / pmpr::CondVar (enforced by ci/pmpr_lint.py rule
//     `raw-concurrency-type`).
//   * State protected by a mutex is declared with PMPR_GUARDED_BY so that
//     unlocked access is a compile error under Clang.
//   * Functions that expect a lock held take PMPR_REQUIRES(mutex).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang exposes the analysis attributes via __attribute__; GCC accepts the
// GNU spelling syntactically but performs no analysis, and warns on unknown
// attributes, so gate on Clang plus __has_attribute.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PMPR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PMPR_THREAD_ANNOTATION
#define PMPR_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (lockable). Name shows up in diagnostics.
#define PMPR_CAPABILITY(name) PMPR_THREAD_ANNOTATION(capability(name))

/// Marks a RAII type whose constructor acquires and destructor releases.
#define PMPR_SCOPED_CAPABILITY PMPR_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define PMPR_GUARDED_BY(x) PMPR_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointee of a pointer member is protected.
#define PMPR_PT_GUARDED_BY(x) PMPR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define PMPR_REQUIRES(...) \
  PMPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define PMPR_ACQUIRE(...) \
  PMPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PMPR_RELEASE(...) \
  PMPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define PMPR_TRY_ACQUIRE(ret, ...) \
  PMPR_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define PMPR_EXCLUDES(...) PMPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is the capability guarding the annotated state.
#define PMPR_RETURN_CAPABILITY(x) PMPR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (use sparingly; every
/// use should explain why in an adjacent comment).
#define PMPR_NO_THREAD_SAFETY_ANALYSIS \
  PMPR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pmpr {

class CondVar;

/// std::mutex with capability annotations. Prefer LockGuard over manual
/// lock()/unlock() pairs; the manual form exists for the rare protocol
/// (e.g. ThreadPool shutdown) that interleaves locking with other steps.
class PMPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PMPR_ACQUIRE() { m_.lock(); }
  void unlock() PMPR_RELEASE() { m_.unlock(); }
  bool try_lock() PMPR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class LockGuard;
  std::mutex m_;
};

/// RAII lock over pmpr::Mutex (std::unique_lock under the hood so CondVar
/// can wait on it). Scoped-capability annotated: Clang tracks the guarded
/// region between construction and destruction.
class PMPR_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) PMPR_ACQUIRE(mu) : lock_(mu.m_) {}
  ~LockGuard() PMPR_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with pmpr::Mutex via LockGuard. Thin wrapper
/// over std::condition_variable (not _any: the lock is always a
/// unique_lock<std::mutex> internally, keeping the fast native path).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Caller must hold `lock`; the analysis cannot see the temporary
  /// release inside wait, which is the standard condvar caveat.
  void wait(LockGuard& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(LockGuard& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <typename Predicate>
  void wait(LockGuard& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pmpr
