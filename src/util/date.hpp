// Calendar-date helpers.
//
// Real temporal datasets (and the paper's own examples, Fig. 2) speak in
// dates; the library speaks in integer seconds. These convert "YYYY-MM-DD"
// to/from epoch seconds (UTC, proleptic Gregorian — the civil-day algorithm
// of Howard Hinnant's date library) without locale or timezone surprises.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pmpr {

/// Seconds per civil day. Equal to duration::kDay (graph/types.hpp); spelled
/// out here so util stays below graph in the module DAG (ci/layers.toml).
inline constexpr std::int64_t kSecondsPerDay = 86400;

struct CivilDate {
  int year = 1970;
  unsigned month = 1;  ///< 1..12
  unsigned day = 1;    ///< 1..31
};

/// Days since 1970-01-01 for a civil date (valid for any Gregorian date).
std::int64_t days_from_civil(const CivilDate& date);

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days);

/// Epoch seconds at midnight UTC of the date (the graph layer's Timestamp
/// is the same 64-bit integer).
std::int64_t timestamp_from_date(const CivilDate& date);

/// Parses "YYYY-MM-DD" (also accepts "YYYY/MM/DD"); nullopt on malformed
/// or out-of-range input.
std::optional<CivilDate> parse_date(std::string_view text);

/// Formats epoch seconds as "YYYY-MM-DD" (UTC midnight-floor).
std::string format_date(std::int64_t t);

}  // namespace pmpr
