// Tiny declarative command-line parser for the examples and benchmark
// binaries. Supports `--name value`, `--name=value`, and boolean flags
// (`--flag` / `--no-flag`), plus auto-generated `--help` text.
//
// Deliberately dependency-free; not intended as a general-purpose CLI
// library, just enough for reproducible experiment drivers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pmpr {

class Options {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit Options(std::string program_summary);

  /// Registers a typed option bound to `*target`, whose current value is the
  /// default. `help` appears in --help. Returns *this for chaining.
  Options& add(const std::string& name, std::string* target,
               const std::string& help);
  Options& add(const std::string& name, std::int64_t* target,
               const std::string& help);
  Options& add(const std::string& name, double* target,
               const std::string& help);
  Options& add(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. On `--help`, prints usage to stdout and returns false
  /// (callers should exit 0). On a parse error, prints the problem to stderr
  /// and returns false (callers should exit nonzero after checking
  /// `saw_help()`). Unknown options are errors.
  bool parse(int argc, char** argv);

  [[nodiscard]] bool saw_help() const { return saw_help_; }

  /// Positional (non-option) arguments encountered during parse.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  struct Opt {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_flag = false;
    // Returns false if the value cannot be parsed.
    std::function<bool(const std::string&)> set;
  };

  void print_help(const char* argv0) const;
  const Opt* find(const std::string& name) const;

  std::string summary_;
  std::vector<Opt> opts_;
  std::vector<std::string> positional_;
  bool saw_help_ = false;
};

}  // namespace pmpr
