// Minimal leveled logging for the library.
//
// The runners and benchmark harnesses use this to report progress without
// polluting the machine-readable tables they print on stdout: log output
// always goes to stderr. Thread-safe (a single global mutex serialises
// message emission; formatting happens outside the lock).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "util/thread_annotations.hpp"

namespace pmpr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
/// Global mutable logging state. Kept behind accessors so tests can lower
/// the threshold and capture output.
LogLevel& log_threshold();
Mutex& log_mutex();
void emit(LogLevel level, std::string_view msg) PMPR_EXCLUDES(log_mutex());
}  // namespace detail

/// Sets the minimum level that will be emitted. Returns the previous level.
LogLevel set_log_level(LogLevel level);

/// When enabled, every log line carries a UTC wall-clock timestamp
/// (millisecond ISO-8601) and a small sequential thread id after the level
/// tag: `[pmpr INFO  2026-08-07T12:34:56.789Z t0] ...`. Off by default so
/// test goldens and log-scraping stay stable. Returns the previous setting.
bool set_log_annotations(bool enabled);

/// Parses "debug"/"info"/"warn"/"error"; unknown strings map to kInfo.
LogLevel parse_log_level(std::string_view name);

/// Stream-style log statement: `PMPR_LOG(kInfo) << "built " << n << " windows";`
/// The message is assembled in a local ostringstream and emitted on
/// destruction, so the global lock is held only for the write itself.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::emit(level_, out_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace pmpr

#define PMPR_LOG(level)                                         \
  if (static_cast<int>(::pmpr::LogLevel::level) <               \
      static_cast<int>(::pmpr::detail::log_threshold())) {      \
  } else                                                        \
    ::pmpr::LogLine(::pmpr::LogLevel::level)
