#include "pagerank/simd_sweep.hpp"

#include "util/check.hpp"

namespace pmpr {

SpmmSweepFn select_spmm_sweep(std::size_t mask_words, SimdIsa isa) {
  PMPR_CHECK_MSG(mask_words == 1 || mask_words == 2 || mask_words == 4 ||
                     mask_words == 8,
                 "mask_words " << mask_words << " not in {1, 2, 4, 8}");
  switch (isa) {
    case SimdIsa::kScalar:
      return detail::spmm_sweep_scalar(mask_words);
    case SimdIsa::kAvx2:
#if defined(PMPR_HAVE_AVX2_SWEEP)
      return detail::spmm_sweep_avx2(mask_words);
#else
      break;
#endif
    case SimdIsa::kAvx512:
#if defined(PMPR_HAVE_AVX512_SWEEP)
      return detail::spmm_sweep_avx512(mask_words);
#else
      break;
#endif
  }
  PMPR_CHECK_MSG(false, "sweep ISA '" << to_string(isa)
                                      << "' not built into this binary");
  return nullptr;  // unreachable
}

}  // namespace pmpr
