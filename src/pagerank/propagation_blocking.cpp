#include "pagerank/propagation_blocking.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace pmpr {

PushGraph PushGraph::from_events(std::span<const TemporalEdge> events,
                                 VertexId num_vertices) {
  PushGraph g;
  g.num_vertices = num_vertices;
  g.is_active.assign(num_vertices, 0);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(events.size());
  for (const auto& e : events) pairs.emplace_back(e.src, e.dst);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [u, v] : pairs) {
    g.is_active[u] = 1;
    g.is_active[v] = 1;
  }
  g.out = Csr::from_pairs(pairs, num_vertices, /*dedup=*/false);
  g.num_active = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.num_active += g.is_active[v];
  }
  return g;
}

PagerankStats pagerank_propagation_blocking(const PushGraph& g,
                                            std::span<double> x,
                                            std::span<double> scratch,
                                            const PagerankParams& params,
                                            unsigned bin_bits) {
  const std::size_t n = g.num_vertices;
  assert(x.size() == n && scratch.size() == n);
  PagerankStats stats;
  if (g.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  const auto n_active = static_cast<double>(g.num_active);
  const double one_minus_alpha = 1.0 - params.alpha;

  bin_bits = std::clamp(bin_bits, 4u, 30u);
  const std::size_t bin_width = std::size_t{1} << bin_bits;
  const std::size_t num_bins = (n + bin_width - 1) / bin_width;

  // One contribution per out-edge per iteration; reused across iterations.
  struct Update {
    VertexId dst;
    double value;
  };
  std::vector<std::vector<Update>> bins(std::max<std::size_t>(num_bins, 1));
  for (auto& bin : bins) bin.reserve(g.out.num_edges() / num_bins + 8);

  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0; iter < params.max_iters; ++iter) {
    double dangling = 0.0;
    if (params.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        if (g.is_active[v] != 0 && g.out.degree(static_cast<VertexId>(v)) == 0) {
          dangling += cur[v];
        }
      }
    }
    const double base = (params.alpha + one_minus_alpha * dangling) / n_active;

    // Phase 1: bin the pushes by destination block (streaming writes into
    // per-bin buffers instead of random writes into the vector).
    for (auto& bin : bins) bin.clear();
    for (std::size_t u = 0; u < n; ++u) {
      const auto deg = g.out.degree(static_cast<VertexId>(u));
      if (deg == 0) continue;
      const double contribution =
          one_minus_alpha * cur[u] / static_cast<double>(deg);
      for (const VertexId v : g.out.neighbors(static_cast<VertexId>(u))) {
        bins[v >> bin_bits].push_back({v, contribution});
      }
    }

    // Phase 2: accumulate bin by bin (each touches one cache-sized slice).
    for (std::size_t v = 0; v < n; ++v) {
      next[v] = g.is_active[v] != 0 ? base : 0.0;
    }
    for (const auto& bin : bins) {
      for (const auto& [dst, value] : bin) {
        next[dst] += value;
      }
    }

    double diff = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      diff += std::abs(next[v] - cur[v]);
    }
    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (diff < params.tol) break;
  }

  if (cur != x.data()) {
    std::copy(cur, cur + n, x.data());
  }
  return stats;
}

}  // namespace pmpr
