// Propagation-blocking PageRank (Beamer, Asanović & Patterson, IPDPS'17).
//
// The paper cites propagation blocking in §2.2: "although this paper does
// not leverage that particular technique, we believe it is compatible."
// This kernel validates that claim: a push-style iteration whose scattered
// updates are first *binned* by destination range, then accumulated bin by
// bin, converting random writes over the whole vector into streaming
// writes within cache-sized blocks. Numerically identical to the pull
// kernel (same Eq. 1 with dangling redistribution), verified in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "pagerank/pagerank.hpp"

namespace pmpr {

/// Out-adjacency form of one window graph (push kernels read out-edges).
struct PushGraph {
  VertexId num_vertices = 0;
  Csr out;  ///< Deduplicated out-adjacency.
  std::vector<std::uint8_t> is_active;
  std::size_t num_active = 0;

  /// Builds from the window's events (duplicates collapse).
  static PushGraph from_events(std::span<const TemporalEdge> events,
                               VertexId num_vertices);
};

/// Runs PageRank with destination-binned pushes. `bin_bits` sets the bin
/// width to 2^bin_bits vertices (the accumulator slice that should fit in
/// cache). Semantics and convergence criterion match pmpr::pagerank().
PagerankStats pagerank_propagation_blocking(const PushGraph& g,
                                            std::span<double> x,
                                            std::span<double> scratch,
                                            const PagerankParams& params,
                                            unsigned bin_bits = 12);

}  // namespace pmpr
