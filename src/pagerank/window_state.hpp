// Per-window derived state over a multi-window graph's local vertex space:
// distinct out-degrees and the active vertex set, computed by one scatter
// pass over the reverse temporal CSR. Computed once per window (or once per
// SpMM batch for all lanes together) and reused across power iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "graph/window.hpp"
#include "par/parallel_for.hpp"

namespace pmpr {

/// State of one window (SpMV path).
struct WindowState {
  std::vector<std::uint32_t> out_degree;  ///< Distinct out-neighbors, local.
  std::vector<std::uint8_t> active;  ///< 1 iff vertex has an edge in window.
  std::size_t num_active = 0;

  void resize(std::size_t n) {
    out_degree.assign(n, 0);
    active.assign(n, 0);
    num_active = 0;
  }
};

/// Computes degrees/activity for window [ts, te] of `part`. If `parallel`
/// is non-null the scatter runs as a parallel_for (atomic increments).
void compute_window_state(const MultiWindowGraph& part, Timestamp ts,
                          Timestamp te, WindowState& out,
                          const par::ForOptions* parallel = nullptr);

/// State of an SpMM batch: `lanes` windows processed simultaneously.
/// Lane k corresponds to global window `first_window + k * window_stride`
/// (the strided pick of §4.4 that preserves partial initialization).
struct SpmmBatch {
  std::size_t lanes = 0;
  std::size_t first_window = 0;
  std::size_t window_stride = 1;

  [[nodiscard]] std::size_t window_of_lane(std::size_t k) const {
    return first_window + k * window_stride;
  }
};

/// Lane-interleaved degrees (deg[v*lanes + k]) plus per-vertex activity
/// bitmasks (bit k of active_mask[v] = active in lane k's window).
struct SpmmWindowState {
  std::size_t lanes = 0;
  std::vector<std::uint32_t> out_degree;   ///< n * lanes, lane-interleaved.
  std::vector<std::uint64_t> active_mask;  ///< n entries.
  std::vector<std::size_t> num_active;     ///< per lane.

  void resize(std::size_t n, std::size_t num_lanes) {
    lanes = num_lanes;
    out_degree.assign(n * num_lanes, 0);
    active_mask.assign(n, 0);
    num_active.assign(num_lanes, 0);
  }
};

/// Computes degrees/activity for all lanes of `batch` in one pass over the
/// part's temporal CSR (this shared pass is the SpMM saving).
void compute_spmm_state(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& out,
                        const par::ForOptions* parallel = nullptr);

/// Bitmask of lanes whose window contains timestamp `t`. Exposed for tests.
std::uint64_t lanes_containing(const WindowSpec& spec, const SpmmBatch& batch,
                               Timestamp t);

}  // namespace pmpr
