// Per-window derived state over a multi-window graph's local vertex space:
// distinct out-degrees and the active vertex set, computed by one scatter
// pass over the reverse temporal CSR. Computed once per window (or once per
// SpMM batch for all lanes together) and reused across power iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/multi_window.hpp"
#include "graph/window.hpp"
#include "par/parallel_for.hpp"
#include "util/bits.hpp"

namespace pmpr {

/// State of one window (SpMV path).
struct WindowState {
  std::vector<std::uint32_t> out_degree;  ///< Distinct out-neighbors, local.
  std::vector<std::uint8_t> active;  ///< 1 iff vertex has an edge in window.
  std::size_t num_active = 0;

  void resize(std::size_t n) {
    out_degree.assign(n, 0);
    active.assign(n, 0);
    num_active = 0;
  }
};

/// Computes degrees/activity for window [ts, te] of `part`. If `parallel`
/// is non-null the scatter runs as a parallel_for (atomic increments).
void compute_window_state(const MultiWindowGraph& part, Timestamp ts,
                          Timestamp te, WindowState& out,
                          const par::ForOptions* parallel = nullptr);

/// Widest SpMM batch the kernels support: 8 mask words of 64 lanes. The
/// sweep kernels are instantiated for {1, 2, 4, 8} words (see
/// util/bits.hpp's mask_words_for).
inline constexpr std::size_t kMaxSpmmLanes = 512;

/// State of an SpMM batch: `lanes` windows processed simultaneously.
/// Lane k corresponds to global window `first_window + k * window_stride`
/// (the strided pick of §4.4 that preserves partial initialization).
struct SpmmBatch {
  std::size_t lanes = 0;
  std::size_t first_window = 0;
  std::size_t window_stride = 1;

  [[nodiscard]] std::size_t window_of_lane(std::size_t k) const {
    return first_window + k * window_stride;
  }
};

/// Lane-interleaved degrees (deg[v*lanes + k]) plus per-vertex activity
/// bitmasks. Masks are multi-word: mask_words consecutive uint64_t values
/// per vertex (mask_words_for(lanes) ∈ {1, 2, 4, 8}), bit k of word w
/// naming lane w*64 + k. For lanes <= 64 this degenerates to the original
/// one-word-per-vertex layout (active_mask[v] is that word).
struct SpmmWindowState {
  std::size_t lanes = 0;
  std::size_t mask_words = 1;
  std::vector<std::uint32_t> out_degree;   ///< n * lanes, lane-interleaved.
  std::vector<std::uint64_t> active_mask;  ///< n * mask_words.
  std::vector<std::size_t> num_active;     ///< per lane.

  [[nodiscard]] const std::uint64_t* mask_of(std::size_t v) const {
    return active_mask.data() + v * mask_words;
  }

  void resize(std::size_t n, std::size_t num_lanes) {
    lanes = num_lanes;
    mask_words = mask_words_for(num_lanes);
    out_degree.assign(n * num_lanes, 0);
    active_mask.assign(n * mask_words, 0);
    num_active.assign(num_lanes, 0);
  }
};

/// Computes degrees/activity for all lanes of `batch` in one pass over the
/// part's temporal CSR (this shared pass is the SpMM saving).
void compute_spmm_state(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& out,
                        const par::ForOptions* parallel = nullptr);

/// Inclusive range of lanes whose window contains a timestamp. Because
/// lanes are strided windows of one spec, the lanes containing any t form
/// one contiguous run — the structural fact that keeps multi-word mask
/// construction O(words) per run instead of O(lanes).
struct LaneSpan {
  std::size_t lo = 1;
  std::size_t hi = 0;
  [[nodiscard]] bool empty() const { return lo > hi; }
};

/// Lanes of `batch` whose window contains timestamp `t`.
LaneSpan lane_span_containing(const WindowSpec& spec, const SpmmBatch& batch,
                              Timestamp t);

/// ORs the lanes containing `t` into the multi-word mask `words`
/// (mask_words_for(batch.lanes) words). Any lane count up to kMaxSpmmLanes.
void lanes_containing_into(const WindowSpec& spec, const SpmmBatch& batch,
                           Timestamp t, std::uint64_t* words);

/// Single-word variant for batches of at most 64 lanes. Exposed for tests.
std::uint64_t lanes_containing(const WindowSpec& spec, const SpmmBatch& batch,
                               Timestamp t);

}  // namespace pmpr
