// SpMM-inspired postmortem PageRank kernel (paper §4.4).
//
// Computes PageRank for up to kMaxSpmmLanes (512) windows ("lanes") of the
// same multi-window
// graph simultaneously: each power iteration traverses the part's temporal
// CSR once and advances every live lane's vector. The PageRank vectors are
// lane-interleaved (x[v*lanes + k]), turning the mostly-random per-window
// vector accesses into mostly-regular ones — the SpMM memory-traffic win
// the paper borrows from linear algebra.
//
// Lanes are strided windows (G_j, G_{j+R}, G_{j+2R}, ...): the batch after
// this one holds each window's direct successor, so every batch but the
// first can use partial initialization (§4.4's region trick).
#pragma once

#include <span>
#include <vector>

#include "graph/multi_window.hpp"
#include "pagerank/batch_csr.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "pagerank/window_state.hpp"

namespace pmpr {

struct SpmmStats {
  int iterations = 0;  ///< Shared traversals executed (max over lanes).
  std::vector<PagerankStats> lane_stats;
};

/// Runs one SpMM batch. `x` and `scratch` are n*lanes, lane-interleaved;
/// lane k's slice of `x` holds its initial guess on entry and its result on
/// exit. `state` must match (part, spec, batch). Non-null `parallel` runs
/// each shared sweep as a parallel_for over rows.
SpmmStats pagerank_spmm(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, const SpmmWindowState& state,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel = nullptr);

/// Compiled-kernel overload: consumes the batch-compiled adjacency
/// (precomputed lane masks, run compression, active-row and dangling-row
/// compaction) built by compile_spmm_batch, so each sweep does no timestamp
/// arithmetic and touches only active rows. `simd` picks the sweep ISA
/// (kAuto = best the CPU supports; forced modes throw InvariantError when
/// unsupported — see simd_dispatch.hpp). Every ISA gives bit-identical
/// results, residuals, and iteration counts to the reference overload
/// above when run serially.
SpmmStats pagerank_spmm(const SpmmWindowState& state,
                        const CompiledBatchCsr& compiled, std::span<double> x,
                        std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel = nullptr,
                        SimdMode simd = SimdMode::kAuto);

}  // namespace pmpr
